#!/usr/bin/env python3
"""Writing a custom uopt pass (paper section 4.1 / Algorithm 2).

Implements a small analysis + transformation the way the paper's
Algorithm 2 does: an analysis walks the circuit's memory accesses, the
transformation rewires the graph, and the pass framework verifies the
result and accounts the edit size (the currency of Table 4).

The example pass gives every *read-only* array a wider, lower-latency
scratchpad of its own — a plausible designer experiment that takes a
dozen lines at uIR level.

Run:  python examples/custom_pass.py
"""

from repro.core.structures import Junction, Scratchpad
from repro.frontend import translate_module
from repro.opt import Pass, PassManager
from repro.opt.analysis import memory_access_groups
from repro.rtl import diff_circuits, lower_to_firrtl
from repro.sim import simulate
from repro.workloads import get_workload


class ReadOnlyScratchpads(Pass):
    """Home every array that is only ever *read* in a fast local ROM."""

    name = "readonly_scratchpads"

    def apply(self, circuit):
        # --- Analysis (paper: getMemoryAccess) -----------------------
        groups = memory_access_groups(circuit)
        read_only = []
        for array, clients in groups.items():
            if array is None:
                continue
            if all(node.kind == "load" for _t, node in clients):
                read_only.append(array)

        # --- Transformation (paper: scratchpadBanking style) ---------
        for array in sorted(read_only):
            base, words = circuit.array_layout[array]
            rom = Scratchpad(f"rom_{array}", size_words=base + words,
                             banks=2, ports_per_bank=2, latency=1,
                             arrays=[array])
            circuit.add_structure(rom)
            circuit.array_home[array] = rom
            for task, node in groups[array]:
                old = task.junction_of(node)
                old.detach(node)
                target = next((j for j in task.junctions
                               if j.structure is rom), None)
                if target is None:
                    target = Junction(f"{task.name}_j_{array}", rom,
                                      issue_width=2)
                    task.add_junction(target)
                target.attach(node)
                task.reindex_junctions()
        for task in circuit.tasks.values():
            for junction in list(task.junctions):
                if not junction.clients:
                    task.remove_junction(junction)
        result = self._result(bool(read_only), read_only=read_only)
        # Account the uIR-level edit: one ROM + one junction per array,
        # one rerouted connection per memory client (Table 4 currency).
        result.nodes_added = 2 * len(read_only)
        result.edges_added = sum(len(groups[a]) for a in read_only)
        return result


def main() -> None:
    w = get_workload("spmv")  # vals/cols/rowptr/x are read-only

    baseline = translate_module(w.module(), name="spmv")
    mem = w.fresh_memory()
    base = simulate(baseline, mem, list(w.args))
    w.verify(mem)

    custom = translate_module(w.module(), name="spmv_rom")
    firrtl_before = lower_to_firrtl(custom)
    log = PassManager([ReadOnlyScratchpads()]).run(custom)
    firrtl_after = lower_to_firrtl(custom)

    mem = w.fresh_memory()
    opt = simulate(custom, mem, list(w.args))
    w.verify(mem)  # the framework re-validated structure; we check behavior

    print("pass result:", log[0].details)
    print(f"cycles: {base.cycles} -> {opt.cycles} "
          f"({base.cycles / opt.cycles:.2f}x)")
    dn, de = diff_circuits(firrtl_before, firrtl_after)
    print(f"edit size: uIR dN={log[0].delta_nodes} "
          f"dE={log[0].delta_edges}  vs  FIRRTL dN={dn} dE={de}")
    print("(the same experiment at RTL level touches "
          f"{(dn + de) / max(1, log[0].delta_nodes + log[0].delta_edges):.0f}x "
          "more graph elements — the paper's Table 4 argument)")


if __name__ == "__main__":
    main()

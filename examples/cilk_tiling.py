#!/usr/bin/env python3
"""Execution tiling of a Cilk-style workload (paper section 6.2).

Translates a parallel stencil, provisions its memory (localization +
banking), then sweeps execution tiles 1/2/4/8 — the paper's Figure 12
experiment — reporting both speedup and the area each configuration
costs on the FPGA.

Run:  python examples/cilk_tiling.py
"""

from repro.frontend import translate_module
from repro.opt import (
    ExecutionTiling,
    MemoryLocalization,
    ParameterTuning,
    PassManager,
    ScratchpadBanking,
    TaskPipelining,
)
from repro.rtl import synthesize
from repro.sim import simulate
from repro.workloads import get_workload


def build(workload, tiles):
    circuit = translate_module(workload.module(),
                               name=f"stencil_{tiles}T")
    passes = [MemoryLocalization(), ScratchpadBanking(4),
              ParameterTuning()]
    if tiles > 1:
        passes += [TaskPipelining(), ExecutionTiling(tiles)]
    PassManager(passes).run(circuit)
    return circuit


def main() -> None:
    w = get_workload("stencil")
    rows = []
    base_time = None
    for tiles in (1, 2, 4, 8):
        circuit = build(w, tiles)
        mem = w.fresh_memory()
        result = simulate(circuit, mem, list(w.args))
        w.verify(mem)  # tiling never changes behavior
        synth = synthesize(circuit)
        time_us = result.cycles / synth.fpga_mhz
        if base_time is None:
            base_time = time_us
        rows.append((tiles, result.cycles, round(synth.fpga_mhz),
                     synth.alms, round(base_time / time_us, 2)))

    print(f"{'tiles':>5} {'cycles':>8} {'MHz':>5} {'ALMs':>7} "
          f"{'speedup':>8}")
    for row in rows:
        print(f"{row[0]:>5} {row[1]:>8} {row[2]:>5} {row[3]:>7} "
              f"{row[4]:>8}")
    print("\nNote how speedup saturates as the tiles outrun the "
          "memory system while area keeps growing — the paper's "
          "core tiling trade-off.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Design-space exploration: the workflow uIR exists to enable.

Sweeps a small (banks x tiles) grid for the image-scaling accelerator,
simulating every point and estimating its FPGA cost — the "fertile
playground" the paper promises computer architects.  Every point is
generated from the same unmodified program; only uopt parameters vary.

Run:  python examples/design_space_exploration.py
"""

from repro.frontend import translate_module
from repro.opt import (
    ExecutionTiling,
    MemoryLocalization,
    OpFusion,
    ParameterTuning,
    PassManager,
    ScratchpadBanking,
    TaskPipelining,
)
from repro.rtl import synthesize
from repro.sim import simulate
from repro.workloads import get_workload


def evaluate(workload, banks, tiles):
    circuit = translate_module(workload.module(),
                               name=f"img_{banks}b_{tiles}t")
    passes = [MemoryLocalization(), ScratchpadBanking(banks),
              OpFusion(), ParameterTuning()]
    if tiles > 1:
        passes += [TaskPipelining(), ExecutionTiling(tiles)]
    PassManager(passes).run(circuit)
    mem = workload.fresh_memory()
    result = simulate(circuit, mem, list(workload.args))
    workload.verify(mem)
    synth = synthesize(circuit)
    return result.cycles / synth.fpga_mhz, synth.alms


def main() -> None:
    w = get_workload("img_scale")
    points = []
    for banks in (1, 2, 4):
        for tiles in (1, 2, 4):
            time_us, alms = evaluate(w, banks, tiles)
            points.append((banks, tiles, time_us, alms))

    print(f"{'banks':>5} {'tiles':>5} {'time_us':>9} {'ALMs':>7}")
    for banks, tiles, time_us, alms in points:
        print(f"{banks:>5} {tiles:>5} {time_us:>9.2f} {alms:>7}")

    pareto = []
    for p in sorted(points, key=lambda p: p[2]):
        if not pareto or p[3] < pareto[-1][3]:
            pareto.append(p)
    print("\nPareto frontier (fastest first, strictly cheaper after):")
    for banks, tiles, time_us, alms in pareto:
        print(f"  banks={banks} tiles={tiles}: "
              f"{time_us:.2f} us, {alms} ALMs")


if __name__ == "__main__":
    main()

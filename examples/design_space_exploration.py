#!/usr/bin/env python3
"""Design-space exploration: the workflow uIR exists to enable.

Sweeps the (banks x tiles) grid for the image-scaling accelerator
through :func:`repro.dse.explore` — worker processes in parallel, a
persistent content-addressed result cache, and Pareto-frontier
extraction.  Every point is generated from the same unmodified
program; only the uopt pipeline template varies:

    localize,banking={banks},fusion,tuning,
    pipelining?tiles>1,tiling={tiles}?tiles>1

Run it twice: the second sweep is served from the cache.

Run:  python examples/design_space_exploration.py
"""

from repro.dse import GridSpace, explore

PIPELINE = ("localize,banking={banks},fusion,tuning,"
            "pipelining?tiles>1,tiling={tiles}?tiles>1")


def main() -> None:
    report = explore(
        "img_scale",
        GridSpace({"banks": [1, 2, 4], "tiles": [1, 2, 4]}),
        pipeline=PIPELINE,
        workers=4,
        cache=".repro-cache",
        objectives=("time_us", "alms"))

    print(f"{'banks':>5} {'tiles':>5} {'time_us':>9} {'ALMs':>7}"
          f"  source")
    for p in report.points:
        print(f"{p.params['banks']:>5} {p.params['tiles']:>5} "
              f"{p.metric('time_us'):>9.2f} {p.synth['alms']:>7}"
              f"  {p.source}")

    print("\nPareto frontier (time_us/ALMs, minimized):")
    for index in report.pareto:
        p = report.point(index)
        print(f"  banks={p.params['banks']} tiles={p.params['tiles']}: "
              f"{p.metric('time_us'):.2f} us, {p.synth['alms']} ALMs")
    print(f"\n{report.summary()}")


if __name__ == "__main__":
    main()

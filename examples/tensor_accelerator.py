#!/usr/bin/env python3
"""Tensor higher-order ops (paper section 6.3 / Figures 13-15).

Builds the paper's motivating accelerator two ways:

* a scalar tile-convolution (the HLS-style baseline), then lets the
  TensorOps uopt pass *automatically* rewrite an elementwise tile loop
  to a Tensor2D function unit;
* the Figure-13 style source that uses tensor intrinsics directly.

Run:  python examples/tensor_accelerator.py
"""

from repro.frontend import compile_minic, translate_module
from repro.frontend.interp import Interpreter, Memory
from repro.opt import PassManager, TensorOps
from repro.rtl import synthesize
from repro.sim import simulate
from repro.workloads import get_workload

RELU_SCALAR = """
array a: f32[256];
array b: f32[256];
func main(n: i32) {
  for (i = 0; i < n; i = i + 1) {
    var v: f32 = a[i];
    var r: f32 = 0.0;
    if (v > 0.0) { r = v; }
    b[i] = r;
  }
}
"""


def run(circuit, module, init, args):
    mem = Memory(module)
    init(mem)
    result = simulate(circuit, mem, args)
    return result, mem


def main() -> None:
    init = lambda m: m.set_array(
        "a", [float(i - 128) / 7 for i in range(256)])

    # ---- automatic tensorization of a scalar loop ---------------------
    module = compile_minic(RELU_SCALAR)
    golden = Memory(module)
    init(golden)
    Interpreter(module, golden).run(256)

    scalar_circuit = translate_module(module, name="relu_scalar")
    base, mem = run(scalar_circuit, module, init, [256])
    assert mem.words == golden.words

    tensor_circuit = translate_module(module, name="relu_tensor")
    log = PassManager([TensorOps(rows=2, cols=2)]).run(tensor_circuit)
    print("TensorOps pass:", log[0].details)
    opt, mem = run(tensor_circuit, module, init, [256])
    assert mem.words == golden.words, "tensorization changed behavior!"

    print(f"scalar ReLU : {base.cycles} cycles")
    print(f"tensor ReLU : {opt.cycles} cycles "
          f"({base.cycles / opt.cycles:.2f}x)")
    s = synthesize(tensor_circuit)
    print(f"tensor unit clocks at {s.fpga_mhz:.0f} MHz with "
          f"{s.dsps} DSPs")

    # ---- Figure-13 style: tensor intrinsics in the source -------------
    print("\nblocked matmul with Tensor2D intrinsics (2mm_t):")
    w = get_workload("2mm_t")
    for variant, label in (("base", "scalar tile math"),
                           ("tensor", "tensor intrinsics")):
        circuit = translate_module(w.module(variant))
        mem = w.fresh_memory(variant)
        result = simulate(circuit, mem, list(w.args_for(variant)))
        w.verify(mem, variant)
        print(f"  {label:<22}: {result.cycles} cycles")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: software in, optimized accelerator out.

Walks the paper's Figure 1 pipeline end to end:

1. write a kernel in MiniC (the stand-in for C++/Cilk),
2. translate it to a uIR accelerator graph (Stage 1),
3. apply uopt passes (Stage 2),
4. simulate cycle-accurately and check behavior against the
   reference interpreter,
5. lower to Chisel text and estimate FPGA quality (Stage 3).

Run:  python examples/quickstart.py
"""

from repro.frontend import compile_minic, translate_module
from repro.frontend.interp import Interpreter, Memory
from repro.opt import (
    MemoryLocalization,
    OpFusion,
    ParameterTuning,
    PassManager,
    ScratchpadBanking,
)
from repro.rtl import emit_chisel, synthesize
from repro.sim import simulate

SOURCE = """
array x: f32[128];
array y: f32[128];

func main(n: i32, a: f32) {
  for (i = 0; i < n; i = i + 1) {
    y[i] = a * x[i] + y[i];
  }
}
"""


def main() -> None:
    # -- 1. behavior: compile and run the reference interpreter ------
    module = compile_minic(SOURCE)
    golden = Memory(module)
    golden.set_array("x", [float(i % 11) for i in range(128)])
    golden.set_array("y", [1.0] * 128)
    Interpreter(module, golden).run(128, 2.0)
    print("reference y[:6]  =", golden.get_array("y")[:6])

    # -- 2. microarchitecture: translate to a uIR circuit -------------
    baseline = translate_module(module, name="saxpy")
    print("\nbaseline circuit:", baseline)
    for task in baseline.tasks.values():
        print(f"  task {task.name:<22} kind={task.kind:<5} "
              f"nodes={len(task.dataflow.nodes)}")

    # -- 3. measure the baseline ---------------------------------------
    mem = Memory(module)
    mem.set_array("x", [float(i % 11) for i in range(128)])
    mem.set_array("y", [1.0] * 128)
    base = simulate(baseline, mem, [128, 2.0])
    assert mem.words == golden.words, "baseline diverged!"
    base_synth = synthesize(baseline, "saxpy-baseline")
    print(f"\nbaseline: {base.cycles} cycles @ "
          f"{base_synth.fpga_mhz:.0f} MHz = "
          f"{base.cycles / base_synth.fpga_mhz:.2f} us")

    # -- 4. optimize: uopt passes transform the graph, not the code --
    optimized = translate_module(module, name="saxpy_opt")
    log = PassManager([
        MemoryLocalization(),      # per-array scratchpads (Pass 3)
        ScratchpadBanking(4),      # 4 banks each (Pass 4)
        OpFusion(),                # fuse + retime pipelines (Pass 5)
        ParameterTuning(),         # widen junctions, deepen queues
    ]).run(optimized)
    for result in log:
        print(f"  pass {result.pass_name:<22} changed={result.changed}")

    mem = Memory(module)
    mem.set_array("x", [float(i % 11) for i in range(128)])
    mem.set_array("y", [1.0] * 128)
    opt = simulate(optimized, mem, [128, 2.0])
    assert mem.words == golden.words, "optimization changed behavior!"
    opt_synth = synthesize(optimized, "saxpy-opt")
    print(f"optimized: {opt.cycles} cycles @ "
          f"{opt_synth.fpga_mhz:.0f} MHz = "
          f"{opt.cycles / opt_synth.fpga_mhz:.2f} us")
    speedup = (base.cycles / base_synth.fpga_mhz) / \
        (opt.cycles / opt_synth.fpga_mhz)
    print(f"speedup: {speedup:.2f}x — behavior unchanged (asserted)")

    # -- 5. lower to RTL --------------------------------------------------
    chisel = emit_chisel(optimized)
    print("\nfirst lines of the generated Chisel:")
    for line in chisel.splitlines()[:14]:
        print("   ", line)


if __name__ == "__main__":
    main()

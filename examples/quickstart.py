#!/usr/bin/env python3
"""Quickstart: software in, optimized accelerator out.

Walks the paper's Figure 1 pipeline end to end through the
:class:`repro.Pipeline` facade:

1. write a kernel in MiniC (the stand-in for C++/Cilk),
2. translate it to a uIR accelerator graph (Stage 1),
3. apply uopt passes via the spec mini-language (Stage 2),
4. simulate cycle-accurately — behavior is checked against the
   reference interpreter automatically,
5. lower to Chisel text and estimate FPGA quality (Stage 3).

Run:  python examples/quickstart.py
"""

from repro import Pipeline, emit_chisel
from repro.frontend.interp import Memory

SOURCE = """
array x: f32[128];
array y: f32[128];

func main(n: i32, a: f32) {
  for (i = 0; i < n; i = i + 1) {
    y[i] = a * x[i] + y[i];
  }
}
"""


def saxpy_memory(module) -> Memory:
    mem = Memory(module)
    mem.set_array("x", [float(i % 11) for i in range(128)])
    mem.set_array("y", [1.0] * 128)
    return mem


def main() -> None:
    # -- 1+2. compile, translate, and measure the baseline -------------
    base_pipe = Pipeline(SOURCE, name="saxpy")
    print("baseline circuit:", base_pipe.circuit)
    for task in base_pipe.circuit.tasks.values():
        print(f"  task {task.name:<22} kind={task.kind:<5} "
              f"nodes={len(task.dataflow.nodes)}")

    base = base_pipe.simulate(
        args=[128, 2.0],
        memory=saxpy_memory(base_pipe.module)).synthesize()
    print(f"\nbaseline: {base.cycles} cycles @ "
          f"{base.synth.fpga_mhz:.0f} MHz = {base.time_us:.2f} us "
          f"(verified={base.verified})")

    # -- 3+4. optimize: uopt passes transform the graph, not the code --
    opt_pipe = Pipeline(SOURCE, name="saxpy_opt")
    opt = (opt_pipe
           .optimize("localize,banking=4,fusion,tuning")
           .simulate(args=[128, 2.0],
                     memory=saxpy_memory(opt_pipe.module))
           .synthesize())
    for result in opt.pass_log:
        print(f"  pass {result.pass_name:<22} "
              f"changed={result.changed}")
    print(f"optimized: {opt.cycles} cycles @ "
          f"{opt.synth.fpga_mhz:.0f} MHz = {opt.time_us:.2f} us "
          f"(verified={opt.verified})")
    print(f"speedup: {base.time_us / opt.time_us:.2f}x — behavior "
          f"unchanged (checked against the interpreter)")

    # -- 5. lower to RTL ------------------------------------------------
    chisel = emit_chisel(opt_pipe.circuit)
    print("\nfirst lines of the generated Chisel:")
    for line in chisel.splitlines()[:14]:
        print("   ", line)


if __name__ == "__main__":
    main()

"""Shared test fixtures and helpers."""

import pytest

from repro.frontend import compile_minic, translate_module
from repro.frontend.interp import Interpreter, Memory
from repro.sim import SimParams, simulate


def run_both(source, args, init=None, passes=None, params=None):
    """Compile MiniC, run interpreter and simulator, return both
    memories plus the sim result (the central equivalence helper)."""
    module = compile_minic(source)
    golden = Memory(module)
    if init:
        init(golden)
    Interpreter(module, golden).run(*args)

    circuit = translate_module(module)
    if passes:
        from repro.opt import PassManager
        PassManager(list(passes)).run(circuit)
    mem = Memory(module)
    if init:
        init(mem)
    result = simulate(circuit, mem, list(args), params)
    return golden, mem, result


def assert_equivalent(source, args, init=None, passes=None):
    golden, mem, result = run_both(source, args, init, passes)
    assert mem.words == golden.words, (
        "simulation diverged from reference interpreter")
    return result


@pytest.fixture
def saxpy_source():
    return """
array x: f32[32];
array y: f32[32];
func main(n: i32, a: f32) {
  for (i = 0; i < n; i = i + 1) {
    y[i] = a * x[i] + y[i];
  }
}
"""


@pytest.fixture
def saxpy_init():
    def init(mem):
        mem.set_array("x", [float(i % 7) for i in range(32)])
        mem.set_array("y", [1.0] * 32)
    return init

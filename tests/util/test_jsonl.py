"""Tests for the shared durable-JSONL primitive.

This module backs both the telemetry run ledger and the sweep
journal, so its byte format is pinned: one canonical (sorted-key,
no-whitespace) JSON object per line, written with a single O_APPEND
``os.write``.  Torn trailing lines — a writer killed mid-append — are
skipped on read, never fatal.
"""

import json
import multiprocessing as mp
import os

from repro.util.jsonl import append_jsonl, dumps_line, read_jsonl


class TestDumpsLine:
    def test_golden_bytes(self):
        # Pinned: sorted keys, compact separators, trailing newline.
        line = dumps_line({"b": 1, "a": [2, 3], "c": {"y": 0, "x": 1}})
        assert line == '{"a":[2,3],"b":1,"c":{"x":1,"y":0}}\n'

    def test_non_json_values_stringified(self):
        line = dumps_line({"p": os})  # a module: not JSON-able
        assert line.startswith('{"p":"')


class TestAppendRead:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "x.jsonl")
        append_jsonl(path, {"n": 1})
        append_jsonl(path, {"n": 2})
        records, skipped = read_jsonl(path)
        assert [r["n"] for r in records] == [1, 2]
        assert skipped == 0

    def test_creates_parent_dirs(self, tmp_path):
        path = str(tmp_path / "a" / "b" / "x.jsonl")
        append_jsonl(path, {"n": 1})
        assert read_jsonl(path)[0] == [{"n": 1}]

    def test_missing_file_is_empty(self, tmp_path):
        records, skipped = read_jsonl(str(tmp_path / "nope.jsonl"))
        assert records == [] and skipped == 0

    def test_torn_and_foreign_lines_skipped(self, tmp_path):
        path = str(tmp_path / "x.jsonl")
        append_jsonl(path, {"n": 1, "schema": "s/v1"})
        with open(path, "a") as fh:
            fh.write("[1, 2, 3]\n")        # non-dict
            fh.write("{\"n\": 2, \"schema\"")  # torn mid-record
        records, skipped = read_jsonl(path)
        assert [r["n"] for r in records] == [1]
        assert skipped == 2

    def test_schema_filter(self, tmp_path):
        path = str(tmp_path / "x.jsonl")
        append_jsonl(path, {"n": 1, "schema": "a/v1"})
        append_jsonl(path, {"n": 2, "schema": "b/v1"})
        records, skipped = read_jsonl(path, schema="a/v1")
        assert [r["n"] for r in records] == [1]
        assert skipped == 1

    def test_blank_lines_ignored_silently(self, tmp_path):
        path = str(tmp_path / "x.jsonl")
        with open(path, "w") as fh:
            fh.write("\n\n")
        append_jsonl(path, {"n": 1})
        records, skipped = read_jsonl(path)
        assert [r["n"] for r in records] == [1]
        assert skipped == 0


def _hammer(path: str, tag: int) -> None:
    for i in range(50):
        append_jsonl(path, {"tag": tag, "i": i,
                            "pad": "x" * 256})


class TestAtomicity:
    def test_parallel_appends_never_tear(self, tmp_path):
        path = str(tmp_path / "x.jsonl")
        procs = [mp.Process(target=_hammer, args=(path, t))
                 for t in range(4)]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
        records, skipped = read_jsonl(path)
        assert skipped == 0
        assert len(records) == 200
        # every (tag, i) pair exactly once: no interleaved writes
        seen = {(r["tag"], r["i"]) for r in records}
        assert len(seen) == 200
        # and every line is parseable canonical JSON
        with open(path) as fh:
            for line in fh:
                json.loads(line)

"""Property-based batch equivalence: for random per-lane inputs and
random batch sizes 1-16, the batched driver's per-lane results and
memory are bit-identical to sequential event-kernel runs.

Parametrized over the four bench workloads (gemm / fft / saxpy /
stencil — the ones the CI throughput gates run on).  Inputs vary
per lane with a type-preserving perturbation of float words, so the
payload genuinely diverges across lanes while the control (loop
bounds, addresses) stays uniform and the vectorized path is the one
under test.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.frontend import translate_module
from repro.sim import SimParams, simulate, simulate_batch
from repro.workloads import WORKLOADS

BENCH_WORKLOADS = ["gemm", "fft", "saxpy", "stencil"]

_CIRCUITS = {}


def _circuit(name):
    if name not in _CIRCUITS:
        _CIRCUITS[name] = translate_module(
            WORKLOADS[name].module(), name=f"{name}_prop")
    return _CIRCUITS[name]


_PROP = settings(
    max_examples=5, deadline=None,
    suppress_health_check=[HealthCheck.too_slow,
                           HealthCheck.data_too_large,
                           HealthCheck.filter_too_much])


@pytest.mark.parametrize("name", BENCH_WORKLOADS)
@_PROP
@given(batch=st.integers(1, 16), seed=st.integers(0, 2**32 - 1))
def test_batched_matches_sequential(name, batch, seed):
    w = WORKLOADS[name]
    circuit = _circuit(name)
    args = list(w.args_for())
    rng = random.Random(seed)
    lanes = []
    for _ in range(batch):
        mem = w.fresh_memory()
        for i, v in enumerate(mem.words):
            if type(v) is float and rng.random() < 0.4:
                mem.words[i] = float(rng.randrange(-50, 50))
        lanes.append(mem)
    refs = []
    for mem in lanes:
        ref_mem = w.fresh_memory()
        ref_mem.words[:] = mem.words
        result = simulate(circuit, ref_mem, args,
                          SimParams(kernel="event", validate=False))
        refs.append((result.cycles, list(result.results),
                     list(ref_mem.words)))
    result = simulate_batch(circuit, lanes, [args] * batch,
                            SimParams(kernel="compiled",
                                      validate=False))
    assert result.ok, result.errors
    for i in range(batch):
        assert result.results[i].cycles == refs[i][0], \
            f"lane {i}/{batch} cycles"
        assert list(result.results[i].results) == refs[i][1], \
            f"lane {i}/{batch} results"
        assert lanes[i].words == refs[i][2], f"lane {i}/{batch} memory"

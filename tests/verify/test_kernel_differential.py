"""Kernel differential conformance: compiled vs event, bit for bit.

The compiled kernel claims *bit identity* with the event kernel —
same cycle count, same results, same memory image — fault-free and
under any fault plan.  That claim is checked here through the
ConformanceFuzzer's "kernel" mode, which is stricter than the LI
invariant (cycles must match too, since both kernels execute the
same schedule).

The default run covers a fast representative subset (dataflow loop /
recursion / tensor / parallel_for) under 3 seeded plans each; set
RUN_FULL_MATRIX=1 to sweep every workload.
"""

import os

import pytest

from repro.sim.faults import FaultPlan
from repro.util.rng import derive_seed
from repro.verify import DEFAULT_FUZZ_PASSES, ConformanceFuzzer
from repro.workloads import workload_names

N_PLANS = 3
FAST_SUBSET = ["saxpy", "fib", "relu_t", "stencil"]
FULL_MATRIX = workload_names()
full_matrix = pytest.mark.skipif(
    not os.environ.get("RUN_FULL_MATRIX"),
    reason="set RUN_FULL_MATRIX=1 to run the full workload matrix")

#: Seeds derived exactly as ``repro fuzz --seed 20260807`` derives
#: them, so a failure here replays from the CLI.
PLANS = [FaultPlan.generate(derive_seed(20260807, "plan", i))
         for i in range(N_PLANS)]


@pytest.fixture(scope="module")
def fuzzer():
    """Shared across cases: circuits and fault-free event baselines
    are built once per (workload, spec)."""
    return ConformanceFuzzer(pass_spec=DEFAULT_FUZZ_PASSES,
                             compare_kernel="compiled")


@pytest.mark.parametrize("workload", FAST_SUBSET)
def test_kernel_identity_fault_free(fuzzer, workload):
    case = fuzzer.run_case(workload, None, mode="kernel")
    assert case.ok, f"{case.case_id}: {case.message}"
    assert case.cycles_ref == case.cycles_run > 0


@pytest.mark.parametrize("workload", FAST_SUBSET)
def test_kernel_identity_under_faults(fuzzer, workload):
    for plan in PLANS:
        case = fuzzer.run_case(workload, plan, mode="kernel")
        assert case.ok, f"{case.case_id}: {case.message}"
        assert case.cycles_ref == case.cycles_run


def test_fuzz_loop_emits_kernel_cases(fuzzer):
    report = fuzzer.fuzz(workloads=["fib"], n_plans=2, seed=99)
    modes = [c.mode for c in report.cases]
    # 1 fault-free kernel case + per-plan fault and kernel cases.
    assert modes.count("kernel") == 3
    assert modes.count("fault") == 2
    assert report.ok, [c.message for c in report.failures()]
    nofault = [c for c in report.cases
               if c.mode == "kernel" and c.plan is None]
    assert len(nofault) == 1
    assert nofault[0].case_id.endswith("nofault")
    doc = report.to_json()
    assert doc["total"] == 5 and doc["failed"] == 0


@pytest.mark.slow
@full_matrix
@pytest.mark.parametrize("workload", FULL_MATRIX)
def test_kernel_identity_full_matrix(fuzzer, workload):
    case = fuzzer.run_case(workload, None, mode="kernel")
    assert case.ok, f"{case.case_id}: {case.message}"
    for plan in PLANS:
        case = fuzzer.run_case(workload, plan, mode="kernel")
        assert case.ok, f"{case.case_id}: {case.message}"

"""The failure path of the fuzz harness: forced faults must produce a
stall-attributed DeadlockError, a replayable repro bundle on disk, and
the documented exit code — and ``repro fuzz --seed S`` must be fully
reproducible."""

import json
import os

import pytest

from repro.cli import main
from repro.errors import exit_code_for
from repro.sim.faults import FaultPlan
from repro.verify import (ConformanceFuzzer, load_bundle,
                          replay_bundle)

#: A plan whose only fault is a permanent credit withhold from cycle
#: 60 on: the canonical forced-deadlock fault.
FREEZE = FaultPlan(seed=99, freeze_at=60)

#: Freeze mixed with benign perturbations; minimization must strip
#: the benign ones and keep freeze.
NOISY_FREEZE = FaultPlan(seed=99, jitter_rate=0.5, jitter_max=2,
                         memory_latency_max=4, arbiter_shuffle=True,
                         freeze_at=60)


@pytest.fixture(scope="module")
def failing_case(tmp_path_factory):
    art = tmp_path_factory.mktemp("bundles")
    fz = ConformanceFuzzer(pass_spec="", artifacts_dir=str(art),
                           deadlock_window=500, max_cycles=100_000)
    return fz.run_case("saxpy", NOISY_FREEZE)


class TestForcedFault:
    def test_deadlock_error_and_exit_code(self, failing_case):
        assert not failing_case.ok
        assert failing_case.error == "DeadlockError"
        assert failing_case.exit_code == 4
        assert exit_code_for(failing_case.last_exc) == 4

    def test_minimized_to_freeze_alone(self, failing_case):
        assert failing_case.minimized == ["freeze"]

    def test_bundle_on_disk(self, failing_case):
        bundle = failing_case.bundle
        assert os.path.isdir(bundle)
        for name in ("manifest.json", "fault_plan.json",
                     "circuit.json", "error.json", "stats.json",
                     "original_plan.json", "REPRO.txt"):
            assert os.path.exists(os.path.join(bundle, name)), name

    def test_bundle_error_document(self, failing_case):
        with open(os.path.join(failing_case.bundle,
                               "error.json")) as fh:
            doc = json.load(fh)
        assert doc["error"] == "DeadlockError"
        assert doc["exit_code"] == 4
        # Stall-attributed diagnostics with blocked-node causes.
        diags = doc["diagnostics"]
        blocked = [n for entry in diags
                   for inst in entry["instances"]
                   for n in inst["blocked_nodes"]]
        assert blocked
        assert {n["cause"] for n in blocked} & \
            {"downstream_full", "upstream_empty"}

    def test_bundle_replays_to_same_failure(self, failing_case):
        manifest = load_bundle(failing_case.bundle)
        assert manifest["workload"] == "saxpy"
        assert manifest["plan"].freeze_at == 60
        assert manifest["plan"].active_categories() == ["freeze"]
        replayed = replay_bundle(failing_case.bundle,
                                 max_cycles=100_000)
        assert replayed.error == "DeadlockError"
        assert replayed.exit_code == 4

    def test_cli_replay_exit_code(self, failing_case, capsys):
        rc = main(["fuzz", "--replay", failing_case.bundle])
        assert rc == 4
        assert "DeadlockError" in capsys.readouterr().out


class TestReproducibility:
    def test_same_seed_identical_reports(self):
        def run():
            fz = ConformanceFuzzer(pass_spec="")
            return fz.fuzz(workloads=["fib", "spmv"], n_plans=3,
                           seed=2025).to_json()

        assert run() == run()

    def test_different_seeds_differ(self):
        def run(seed):
            fz = ConformanceFuzzer(pass_spec="")
            return fz.fuzz(workloads=["fib"], n_plans=2,
                           seed=seed).to_json()

        assert run(1)["plan_seeds"] != run(2)["plan_seeds"]

    def test_cli_fuzz_report_reproducible(self, tmp_path, capsys):
        reports = []
        for i in range(2):
            out = str(tmp_path / f"r{i}.json")
            rc = main(["fuzz", "--workloads", "fib", "--plans", "2",
                       "--seed", "77", "--passes", "", "--quiet",
                       "--json", out])
            assert rc == 0
            with open(out) as fh:
                reports.append(json.load(fh))
        capsys.readouterr()
        assert reports[0] == reports[1]
        assert reports[0]["ok"] is True
        assert reports[0]["total"] == 2


class TestFuzzVerdicts:
    def test_failure_survives_without_minimization(self, tmp_path):
        fz = ConformanceFuzzer(pass_spec="",
                               artifacts_dir=str(tmp_path),
                               deadlock_window=500,
                               max_cycles=100_000, minimize=False)
        case = fz.run_case("fib", FREEZE)
        assert not case.ok
        # Un-minimized: the plan is bundled exactly as given.
        manifest = load_bundle(case.bundle)
        assert manifest["plan"] == FREEZE

    def test_verdict_json_shape(self, failing_case):
        doc = failing_case.to_json()
        assert doc["ok"] is False
        assert doc["error"] == "DeadlockError"
        assert doc["exit_code"] == 4
        assert doc["minimized"] == ["freeze"]
        assert doc["bundle"]

"""Batch conformance mode of the fuzzer.

The documented policy (DESIGN.md section 9): fault-free batched runs
claim bit identity per lane (cycles included); under an active fault
plan the driver must fall back to sequential per-lane runs, each of
which upholds the LI invariant.  The fuzzer's "batch" mode asserts
both; these tests pin the mode itself plus its failure reporting.
"""

import pytest

from repro.sim.faults import FaultPlan
from repro.verify import ConformanceFuzzer


@pytest.fixture(scope="module")
def fuzzer():
    return ConformanceFuzzer(pass_spec="", batch=True)


def test_batch_case_fault_free(fuzzer):
    case = fuzzer.run_case("saxpy", None, mode="batch")
    assert case.ok, case.message
    assert case.mode == "batch"
    # Fault-free batching is bit-identical, cycles included.
    assert case.cycles_run == case.cycles_ref


def test_batch_case_under_plan(fuzzer):
    plan = FaultPlan.generate(3)
    case = fuzzer.run_case("fib", plan, mode="batch")
    assert case.ok, case.message


def test_fuzz_loop_emits_batch_cases(fuzzer):
    report = fuzzer.fuzz(workloads=["saxpy"], n_plans=2, seed=0)
    modes = [c.mode for c in report.cases]
    # One fault-free batch case plus one per plan, alongside the
    # ordinary fault cases.
    assert modes.count("batch") == 3
    assert report.ok, [c.message for c in report.failures()]


def test_policy_violation_is_reported(monkeypatch, fuzzer):
    # Force the driver to vectorize under a plan and check the fuzzer
    # flags the policy breach (this is what "enforced+tested" means).
    import repro.sim.engine as engine
    import repro.verify.conformance as conformance

    real = engine.simulate_batch

    def vectorize_anyway(circuit, memories, args_lanes=None,
                         params=None):
        from dataclasses import replace
        stripped = replace(params, faults=None)
        return real(circuit, memories, args_lanes, stripped)

    monkeypatch.setattr(conformance, "simulate_batch", vectorize_anyway,
                        raising=False)
    monkeypatch.setattr("repro.sim.simulate_batch", vectorize_anyway)
    fz = ConformanceFuzzer(pass_spec="", batch=True, minimize=False)
    plan = FaultPlan.generate(1)
    case = fz.run_case("saxpy", plan, mode="batch")
    assert not case.ok
    assert case.error == "LIViolationError"
    assert case.last_detail["policy"] == {"want": "sequential",
                                          "got": "vectorized"}

"""The LI invariant, fuzzed: every workload, under seeded fault plans,
must produce bit-identical results and memory — with and without the
full uopt pass pipeline.

This is the paper's central correctness claim turned into a test: the
bundled-data protocol makes circuit behavior a function of the
dataflow graph alone, never of component timing.  Fault plans perturb
channel latencies, memory/FU latencies, arbiter grant order, credit
windows and task-queue timing; only the cycle count may move.
"""

import pytest

from repro.sim.faults import FaultPlan
from repro.util.rng import derive_seed
from repro.verify import DEFAULT_FUZZ_PASSES, ConformanceFuzzer
from repro.workloads import workload_names

N_PLANS = 5
ALL_WORKLOADS = workload_names()

#: One plan set shared by every workload — seeds derived exactly the
#: way ``repro fuzz --seed 1811`` derives them.
PLANS = [FaultPlan.generate(derive_seed(1811, "plan", i))
         for i in range(N_PLANS)]


@pytest.fixture(scope="module")
def baseline_fuzzer():
    """Shared fuzzer => circuits/baselines built once per config."""
    return ConformanceFuzzer(pass_spec="")


@pytest.fixture(scope="module")
def pipeline_fuzzer():
    return ConformanceFuzzer(pass_spec=DEFAULT_FUZZ_PASSES)


def test_covers_every_workload():
    # The parametrized tests below must span the full table.
    assert len(ALL_WORKLOADS) >= 19


@pytest.mark.parametrize("workload", ALL_WORKLOADS)
def test_li_conformance_baseline(baseline_fuzzer, workload):
    for plan in PLANS:
        case = baseline_fuzzer.run_case(workload, plan)
        assert case.ok, f"{case.case_id}: {case.message}"
        assert case.cycles_run > 0


@pytest.mark.parametrize("workload", ALL_WORKLOADS)
def test_li_conformance_full_pipeline(pipeline_fuzzer, workload):
    for plan in PLANS:
        case = pipeline_fuzzer.run_case(workload, plan)
        assert case.ok, f"{case.case_id}: {case.message}"


def test_faults_actually_perturb_schedules(baseline_fuzzer):
    """A fault plan that changes nothing tests nothing: across the
    suite's plans, gemm's cycle count must move at least once."""
    cycles = set()
    for plan in PLANS:
        case = baseline_fuzzer.run_case("gemm", plan)
        assert case.ok
        cycles.add(case.cycles_run)
        cycles.add(case.cycles_ref)
    assert len(cycles) > 1


def test_differential_mode_compares_base_vs_instrumented():
    fz = ConformanceFuzzer(pass_spec=DEFAULT_FUZZ_PASSES,
                           differential=True)
    case = fz.run_case("spmv", PLANS[0], mode="differential")
    assert case.ok, case.message
    # Reference side really is the un-instrumented circuit.
    assert ("spmv", "base", "") in fz._circuits


def test_dense_kernel_conformance_spot_check():
    """The reference kernel honors the same fault plans (spot check —
    the full matrix runs on the event kernel above)."""
    fz = ConformanceFuzzer(pass_spec="", kernel="dense")
    for workload in ("gemm", "fib"):
        case = fz.run_case(workload, PLANS[0])
        assert case.ok, case.message

"""Tests for the command-line interface."""

import json
import os

import pytest

from repro.cli import main

SRC = """
array x: f32[16];
array y: f32[16];
func main(n: i32, a: f32) {
  for (i = 0; i < n; i = i + 1) { y[i] = a * x[i]; }
}
"""


@pytest.fixture
def src_file(tmp_path):
    path = tmp_path / "saxpy.mc"
    path.write_text(SRC)
    return str(path)


class TestTranslate:
    def test_basic(self, src_file, capsys):
        assert main(["translate", src_file]) == 0
        out = capsys.readouterr().out
        assert "AcceleratorCircuit" in out
        assert "kind=loop" in out

    def test_with_passes(self, src_file, capsys):
        assert main(["translate", src_file,
                     "--passes", "memory_localization,op_fusion"]) == 0
        out = capsys.readouterr().out
        assert "pass memory_localization" in out

    def test_unknown_pass(self, src_file, capsys):
        assert main(["translate", src_file, "--passes", "warp"]) == 2
        assert "unknown pass" in capsys.readouterr().err

    def test_dumps(self, src_file, tmp_path, capsys):
        jsonp = str(tmp_path / "c.json")
        dotp = str(tmp_path / "c.dot")
        chiselp = str(tmp_path / "c.scala")
        vp = str(tmp_path / "c.v")
        assert main(["translate", src_file, "--json", jsonp,
                     "--dot", dotp, "--chisel", chiselp,
                     "--verilog", vp]) == 0
        data = json.load(open(jsonp))
        assert data["format"] == 1
        assert open(dotp).read().startswith("digraph")
        assert "TaskModule" in open(chiselp).read()
        assert "module" in open(vp).read()


class TestSimulate:
    def test_verifies(self, src_file, capsys):
        assert main(["simulate", src_file, "--args", "16", "2.0",
                     "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "behavior vs interpreter: OK" in out
        assert "cycles:" in out

    def test_with_passes(self, src_file, capsys):
        assert main(["simulate", src_file, "--args", "16", "2.0",
                     "--seed", "3", "--passes",
                     "memory_localization,scratchpad_banking"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_wrong_arity(self, src_file, capsys):
        assert main(["simulate", src_file, "--args", "16"]) == 2
        assert "argument" in capsys.readouterr().err

    def test_obs_level_off(self, src_file, tmp_path, capsys):
        statsp = str(tmp_path / "stats.json")
        assert main(["simulate", src_file, "--args", "16", "2.0",
                     "--obs-level", "off",
                     "--stats-json", statsp]) == 0
        stats = json.load(open(statsp))
        assert stats["stall_cycles"] == {}
        assert stats["source_stalls"] == {}

    def test_trace_out_implies_trace_level(self, src_file, tmp_path,
                                           capsys):
        tracep = str(tmp_path / "trace.json")
        assert main(["simulate", src_file, "--args", "16", "2.0",
                     "--trace-out", tracep,
                     "--trace-capacity", "128"]) == 0
        doc = json.load(open(tracep))
        assert doc["traceEvents"]
        assert len(doc["traceEvents"]) <= 128

    def test_trace_out_conflicts_with_obs_off(self, src_file, tmp_path,
                                              capsys):
        tracep = str(tmp_path / "trace.json")
        assert main(["simulate", src_file, "--args", "16", "2.0",
                     "--obs-level", "off",
                     "--trace-out", tracep]) == 2
        assert "obs-level" in capsys.readouterr().err

    def test_compiled_kernel(self, src_file, capsys):
        assert main(["simulate", src_file, "--args", "16", "2.0",
                     "--seed", "5", "--kernel", "compiled"]) == 0
        assert "behavior vs interpreter: OK" in capsys.readouterr().out

    def test_compiled_kernel_supports_trace_out(self, src_file,
                                                tmp_path, capsys):
        tracep = str(tmp_path / "trace.json")
        assert main(["simulate", src_file, "--args", "16", "2.0",
                     "--kernel", "compiled",
                     "--trace-out", tracep]) == 0
        assert json.load(open(tracep))["traceEvents"]

    def test_compiled_fallback_notice(self, src_file, capsys,
                                      monkeypatch):
        import warnings
        from repro.sim import compile as simcompile
        simcompile.clear_cache()
        monkeypatch.delitem(simcompile._STEP_COMPILERS, "compute")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            assert main(["simulate", src_file, "--args", "16", "2.0",
                         "--kernel", "compiled"]) == 0
        captured = capsys.readouterr()
        assert "behavior vs interpreter: OK" in captured.out
        assert "compiled kernel unavailable" in captured.err
        simcompile.clear_cache()

    def test_compiled_no_fallback_exits_10(self, src_file, capsys,
                                           monkeypatch):
        from repro.sim import compile as simcompile
        simcompile.clear_cache()
        monkeypatch.delitem(simcompile._STEP_COMPILERS, "compute")
        assert main(["simulate", src_file, "--args", "16", "2.0",
                     "--kernel", "compiled",
                     "--no-kernel-fallback"]) == 10
        assert "cannot specialize" in capsys.readouterr().err
        simcompile.clear_cache()

    def test_simulate_source_lines_in_profile(self, src_file, capsys):
        assert main(["simulate", src_file, "--args", "16", "2.0",
                     "--profile"]) == 0
        out = capsys.readouterr().out
        assert "top stalled source lines:" in out
        assert "saxpy.mc:" in out


class TestOthers:
    def test_synth(self, src_file, capsys):
        assert main(["synth", src_file]) == 0
        out = capsys.readouterr().out
        assert "MHz" in out and "ALMs" in out

    def test_workloads_list(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "gemm" in out and "relu_t" in out

    def test_bench(self, capsys):
        assert main(["bench", "spmv", "--passes", "op_fusion"]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out and "verified" in out

    def test_bench_tensor_variant(self, capsys):
        assert main(["bench", "relu_t", "--variant", "tensor"]) == 0

    def test_bench_obs_level_flag(self, capsys):
        assert main(["bench", "spmv", "--obs-level", "off"]) == 0
        assert "verified" in capsys.readouterr().out


class TestFaultInjection:
    def test_simulate_with_generated_faults(self, src_file, capsys):
        assert main(["simulate", src_file, "--args", "16", "2.0",
                     "--faults", "--fault-seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "faults: FaultPlan(seed=5" in out
        assert "behavior vs interpreter: OK" in out

    def test_simulate_with_fault_plan_file(self, src_file, tmp_path,
                                           capsys):
        from repro.sim import FaultPlan
        planp = str(tmp_path / "plan.json")
        with open(planp, "w") as fh:
            json.dump(FaultPlan.generate(3).to_json(), fh)
        assert main(["simulate", src_file, "--args", "16", "2.0",
                     "--fault-plan", planp]) == 0
        assert "behavior vs interpreter: OK" in \
            capsys.readouterr().out

    def test_forced_freeze_exits_with_deadlock_code(self, src_file,
                                                    tmp_path, capsys):
        from repro.sim import FaultPlan
        planp = str(tmp_path / "freeze.json")
        with open(planp, "w") as fh:
            json.dump(FaultPlan(seed=1, freeze_at=40).to_json(), fh)
        rc = main(["simulate", src_file, "--args", "16", "2.0",
                   "--fault-plan", planp])
        assert rc == 4
        assert "deadlock" in capsys.readouterr().err.lower()

    def test_json_errors_document(self, src_file, tmp_path, capsys):
        from repro.sim import FaultPlan
        planp = str(tmp_path / "freeze.json")
        with open(planp, "w") as fh:
            json.dump(FaultPlan(seed=1, freeze_at=40).to_json(), fh)
        rc = main(["--json-errors", "simulate", src_file,
                   "--args", "16", "2.0", "--fault-plan", planp])
        assert rc == 4
        out = capsys.readouterr().out
        doc = json.loads(out[out.index("{"):])
        assert doc["error"] == "DeadlockError"
        assert doc["exit_code"] == 4
        assert doc["diagnostics"]


class TestFuzzCommand:
    def test_fuzz_clean_run(self, capsys):
        assert main(["fuzz", "--workloads", "fib", "--plans", "2",
                     "--seed", "4", "--passes", ""]) == 0
        out = capsys.readouterr().out
        assert "all conformant" in out
        assert "fib-base-fault-" in out

    def test_fuzz_report_json(self, tmp_path, capsys):
        out = str(tmp_path / "report.json")
        assert main(["fuzz", "--workloads", "fib", "--plans", "1",
                     "--seed", "4", "--passes", "", "--quiet",
                     "--json", out]) == 0
        capsys.readouterr()
        doc = json.load(open(out))
        assert doc["schema"] == "repro.fuzzreport/v1"
        assert doc["ok"] is True and doc["total"] == 1

    def test_fuzz_unknown_pass_fails_fast(self, capsys):
        assert main(["fuzz", "--workloads", "fib",
                     "--passes", "warp"]) == 2
        assert "unknown pass" in capsys.readouterr().err

    def test_fuzz_unknown_workload(self, capsys):
        assert main(["fuzz", "--workloads", "nope", "--plans", "1",
                     "--passes", ""]) == 5
        assert "unknown workload" in capsys.readouterr().err


class TestExploreCommand:
    ARGS = ["explore", "saxpy", "--grid", "banks=1,2",
            "--pipeline", "localize,banking={banks}",
            "--workers", "1", "--quiet", "--no-journal"]

    def test_cold_then_warm(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        jsonp = str(tmp_path / "explore.json")
        mdp = str(tmp_path / "explore.md")
        assert main(self.ARGS + ["--cache-dir", cache,
                                 "--json", jsonp, "--md", mdp]) == 0
        capsys.readouterr()
        cold = json.load(open(jsonp))
        assert cold["schema"] == "repro.explore/v1"
        assert cold["counts"] == {"points": 2, "ok": 2, "failed": 0,
                                  "fresh": 2, "cache_hits": 0,
                                  "resumed": 0, "quarantined": 0}
        md = open(mdp).read()
        assert "## Pareto frontier" in md

        # Warm run: every point served from the request index, with
        # bit-identical stats documents.
        assert main(self.ARGS + ["--cache-dir", cache,
                                 "--json", jsonp]) == 0
        capsys.readouterr()
        warm = json.load(open(jsonp))
        assert warm["counts"]["cache_hits"] == 2
        assert warm["counts"]["fresh"] == 0
        for a, b in zip(cold["points"], warm["points"]):
            assert b["source"] == "cache-index"
            assert b["stats"] == a["stats"]
            assert b["cycles"] == a["cycles"]

    def test_summary_output(self, tmp_path, capsys):
        assert main(self.ARGS + ["--cache-dir",
                                 str(tmp_path / "c")]) == 0
        out = capsys.readouterr().out
        assert "saxpy: 2 points (2 ok" in out
        assert "Pareto frontier" in out

    def test_bad_axis(self, capsys):
        assert main(["explore", "saxpy", "--grid", "banks"]) == 2
        assert "bad axis" in capsys.readouterr().err

    def test_unknown_workload(self, capsys):
        assert main(["explore", "nope", "--grid", "banks=1"]) == 5

    def test_all_points_failing_exit_code(self, tmp_path, capsys):
        rc = main(["explore", "saxpy", "--grid", "banks=1",
                   "--pipeline", "warp_drive", "--workers", "1",
                   "--cache-dir", str(tmp_path / "c"), "--quiet",
                   "--no-journal"])
        assert rc == 2  # usage-error family from the failing point
        assert "unknown pass" in capsys.readouterr().err

    def test_resume_without_workload(self, tmp_path, capsys):
        sweeps = str(tmp_path / "sweeps")
        assert main(["explore", "saxpy", "--grid", "banks=1,2",
                     "--pipeline", "localize,banking={banks}",
                     "--workers", "1", "--quiet", "--no-cache",
                     "--sweeps-dir", sweeps]) == 0
        capsys.readouterr()
        # No workload, no grid: the journal's plan carries everything.
        assert main(["explore", "--resume", "last", "--sweeps-dir",
                     sweeps, "--no-cache", "--quiet",
                     "--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert "2 resumed" in out

    def test_explore_needs_workload_or_resume(self, capsys):
        assert main(["explore", "--grid", "banks=1"]) == 2
        assert "WORKLOAD" in capsys.readouterr().err


class TestSweepsCommand:
    def _sweep(self, tmp_path):
        sweeps = str(tmp_path / "sweeps")
        assert main(["explore", "saxpy", "--grid", "banks=1",
                     "--pipeline", "localize,banking={banks}",
                     "--workers", "1", "--quiet", "--no-cache",
                     "--sweeps-dir", sweeps]) == 0
        return sweeps

    def test_list_and_show(self, tmp_path, capsys):
        sweeps = self._sweep(tmp_path)
        capsys.readouterr()
        assert main(["sweeps", "list", "--dir", sweeps]) == 0
        out = capsys.readouterr().out
        assert "complete" in out and "1/1 done" in out
        assert main(["sweeps", "show", "last", "--dir", sweeps]) == 0
        out = capsys.readouterr().out
        assert "workload: saxpy" in out
        assert "[0] banks=1: done" in out

    def test_list_json(self, tmp_path, capsys):
        sweeps = self._sweep(tmp_path)
        capsys.readouterr()
        assert main(["sweeps", "list", "--dir", sweeps,
                     "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["status"] == "complete"
        assert rows[0]["planned"] == 1

    def test_empty_dir(self, tmp_path, capsys):
        assert main(["sweeps", "list", "--dir",
                     str(tmp_path / "nope")]) == 0
        assert "no sweep journals" in capsys.readouterr().out

    def test_unknown_ref(self, tmp_path, capsys):
        sweeps = self._sweep(tmp_path)
        capsys.readouterr()
        assert main(["sweeps", "show", "zzz", "--dir", sweeps]) == 2

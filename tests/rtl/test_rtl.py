"""Tests for the RTL backends: synthesis model, Chisel/Verilog
emitters, FIRRTL lowering and diffing."""

import pytest

from repro.frontend import compile_minic, translate_module
from repro.opt import ExecutionTiling, MemoryLocalization, OpFusion, PassManager
from repro.rtl import (
    diff_circuits,
    emit_chisel,
    emit_verilog,
    lower_to_firrtl,
    synthesize,
)
from repro.rtl.library import COMPONENT_COSTS, add_costs, scale_cost

SRC = """
array x: f32[32];
array y: f32[32];
func main(n: i32, a: f32) {
  for (i = 0; i < n; i = i + 1) { y[i] = a * x[i] + y[i]; }
}
"""

CILK_SRC = """
array a: i32[16];
func main(n: i32) {
  parallel_for (i = 0; i < n; i = i + 1) { a[i] = i; }
}
"""

INT_SRC = """
array a: i32[32];
func main(n: i32) {
  for (i = 0; i < n; i = i + 1) { a[i] = (i << 2) + 1; }
}
"""


def circ(src=SRC):
    return translate_module(compile_minic(src))


class TestCostLibrary:
    def test_costs_nonnegative(self):
        for name, cost in COMPONENT_COSTS.items():
            assert cost.alms >= 0 and cost.area_um2 >= 0, name

    def test_scale_cost(self):
        c = COMPONENT_COSTS["fp_add"]
        doubled = scale_cost(c, 2.0)
        assert doubled.alms == 2 * c.alms
        assert doubled.area_um2 == pytest.approx(2 * c.area_um2)

    def test_add_costs(self):
        a = COMPONENT_COSTS["int_alu"]
        b = COMPONENT_COSTS["mux"]
        s = add_costs(a, b)
        assert s.alms == a.alms + b.alms

    def test_fp_heavier_than_int(self):
        assert COMPONENT_COSTS["fp_add"].alms > \
            COMPONENT_COSTS["int_alu"].alms


class TestSynthesis:
    def test_report_fields(self):
        r = synthesize(circ(), "saxpy")
        assert r.name == "saxpy"
        assert 100 < r.fpga_mhz <= 500
        assert r.alms > 0 and r.regs > 0
        assert r.fpga_mw > 400
        assert 1.0 < r.asic_ghz <= 2.5
        assert r.asic_area_kum2 > 0

    def test_cilk_clocks_lower(self):
        fp = synthesize(circ(SRC)).fpga_mhz
        cilk = synthesize(circ(CILK_SRC)).fpga_mhz
        assert cilk < fp

    def test_int_design_clocks_higher_than_fp(self):
        assert synthesize(circ(INT_SRC)).fpga_mhz >= \
            synthesize(circ(SRC)).fpga_mhz

    def test_tiling_multiplies_area(self):
        c1, c2 = circ(CILK_SRC), circ(CILK_SRC)
        PassManager([ExecutionTiling(4)]).run(c2)
        assert synthesize(c2).alms > 2 * synthesize(c1).alms

    def test_fusion_reduces_registers(self):
        c1, c2 = circ(INT_SRC), circ(INT_SRC)
        PassManager([OpFusion()]).run(c2)
        assert synthesize(c2).regs < synthesize(c1).regs

    def test_localization_adds_ram_control(self):
        c1, c2 = circ(SRC), circ(SRC)
        PassManager([MemoryLocalization()]).run(c2)
        assert synthesize(c2).alms > synthesize(c1).alms

    def test_asic_faster_than_fpga(self):
        r = synthesize(circ())
        assert r.asic_ghz * 1000 > 2 * r.fpga_mhz

    def test_row_shape(self):
        row = synthesize(circ(), "x").row()
        assert set(row) == {"bench", "MHz", "mW", "ALMs", "Reg",
                            "DSP", "kum2", "asic_mW", "GHz"}


class TestChiselEmitter:
    def test_emits_all_tasks(self):
        c = circ()
        text = emit_chisel(c)
        for task in c.tasks.values():
            camel = "".join(p.capitalize()
                            for p in task.name.replace(".", "_")
                            .split("_"))
            assert camel in text

    def test_paper_listing_style(self):
        text = emit_chisel(circ())
        assert "extends TaskModule" in text
        assert "<||>" in text
        assert "<==>" in text
        assert "new LoopControl" in text
        assert "new Junction" in text

    def test_tensor_node_emitted(self):
        text = emit_chisel(circ("""
array a: tensor<2x2xf32>[4];
array b: tensor<2x2xf32>[4];
func main(n: i32) {
  for (i = 0; i < n; i = i + 1) { b[i] = trelu(a[i]); }
}
"""))
        assert "TensorComputeNode" in text

    def test_deterministic(self):
        assert emit_chisel(circ()) == emit_chisel(circ())


class TestVerilogEmitter:
    def test_module_per_task(self):
        c = circ()
        text = emit_verilog(c)
        for task in c.tasks.values():
            assert f"module task_{task.name}" in text
        assert "module accelerator_top" in text
        assert text.count("endmodule") == len(c.tasks) + 1

    def test_tiles_instantiated(self):
        c = circ(CILK_SRC)
        PassManager([ExecutionTiling(3)]).run(c)
        text = emit_verilog(c)
        tiled = [t for t in c.tasks.values() if t.num_tiles == 3][0]
        assert f"u_{tiled.name}_t2" in text


class TestFirrtl:
    def test_expansion_ratio_in_band(self):
        c = circ()
        fc = lower_to_firrtl(c)
        ratio = fc.stats()["nodes"] / c.stats()["nodes"]
        assert 5.0 <= ratio <= 14.0

    def test_deterministic_names(self):
        a = lower_to_firrtl(circ())
        b = lower_to_firrtl(circ())
        assert a.nodes == b.nodes
        assert a.edges == b.edges

    def test_diff_zero_for_same(self):
        a, b = lower_to_firrtl(circ()), lower_to_firrtl(circ())
        assert diff_circuits(a, b) == (0, 0)

    def test_diff_detects_tiling(self):
        before = lower_to_firrtl(circ(CILK_SRC))
        c2 = circ(CILK_SRC)
        PassManager([ExecutionTiling(2)]).run(c2)
        after = lower_to_firrtl(c2)
        dn, de = diff_circuits(before, after)
        assert dn > 20 and de > 20

    def test_diff_detects_debuffering(self):
        before = lower_to_firrtl(circ(INT_SRC))
        c2 = circ(INT_SRC)
        PassManager([OpFusion()]).run(c2)
        after = lower_to_firrtl(c2)
        dn, de = diff_circuits(before, after)
        assert dn > 0 and de > 0

    def test_memory_structures_lowered(self):
        c = circ()
        PassManager([MemoryLocalization()]).run(c)
        fc = lower_to_firrtl(c)
        assert any(".mem" in n for n in fc.nodes)
        assert any("spad_x" in n for n in fc.nodes)

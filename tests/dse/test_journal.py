"""Sweep-journal unit tests: event folding, lease arbitration,
resolution — the single-process half of the durability story
(tests/dse/test_supervision.py has the end-to-end half)."""

import json

import pytest

from repro.dse.journal import (
    DEFAULT_LEASE_TTL,
    SWEEP_SCHEMA,
    SweepJournal,
    list_sweeps,
    new_sweep_id,
    point_key,
    resolve_sweep,
)
from repro.errors import ReproError


def _journal(tmp_path, sweep_id="20260101T000000-00001-aaaaaa"):
    return SweepJournal(str(tmp_path / "sweeps"), sweep_id)


def _plan(journal, n=2):
    rows = [{"key": f"k{i}", "index": i, "params": {"banks": 2 ** i},
             "pass_spec": f"banking={2 ** i}", "sim": {"kernel": "event"}}
            for i in range(n)]
    journal.write_plan(workload="saxpy", variant="base",
                       template="banking={banks}",
                       objectives=["time_us", "alms"],
                       sim={"kernel": "event"}, points=rows)
    return rows


class TestPointKey:
    def test_stable_across_processes(self):
        a = point_key("saxpy", "base", {"banks": 2}, "banking=2",
                      {"kernel": "event"})
        b = point_key("saxpy", "base", {"banks": 2}, "banking=2",
                      {"kernel": "event"})
        assert a == b and len(a) == 64

    def test_any_request_field_changes_key(self):
        base = point_key("saxpy", "base", {"banks": 2}, "banking=2",
                         {"kernel": "event"})
        assert point_key("saxpy", "base", {"banks": 4}, "banking=2",
                         {"kernel": "event"}) != base
        assert point_key("saxpy", "base", {"banks": 2}, "banking=4",
                         {"kernel": "event"}) != base
        assert point_key("saxpy", "base", {"banks": 2}, "banking=2",
                         {"kernel": "dense"}) != base
        assert point_key("saxpy", "wide", {"banks": 2}, "banking=2",
                         {"kernel": "event"}) != base


class TestStateFolding:
    def test_plan_and_points(self, tmp_path):
        journal = _journal(tmp_path)
        _plan(journal, n=3)
        state = journal.state()
        assert state.plan["workload"] == "saxpy"
        assert state.counts == {"planned": 3, "done": 0, "failed": 0,
                                "quarantined": 0, "todo": 3,
                                "interrupts": 0}
        assert not state.complete
        assert state.summary()["status"] == "partial"

    def test_done_settles_and_wins_over_later_events(self, tmp_path):
        journal = _journal(tmp_path)
        _plan(journal)
        journal.record_done("k0", "me", {"index": 0, "status": "ok"})
        journal.record_error("k0", "other", 1, {"error": "X"},
                             final=True)  # late loser: ignored
        state = journal.state()
        assert state.points["k0"].status == "done"
        assert state.points["k0"].doc == {"index": 0, "status": "ok"}

    def test_final_error_fails_point(self, tmp_path):
        journal = _journal(tmp_path)
        _plan(journal)
        journal.record_error("k0", "me", 1, {"error": "DeadlockError"},
                             final=True)
        point = journal.state().points["k0"]
        assert point.status == "failed"
        assert point.error["error"] == "DeadlockError"
        assert point.attempts == 1

    def test_nonfinal_errors_count_attempts_only(self, tmp_path):
        journal = _journal(tmp_path)
        _plan(journal)
        journal.record_error("k0", "me", 1, {"error": "WorkerDeath"},
                             final=False)
        journal.record_error("k0", "me", 2, {"error": "WorkerDeath"},
                             final=False)
        point = journal.state().points["k0"]
        assert point.status == "todo"
        assert point.attempts == 2

    def test_quarantine(self, tmp_path):
        journal = _journal(tmp_path)
        _plan(journal)
        journal.record_quarantine("k1", 2,
                                  {"error": "PoisonPointError"})
        state = journal.state()
        assert state.points["k1"].status == "quarantined"
        assert state.counts["quarantined"] == 1

    def test_interrupts_counted(self, tmp_path):
        journal = _journal(tmp_path)
        _plan(journal)
        journal.record_interrupt("SIGINT")
        state = journal.state()
        assert state.interrupted == 1
        assert state.summary()["status"] == "interrupted"

    def test_duplicate_plans_collapse_to_first(self, tmp_path):
        # Two processes planning the same sweep concurrently is benign.
        journal = _journal(tmp_path)
        _plan(journal)
        _plan(journal)
        state = journal.state()
        assert len(state.points) == 2
        assert state.counts["planned"] == 2

    def test_torn_line_skipped(self, tmp_path):
        journal = _journal(tmp_path)
        _plan(journal)
        with open(journal.path, "a") as fh:
            fh.write('{"schema": "' + SWEEP_SCHEMA + '", "ev": "do')
        state = journal.state()
        assert state.skipped_lines == 1
        assert len(state.points) == 2

    def test_events_for_unplanned_keys_ignored(self, tmp_path):
        journal = _journal(tmp_path)
        _plan(journal)
        journal.record_done("kZZZ", "me", {"status": "ok"})
        assert "kZZZ" not in journal.state().points


class TestLeases:
    def test_claim_and_win(self, tmp_path):
        journal = _journal(tmp_path)
        _plan(journal)
        journal.claim(["k0"], "alice", ttl=60.0)
        assert journal.won_claim("k0", "alice")
        assert not journal.won_claim("k0", "bob")

    def test_earliest_claim_in_file_order_wins(self, tmp_path):
        journal = _journal(tmp_path)
        _plan(journal)
        journal.claim(["k0"], "alice", ttl=60.0)
        journal.claim(["k0"], "bob", ttl=60.0)
        assert journal.won_claim("k0", "alice")
        assert not journal.won_claim("k0", "bob")

    def test_expired_lease_loses_to_live_one(self, tmp_path):
        journal = _journal(tmp_path)
        _plan(journal)
        journal.claim(["k0"], "alice", ttl=0.0)   # instantly expired
        journal.claim(["k0"], "bob", ttl=60.0)
        assert journal.won_claim("k0", "bob")
        assert not journal.won_claim("k0", "alice")

    def test_settle_clears_claims(self, tmp_path):
        journal = _journal(tmp_path)
        _plan(journal)
        journal.claim(["k0"], "alice", ttl=60.0)
        journal.record_done("k0", "alice", {"status": "ok"})
        point = journal.state().points["k0"]
        assert point.claims == []
        assert not journal.won_claim("k0", "alice")  # settled: no lease

    def test_runnable(self, tmp_path):
        journal = _journal(tmp_path)
        _plan(journal)
        state = journal.state()
        assert state.points["k0"].runnable()
        journal.claim(["k0"], "alice", ttl=60.0)
        assert not journal.state().points["k0"].runnable()
        journal.record_done("k1", "x", {})
        assert not journal.state().points["k1"].runnable()


class TestResolution:
    def test_list_sweeps(self, tmp_path):
        a = _journal(tmp_path, "20260101T000000-00001-aaaaaa")
        _plan(a)
        b = _journal(tmp_path, "20260102T000000-00002-bbbbbb")
        _plan(b, n=1)
        b.record_done("k0", "me", {"status": "ok"})
        rows = list_sweeps(str(tmp_path / "sweeps"))
        assert [r["sweep_id"] for r in rows] == [a.sweep_id, b.sweep_id]
        assert rows[0]["status"] == "partial"
        assert rows[1]["status"] == "complete"

    def test_resolve_last_prefix_ambiguous(self, tmp_path):
        sweeps = str(tmp_path / "sweeps")
        a = _journal(tmp_path, "20260101T000000-00001-aaaaaa")
        _plan(a)
        b = _journal(tmp_path, "20260102T000000-00002-bbbbbb")
        _plan(b)
        assert resolve_sweep("last", sweeps).sweep_id == b.sweep_id
        assert resolve_sweep("20260101", sweeps).sweep_id == a.sweep_id
        with pytest.raises(ReproError, match="ambiguous"):
            resolve_sweep("2026", sweeps)
        with pytest.raises(ReproError, match="no sweep matching"):
            resolve_sweep("zzz", sweeps)

    def test_resolve_empty_dir(self, tmp_path):
        with pytest.raises(ReproError, match="no sweep journals"):
            resolve_sweep("last", str(tmp_path / "void"))

    def test_new_sweep_ids_unique(self):
        ids = {new_sweep_id() for _ in range(32)}
        assert len(ids) == 32


class TestJournalFile:
    def test_records_are_schema_stamped_canonical_lines(self, tmp_path):
        journal = _journal(tmp_path)
        _plan(journal, n=1)
        with open(journal.path) as fh:
            for line in fh:
                doc = json.loads(line)
                assert doc["schema"] == SWEEP_SCHEMA
                assert "ts" in doc

    def test_default_ttl_used(self, tmp_path):
        journal = _journal(tmp_path)
        _plan(journal)
        journal.claim(["k0"], "alice")
        records, _ = journal.records()
        claim = [r for r in records if r["ev"] == "claim"][0]
        assert claim["ttl"] == DEFAULT_LEASE_TTL

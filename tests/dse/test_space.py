"""Tests for design spaces and pipeline templates (repro.dse.space)."""

import pytest

from repro.dse import GridSpace, RandomSpace, parse_axis, render_pipeline
from repro.errors import ReproError


class TestGridSpace:
    def test_cross_product_in_axis_order(self):
        space = GridSpace({"banks": [1, 2], "tiles": [1, 2]})
        assert len(space) == 4
        assert list(space) == [
            {"banks": 1, "tiles": 1}, {"banks": 1, "tiles": 2},
            {"banks": 2, "tiles": 1}, {"banks": 2, "tiles": 2}]

    def test_single_axis(self):
        assert list(GridSpace({"banks": [4]})) == [{"banks": 4}]

    def test_empty_axes_rejected(self):
        with pytest.raises(ReproError, match="at least one axis"):
            GridSpace({})
        with pytest.raises(ReproError, match="no values"):
            GridSpace({"banks": []})


class TestRandomSpace:
    def test_deterministic_per_seed(self):
        axes = {"banks": [1, 2, 4, 8], "tiles": [1, 2, 4, 8]}
        a = list(RandomSpace(axes, 5, seed=7))
        b = list(RandomSpace(axes, 5, seed=7))
        assert a == b
        assert len(a) == len(RandomSpace(axes, 5, seed=7)) == 5

    def test_seed_changes_sample(self):
        axes = {"banks": [1, 2, 4, 8], "tiles": [1, 2, 4, 8]}
        assert list(RandomSpace(axes, 5, seed=0)) != \
            list(RandomSpace(axes, 5, seed=1))

    def test_without_replacement(self):
        points = list(RandomSpace({"banks": list(range(16))}, 10, seed=3))
        assert len({p["banks"] for p in points}) == 10

    def test_oversample_yields_whole_grid(self):
        axes = {"banks": [1, 2]}
        assert list(RandomSpace(axes, 99)) == list(GridSpace(axes))

    def test_n_must_be_positive(self):
        with pytest.raises(ReproError, match="n >= 1"):
            RandomSpace({"banks": [1]}, 0)


class TestRenderPipeline:
    def test_substitution(self):
        assert render_pipeline("localize,banking={banks}",
                               {"banks": 4}) == "localize,banking=4"

    def test_guard_keeps_and_drops(self):
        template = "localize,tiling={tiles}?tiles>1"
        assert render_pipeline(template, {"tiles": 2}) == \
            "localize,tiling=2"
        assert render_pipeline(template, {"tiles": 1}) == "localize"

    def test_all_guard_operators(self):
        for op, lo, hi in (("==", False, False), ("!=", True, True),
                           (">", False, True), ("<", True, False),
                           (">=", False, True), ("<=", True, False)):
            kept = render_pipeline(f"fusion?x{op}5", {"x": 4}) != ""
            assert kept is lo, (op, "lo")
            kept = render_pipeline(f"fusion?x{op}6", {"x": 7}) != ""
            assert kept is hi, (op, "hi")

    def test_sim_axes_hidden_from_templates(self):
        params = {"banks": 2, "sim.max_cycles": 100}
        assert render_pipeline("banking={banks}", params) == "banking=2"
        with pytest.raises(ReproError, match="unknown axis"):
            render_pipeline("banking={banks}?sim.max_cycles>1", params)

    def test_unknown_placeholder(self):
        with pytest.raises(ReproError, match="unknown axis"):
            render_pipeline("banking={nope}", {"banks": 2})

    def test_unknown_guard_axis(self):
        with pytest.raises(ReproError, match="unknown axis"):
            render_pipeline("fusion?nope>1", {"banks": 2})

    def test_bad_guard_syntax(self):
        with pytest.raises(ReproError, match="guard"):
            render_pipeline("fusion?banks~1", {"banks": 2})

    def test_empty_segments_dropped(self):
        assert render_pipeline(" localize ,, fusion ", {}) == \
            "localize,fusion"


class TestParseAxis:
    def test_ints(self):
        assert parse_axis("banks=1,2,4") == ("banks", [1, 2, 4])

    def test_mixed_types(self):
        name, values = parse_axis("x=1,2.5,true,event")
        assert name == "x"
        assert values == [1, 2.5, True, "event"]

    def test_sim_axis(self):
        assert parse_axis("sim.max_cycles=100,200") == \
            ("sim.max_cycles", [100, 200])

    def test_bad_forms(self):
        for text in ("banks", "=1,2", "banks="):
            with pytest.raises(ReproError, match="bad axis"):
                parse_axis(text)

"""Failure-injection tests for the sweep supervisor.

Chaos is injected through the ``REPRO_DSE_CHAOS`` environment
variable (inherited by pool workers): ``kill_point`` SIGKILLs the
worker evaluating a given point — once (a transient death) when a
spend-flag path is given, every attempt (poison) otherwise;
``hang_point`` sleeps to trip the supervisor's per-point deadline.
The claims under test:

* a worker death breaks the pool; the supervisor respawns it and the
  sweep still completes, with the in-flight points re-evaluated;
* a point that kills workers twice is quarantined
  (:class:`PoisonPointError`, exit 11) and the rest of the sweep
  survives;
* deterministic failures (a deadlock, a bad pass, a sim timeout) are
  never retried;
* SIGINT checkpoints the journal; ``resume`` finishes only the
  missing points and reproduces the identical Pareto front;
* two processes sharding one journal evaluate each point exactly
  once.
"""

import json
import multiprocessing
import os
import signal
import time

import pytest

from repro.dse import GridSpace, RetryPolicy, SweepJournal, explore, \
    resume
from repro.dse.engine import _evaluate_group
from repro.errors import SweepInterrupted
from repro.sim import SimParams

TEMPLATE = "localize,banking={banks}"
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.01,
                         jitter=0.0)


def _chaos(monkeypatch, **spec):
    monkeypatch.setenv("REPRO_DSE_CHAOS", json.dumps(spec))


class TestWorkerDeath:
    def test_sigkill_once_point_retried_sweep_completes(
            self, tmp_path, monkeypatch):
        _chaos(monkeypatch, kill_point={
            "index": 1, "flag": str(tmp_path / "spent")})
        report = explore(
            "saxpy", GridSpace({"banks": [1, 2, 4]}),
            pipeline=TEMPLATE, workers=2, cache=None,
            journal=str(tmp_path / "sweeps"), retry=FAST_RETRY)
        assert report.counts["ok"] == 3
        assert report.durability["worker_deaths"] >= 1
        assert report.durability["retries"] >= 1
        # the killed point needed more than one attempt
        assert report.point(1).attempts > 1

    def test_poison_point_quarantined_rest_survives(
            self, tmp_path, monkeypatch):
        _chaos(monkeypatch, kill_point={"index": 1})
        report = explore(
            "saxpy", GridSpace({"banks": [1, 2, 4]}),
            pipeline=TEMPLATE, workers=2, cache=None,
            journal=str(tmp_path / "sweeps"), retry=FAST_RETRY)
        assert report.counts["ok"] == 2
        assert report.counts["quarantined"] == 1
        poison = report.point(1)
        assert poison.quarantined
        assert poison.error["error"] == "PoisonPointError"
        assert poison.error["exit_code"] == 11
        assert poison.error["deaths"] >= 2
        # the journal agrees, so a resume will not re-run the poison
        journal = SweepJournal(str(tmp_path / "sweeps"),
                               report.sweep_id)
        assert journal.state().counts["quarantined"] == 1

    def test_supervisor_timeout_kills_hung_worker(
            self, tmp_path, monkeypatch):
        _chaos(monkeypatch, hang_point={
            "index": 0, "seconds": 60,
            "flag": str(tmp_path / "spent")})
        report = explore(
            "saxpy", GridSpace({"banks": [1, 2]}),
            pipeline=TEMPLATE, workers=2, cache=None,
            journal=str(tmp_path / "sweeps"), retry=FAST_RETRY,
            point_timeout=1.5)
        assert report.counts["ok"] == 2
        assert report.durability["timeouts"] >= 1
        assert report.point(0).attempts > 1


class TestRetryClassification:
    def test_deterministic_failure_never_retried(self, tmp_path):
        # max_cycles=10 forces a SimulationTimeout: a property of the
        # point, not the environment — exactly one attempt allowed.
        report = explore(
            "saxpy", GridSpace({"banks": [1]}),
            pipeline=TEMPLATE, workers=2, cache=None,
            sim=SimParams(max_cycles=10),
            journal=str(tmp_path / "sweeps"), retry=FAST_RETRY)
        point = report.points[0]
        assert not point.ok
        assert point.error["error"] == "SimulationTimeout"
        assert point.attempts == 1
        assert report.durability["retries"] == 0
        journal = SweepJournal(str(tmp_path / "sweeps"),
                               report.sweep_id)
        errors = [r for r in journal.records()[0]
                  if r["ev"] == "error"]
        assert len(errors) == 1 and errors[0]["final"] is True

    def test_worker_error_documents_carry_family(self, monkeypatch):
        # Satellite: the blanket except in _evaluate_group returns a
        # structured document, not a bare name/message pair.
        import repro.dse.engine as engine_mod

        def boom(_name):
            raise ValueError("wired to fail")

        monkeypatch.setattr(engine_mod, "get_workload", boom)
        out = _evaluate_group([{
            "index": 0, "workload": "saxpy", "variant": "base",
            "pass_spec": "localize", "sim": {"kernel": "event"},
            "check": True, "cache_root": None}])[0]
        doc = out["error"]
        assert doc["error"] == "ValueError"
        assert doc["family"] == "deterministic"
        assert doc["exit_code"] == 1
        assert any("wired to fail" in line
                   for line in doc["traceback"])

    def test_repro_error_documents_carry_family(self):
        out = _evaluate_group([{
            "index": 0, "workload": "saxpy", "variant": "base",
            "pass_spec": "no_such_pass", "sim": {"kernel": "event"},
            "check": True, "cache_root": None}])[0]
        doc = out["error"]
        assert doc["error"] == "ReproError"  # unknown pass name
        assert doc["family"] == "deterministic"
        assert "traceback" not in doc  # expected errors stay terse


def _interrupted_sweep(sweeps_dir: str):
    """Run a journaled sweep that SIGINTs itself after the first
    settled point; returns the raised SweepInterrupted."""
    def prog(point):
        prog.n += 1
        if prog.n == 1:
            os.kill(os.getpid(), signal.SIGINT)
    prog.n = 0
    with pytest.raises(SweepInterrupted) as info:
        explore("saxpy", GridSpace({"banks": [1, 2, 4, 8]}),
                pipeline=TEMPLATE, workers=1, cache=None,
                journal=sweeps_dir, progress=prog)
    return info.value


class TestInterruptAndResume:
    def test_sigint_checkpoints_and_resume_completes(self, tmp_path):
        sweeps = str(tmp_path / "sweeps")
        exc = _interrupted_sweep(sweeps)
        assert exc.completed < exc.total == 4
        assert "--resume" in str(exc)
        journal = SweepJournal(sweeps, exc.sweep_id)
        state = journal.state()
        assert state.interrupted == 1
        settled_before = {k for k, p in state.points.items()
                         if p.settled}
        assert settled_before  # the checkpoint preserved finished work

        report = resume(exc.sweep_id, sweeps_dir=sweeps, workers=1)
        assert report.counts["ok"] == 4
        assert report.counts["resumed"] == len(settled_before)
        # only the missing points were evaluated
        fresh = {p.index for p in report.points
                 if p.source == "fresh"}
        assert len(fresh) == 4 - len(settled_before)

    def test_resumed_pareto_identical_to_uninterrupted(self, tmp_path):
        baseline = explore(
            "saxpy", GridSpace({"banks": [1, 2, 4, 8]}),
            pipeline=TEMPLATE, workers=1, cache=None,
            journal=str(tmp_path / "a"))
        exc = _interrupted_sweep(str(tmp_path / "b"))
        resumed = resume(exc.sweep_id,
                         sweeps_dir=str(tmp_path / "b"), workers=1)
        assert resumed.pareto == baseline.pareto
        for a, b in zip(baseline.points, resumed.points):
            assert (a.cycles, a.stats, a.synth) == \
                (b.cycles, b.stats, b.synth)

    def test_resume_of_complete_sweep_is_pure_restore(self, tmp_path):
        sweeps = str(tmp_path / "sweeps")
        first = explore("saxpy", GridSpace({"banks": [1, 2]}),
                        pipeline=TEMPLATE, workers=1, cache=None,
                        journal=sweeps)
        again = resume("last", sweeps_dir=sweeps, workers=1)
        assert again.counts["resumed"] == 2
        assert again.counts["ok"] == 2
        assert all(p.source == "journal" for p in again.points)
        assert again.pareto == first.pareto


def _shard(sweeps_dir: str, sweep_id: str) -> None:
    explore("saxpy", GridSpace({"banks": [1, 2, 4, 8]}),
            pipeline=TEMPLATE, workers=1, cache=None,
            journal=sweeps_dir, sweep_id=sweep_id,
            retry=RetryPolicy(base_delay=0.01), lease_ttl=60.0)


class TestSharding:
    def test_two_processes_evaluate_each_point_exactly_once(
            self, tmp_path):
        sweeps = str(tmp_path / "sweeps")
        sweep_id = "20260101T000000-00042-shared"
        procs = [multiprocessing.Process(target=_shard,
                                         args=(sweeps, sweep_id))
                 for _ in range(2)]
        for p in procs:
            p.start()
            time.sleep(0.05)  # stagger: second process attaches
        for p in procs:
            p.join(timeout=180)
            assert p.exitcode == 0
        journal = SweepJournal(sweeps, sweep_id)
        state = journal.state()
        assert state.complete
        assert state.counts["done"] == 4
        # exactly-once: one done event per point across both processes
        done_by_key = {}
        for rec in journal.records()[0]:
            if rec["ev"] == "done":
                done_by_key[rec["key"]] = \
                    done_by_key.get(rec["key"], 0) + 1
        assert done_by_key and all(n == 1
                                   for n in done_by_key.values())

"""ResultCache hit/miss/corrupt accounting surfaced by explore()."""

import json
import os

from repro.dse import GridSpace, explore
from repro.dse.cache import COUNT_KEYS, ResultCache
from repro.report import render_explore_markdown

TEMPLATE = "localize,banking={banks}"
SPACE = {"banks": [1, 2]}


def _explore(cache):
    return explore("saxpy", GridSpace(SPACE), pipeline=TEMPLATE,
                   workers=1, cache=cache)


class TestCacheCounts:
    def test_counts_start_at_zero(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache.counts == {k: 0 for k in COUNT_KEYS}

    def test_cold_sweep_counts_misses(self, tmp_path):
        report = _explore(ResultCache(str(tmp_path)))
        assert report.cache["object_hits"] == 0
        assert report.cache["object_misses"] == 2
        assert report.cache["object_corrupt"] == 0

    def test_warm_sweep_counts_hits(self, tmp_path):
        _explore(ResultCache(str(tmp_path)))
        report = _explore(ResultCache(str(tmp_path)))
        assert report.cache["object_hits"] == 2
        assert report.cache["object_misses"] == 0
        assert all(p.cached for p in report.points)

    def test_corrupt_object_counts_and_recovers(self, tmp_path):
        _explore(ResultCache(str(tmp_path)))
        # smash every cached object; the warm sweep must re-evaluate
        objects = os.path.join(str(tmp_path), "objects")
        for sub, _dirs, files in os.walk(objects):
            for name in files:
                with open(os.path.join(sub, name), "w") as fh:
                    fh.write("{not json")
        report = _explore(ResultCache(str(tmp_path)))
        # every probe of a smashed object counts (points may probe
        # via the request index and again via fingerprint)
        assert report.cache["object_corrupt"] >= 2
        assert report.cache["object_hits"] == 0
        assert all(p.status == "ok" for p in report.points)

    def test_counts_in_json_and_markdown(self, tmp_path):
        _explore(ResultCache(str(tmp_path)))
        report = _explore(ResultCache(str(tmp_path)))
        doc = report.to_json()
        assert doc["cache"]["object_hits"] == 2
        json.dumps(doc)                       # serializable
        md = render_explore_markdown(doc)
        assert "Result cache: 2 object hits" in md
        assert "cache" in report.summary()

    def test_uncached_sweep_reports_empty(self):
        report = _explore(None)
        assert report.cache == {}
        assert "Result cache" not in render_explore_markdown(report.to_json())

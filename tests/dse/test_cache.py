"""Cache-correctness tests: content addressing and the result store.

The load-bearing property: the content key must identify *hardware
content*, not build history — identical content from different build
orders hashes identically, while any semantic change (a constant, a
banking factor, a queue depth, a connection buffer) misses.  And
because the DSE engine simulates the canonical form, a cache hit is
bit-identical to a fresh run (see tests/dse/test_engine.py for the
end-to-end half of that claim).
"""

import json
import os

from repro import Pipeline
from repro.core.serialize import (
    canonical_circuit,
    circuit_fingerprint,
    circuit_from_dict,
    circuit_to_dict,
)
from repro.dse import CACHE_SCHEMA, ResultCache, content_key, request_key
from repro.dse.cache import sim_key_dict
from repro.sim import SimParams

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                           "sim", "golden", "seed_cycles.json")


def _optimized_circuit(spec="localize,banking=2,fusion"):
    return Pipeline("saxpy").optimize(spec).circuit


def _permuted(data):
    """Same content, different build order: reverse every list whose
    order is a construction artifact."""
    data = json.loads(json.dumps(data))  # deep copy
    data["structures"] = list(reversed(data["structures"]))
    data["tasks"] = list(reversed(data["tasks"]))
    data["task_edges"] = list(reversed(data["task_edges"]))
    for task in data["tasks"]:
        task["nodes"] = list(reversed(task["nodes"]))
        task["connections"] = list(reversed(task["connections"]))
        task["junctions"] = list(reversed(task["junctions"]))
        for junction in task["junctions"]:
            junction["clients"] = list(reversed(junction["clients"]))
    return data


class TestFingerprint:
    def test_build_order_invariant(self):
        circuit = _optimized_circuit()
        permuted = circuit_from_dict(_permuted(circuit_to_dict(circuit)))
        assert circuit_fingerprint(permuted) == \
            circuit_fingerprint(circuit)

    def test_display_name_excluded(self):
        data = circuit_to_dict(_optimized_circuit())
        renamed = dict(data, name="totally_different")
        assert circuit_fingerprint(circuit_from_dict(renamed)) == \
            circuit_fingerprint(circuit_from_dict(data))

    def test_serialize_round_trip_stable(self):
        circuit = _optimized_circuit()
        rebuilt = circuit_from_dict(circuit_to_dict(circuit))
        assert circuit_fingerprint(rebuilt) == \
            circuit_fingerprint(circuit)

    def test_canonical_form_is_fixed_point(self):
        circuit = _optimized_circuit()
        canon = canonical_circuit(circuit)
        assert circuit_fingerprint(canon) == \
            circuit_fingerprint(circuit)
        assert circuit_to_dict(canonical_circuit(canon)) == \
            circuit_to_dict(canon)

    def test_const_value_change_misses(self):
        data = circuit_to_dict(_optimized_circuit())
        base = circuit_fingerprint(circuit_from_dict(data))
        for task in data["tasks"]:
            consts = [n for n in task["nodes"] if n["kind"] == "const"]
            if consts:
                consts[0]["value"] += 1
                break
        else:
            raise AssertionError("no const node found")
        assert circuit_fingerprint(circuit_from_dict(data)) != base

    def test_banking_change_misses(self):
        a = circuit_fingerprint(_optimized_circuit("localize,banking=2"))
        b = circuit_fingerprint(_optimized_circuit("localize,banking=4"))
        assert a != b

    def test_queue_depth_change_misses(self):
        data = circuit_to_dict(_optimized_circuit())
        base = circuit_fingerprint(circuit_from_dict(data))
        data["tasks"][0]["queue_depth"] += 1
        assert circuit_fingerprint(circuit_from_dict(data)) != base

    def test_connection_depth_change_misses(self):
        data = circuit_to_dict(_optimized_circuit())
        base = circuit_fingerprint(circuit_from_dict(data))
        conns = data["tasks"][0]["connections"]
        conns[0]["depth"] = (conns[0]["depth"] or 1) + 1
        assert circuit_fingerprint(circuit_from_dict(data)) != base

    def test_pass_pipeline_changes_fingerprint(self):
        assert circuit_fingerprint(Pipeline("saxpy").circuit) != \
            circuit_fingerprint(_optimized_circuit())


class TestCanonicalVsGolden:
    """Canonical-form execution reproduces the PR-1 seed goldens where
    the canonical order happens to match the as-built order's timing
    (arbitration ties make other workloads differ by a few cycles —
    that is exactly why the engine always simulates the canonical
    form)."""

    def test_baseline_cycles_match_golden(self):
        with open(GOLDEN_PATH) as fh:
            golden = json.load(fh)
        for name in ("saxpy", "fib"):
            pipe = Pipeline(name)
            canon = canonical_circuit(pipe.circuit)
            run = Pipeline.from_circuit(canon, workload=name).simulate()
            assert run.sim.cycles == golden[f"{name}/baseline"]["cycles"]
            assert list(run.sim.results) == \
                golden[f"{name}/baseline"]["results"]


class TestKeys:
    def test_content_key_sensitivity(self):
        sim = sim_key_dict(SimParams())
        base = content_key("fp", "saxpy", "base", [16], sim)
        assert content_key("fp", "saxpy", "base", [16], sim) == base
        assert content_key("fp2", "saxpy", "base", [16], sim) != base
        assert content_key("fp", "fib", "base", [16], sim) != base
        assert content_key("fp", "saxpy", "big", [16], sim) != base
        assert content_key("fp", "saxpy", "base", [32], sim) != base
        other = sim_key_dict(SimParams(kernel="dense"))
        assert content_key("fp", "saxpy", "base", [16], other) != base

    def test_sim_key_excludes_wallclock_knobs(self):
        # Watchdog/observability settings change how a run is *watched*,
        # not what it computes: same key.
        a = sim_key_dict(SimParams())
        b = sim_key_dict(SimParams(wallclock_timeout=1.0))
        assert a == b
        assert sim_key_dict(SimParams(max_cycles=10)) != a

    def test_request_key_sensitivity(self):
        sim = sim_key_dict(SimParams())
        base = request_key("saxpy", "base", "memory_localization",
                           [16], sim)
        assert request_key("saxpy", "base", "memory_localization",
                           [16], sim) == base
        assert request_key("saxpy", "base", "op_fusion",
                           [16], sim) != base
        assert request_key("fib", "base", "memory_localization",
                           [16], sim) != base


class TestResultCache:
    def test_put_get_round_trip(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        doc = {"cycles": 42, "stats": {"kernel": "event"}}
        cache.put("ab" + "0" * 62, doc)
        got = cache.get("ab" + "0" * 62)
        assert got["cycles"] == 42
        assert got["schema"] == CACHE_SCHEMA
        assert cache.get("cd" + "0" * 62) is None

    def test_corrupt_object_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        key = "ab" + "0" * 62
        cache.put(key, {"cycles": 1})
        with open(cache._object_path(key), "w") as fh:
            fh.write("{not json")
        assert cache.get(key) is None

    def test_corrupt_object_quarantined_on_first_read(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        key = "ab" + "0" * 62
        cache.put(key, {"cycles": 1})
        path = cache._object_path(key)
        with open(path, "w") as fh:
            fh.write("{not json")
        assert cache.get(key) is None
        # renamed out of the lookup path: counted once, then a miss
        assert not os.path.exists(path)
        assert os.path.exists(path + ".corrupt")
        assert cache.get(key) is None
        assert cache.counts["object_corrupt"] == 1
        assert cache.counts["object_misses"] == 1
        # re-evaluation overwrites cleanly
        cache.put(key, {"cycles": 2})
        assert cache.get(key)["cycles"] == 2

    def test_schema_mismatch_also_quarantined(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        key = "ab" + "0" * 62
        cache.put(key, {"cycles": 1})
        path = cache._object_path(key)
        doc = json.load(open(path))
        doc["schema"] = "something/else"
        json.dump(doc, open(path, "w"))
        assert cache.get(key) is None
        assert os.path.exists(path + ".corrupt")

    def test_write_failure_degrades_to_memory(self, tmp_path,
                                              monkeypatch, capsys):
        import repro.dse.cache as cache_mod

        cache = ResultCache(str(tmp_path / "c"))

        def denied(*args, **kwargs):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(cache_mod.tempfile, "mkstemp", denied)
        key = "ab" + "0" * 62
        cache.put(key, {"cycles": 9})          # does not raise
        assert cache.degraded
        assert cache.counts["write_errors"] == 1
        assert cache.get(key)["cycles"] == 9   # served from memory
        assert cache.counts["object_hits"] == 1
        cache.record_request("req1", key)
        cache.save_index()                     # also degrades quietly
        assert cache.counts["write_errors"] == 2
        # one-time warning only
        cache.put("cd" + "0" * 62, {"cycles": 1})
        err = capsys.readouterr().err
        assert err.count("caching in memory") == 1
        # nothing reached disk
        assert ResultCache(cache.root).get(key) is None

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        key = "ab" + "0" * 62
        cache.put(key, {"cycles": 1})
        path = cache._object_path(key)
        doc = json.load(open(path))
        doc["schema"] = "something/else"
        json.dump(doc, open(path, "w"))
        assert cache.get(key) is None

    def test_request_index_persists(self, tmp_path):
        root = str(tmp_path / "c")
        ckey = "ab" + "0" * 62
        cache = ResultCache(root)
        cache.put(ckey, {"cycles": 7})
        cache.record_request("req1", ckey)
        cache.save_index()

        fresh = ResultCache(root)
        assert fresh.lookup_request("req1")["cycles"] == 7
        assert fresh.lookup_request("req2") is None

    def test_index_miss_on_missing_object(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        cache.record_request("req1", "ab" + "0" * 62)
        cache.save_index()
        assert ResultCache(cache.root).lookup_request("req1") is None

"""End-to-end tests for the exploration engine (repro.dse.engine)."""

import pytest

from repro.dse import (
    EXPLORE_SCHEMA,
    ExploreReport,
    GridSpace,
    PointResult,
    explore,
    pareto_frontier,
)
from repro.errors import ReproError
from repro.report import render_explore_markdown

TEMPLATE = "localize,banking={banks}"


def _point(index, cycles, alms, ok=True):
    p = PointResult(index=index, params={"i": index}, pass_spec="")
    if ok:
        p.status = "ok"
        p.cycles = cycles
        p.stats = {"kernel": "event"}
        p.synth = {"fpga_mhz": 1.0, "alms": alms, "regs": 0, "dsps": 0,
                   "fpga_mw": 0.0, "asic_area_kum2": 0.0, "asic_mw": 0.0}
    return p


class TestParetoFrontier:
    def test_dominated_points_excluded(self):
        points = [_point(0, 100, 10),   # pareto (best area)
                  _point(1, 50, 20),    # pareto (best latency)
                  _point(2, 100, 20),   # dominated by both
                  _point(3, 60, 15)]    # pareto (trade-off)
        front = pareto_frontier(points, ("time_us", "alms"))
        assert front == [1, 3, 0]  # sorted by first objective

    def test_failed_points_ignored(self):
        points = [_point(0, 1, 1, ok=False), _point(1, 100, 100)]
        assert pareto_frontier(points, ("time_us", "alms")) == [1]

    def test_ties_all_kept(self):
        points = [_point(0, 50, 10), _point(1, 50, 10)]
        assert pareto_frontier(points, ("time_us", "alms")) == [0, 1]

    def test_single_objective(self):
        points = [_point(0, 100, 1), _point(1, 50, 99)]
        assert pareto_frontier(points, ("cycles",)) == [1]

    def test_unknown_metric(self):
        with pytest.raises(ReproError, match="unknown objective"):
            _point(0, 1, 1).metric("warp")


class TestExploreSerial:
    def test_sweep(self):
        report = explore("saxpy", GridSpace({"banks": [1, 2]}),
                         pipeline=TEMPLATE, workers=1, cache=None)
        assert isinstance(report, ExploreReport)
        c = report.counts
        assert c == {"points": 2, "ok": 2, "failed": 0, "fresh": 2,
                     "cache_hits": 0, "resumed": 0, "quarantined": 0}
        for p in report.points:
            assert p.verified is True
            assert p.source == "fresh"
            assert p.fingerprint
            assert p.pass_spec.startswith("memory_localization")
        assert report.pareto  # at least one non-dominated point
        doc = report.to_json()
        assert doc["schema"] == EXPLORE_SCHEMA
        assert doc["counts"]["ok"] == 2
        assert "saxpy" in report.summary()

    def test_progress_callback(self):
        seen = []
        explore("saxpy", GridSpace({"banks": [1]}), pipeline=TEMPLATE,
                workers=1, cache=None, progress=seen.append)
        assert [p.index for p in seen] == [0]

    def test_validation_errors(self):
        space = GridSpace({"banks": [1]})
        with pytest.raises(ReproError, match="unknown objective"):
            explore("saxpy", space, pipeline=TEMPLATE,
                    objectives=("warp",))
        with pytest.raises(ReproError, match="variant"):
            explore("saxpy", space, pipeline=TEMPLATE, variant="nope")
        with pytest.raises(ReproError, match="empty"):
            explore("saxpy", [], pipeline=TEMPLATE)


class TestExploreCache:
    def test_warm_run_bit_identical(self, tmp_path):
        cache = str(tmp_path / "cache")
        space = GridSpace({"banks": [1, 2]})
        cold = explore("saxpy", space, pipeline=TEMPLATE,
                       workers=1, cache=cache)
        warm = explore("saxpy", space, pipeline=TEMPLATE,
                       workers=1, cache=cache)
        assert cold.counts["fresh"] == 2
        assert warm.counts["cache_hits"] == 2
        for a, b in zip(cold.points, warm.points):
            # The warm run never ran the front-end: the request index
            # mapped straight to the stored object.
            assert b.source == "cache-index"
            assert b.cycles == a.cycles
            assert b.stats == a.stats          # bit-identical SimStats
            assert b.synth == a.synth
            assert b.key == a.key

    def test_content_level_hit_across_specs(self, tmp_path):
        """Different requests producing the same hardware share one
        object via the content key (parameter_tuning is idempotent, so
        running it twice yields a fingerprint-identical circuit)."""
        cache = str(tmp_path / "cache")
        space = GridSpace({"banks": [1]})
        first = explore("saxpy", space, pipeline="localize,tuning",
                        workers=1, cache=cache)
        second = explore("saxpy", space,
                         pipeline="localize,tuning,tuning",
                         workers=1, cache=cache)
        (a,), (b,) = first.points, second.points
        assert a.source == "fresh"
        assert b.source == "cache"  # hit in the worker, by content
        assert b.fingerprint == a.fingerprint
        assert b.stats == a.stats
        assert b.cycles == a.cycles

    def test_no_cache_is_always_fresh(self):
        space = GridSpace({"banks": [1]})
        for _ in range(2):
            report = explore("saxpy", space, pipeline=TEMPLATE,
                             workers=1, cache=None)
            assert report.counts["cache_hits"] == 0


class TestExploreParallel:
    def test_matches_serial(self, tmp_path):
        space = GridSpace({"banks": [1, 2]})
        serial = explore("saxpy", space, pipeline=TEMPLATE,
                         workers=1, cache=None)
        parallel = explore("saxpy", space, pipeline=TEMPLATE,
                           workers=2, cache=None)
        for a, b in zip(serial.points, parallel.points):
            assert b.cycles == a.cycles
            assert b.stats == a.stats
            assert b.fingerprint == a.fingerprint

    def test_parallel_workers_share_cache(self, tmp_path):
        cache = str(tmp_path / "cache")
        space = GridSpace({"banks": [1, 2]})
        explore("saxpy", space, pipeline=TEMPLATE, workers=2,
                cache=cache)
        warm = explore("saxpy", space, pipeline=TEMPLATE, workers=2,
                       cache=cache)
        assert warm.counts["cache_hits"] == 2


class TestFailureTolerance:
    def test_bad_spec_fails_point_not_sweep(self):
        def pipeline(params):
            return "warp_drive" if params["banks"] == 2 else TEMPLATE
        report = explore("saxpy", GridSpace({"banks": [1, 2]}),
                         pipeline=lambda p: pipeline(p).format(**p),
                         workers=1, cache=None)
        ok = [p for p in report.points if p.ok]
        failed = [p for p in report.points if not p.ok]
        assert len(ok) == len(failed) == 1
        assert failed[0].error["error"] == "ReproError"
        assert failed[0].error["exit_code"] == 2
        assert "unknown pass" in failed[0].error["message"]
        assert report.pareto == [ok[0].index]

    def test_sim_timeout_fails_point_with_family_code(self):
        space = [{"banks": 1, "sim.max_cycles": 50},
                 {"banks": 1}]
        report = explore("saxpy", space, pipeline=TEMPLATE,
                         workers=1, cache=None)
        timed_out, ok = report.points
        assert not timed_out.ok
        assert timed_out.error["error"] == "SimulationTimeout"
        assert timed_out.error["exit_code"] == 6  # sim family
        assert ok.ok and ok.verified

    def test_unknown_sim_axis_fails_point(self):
        report = explore("saxpy", [{"banks": 1, "sim.warp": 9}],
                         pipeline=TEMPLATE, workers=1, cache=None)
        (p,) = report.points
        assert not p.ok
        assert "unknown sim.* axis" in p.error["message"]

    def test_failed_points_render_in_markdown(self):
        report = explore("saxpy", [{"banks": 1, "sim.max_cycles": 50}],
                         pipeline=TEMPLATE, workers=1, cache=None)
        md = render_explore_markdown(report.to_json())
        assert "## Failed points" in md
        assert "SimulationTimeout" in md


class TestMarkdownReport:
    def test_renders_points_and_pareto(self):
        report = explore("saxpy", GridSpace({"banks": [1, 2]}),
                         pipeline=TEMPLATE, workers=1, cache=None)
        md = render_explore_markdown(report.to_json())
        assert "# Design-space exploration: saxpy" in md
        assert "## Evaluated points" in md
        assert "## Pareto frontier" in md
        assert "| banks |" in md

"""Tests for the reference interpreter."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import InterpreterError
from repro.frontend import compile_minic
from repro.frontend.interp import Interpreter, Memory


def interp(source, *args, init=None):
    module = compile_minic(source)
    mem = Memory(module)
    if init:
        init(mem)
    it = Interpreter(module, mem)
    result = it.run(*args)
    return mem, result, it


class TestMemory:
    def test_layout_sequential(self):
        module = compile_minic(
            "array a: i32[4]; array b: f32[2]; func main() { }")
        mem = Memory(module)
        assert mem.base["a"] == 0
        assert mem.base["b"] == 4
        assert len(mem.words) == 6

    def test_tensor_layout(self):
        module = compile_minic(
            "array t: tensor<2x2xf32>[2]; func main() { }")
        mem = Memory(module)
        mem.set_array("t", [(1.0, 2.0, 3.0, 4.0), (5.0, 6.0, 7.0, 8.0)])
        assert mem.words == [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]
        assert mem.get_array("t")[1] == (5.0, 6.0, 7.0, 8.0)

    def test_out_of_range_read(self):
        module = compile_minic("array a: i32[2]; func main() { }")
        mem = Memory(module)
        with pytest.raises(InterpreterError):
            mem.read(2)

    def test_wrong_tensor_width_rejected(self):
        module = compile_minic(
            "array t: tensor<2x2xf32>[1]; func main() { }")
        mem = Memory(module)
        with pytest.raises(InterpreterError):
            mem.set_array("t", [(1.0, 2.0)])


class TestArithmetic:
    def test_division_truncates_toward_zero(self):
        mem, _, _ = interp("""
array out: i32[2];
func main(n: i32) {
  out[0] = (0 - 7) / 2;
  out[1] = 7 / 2;
}
""", 0)
        assert mem.get_array("out") == [-3, 3]

    def test_rem_sign(self):
        mem, _, _ = interp("""
array out: i32[2];
func main(n: i32) {
  out[0] = (0 - 7) % 3;
  out[1] = 7 % 3;
}
""", 0)
        assert mem.get_array("out") == [-1, 1]

    def test_division_by_zero(self):
        with pytest.raises(InterpreterError):
            interp("array o: i32[1]; func main(n: i32) { o[0] = 1 / n; }",
                   0)

    def test_shifts(self):
        mem, _, _ = interp("""
array out: i32[3];
func main(n: i32) {
  out[0] = 1 << 4;
  out[1] = 256 >> 3;
  out[2] = n & 12;
}
""", 13)
        assert mem.get_array("out") == [16, 32, 12]

    def test_exp_and_sqrt(self):
        mem, _, _ = interp("""
array out: f32[2];
func main() { out[0] = exp(1.0); out[1] = sqrt(2.0); }
""")
        assert abs(mem.get_array("out")[0] - math.e) < 1e-9
        assert abs(mem.get_array("out")[1] - math.sqrt(2)) < 1e-9

    def test_tensor_matmul_semantics(self):
        mem, _, _ = interp("""
array a: tensor<2x2xf32>[1];
array b: tensor<2x2xf32>[1];
array c: tensor<2x2xf32>[1];
func main() { c[0] = a[0] * b[0]; }
""", init=lambda m: (m.set_array("a", [(1.0, 2.0, 3.0, 4.0)]),
                     m.set_array("b", [(5.0, 6.0, 7.0, 8.0)])))
        # [[1,2],[3,4]] x [[5,6],[7,8]] = [[19,22],[43,50]]
        assert mem.get_array("c")[0] == (19.0, 22.0, 43.0, 50.0)

    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    def test_add_matches_python(self, a, b):
        module = compile_minic("""
array out: i32[1];
func main(a: i32, b: i32) { out[0] = a + b; }
""")
        mem = Memory(module)
        Interpreter(module, mem).run(a, b)
        assert mem.get_array("out") == [a + b]


class TestControlAndCalls:
    def test_recursion(self):
        _, result, _ = interp("""
array o: i32[1];
func fact(n: i32) -> i32 {
  if (n < 2) { return 1; }
  return n * fact(n - 1);
}
func main(n: i32) -> i32 { return fact(n); }
""", 6)
        assert result == 720

    def test_serial_elision_of_spawn(self):
        mem, _, it = interp("""
array a: i32[4];
func w(i: i32) { a[i] = i + 10; }
func main(n: i32) {
  parallel_for (i = 0; i < n; i = i + 1) { w(i); }
}
""", 4)
        assert mem.get_array("a") == [10, 11, 12, 13]
        assert it.stats.spawned_tasks == 4

    def test_stats_counters(self):
        _, _, it = interp("""
array a: i32[4];
func main(n: i32) {
  for (i = 0; i < n; i = i + 1) { a[i] = a[i] + 1; }
}
""", 4)
        assert it.stats.memory_accesses == 8
        assert it.stats.opcode_counts["add"] >= 4

    def test_block_hook_sees_trace(self):
        module = compile_minic("""
array a: i32[4];
func main(n: i32) {
  for (i = 0; i < n; i = i + 1) { a[i] = i; }
}
""")
        trace = []
        Interpreter(module, Memory(module),
                    block_hook=lambda b: trace.append(b.name)).run(3)
        assert trace[0] == "entry"
        assert trace.count("i.body") == 3

    def test_wrong_arity(self):
        module = compile_minic("func main(n: i32) { }")
        with pytest.raises(InterpreterError):
            Interpreter(module).run()

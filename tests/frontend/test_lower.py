"""Tests for MiniC lowering and SSA construction."""

import pytest

from repro.errors import LoweringError
from repro.frontend import compile_minic
from repro.frontend.interp import Interpreter, Memory
from repro.frontend.ir import Phi, verify_module


def run(source, *args, init=None):
    module = compile_minic(source)
    assert verify_module(module) == [], verify_module(module)
    mem = Memory(module)
    if init:
        init(mem)
    result = Interpreter(module, mem).run(*args)
    return module, mem, result


class TestSSAConstruction:
    def test_variable_reassignment(self):
        _, mem, _ = run("""
array out: i32[1];
func main(n: i32) {
  var x: i32 = 1;
  x = x + n;
  x = x * 2;
  out[0] = x;
}
""", 4)
        assert mem.get_array("out") == [10]

    def test_if_merge_creates_phi_or_value(self):
        module, mem, _ = run("""
array out: i32[1];
func main(n: i32) {
  var x: i32 = 0;
  if (n > 2) { x = 10; } else { x = 20; }
  out[0] = x;
}
""", 5)
        assert mem.get_array("out") == [10]
        phis = [i for i in module.main.instructions()
                if isinstance(i, Phi)]
        assert len(phis) == 1

    def test_loop_carried_variable(self):
        _, mem, _ = run("""
array out: i32[1];
func main(n: i32) {
  var s: i32 = 0;
  for (i = 0; i < n; i = i + 1) { s = s + i; }
  out[0] = s;
}
""", 6)
        assert mem.get_array("out") == [15]

    def test_trivial_phis_removed(self):
        module, _, _ = run("""
array out: i32[1];
func main(n: i32) {
  var x: i32 = 7;
  if (n > 0) { out[0] = x; }
  out[0] = x;
}
""", 1)
        # x is never reassigned: no phi should survive for it.
        phis = [i for i in module.main.instructions()
                if isinstance(i, Phi) and i.name.startswith("x")]
        assert phis == []

    def test_nested_loops_ssa(self):
        _, mem, _ = run("""
array out: i32[1];
func main(n: i32) {
  var s: i32 = 0;
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < n; j = j + 1) { s = s + 1; }
  }
  out[0] = s;
}
""", 4)
        assert mem.get_array("out") == [16]

    def test_read_before_assignment_rejected(self):
        with pytest.raises(LoweringError):
            compile_minic(
                "func main(n: i32) { var x: i32 = y + 1; }")

    def test_assign_undeclared_rejected(self):
        with pytest.raises(LoweringError):
            compile_minic("func main(n: i32) { x = 1; }")

    def test_phi_type_matches_variable(self):
        module, _, _ = run("""
array out: f32[1];
func main(n: i32) {
  var s: f32 = 0.0;
  for (i = 0; i < n; i = i + 1) { s = s + 1.5; }
  out[0] = s;
}
""", 2)
        # No spurious itof from a mistyped placeholder phi.
        opcodes = [i.opcode for i in module.main.instructions()]
        assert "itof" not in opcodes


class TestCoercion:
    def test_int_literal_in_float_expr(self):
        _, mem, _ = run("""
array out: f32[1];
func main(n: i32) { out[0] = 2 * 1.5; }
""", 0)
        assert mem.get_array("out") == [3.0]

    def test_int_value_promoted_via_itof(self):
        _, mem, _ = run("""
array out: f32[1];
func main(n: i32) { out[0] = f32(n) / 2.0; }
""", 5)
        assert mem.get_array("out") == [2.5]

    def test_implicit_narrowing_rejected(self):
        with pytest.raises(LoweringError):
            compile_minic("""
array out: i32[1];
func main(n: i32) { out[0] = 1.5; }
""")

    def test_explicit_narrowing_allowed(self):
        _, mem, _ = run("""
array out: i32[1];
func main(n: i32) { out[0] = i32(3.9); }
""", 0)
        assert mem.get_array("out") == [3]

    def test_condition_coerced_to_bool(self):
        _, mem, _ = run("""
array out: i32[1];
func main(n: i32) {
  if (n) { out[0] = 1; } else { out[0] = 2; }
}
""", 3)
        assert mem.get_array("out") == [1]


class TestParallelLowering:
    def test_parallel_for_outer_scalar_write_rejected(self):
        with pytest.raises(LoweringError):
            compile_minic("""
func main(n: i32) {
  var s: i32 = 0;
  parallel_for (i = 0; i < n; i = i + 1) { s = s + 1; }
}
""")

    def test_parallel_for_local_scalar_ok(self):
        module = compile_minic("""
array a: i32[8];
func main(n: i32) {
  parallel_for (i = 0; i < n; i = i + 1) {
    var t: i32 = i * 2;
    a[i] = t;
  }
}
""")
        assert verify_module(module) == []

    def test_spawn_unknown_function_rejected(self):
        with pytest.raises(LoweringError):
            compile_minic("func main(n: i32) { spawn nope(n); }")

    def test_call_arity_checked(self):
        with pytest.raises(LoweringError):
            compile_minic("""
func f(a: i32, b: i32) -> i32 { return a + b; }
func main(n: i32) { var x: i32 = f(n); }
""")


class TestControlLowering:
    def test_dead_code_after_return_skipped(self):
        module, _, result = run("""
func main(n: i32) -> i32 {
  return n;
  return 0;
}
""", 9)
        assert result == 9

    def test_missing_return_defaults(self):
        module, _, result = run(
            "func main(n: i32) -> i32 { var x: i32 = n; }", 3)
        assert result == 0

    def test_while_with_complex_condition(self):
        _, mem, _ = run("""
array out: i32[1];
func main(n: i32) {
  var k: i32 = 1;
  while (k * k <= n) { k = k + 1; }
  out[0] = k - 1;
}
""", 17)
        assert mem.get_array("out") == [4]

    def test_builtin_math(self):
        _, mem, _ = run("""
array out: f32[2];
func main(n: i32) {
  out[0] = sqrt(16.0);
  out[1] = exp(0.0);
}
""", 0)
        assert mem.get_array("out") == [4.0, 1.0]

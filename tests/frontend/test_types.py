"""Tests for the shared type system."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import TypeMismatchError
from repro.types import (
    BOOL,
    F32,
    F64,
    I8,
    I32,
    I64,
    VOID,
    FloatType,
    IntType,
    PointerType,
    TensorType,
    VectorType,
    common_type,
    parse_type,
    pointer,
    tensor2d,
)


class TestScalarTypes:
    def test_int_bits(self):
        assert I32.bits == 32
        assert I8.bits == 8
        assert I64.bits == 64

    def test_int_words(self):
        assert I32.words == 1
        assert I64.words == 2
        assert I8.words == 1

    def test_void(self):
        assert VOID.bits == 0
        assert str(VOID) == "void"

    def test_bool_is_one_bit(self):
        assert BOOL.bits == 1
        assert BOOL.words == 1

    def test_float_flags(self):
        assert F32.is_float
        assert not I32.is_float
        assert F64.bits == 64

    def test_str_forms(self):
        assert str(I32) == "i32"
        assert str(F32) == "f32"
        assert str(IntType(32, signed=False)) == "u32"

    def test_equality_is_structural(self):
        assert IntType(32) == I32
        assert IntType(16) != I32
        assert FloatType(32) == F32

    def test_hashable(self):
        assert len({I32, IntType(32), F32}) == 2


class TestIntWrap:
    def test_wrap_positive_overflow(self):
        assert I8.wrap(130) == -126

    def test_wrap_negative(self):
        assert I8.wrap(-129) == 127

    def test_wrap_identity(self):
        assert I32.wrap(12345) == 12345

    def test_wrap_unsigned(self):
        u8 = IntType(8, signed=False)
        assert u8.wrap(300) == 44
        assert u8.wrap(-1) == 255

    @given(st.integers(min_value=-10**12, max_value=10**12))
    def test_wrap_is_idempotent(self, value):
        once = I32.wrap(value)
        assert I32.wrap(once) == once

    @given(st.integers(min_value=-10**12, max_value=10**12))
    def test_wrap_in_range(self, value):
        wrapped = I32.wrap(value)
        assert -(1 << 31) <= wrapped < (1 << 31)


class TestCompositeTypes:
    def test_pointer_bits(self):
        assert pointer(F32).bits == 32
        assert pointer(F32).is_pointer

    def test_pointer_str(self):
        assert str(pointer(F32)) == "f32*"
        assert str(PointerType(I32, space=2)) == "i32*@2"

    def test_tensor_geometry(self):
        t = tensor2d(F32, 2, 2)
        assert t.elements == 4
        assert t.bits == 128
        assert t.words == 4
        assert t.is_tensor

    def test_tensor_str(self):
        assert str(tensor2d(F32, 2, 2)) == "tensor<2x2xf32>"

    def test_vector_bits(self):
        assert VectorType(I32, 4).bits == 128

    def test_tensor_nonsquare(self):
        t = TensorType(F32, 1, 4)
        assert t.elements == 4
        assert t.rows == 1


class TestCommonType:
    def test_same(self):
        assert common_type(I32, I32) == I32

    def test_int_widening(self):
        assert common_type(I8, I32) == I32
        assert common_type(I64, I32) == I64

    def test_float_widening(self):
        assert common_type(F32, F64) == F64

    def test_pointer_plus_int(self):
        p = pointer(F32)
        assert common_type(p, I32) == p
        assert common_type(I32, p) == p

    def test_tensor_scalar_mismatch(self):
        with pytest.raises(TypeMismatchError):
            common_type(tensor2d(), F32)

    def test_int_float_mismatch(self):
        with pytest.raises(TypeMismatchError):
            common_type(I32, F32)


class TestParseType:
    @pytest.mark.parametrize("text,expected", [
        ("i32", I32), ("i64", I64), ("f32", F32), ("i1", BOOL),
        ("bool", BOOL), ("int", I32), ("float", F32), ("void", VOID),
    ])
    def test_simple(self, text, expected):
        assert parse_type(text) == expected

    def test_tensor(self):
        assert parse_type("tensor<2x2xf32>") == tensor2d(F32, 2, 2)

    def test_tensor_rect(self):
        assert parse_type("tensor<1x4xi32>") == TensorType(I32, 1, 4)

    def test_pointer(self):
        assert parse_type("f32*") == pointer(F32)

    def test_unknown_raises(self):
        with pytest.raises(TypeMismatchError):
            parse_type("quux")

    @pytest.mark.parametrize("t", [I32, F32, BOOL, I64])
    def test_roundtrip(self, t):
        assert parse_type(str(t)) == t

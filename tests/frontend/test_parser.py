"""Tests for the MiniC parser."""

import pytest

from repro.errors import ParseError
from repro.frontend import ast
from repro.frontend.parser import parse_program
from repro.types import F32, I32, TensorType


def parse_one_func(body, params="n: i32"):
    prog = parse_program(f"func main({params}) {{ {body} }}")
    return prog.functions[0]


class TestTopLevel:
    def test_empty_program(self):
        prog = parse_program("")
        assert prog.arrays == [] and prog.functions == []

    def test_array_decl(self):
        prog = parse_program("array a: f32[16];")
        decl = prog.arrays[0]
        assert decl.name == "a" and decl.elem == F32 and decl.size == 16

    def test_tensor_array_decl(self):
        prog = parse_program("array t: tensor<2x2xf32>[8];")
        assert prog.arrays[0].elem == TensorType(F32, 2, 2)

    def test_func_signature(self):
        prog = parse_program("func f(a: i32, b: f32) -> i32 { }")
        fn = prog.functions[0]
        assert [p.type for p in fn.params] == [I32, F32]
        assert fn.return_type == I32

    def test_func_no_return_type(self):
        prog = parse_program("func f() { }")
        assert prog.functions[0].return_type is None

    def test_junk_at_top_level(self):
        with pytest.raises(ParseError):
            parse_program("banana")

    def test_array_size_must_be_literal(self):
        with pytest.raises(ParseError):
            parse_program("array a: i32[n];")


class TestStatements:
    def test_var_decl(self):
        fn = parse_one_func("var x: i32 = 1;")
        stmt = fn.body.statements[0]
        assert isinstance(stmt, ast.VarDecl)
        assert stmt.declared_type == I32

    def test_var_decl_inferred(self):
        fn = parse_one_func("var x = 2.5;")
        assert fn.body.statements[0].declared_type is None

    def test_assign_scalar(self):
        fn = parse_one_func("var x = 0; x = 3;")
        assert isinstance(fn.body.statements[1].target, ast.Name)

    def test_assign_array(self):
        prog = parse_program(
            "array a: i32[4]; func main() { a[2] = 7; }")
        stmt = prog.functions[0].body.statements[0]
        assert isinstance(stmt.target, ast.Index)

    def test_invalid_assign_target(self):
        with pytest.raises(ParseError):
            parse_one_func("1 + 2 = 3;")

    def test_if_else(self):
        fn = parse_one_func("if (n > 0) { n = 1; } else { n = 2; }",
                            params="n: i32")
        stmt = fn.body.statements[0]
        assert isinstance(stmt, ast.If)
        assert stmt.else_block is not None

    def test_else_if_chain(self):
        fn = parse_one_func(
            "if (n > 1) { } else if (n > 0) { } else { }")
        inner = fn.body.statements[0].else_block.statements[0]
        assert isinstance(inner, ast.If)

    def test_for_loop(self):
        fn = parse_one_func("for (i = 0; i < n; i = i + 1) { }")
        loop = fn.body.statements[0]
        assert isinstance(loop, ast.For)
        assert not loop.parallel
        assert loop.var == "i"

    def test_for_plus_equals(self):
        fn = parse_one_func("for (i = 0; i < n; i += 2) { }")
        update = fn.body.statements[0].update
        assert isinstance(update, ast.BinOp) and update.op == "+"

    def test_for_update_wrong_var(self):
        with pytest.raises(ParseError):
            parse_one_func("for (i = 0; i < n; j = j + 1) { }")

    def test_parallel_for(self):
        fn = parse_one_func("parallel_for (i = 0; i < n; i = i + 1) { }")
        assert fn.body.statements[0].parallel

    def test_while(self):
        fn = parse_one_func("while (n > 0) { n = n - 1; }")
        assert isinstance(fn.body.statements[0], ast.While)

    def test_spawn(self):
        prog = parse_program(
            "func worker(i: i32) { } "
            "func main() { spawn worker(3); }")
        stmt = prog.functions[1].body.statements[0]
        assert isinstance(stmt, ast.SpawnStmt)
        assert stmt.call.func == "worker"

    def test_spawn_requires_call(self):
        with pytest.raises(ParseError):
            parse_program("func main() { spawn 42; }")

    def test_sync(self):
        fn = parse_one_func("sync;")
        assert isinstance(fn.body.statements[0], ast.SyncStmt)

    def test_return_value(self):
        fn = parse_one_func("return n + 1;")
        assert isinstance(fn.body.statements[0], ast.ReturnStmt)

    def test_return_void(self):
        fn = parse_one_func("return;")
        assert fn.body.statements[0].value is None


class TestExpressions:
    def expr(self, text):
        fn = parse_one_func(f"var x = {text};")
        return fn.body.statements[0].init

    def test_precedence_mul_over_add(self):
        e = self.expr("1 + 2 * 3")
        assert e.op == "+" and e.right.op == "*"

    def test_precedence_shift_vs_add(self):
        e = self.expr("1 << 2 + 3")
        # '+' binds tighter than '<<'.
        assert e.op == "<<" and e.right.op == "+"

    def test_parentheses(self):
        e = self.expr("(1 + 2) * 3")
        assert e.op == "*" and e.left.op == "+"

    def test_comparison(self):
        e = self.expr("n <= 4")
        assert e.op == "<="

    def test_logical(self):
        e = self.expr("n > 0 && n < 9")
        assert e.op == "&&"

    def test_unary_minus_folds_literal(self):
        e = self.expr("-5")
        assert isinstance(e, ast.IntLit) and e.value == -5

    def test_unary_minus_on_expr(self):
        e = self.expr("-(n)")
        assert isinstance(e, ast.UnOp) and e.op == "-"

    def test_unary_not(self):
        assert self.expr("!n").op == "!"

    def test_index_expr(self):
        prog = parse_program(
            "array a: i32[4]; func main() { var x = a[3]; }")
        e = prog.functions[0].body.statements[0].init
        assert isinstance(e, ast.Index) and e.base == "a"

    def test_call_expr(self):
        prog = parse_program(
            "func f(x: i32) -> i32 { return x; } "
            "func main() { var y = f(1); }")
        e = prog.functions[1].body.statements[0].init
        assert isinstance(e, ast.CallExpr)

    def test_cast(self):
        e = self.expr("f32(n)")
        assert isinstance(e, ast.CastExpr) and e.target == F32

    def test_builtin_call(self):
        e = self.expr("exp(1.0)")
        assert isinstance(e, ast.CallExpr) and e.func == "exp"

    def test_nested_precedence_deep(self):
        e = self.expr("1 | 2 ^ 3 & 4")
        assert e.op == "|" and e.right.op == "^" and \
            e.right.right.op == "&"

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_one_func("var x = 1")

    def test_unbalanced_paren(self):
        with pytest.raises(ParseError):
            parse_one_func("var x = (1 + 2;")

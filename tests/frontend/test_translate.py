"""Tests for software IR -> uIR translation (paper Algorithm 1)."""

import pytest

from repro.errors import TranslationError
from repro.frontend import compile_minic, translate_module
from repro.core import validate_circuit


def translate(source):
    circuit = translate_module(compile_minic(source))
    assert validate_circuit(circuit, raise_on_error=False) == []
    return circuit


SAXPY = """
array x: f32[16];
array y: f32[16];
func main(n: i32, a: f32) {
  for (i = 0; i < n; i = i + 1) { y[i] = a * x[i] + y[i]; }
}
"""


class TestStage1Regions:
    def test_loop_becomes_task(self):
        c = translate(SAXPY)
        kinds = {t.name: t.kind for t in c.tasks.values()}
        assert kinds["main"] == "func"
        assert any(k == "loop" for k in kinds.values())

    def test_root_is_main(self):
        c = translate(SAXPY)
        assert c.root == "main"

    def test_nested_loops_nest_as_tasks(self):
        c = translate("""
array a: f32[64];
func main(n: i32) {
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < n; j = j + 1) { a[i * n + j] = 1.0; }
  }
}
""")
        loops = [t for t in c.tasks.values() if t.kind == "loop"]
        assert len(loops) == 2
        # Call chain main -> outer -> inner.
        parents = {e.child: e.parent for e in c.task_edges}
        inner = [t.name for t in loops
                 if parents[t.name] != "main"][0]
        assert parents[parents[inner]] == "main"

    def test_detach_becomes_spawned_task(self):
        c = translate("""
array a: i32[8];
func main(n: i32) {
  parallel_for (i = 0; i < n; i = i + 1) { a[i] = i; }
}
""")
        spawn_edges = [e for e in c.task_edges if e.kind == "spawn"]
        assert len(spawn_edges) == 1

    def test_recursive_function_self_edge(self):
        c = translate("""
array o: i32[1];
func fib(n: i32) -> i32 {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
func main(n: i32) { o[0] = fib(n); }
""")
        assert any(e.parent == e.child == "fib" for e in c.task_edges)

    def test_function_abi_order(self):
        # Live-ins of a func task are the declared args, in order,
        # even when the body uses them in reverse.
        c = translate("""
array o: i32[1];
func main(a: i32, b: i32) { o[0] = b * 10 + a; }
""")
        task = c.tasks["main"]
        liveins = sorted((n for n in task.dataflow.nodes
                          if n.kind == "livein"),
                         key=lambda n: n.index)
        assert [n.name for n in liveins] == ["livein_a", "livein_b"]


class TestStage2Dataflow:
    def test_loop_has_single_loopctl(self):
        c = translate(SAXPY)
        loop = next(t for t in c.tasks.values() if t.kind == "loop")
        assert len(loop.dataflow.nodes_of_kind("loopctl")) == 1

    def test_memory_nodes_on_junction(self):
        c = translate(SAXPY)
        loop = next(t for t in c.tasks.values() if t.kind == "loop")
        assert len(loop.junctions) == 1
        assert len(loop.junctions[0].clients) == 3  # 2 loads + 1 store

    def test_load_points_to_array(self):
        c = translate(SAXPY)
        loop = next(t for t in c.tasks.values() if t.kind == "loop")
        arrays = {n.array for n in loop.memory_nodes()}
        assert arrays == {"x", "y"}

    def test_reduction_phi(self):
        c = translate("""
array o: f32[1];
func main(n: i32) {
  var s: f32 = 0.0;
  for (i = 0; i < n; i = i + 1) { s = s + 1.0; }
  o[0] = s;
}
""")
        loop = next(t for t in c.tasks.values() if t.kind == "loop")
        phis = loop.dataflow.nodes_of_kind("phi")
        assert len(phis) == 1
        assert phis[0].back.incoming is not None
        # The reduction result is the loop's live-out.
        assert len(loop.live_out_types) == 1

    def test_predication_of_branches(self):
        c = translate("""
array a: i32[8];
func main(n: i32) {
  for (i = 0; i < n; i = i + 1) {
    if (i % 2 == 0) { a[i] = 1; } else { a[i] = 2; }
  }
}
""")
        loop = next(t for t in c.tasks.values() if t.kind == "loop")
        stores = [n for n in loop.dataflow.nodes if n.kind == "store"]
        assert len(stores) == 2
        assert all(s.pred is not None and s.pred.incoming is not None
                   for s in stores)

    def test_if_merge_becomes_select(self):
        c = translate("""
array o: i32[4];
func main(n: i32) {
  for (i = 0; i < n; i = i + 1) {
    var v: i32 = 0;
    if (i > 2) { v = 5; }
    o[i] = v;
  }
}
""")
        loop = next(t for t in c.tasks.values() if t.kind == "loop")
        assert loop.dataflow.nodes_of_kind("select")

    def test_memory_ordering_edges(self):
        # Store then load of the same array in one iteration must be
        # ordered.
        c = translate("""
array a: i32[8];
array b: i32[8];
func main(n: i32) {
  for (i = 0; i < n; i = i + 1) {
    a[i] = i;
    b[i] = a[i] + 1;
  }
}
""")
        loop = next(t for t in c.tasks.values() if t.kind == "loop")
        loads = [n for n in loop.dataflow.nodes if n.kind == "load"]
        assert any(ld.order_in is not None and
                   ld.order_in.incoming is not None for ld in loads)

    def test_sequential_sibling_loops_ordered(self):
        c = translate("""
array a: f32[8];
func main(n: i32) {
  for (i = 0; i < n; i = i + 1) { a[i] = 1.0; }
  for (j = 0; j < n; j = j + 1) { a[j] = a[j] + 1.0; }
}
""")
        main = c.tasks["main"]
        calls = main.dataflow.nodes_of_kind("call")
        assert len(calls) == 2
        ordered = [cl for cl in calls
                   if cl.order_in is not None and
                   cl.order_in.incoming is not None]
        assert len(ordered) == 1  # second waits for first

    def test_independent_sibling_loops_not_ordered(self):
        c = translate("""
array a: f32[8];
array b: f32[8];
func main(n: i32) {
  for (i = 0; i < n; i = i + 1) { a[i] = 1.0; }
  for (j = 0; j < n; j = j + 1) { b[j] = 2.0; }
}
""")
        main = c.tasks["main"]
        calls = main.dataflow.nodes_of_kind("call")
        assert all(cl.order_in is None for cl in calls)

    def test_self_conflicting_callee_serialized(self):
        # An in-place loop called repeatedly must not overlap itself.
        c = translate("""
array a: f32[16];
func main(n: i32) {
  for (s = 0; s < n; s = s + 1) {
    for (i = 0; i < 16; i = i + 1) { a[i] = a[i] * 2.0; }
  }
}
""")
        outer = next(t for t in c.tasks.values()
                     if t.kind == "loop" and
                     t.dataflow.nodes_of_kind("call"))
        call = outer.dataflow.nodes_of_kind("call")[0]
        assert call.serialize

    def test_carried_memory_accumulator_serializes_loop(self):
        # output[j] += ... through the same address value each
        # iteration -> iterations must not overlap.
        c = translate("""
array o: f32[4];
array w: f32[8];
func main(n: i32, j: i32) {
  for (i = 0; i < n; i = i + 1) {
    var p: i32 = j;
    o[p] = o[p] + w[i];
  }
}
""")
        loop = next(t for t in c.tasks.values() if t.kind == "loop")
        ctl = loop.dataflow.nodes_of_kind("loopctl")[0]
        assert ctl.max_in_flight == 1

    def test_canonical_while_is_counted(self):
        # while (k < n) { k = k + 1 } matches the counted-loop shape.
        c = translate("""
array o: i32[1];
func main(n: i32) {
  var k: i32 = 0;
  while (k < n) { k = k + 1; }
  o[0] = k;
}
""")
        loop = next(t for t in c.tasks.values() if t.kind == "loop")
        assert not loop.dataflow.nodes_of_kind("loopctl")[0].conditional

    def test_while_loop_conditional_control(self):
        # A data-dependent exit (k*k < n) cannot be counted.
        c = translate("""
array o: i32[1];
func main(n: i32) {
  var k: i32 = 0;
  while (k * k < n) { k = k + 1; }
  o[0] = k;
}
""")
        loop = next(t for t in c.tasks.values() if t.kind == "loop")
        ctl = loop.dataflow.nodes_of_kind("loopctl")[0]
        assert ctl.conditional
        assert ctl.cont.incoming is not None

    def test_sync_node_emitted(self):
        c = translate("""
array a: i32[4];
func w(i: i32) { a[i] = i; }
func main(n: i32) {
  spawn w(0);
  sync;
  a[1] = a[0];
}
""")
        main = c.tasks["main"]
        syncs = main.dataflow.nodes_of_kind("sync")
        assert len(syncs) == 1
        # Later memory traffic is ordered after the sync barrier.
        stores = [n for n in main.dataflow.nodes if n.kind == "store"]
        assert any(s.order_in is not None for s in stores)

    def test_return_in_loop_rejected(self):
        # A conditional early return from inside a real loop (the back
        # edge survives) is not supported.
        with pytest.raises(TranslationError):
            translate("""
array a: i32[16];
func main(n: i32) -> i32 {
  for (i = 0; i < n; i = i + 1) {
    if (a[i] > 5) { return i; }
  }
  return 0 - 1;
}
""")

    def test_unconditional_return_degenerates_loop(self):
        # 'return' as the whole body removes the back edge: this is an
        # if, not a loop, and translates fine.
        c = translate("""
func main(n: i32) -> i32 {
  for (i = 0; i < n; i = i + 1) { return i; }
  return 0 - 1;
}
""")
        assert all(t.kind != "loop" for t in c.tasks.values())

    def test_constants_deduplicated(self):
        c = translate("""
array a: i32[8];
func main(n: i32) {
  for (i = 0; i < n; i = i + 1) { a[i] = i * 3 + 3; }
}
""")
        loop = next(t for t in c.tasks.values() if t.kind == "loop")
        threes = [n for n in loop.dataflow.nodes_of_kind("const")
                  if n.value == 3]
        assert len(threes) == 1

    def test_dead_predicate_nodes_pruned(self):
        # A balanced if/else merge needs no block predicate; the
        # inverter must not survive unused.
        c = translate("""
array o: i32[4];
func main(n: i32) {
  for (i = 0; i < n; i = i + 1) {
    var v: i32 = 1;
    if (i > 2) { v = 5; } else { v = 6; }
    o[i] = v;
  }
}
""")
        loop = next(t for t in c.tasks.values() if t.kind == "loop")
        for node in loop.dataflow.nodes:
            if node.kind in ("compute", "select", "const"):
                assert any(p.outgoing for p in node.outputs), \
                    f"dead node {node.name} survived"


class TestLatching:
    def test_loop_invariant_inputs_latched(self):
        c = translate(SAXPY)
        loop = next(t for t in c.tasks.values() if t.kind == "loop")
        for node in loop.dataflow.nodes:
            if node.kind in ("livein", "const"):
                for conn in node.outputs[0].outgoing:
                    assert conn.latched

    def test_func_task_inputs_streamed(self):
        c = translate(SAXPY)
        main = c.tasks["main"]
        for node in main.dataflow.nodes:
            if node.kind == "livein":
                for conn in node.out.outgoing:
                    assert not conn.latched

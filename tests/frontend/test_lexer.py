"""Tests for the MiniC lexer."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import LexError
from repro.frontend.lexer import KEYWORDS, Token, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source) if t.kind != "eof"]


class TestBasics:
    def test_empty(self):
        toks = tokenize("")
        assert len(toks) == 1 and toks[0].kind == "eof"

    def test_identifier(self):
        assert texts("hello _x x1") == ["hello", "_x", "x1"]

    def test_keywords_classified(self):
        for kw in KEYWORDS:
            assert tokenize(kw)[0].kind == "kw"

    def test_ident_containing_keyword(self):
        assert tokenize("format")[0].kind == "ident"

    def test_integers(self):
        toks = tokenize("0 42 1000000")
        assert all(t.kind == "int" for t in toks[:-1])

    def test_floats(self):
        assert tokenize("3.14")[0].kind == "float"
        assert tokenize("1e5")[0].kind == "float"
        assert tokenize("2.5e-3")[0].kind == "float"

    def test_int_vs_float(self):
        assert tokenize("3")[0].kind == "int"
        assert tokenize("3.0")[0].kind == "float"

    def test_two_char_operators(self):
        assert texts("== != <= >= << >> && || += ->") == \
            ["==", "!=", "<=", ">=", "<<", ">>", "&&", "||", "+=", "->"]

    def test_single_char_operators(self):
        assert texts("+ - * / % < > = ! & | ^ ( ) { } [ ] , ; :") == \
            list("+-*/%<>=!&|^(){}[],;:")

    def test_greedy_two_char(self):
        # '<<' lexes as one token, not two '<'.
        assert texts("a<<b") == ["a", "<<", "b"]


class TestCommentsAndWhitespace:
    def test_line_comment(self):
        assert texts("a // comment\n b") == ["a", "b"]

    def test_block_comment(self):
        assert texts("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("/* never ends")

    def test_newlines_update_line_numbers(self):
        toks = tokenize("a\nb\n\nc")
        assert [t.line for t in toks[:-1]] == [1, 2, 4]

    def test_column_tracking(self):
        toks = tokenize("ab cd")
        assert toks[0].column == 1
        assert toks[1].column == 4


class TestErrors:
    def test_unexpected_char(self):
        with pytest.raises(LexError) as err:
            tokenize("a $ b")
        assert err.value.line == 1

    def test_error_position(self):
        with pytest.raises(LexError) as err:
            tokenize("ok\n  @")
        assert err.value.line == 2


class TestProperties:
    @given(st.lists(st.sampled_from(
        ["foo", "42", "3.5", "+", "(", ")", "if", "while", "<<",
         "x_1", ";", "=="]), max_size=30))
    def test_token_count_stable_under_spacing(self, parts):
        tight = " ".join(parts)
        loose = "   ".join(parts)
        assert len(tokenize(tight)) == len(tokenize(loose))

    @given(st.integers(min_value=0, max_value=10**9))
    def test_integer_roundtrip(self, value):
        tok = tokenize(str(value))[0]
        assert tok.kind == "int" and int(tok.text) == value

"""Tests for CFG analyses: dominators, loops, induction recognition."""

import pytest

from repro.frontend import compile_minic
from repro.frontend.builder import IRBuilder
from repro.frontend import cfg
from repro.types import I32


def loops_of(source):
    module = compile_minic(source)
    return module.main, cfg.find_loops(module.main)


SIMPLE_LOOP = """
array a: i32[8];
func main(n: i32) {
  for (i = 0; i < n; i = i + 1) { a[i] = i; }
}
"""

NESTED_LOOPS = """
array a: i32[64];
func main(n: i32) {
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < n; j = j + 1) {
      a[i * n + j] = i + j;
    }
  }
}
"""


class TestRPOAndDominators:
    def test_rpo_starts_at_entry(self):
        fn, _ = loops_of(SIMPLE_LOOP)
        order = cfg.reverse_post_order(fn)
        assert order[0] is fn.entry

    def test_rpo_covers_reachable(self):
        fn, _ = loops_of(NESTED_LOOPS)
        assert len(cfg.reverse_post_order(fn)) == len(fn.blocks)

    def test_entry_dominates_all(self):
        fn, _ = loops_of(NESTED_LOOPS)
        idom = cfg.dominators(fn)
        for block in fn.blocks:
            assert cfg.dominates(idom, fn.entry, block)

    def test_header_dominates_body(self):
        fn, loops = loops_of(SIMPLE_LOOP)
        idom = cfg.dominators(fn)
        loop = loops[0]
        for block in loop.blocks:
            assert cfg.dominates(idom, loop.header, block)

    def test_body_does_not_dominate_header(self):
        fn, loops = loops_of(SIMPLE_LOOP)
        idom = cfg.dominators(fn)
        loop = loops[0]
        body = next(b for b in loop.blocks if b is not loop.header)
        assert not cfg.dominates(idom, body, loop.header)


class TestLoops:
    def test_single_loop_found(self):
        _, loops = loops_of(SIMPLE_LOOP)
        assert len(loops) == 1

    def test_nested_loops_found(self):
        _, loops = loops_of(NESTED_LOOPS)
        assert len(loops) == 2

    def test_nesting_links(self):
        _, loops = loops_of(NESTED_LOOPS)
        inner = min(loops, key=lambda l: len(l.blocks))
        outer = max(loops, key=lambda l: len(l.blocks))
        assert inner.parent is outer
        assert inner in outer.children
        assert inner.depth == 2 and outer.depth == 1

    def test_top_level(self):
        _, loops = loops_of(NESTED_LOOPS)
        tops = cfg.top_level_loops(loops)
        assert len(tops) == 1 and tops[0].parent is None

    def test_exit_blocks(self):
        _, loops = loops_of(SIMPLE_LOOP)
        exits = loops[0].exit_blocks()
        assert len(exits) == 1
        assert exits[0] not in loops[0].blocks

    def test_loop_of_block_innermost(self):
        fn, loops = loops_of(NESTED_LOOPS)
        inner = min(loops, key=lambda l: len(l.blocks))
        body = next(b for b in inner.blocks if b is not inner.header)
        assert cfg.loop_of_block(loops, body) is inner

    def test_no_loops_in_straight_line(self):
        module = compile_minic(
            "array a: i32[1]; func main(n: i32) { a[0] = n; }")
        assert cfg.find_loops(module.main) == []


class TestInduction:
    def test_counted_loop_recognized(self):
        _, loops = loops_of(SIMPLE_LOOP)
        info = cfg.recognize_induction(loops[0])
        assert info is not None
        assert info.phi.name.startswith("i")

    def test_step_and_bound_extraction(self):
        module = compile_minic("""
array a: i32[32];
func main(n: i32) {
  for (i = 2; i < n; i = i + 3) { a[i] = 1; }
}
""")
        loop = cfg.find_loops(module.main)[0]
        info = cfg.recognize_induction(loop)
        assert info.start.value == 2
        assert info.step.value == 3
        assert info.bound.name == "n"

    def test_while_loop_not_counted(self):
        module = compile_minic("""
array a: i32[4];
func main(n: i32) {
  var k: i32 = 0;
  while (k * k < n) { k = k + 1; }
  a[0] = k;
}
""")
        loop = cfg.find_loops(module.main)[0]
        assert cfg.recognize_induction(loop) is None

    def test_variable_step_is_counted(self):
        module = compile_minic("""
array a: i32[64];
func main(n: i32, s: i32) {
  for (k = 0; k < n; k = k + s) { a[k] = 1; }
}
""")
        loop = cfg.find_loops(module.main)[0]
        info = cfg.recognize_induction(loop)
        assert info is not None
        assert info.step.name == "s"


class TestReducibility:
    def test_structured_code_reducible(self):
        fn, _ = loops_of(NESTED_LOOPS)
        assert not cfg.has_irreducible_edges(fn)
        cfg.check_reducible(fn)  # must not raise

"""Tests for the software IR structures and verification."""

import pytest

from repro.errors import IRError, TypeMismatchError
from repro.frontend.builder import IRBuilder
from repro.frontend.ir import (
    BasicBlock,
    Branch,
    Constant,
    Function,
    Module,
    Phi,
    Return,
    result_type,
    users_of,
    verify_function,
    verify_module,
)
from repro.types import BOOL, F32, I32, VOID, PointerType, TensorType


def c(v, t=I32):
    return Constant(v, t)


class TestResultType:
    def test_int_binop(self):
        assert result_type("add", [c(1), c(2)]) == I32

    def test_float_binop(self):
        assert result_type("fadd", [c(1.0, F32), c(2.0, F32)]) == F32

    def test_cmp_returns_bool(self):
        assert result_type("lt", [c(1), c(2)]) == BOOL

    def test_select(self):
        assert result_type(
            "select", [c(1, BOOL), c(1.0, F32), c(2.0, F32)]) == F32

    def test_load(self):
        ptr = Constant(0, PointerType(F32))
        assert result_type("load", [ptr]) == F32

    def test_load_non_pointer_rejected(self):
        with pytest.raises(TypeMismatchError):
            result_type("load", [c(0)])

    def test_store_void(self):
        ptr = Constant(0, PointerType(I32))
        assert result_type("store", [c(1), ptr]) == VOID

    def test_gep_preserves_pointer(self):
        ptr = Constant(0, PointerType(F32))
        assert result_type("gep", [ptr, c(3)]) == PointerType(F32)

    def test_gep_non_pointer_rejected(self):
        with pytest.raises(TypeMismatchError):
            result_type("gep", [c(0), c(1)])

    def test_tensor_ops(self):
        t = TensorType(F32, 2, 2)
        a = Constant((1.0,) * 4, t)
        assert result_type("tmul", [a, a]) == t
        assert result_type("trelu", [a]) == t

    def test_tmul_scalar_rejected(self):
        with pytest.raises(TypeMismatchError):
            result_type("tmul", [c(1.0, F32), c(2.0, F32)])

    def test_fadd_on_ints_rejected(self):
        with pytest.raises(TypeMismatchError):
            result_type("fadd", [c(1), c(2)])

    def test_unknown_opcode(self):
        with pytest.raises(IRError):
            result_type("frobnicate", [c(1)])


class TestModuleStructure:
    def test_duplicate_function_rejected(self):
        m = Module()
        m.add_function(Function("f", []))
        with pytest.raises(IRError):
            m.add_function(Function("f", []))

    def test_duplicate_global_rejected(self):
        m = Module()
        m.add_global("a", I32, 4)
        with pytest.raises(IRError):
            m.add_global("a", I32, 4)

    def test_main_required(self):
        with pytest.raises(IRError):
            Module().main

    def test_global_size_words(self):
        m = Module()
        g = m.add_global("t", TensorType(F32, 2, 2), 3)
        assert g.size_words == 12

    def test_unique_block_names(self):
        f = Function("f", [])
        b1 = f.new_block("x")
        b2 = f.new_block("x")
        assert b1.name != b2.name

    def test_append_after_terminator_rejected(self):
        f = Function("f", [])
        block = f.new_block("entry")
        block.append(Return())
        with pytest.raises(IRError):
            block.append(Return())


class TestVerify:
    def make_module(self):
        b = IRBuilder()
        b.global_array("a", I32, 8)
        b.new_function("main", [("n", I32)])
        return b

    def test_valid_module(self):
        b = self.make_module()
        v = b.add(b.arg("n"), 1)
        b.store(v, b.index(b.module.globals["a"], 0))
        b.ret()
        assert verify_module(b.module) == []

    def test_missing_terminator(self):
        b = self.make_module()
        b.add(b.arg("n"), 1)
        problems = verify_module(b.module)
        assert any("terminator" in p for p in problems)

    def test_foreign_operand_detected(self):
        b = self.make_module()
        other = Function("other", [("x", I32)])
        b.current.append(
            __import__("repro.frontend.ir", fromlist=["Instruction"])
            .Instruction("add", [other.args[0], Constant(1, I32)], I32,
                         "bad"))
        b.ret()
        problems = verify_module(b.module)
        assert any("not defined" in p for p in problems)

    def test_phi_foreign_block(self):
        b = self.make_module()
        foreign = BasicBlock("foreign")
        phi = Phi(I32, "p")
        phi.add_incoming(foreign, Constant(0, I32))
        b.current.append(phi)
        b.ret()
        problems = verify_module(b.module)
        assert any("foreign block" in p for p in problems)

    def test_branch_to_foreign_block(self):
        b = self.make_module()
        b.current.append(Branch(BasicBlock("nowhere")))
        problems = verify_module(b.module)
        assert any("foreign block" in p for p in problems)


class TestUsers:
    def test_users_of(self):
        b = IRBuilder()
        b.new_function("main", [("n", I32)])
        v = b.add(b.arg("n"), 1)
        w = b.mul(v, v)
        b.ret(w)
        uses = users_of(b.function)
        # v is used twice by w (both mul operands).
        assert uses[v] == [w, w]
        assert len(uses[b.arg("n")]) == 1


class TestDump:
    def test_dump_contains_structure(self, saxpy_source=None):
        b = IRBuilder()
        b.new_function("main", [("n", I32)])
        b.ret()
        text = b.module.dump()
        assert "func @main" in text
        assert "entry:" in text

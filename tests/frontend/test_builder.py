"""Tests for the IR builder's structured helpers."""

import pytest

from repro.errors import IRError
from repro.frontend.builder import IRBuilder
from repro.frontend.interp import Interpreter, Memory
from repro.frontend.ir import Detach, Phi, verify_module
from repro.types import BOOL, F32, I32


class TestBasics:
    def test_const_inference(self):
        b = IRBuilder()
        assert b.const(3).type == I32
        assert b.const(2.5).type == F32
        assert b.const(True).type == BOOL

    def test_unknown_arg(self):
        b = IRBuilder()
        b.new_function("f", [("x", I32)])
        with pytest.raises(IRError):
            b.arg("y")

    def test_emit_names_are_fresh(self):
        b = IRBuilder()
        b.new_function("f", [("x", I32)])
        v1 = b.add(b.arg("x"), 1)
        v2 = b.add(b.arg("x"), 2)
        assert v1.name != v2.name


class TestForRange:
    def build_sum(self, bound):
        b = IRBuilder()
        b.global_array("out", I32, 1)
        b.new_function("main", [("n", I32)])
        with b.for_range("i", 0, b.arg("n")) as loop:
            acc = loop.carry(0, I32, "acc")
            nxt = b.add(acc, loop.var)
            loop.set_carry(acc, nxt)
        b.store(acc, b.index(b.module.globals["out"], 0))
        b.ret()
        return b.module

    def test_loop_structure_verifies(self):
        module = self.build_sum(5)
        assert verify_module(module) == []

    def test_loop_executes(self):
        module = self.build_sum(5)
        mem = Memory(module)
        Interpreter(module, mem).run(5)
        assert mem.get_array("out") == [10]

    def test_zero_trip_loop(self):
        module = self.build_sum(0)
        mem = Memory(module)
        Interpreter(module, mem).run(0)
        assert mem.get_array("out") == [0]

    def test_missing_carry_update_raises(self):
        b = IRBuilder()
        b.new_function("main", [("n", I32)])
        with pytest.raises(IRError):
            with b.for_range("i", 0, b.arg("n")) as loop:
                loop.carry(0, I32)

    def test_carry_phi_in_header(self):
        b = IRBuilder()
        b.new_function("main", [("n", I32)])
        with b.for_range("i", 0, b.arg("n")) as loop:
            acc = loop.carry(0, I32)
            loop.set_carry(acc, b.add(acc, 1))
        b.ret()
        assert isinstance(acc, Phi)
        assert acc.block is loop.header


class TestParallelFor:
    def test_detach_structure(self):
        b = IRBuilder()
        b.global_array("a", I32, 8)
        b.new_function("main", [("n", I32)])
        with b.parallel_for("i", 0, b.arg("n")) as i:
            b.store(i, b.index(b.module.globals["a"], i))
        b.ret()
        assert verify_module(b.module) == []
        detaches = [instr for instr in b.function.instructions()
                    if isinstance(instr, Detach)]
        assert len(detaches) == 1

    def test_parallel_for_serial_semantics(self):
        b = IRBuilder()
        b.global_array("a", I32, 8)
        b.new_function("main", [("n", I32)])
        with b.parallel_for("i", 0, b.arg("n")) as i:
            b.store(b.mul(i, i), b.index(b.module.globals["a"], i))
        b.ret()
        mem = Memory(b.module)
        Interpreter(b.module, mem).run(8)
        assert mem.get_array("a") == [i * i for i in range(8)]


class TestIfHelpers:
    def test_if_then(self):
        b = IRBuilder()
        b.global_array("out", I32, 1)
        b.new_function("main", [("n", I32)])
        cond = b.cmp("gt", b.arg("n"), 3)
        with b.if_then(cond):
            b.store(1, b.index(b.module.globals["out"], 0))
        b.ret()
        assert verify_module(b.module) == []
        mem = Memory(b.module)
        Interpreter(b.module, mem).run(5)
        assert mem.get_array("out") == [1]

    def test_if_else_with_values(self):
        b = IRBuilder()
        b.new_function("main", [("n", I32)], I32)
        cond = b.cmp("lt", b.arg("n"), 0)
        with b.if_else(cond) as ie:
            with ie.then():
                ie.then_value(b.const(-1))
            with ie.otherwise():
                ie.else_value(b.const(1))
        b.ret(ie.phi)
        assert verify_module(b.module) == []
        assert Interpreter(b.module).run(-5) == -1
        assert Interpreter(b.module).run(5) == 1


class TestMemoryHelpers:
    def test_load_store_elem_tensor(self):
        from repro.types import TensorType
        b = IRBuilder()
        t = TensorType(F32, 2, 2)
        arr = b.global_array("tiles", t, 2)
        b.new_function("main", [])
        v = b.load_elem(arr, 0)
        b.store_elem(arr, 1, v)
        b.ret()
        opcodes = [i.opcode for i in b.function.instructions()]
        assert "tload" in opcodes and "tstore" in opcodes

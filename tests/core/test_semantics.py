"""Property tests: core op semantics agree with Python/interpreter."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.semantics import eval_compute, poison_value, tensor_matmul
from repro.errors import SimulationError
from repro.types import BOOL, F32, I32, TensorType

ints = st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1)
floats = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)


class TestIntOps:
    @given(ints, ints)
    def test_add_wraps(self, a, b):
        assert eval_compute("add", [a, b], I32) == I32.wrap(a + b)

    @given(ints, ints)
    def test_sub(self, a, b):
        assert eval_compute("sub", [a, b], I32) == I32.wrap(a - b)

    @given(ints, st.integers(min_value=1, max_value=10**6))
    def test_divmod_identity(self, a, b):
        q = eval_compute("div", [a, b], I32)
        r = eval_compute("rem", [a, b], I32)
        assert q * b + r == a

    @given(st.integers(-1000, 1000))
    def test_div_truncates_toward_zero(self, a):
        q = eval_compute("div", [a, 7], I32)
        assert q == int(a / 7)

    def test_div_zero_raises(self):
        with pytest.raises(SimulationError):
            eval_compute("div", [1, 0], I32)

    @given(ints, st.integers(0, 31))
    def test_shl_matches_python(self, a, s):
        assert eval_compute("shl", [a, s], I32) == I32.wrap(a << s)

    @given(ints)
    def test_lshr_nonnegative(self, a):
        assert eval_compute("lshr", [a, 1], I32) >= 0

    @given(ints, ints)
    def test_comparisons(self, a, b):
        assert eval_compute("lt", [a, b], BOOL) == (a < b)
        assert eval_compute("ge", [a, b], BOOL) == (a >= b)
        assert eval_compute("eq", [a, b], BOOL) == (a == b)


class TestFloatOps:
    @given(floats, floats)
    def test_fadd(self, a, b):
        assert eval_compute("fadd", [a, b], F32) == a + b

    @given(floats)
    def test_exp_matches_math(self, a):
        small = max(min(a, 50.0), -50.0)
        assert eval_compute("exp", [small], F32) == math.exp(small)

    def test_fdiv_zero_raises(self):
        with pytest.raises(SimulationError):
            eval_compute("fdiv", [1.0, 0.0], F32)

    @given(st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
    def test_sqrt(self, a):
        assert eval_compute("sqrt", [a], F32) == math.sqrt(a)


class TestSelectGep:
    @given(st.booleans(), ints, ints)
    def test_select(self, c, a, b):
        assert eval_compute("select", [c, a, b], I32) == (a if c else b)

    @given(st.integers(0, 10**6), st.integers(0, 10**4),
           st.integers(1, 8))
    def test_gep_scaling(self, base, idx, scale):
        assert eval_compute("gep", [base, idx, scale], I32) == \
            base + idx * scale


class TestTensorOps:
    T = TensorType(F32, 2, 2)

    def test_identity_matmul(self):
        ident = (1.0, 0.0, 0.0, 1.0)
        a = (1.0, 2.0, 3.0, 4.0)
        assert tensor_matmul(a, ident, self.T) == a

    @given(st.tuples(*[floats] * 4), st.tuples(*[floats] * 4))
    def test_tadd_elementwise(self, a, b):
        out = eval_compute("tadd", [a, b], self.T)
        assert out == tuple(x + y for x, y in zip(a, b))

    @given(st.tuples(*[floats] * 4))
    def test_trelu_nonnegative(self, a):
        out = eval_compute("trelu", [a], self.T)
        assert all(v >= 0 for v in out)
        assert all(o == (v if v > 0 else 0.0) for o, v in zip(out, a))

    @given(st.tuples(*[st.floats(-100, 100)] * 4))
    def test_tmul_identity_right(self, a):
        ident = (1.0, 0.0, 0.0, 1.0)
        out = eval_compute("tmul", [a, ident], self.T)
        assert all(abs(o - v) < 1e-9 for o, v in zip(out, a))


class TestPoison:
    def test_poison_scalar(self):
        assert poison_value(I32) == 0
        assert poison_value(F32) == 0.0

    def test_poison_tensor_shape(self):
        t = TensorType(F32, 2, 2)
        assert poison_value(t) == (0.0, 0.0, 0.0, 0.0)

    def test_unknown_op(self):
        with pytest.raises(SimulationError):
            eval_compute("zorp", [1], I32)

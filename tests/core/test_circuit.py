"""Tests for AcceleratorCircuit / TaskBlock / structures / validation."""

import pytest

from repro.core import (
    AcceleratorCircuit,
    Cache,
    Junction,
    Scratchpad,
    TaskBlock,
    TaskEdge,
    validate_circuit,
)
from repro.core.nodes import (
    CallNode,
    ComputeNode,
    ConstNode,
    LiveIn,
    LiveOut,
    LoadNode,
    LoopControl,
)
from repro.errors import GraphError, ValidationError
from repro.types import F32, I32


def minimal_circuit():
    c = AcceleratorCircuit("t")
    cache = c.add_structure(Cache("l1"))
    main = TaskBlock("main", "func")
    main.live_in_types = [I32]
    li = main.dataflow.add(LiveIn(0, I32, name="livein_n"))
    lo = main.dataflow.add(LiveOut(0, I32, name="liveout0"))
    main.live_out_types = [I32]
    main.dataflow.connect(li.out, lo.inp)
    c.add_task(main)
    return c, main, cache


class TestCircuitStructure:
    def test_root_defaults_to_first(self):
        c, main, _ = minimal_circuit()
        assert c.root_task is main

    def test_duplicate_task_rejected(self):
        c, main, _ = minimal_circuit()
        with pytest.raises(GraphError):
            c.add_task(TaskBlock("main"))

    def test_duplicate_structure_rejected(self):
        c, _, _ = minimal_circuit()
        with pytest.raises(GraphError):
            c.add_structure(Cache("l1"))

    def test_edge_requires_known_tasks(self):
        c, _, _ = minimal_circuit()
        with pytest.raises(GraphError):
            c.add_task_edge(TaskEdge("main", "ghost"))

    def test_default_cache(self):
        c, _, cache = minimal_circuit()
        assert c.default_cache is cache

    def test_array_home_defaults_to_cache(self):
        c, _, cache = minimal_circuit()
        assert c.home_of("whatever") is cache

    def test_bad_task_kind(self):
        with pytest.raises(GraphError):
            TaskBlock("x", "banana")

    def test_bad_edge_kind(self):
        with pytest.raises(GraphError):
            TaskEdge("a", "b", kind="teleport")

    def test_stats(self):
        c, _, _ = minimal_circuit()
        s = c.stats()
        assert s["tasks"] == 1 and s["nodes"] == 2


class TestJunctions:
    def test_attach_reindex(self):
        c, main, cache = minimal_circuit()
        ld = main.dataflow.add(LoadNode(F32, name="ld"))
        j = main.add_junction(Junction("j", cache))
        j.attach(ld)
        main.reindex_junctions()
        assert ld.junction_index == 0
        assert main.junction_of(ld) is j

    def test_attach_non_memory_rejected(self):
        c, main, cache = minimal_circuit()
        j = Junction("j", cache)
        with pytest.raises(GraphError):
            j.attach(ConstNode(1, I32))

    def test_remove_nonempty_junction_rejected(self):
        c, main, cache = minimal_circuit()
        ld = main.dataflow.add(LoadNode(F32))
        j = main.add_junction(Junction("j", cache))
        j.attach(ld)
        with pytest.raises(GraphError):
            main.remove_junction(j)

    def test_read_write_counts(self):
        from repro.core.nodes import StoreNode
        c, main, cache = minimal_circuit()
        j = main.add_junction(Junction("j", cache))
        j.attach(main.dataflow.add(LoadNode(F32, name="l1")))
        j.attach(main.dataflow.add(StoreNode(F32, name="s1")))
        assert j.n_read == 1 and j.n_write == 1


class TestValidation:
    def test_minimal_valid(self):
        c, _, _ = minimal_circuit()
        assert validate_circuit(c, raise_on_error=False) == []

    def test_undriven_input_detected(self):
        c, main, _ = minimal_circuit()
        add = main.dataflow.add(ComputeNode("add", I32))
        problems = validate_circuit(c, raise_on_error=False)
        assert any("not driven" in p for p in problems)

    def test_memory_node_needs_junction(self):
        c, main, cache = minimal_circuit()
        ld = main.dataflow.add(LoadNode(F32, name="orphan"))
        li = main.dataflow.node_named("livein_n")
        main.dataflow.connect(li.out, ld.addr)
        problems = validate_circuit(c, raise_on_error=False)
        assert any("junction" in p for p in problems)

    def test_call_to_unknown_task(self):
        c, main, _ = minimal_circuit()
        call = main.dataflow.add(CallNode("ghost", [I32], I32))
        li = main.dataflow.node_named("livein_n")
        main.dataflow.connect(li.out, call.arg_ports[0])
        problems = validate_circuit(c, raise_on_error=False)
        assert any("unknown task" in p for p in problems)

    def test_missing_task_edge_detected(self):
        c, main, _ = minimal_circuit()
        child = TaskBlock("child", "func")
        child.live_in_types = [I32]
        cli = child.dataflow.add(LiveIn(0, I32))
        c.add_task(child)
        call = main.dataflow.add(CallNode("child", [I32], []))
        li = main.dataflow.node_named("livein_n")
        main.dataflow.connect(li.out, call.arg_ports[0])
        problems = validate_circuit(c, raise_on_error=False)
        assert any("missing task edge" in p for p in problems)

    def test_loopctl_in_func_task_rejected(self):
        c, main, _ = minimal_circuit()
        ctl = main.dataflow.add(LoopControl())
        for p in (ctl.start, ctl.bound, ctl.step):
            cn = main.dataflow.add(ConstNode(0, I32))
            main.dataflow.connect(cn.out, p)
        problems = validate_circuit(c, raise_on_error=False)
        assert any("non-loop task" in p for p in problems)

    def test_validation_error_raises(self):
        c, main, _ = minimal_circuit()
        main.dataflow.add(ComputeNode("add", I32))
        with pytest.raises(ValidationError):
            validate_circuit(c)


class TestStructures:
    def test_scratchpad_ports(self):
        s = Scratchpad("s", banks=4, ports_per_bank=2)
        assert s.total_ports == 8

    def test_cache_geometry(self):
        cache = Cache("c", size_words=1024, banks=2, line_words=4)
        assert cache.lines_per_bank == 128

    def test_describe_strings(self):
        assert "scratchpad" in Scratchpad("s").describe()
        assert "cache" in Cache("c").describe()

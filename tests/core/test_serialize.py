"""Tests for circuit JSON round-trip and dot export."""

import json

import pytest

from repro.core import validate_circuit
from repro.core.serialize import (
    circuit_from_dict,
    circuit_to_dict,
    load_circuit,
    save_circuit,
    to_dot,
)
from repro.frontend import compile_minic, translate_module
from repro.frontend.interp import Memory
from repro.opt import (
    ExecutionTiling,
    MemoryLocalization,
    OpFusion,
    PassManager,
    TensorOps,
)
from repro.sim import simulate

SRC = """
array x: f32[32];
array y: f32[32];
func main(n: i32, a: f32) {
  for (i = 0; i < n; i = i + 1) {
    if (i % 2 == 0) { y[i] = a * x[i]; } else { y[i] = x[i]; }
  }
}
"""

RECURSIVE = """
array o: i32[1];
func fib(n: i32) -> i32 {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
func main(n: i32) { o[0] = fib(n); }
"""


def roundtrip(circuit):
    data = json.loads(json.dumps(circuit_to_dict(circuit)))
    return circuit_from_dict(data)


def build(src=SRC, passes=()):
    c = translate_module(compile_minic(src))
    if passes:
        PassManager(list(passes)).run(c)
    return c


class TestRoundTrip:
    def test_structure_preserved(self):
        c = build()
        c2 = roundtrip(c)
        assert c2.stats() == c.stats()
        assert validate_circuit(c2, raise_on_error=False) == []

    def test_node_kinds_preserved(self):
        c = build()
        c2 = roundtrip(c)
        for name, task in c.tasks.items():
            kinds = sorted(n.kind for n in task.dataflow.nodes)
            kinds2 = sorted(n.kind
                            for n in c2.tasks[name].dataflow.nodes)
            assert kinds == kinds2

    def test_connection_attrs_preserved(self):
        c = build(passes=[OpFusion()])
        c2 = roundtrip(c)
        def attr_multiset(circ):
            out = []
            for t in circ.tasks.values():
                for conn in t.dataflow.connections:
                    out.append((t.name, conn.src.node.name,
                                conn.dst.node.name, conn.buffered,
                                conn.latched, conn.depth))
            return sorted(out)
        assert attr_multiset(c) == attr_multiset(c2)

    def test_roundtrip_after_every_pass_stack(self):
        for passes in ([], [OpFusion()], [MemoryLocalization()],
                       [ExecutionTiling(2)]):
            c = build(passes=passes)
            c2 = roundtrip(c)
            assert c2.stats() == c.stats()

    def test_simulation_identical_after_roundtrip(self):
        module = compile_minic(SRC)
        c = translate_module(module)
        c2 = roundtrip(c)
        def run(circuit):
            mem = Memory(module)
            mem.set_array("x", [float(i) for i in range(32)])
            r = simulate(circuit, mem, [32, 3.0])
            return r.cycles, mem.words
        assert run(c) == run(c2)

    def test_recursive_circuit_roundtrip(self):
        module = compile_minic(RECURSIVE)
        c = translate_module(module)
        c2 = roundtrip(c)
        mem = Memory(module)
        r = simulate(c2, mem, [9])
        assert mem.get_array("o") == [34]

    def test_tensor_nodes_roundtrip(self):
        src = """
array a: tensor<2x2xf32>[4];
array b: tensor<2x2xf32>[4];
func main(n: i32) {
  for (i = 0; i < n; i = i + 1) { b[i] = trelu(a[i]); }
}
"""
        c = build(src)
        c2 = roundtrip(c)
        tn = [n for n in c2.all_nodes() if n.kind == "tensor"]
        assert tn and tn[0].op == "trelu"

    def test_fused_nodes_roundtrip(self):
        src = """
array a: i32[32];
func main(n: i32) {
  for (i = 0; i < n; i = i + 1) { a[(i * 2 + 1) & 31] = i; }
}
"""
        c = build(src, passes=[OpFusion()])
        c2 = roundtrip(c)
        fused = [n for n in c2.all_nodes() if n.kind == "fused"]
        assert fused
        assert fused[0].exprs == [
            n for n in c.all_nodes() if n.kind == "fused"][0].exprs

    def test_save_load_file(self, tmp_path):
        c = build()
        path = str(tmp_path / "circ.json")
        save_circuit(c, path)
        c2 = load_circuit(path)
        assert c2.name == c.name
        assert c2.stats() == c.stats()

    def test_bad_format_rejected(self):
        from repro.errors import GraphError
        with pytest.raises(GraphError):
            circuit_from_dict({"format": 999})


class TestDot:
    def test_dot_contains_tasks_and_edges(self):
        c = build()
        dot = to_dot(c)
        assert dot.startswith("digraph")
        for task in c.tasks.values():
            assert task.name in dot
        assert "->" in dot
        assert dot.rstrip().endswith("}")

    def test_dot_marks_latched_edges(self):
        dot = to_dot(build())
        assert "style=dashed" in dot       # latched live-ins
        assert "style=dotted" in dot       # task edges

"""Tests for the base uIR graph machinery."""

import pytest

from repro.core.graph import Dataflow
from repro.core.nodes import ComputeNode, ConstNode, LiveIn, PhiNode
from repro.errors import GraphError
from repro.types import F32, I32


def small_df():
    df = Dataflow("t")
    a = df.add(LiveIn(0, I32, name="a"))
    b = df.add(ConstNode(2, I32, name="two"))
    add = df.add(ComputeNode("add", I32, name="add"))
    df.connect(a.out, add.in_ports[0])
    df.connect(b.out, add.in_ports[1])
    return df, a, b, add


class TestConstruction:
    def test_node_ids_unique(self):
        df, a, b, add = small_df()
        assert len({n.id for n in df.nodes}) == 3

    def test_double_ownership_rejected(self):
        df, a, *_ = small_df()
        other = Dataflow("o")
        with pytest.raises(GraphError):
            other.add(a)

    def test_connect_directions_enforced(self):
        df, a, b, add = small_df()
        with pytest.raises(GraphError):
            df.connect(add.in_ports[0], a.out)

    def test_input_single_driver(self):
        df, a, b, add = small_df()
        with pytest.raises(GraphError):
            df.connect(b.out, add.in_ports[0])

    def test_fanout_allowed(self):
        df, a, b, add = small_df()
        mul = df.add(ComputeNode("mul", I32, name="mul"))
        df.connect(a.out, mul.in_ports[0])
        df.connect(a.out, mul.in_ports[1])
        assert len(a.out.outgoing) == 3

    def test_duplicate_port_name_rejected(self):
        node = ComputeNode("add", I32)
        with pytest.raises(GraphError):
            node.add_in("a", I32)

    def test_port_lookup(self):
        _, a, _, add = small_df()
        assert add.port("a") is add.in_ports[0]
        with pytest.raises(GraphError):
            add.port("zzz")

    def test_connection_width_polymorphism(self):
        df = Dataflow("t")
        a = df.add(LiveIn(0, F32))
        c = df.add(ComputeNode("fadd", F32))
        conn = df.connect(a.out, c.in_ports[0])
        assert conn.width_bits == 32


class TestMutation:
    def test_disconnect(self):
        df, a, b, add = small_df()
        conn = add.in_ports[0].incoming
        df.disconnect(conn)
        assert add.in_ports[0].incoming is None
        assert conn not in a.out.outgoing

    def test_remove_node_cleans_edges(self):
        df, a, b, add = small_df()
        df.remove(add)
        assert add not in df.nodes
        assert a.out.outgoing == []
        assert b.out.outgoing == []

    def test_rewire_output(self):
        df, a, b, add = small_df()
        c = df.add(ConstNode(9, I32, name="nine"))
        sink = df.add(ComputeNode("mul", I32, name="sink"))
        df.connect(add.out, sink.in_ports[0])
        df.connect(add.out, sink.in_ports[1])
        df.rewire_output(add.out, c.out)
        assert add.out.outgoing == []
        assert len(c.out.outgoing) == 2
        assert sink.in_ports[0].incoming.src is c.out


class TestTopology:
    def test_topological_order(self):
        df, a, b, add = small_df()
        order = df.topological_order()
        assert order.index(add) > order.index(a)
        assert order.index(add) > order.index(b)

    def test_phi_back_edge_not_a_cycle(self):
        df = Dataflow("t")
        phi = df.add(PhiNode(I32, name="p"))
        init = df.add(ConstNode(0, I32))
        inc = df.add(ComputeNode("add", I32, name="inc"))
        one = df.add(ConstNode(1, I32, name="one"))
        df.connect(init.out, phi.init)
        df.connect(phi.out, inc.in_ports[0])
        df.connect(one.out, inc.in_ports[1])
        df.connect(inc.out, phi.back)
        order = df.topological_order()
        assert len(order) == 4

    def test_true_cycle_detected(self):
        df = Dataflow("t")
        n1 = df.add(ComputeNode("add", I32, name="n1"))
        n2 = df.add(ComputeNode("add", I32, name="n2"))
        df.connect(n1.out, n2.in_ports[0])
        df.connect(n2.out, n1.in_ports[0])
        with pytest.raises(GraphError):
            df.topological_order()

    def test_successors_predecessors(self):
        df, a, b, add = small_df()
        assert set(add.predecessors()) == {a, b}
        assert list(a.successors()) == [add]

    def test_stats(self):
        df, *_ = small_df()
        assert df.stats() == {"nodes": 3, "connections": 2}

"""Tests for uIR node kinds."""

import pytest

from repro.core.nodes import (
    CallNode,
    ComputeNode,
    ConstNode,
    FusedComputeNode,
    LiveIn,
    LiveOut,
    LoadNode,
    LoopControl,
    PhiNode,
    SelectNode,
    SpawnNode,
    StoreNode,
    SyncNode,
    TensorComputeNode,
)
from repro.errors import GraphError
from repro.types import BOOL, F32, I32, VOID, TensorType


class TestPorts:
    def test_compute_arity(self):
        n = ComputeNode("add", I32, arity=2)
        assert [p.name for p in n.in_ports] == ["a", "b"]
        assert n.out.type == I32

    def test_compute_unary(self):
        n = ComputeNode("neg", I32, arity=1)
        assert len(n.in_ports) == 1

    def test_compute_mixed_operand_types(self):
        n = ComputeNode("lt", BOOL, operand_types=[I32, I32])
        assert n.in_ports[0].type == I32
        assert n.out.type == BOOL

    def test_loopctl_ports(self):
        ctl = LoopControl()
        for name in ("start", "bound", "step"):
            assert ctl.port(name).is_input
        for name in ("index", "active", "done", "final"):
            assert not ctl.port(name).is_input
        assert ctl.cont is None

    def test_conditional_loopctl_has_cont(self):
        ctl = LoopControl(conditional=True)
        assert ctl.cont is not None

    def test_loopctl_default_stages(self):
        # Paper's 5-stage control path (buffer/phi/i++/cmp/branch).
        assert LoopControl().pipeline_stages == 5

    def test_phi_ports(self):
        phi = PhiNode(F32)
        assert phi.init.type == F32 and phi.back.type == F32
        assert phi.final.type == F32

    def test_load_predication_lazy(self):
        ld = LoadNode(F32)
        assert ld.pred is None
        p = ld.enable_predicate()
        assert ld.pred is p
        assert ld.enable_predicate() is p  # idempotent

    def test_store_ports(self):
        s = StoreNode(F32)
        assert s.value_type == F32
        assert s.done.type == BOOL

    def test_call_multi_result(self):
        c = CallNode("child", [I32, F32], [F32, I32])
        assert len(c.arg_ports) == 2
        assert len(c.ret_ports) == 2
        assert c.ret_ports[0].type == F32

    def test_call_void_result(self):
        c = CallNode("child", [I32], VOID)
        assert c.ret_ports == []

    def test_spawn_no_results(self):
        s = SpawnNode("child", [I32])
        assert s.outputs == [s.issued]

    def test_sync_ports(self):
        s = SyncNode()
        assert s.done.type == BOOL
        assert s.order_in is None
        s.enable_order_in()
        assert s.order_in is not None

    def test_tensor_node_requires_tensor_type(self):
        with pytest.raises(GraphError):
            TensorComputeNode("tmul", F32)

    def test_tensor_node_kind(self):
        t = TensorType(F32, 2, 2)
        node = TensorComputeNode("tmul", t)
        assert node.kind == "tensor"
        assert node.out.type == t


class TestFusedNode:
    def test_fused_delay_is_sum(self):
        from repro.core import oplib
        node = FusedComputeNode(
            "f", [I32, I32], I32,
            exprs=[("add", [("in", 0), ("in", 1)], I32, 1),
                   ("shl", [("expr", 0), ("in", 1)], I32, 1)])
        expected = (oplib.op_info("add", I32).delay_ns
                    + oplib.op_info("shl", I32).delay_ns)
        assert abs(node.delay_ns - expected) < 1e-9
        assert node.latency == 1

    def test_fused_describe(self):
        node = FusedComputeNode(
            "f", [I32], I32, exprs=[("neg", [("in", 0)], I32, 1)])
        assert "neg" in node.describe()


class TestOpLib:
    def test_known_ops_have_costs(self):
        from repro.core import oplib
        from repro.rtl.library import COMPONENT_COSTS
        for op in oplib.known_ops():
            info = oplib.op_info(op)
            assert info.area_class in COMPONENT_COSTS, op

    def test_float_comparison_dispatch(self):
        from repro.core import oplib
        assert oplib.op_info("lt", F32).delay_ns != \
            oplib.op_info("lt", I32).delay_ns

    def test_tensor_dispatch(self):
        from repro.core import oplib
        t = TensorType(F32, 2, 2)
        assert oplib.op_info("mul", t).area_class == "tensor_mul"

    def test_fusable_set(self):
        from repro.core import oplib
        assert oplib.is_fusable("add", I32)
        assert not oplib.is_fusable("fadd", F32)
        assert not oplib.is_fusable("mul", I32)
        assert oplib.is_fusable("select", F32)

    def test_unknown_op_raises(self):
        from repro.core import oplib
        with pytest.raises(KeyError):
            oplib.op_info("bogus")

"""Source provenance: AST line -> SSA -> uIR node -> serialization."""

import json

from repro.core import SourceLoc, merge_provenance, provenance_label
from repro.core.serialize import circuit_from_dict, circuit_to_dict, \
    to_dot
from repro.frontend import compile_minic, translate_module
from repro.opt import OpFusion, PassManager
from repro.workloads import WORKLOADS

GEMM_SRC = """
array A: f32[64];
array B: f32[64];
array C: f32[64];
func main(n: i32) {
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < n; j = j + 1) {
      var acc = 0.0;
      for (k = 0; k < n; k = k + 1) {
        acc = acc + A[i * n + k] * B[k * n + j];
      }
      C[i * n + j] = acc;
    }
  }
}
"""


class TestSourceLoc:
    def test_label_forms(self):
        assert SourceLoc("dir/gemm.mc", 14, "loop_j").label() == \
            "gemm.mc:14 (loop_j)"
        assert SourceLoc("gemm.mc", 0, "main").label() == \
            "gemm.mc (main)"
        assert SourceLoc().label() == ""

    def test_dict_round_trip(self):
        loc = SourceLoc("a.mc", 3, "main")
        assert SourceLoc.from_dict(loc.to_dict()) == loc

    def test_merge_dedups_and_sorts(self):
        a = SourceLoc("a.mc", 2, "t")
        b = SourceLoc("a.mc", 1, "t")
        merged = merge_provenance((a,), (b,), (a,))
        assert merged == (b, a)

    def test_label_of_merged_set(self):
        a = SourceLoc("a.mc", 1, "t")
        b = SourceLoc("a.mc", 2, "t")
        assert provenance_label((a, b)) == "a.mc:1 (t) (+1 more)"
        assert provenance_label(()) == ""


class TestFrontendThreading:
    def test_every_node_carries_provenance(self):
        module = compile_minic(GEMM_SRC, filename="gemm.mc")
        circuit = translate_module(module, name="gemm_prov")
        for task in circuit.tasks.values():
            for node in task.dataflow.nodes:
                assert node.provenance, \
                    f"{task.name}.{node.name} lost provenance"
                assert node.provenance[0].file == "gemm.mc"

    def test_compute_nodes_point_at_real_lines(self):
        module = compile_minic(GEMM_SRC, filename="gemm.mc")
        circuit = translate_module(module, name="gemm_prov2")
        src_lines = GEMM_SRC.splitlines()
        for task in circuit.tasks.values():
            for node in task.dataflow.nodes:
                if node.kind in ("load", "store", "compute"):
                    line = node.provenance[0].line
                    assert 0 < line <= len(src_lines)

    def test_workload_modules_are_stamped(self):
        w = WORKLOADS["gemm"]
        circuit = translate_module(w.module(), name="gemm_wl")
        locs = {loc for task in circuit.tasks.values()
                for node in task.dataflow.nodes
                for loc in node.provenance}
        assert all(loc.file == "gemm.mc" for loc in locs)
        assert any(loc.line > 0 for loc in locs)


class TestPassPreservation:
    def test_fusion_merges_origins(self):
        module = compile_minic(GEMM_SRC, filename="gemm.mc")
        circuit = translate_module(module, name="gemm_fuse")
        PassManager([OpFusion()]).run(circuit)
        fused = [n for task in circuit.tasks.values()
                 for n in task.dataflow.nodes if n.kind == "fused"]
        assert fused, "gemm should fuse its mul/add chain"
        for node in fused:
            assert node.provenance
            assert all(loc.file == "gemm.mc"
                       for loc in node.provenance)


class TestSerialization:
    def test_provenance_survives_json_round_trip(self):
        module = compile_minic(GEMM_SRC, filename="gemm.mc")
        circuit = translate_module(module, name="gemm_ser")
        doc = json.loads(json.dumps(circuit_to_dict(circuit)))
        loaded = circuit_from_dict(doc)
        for name, task in circuit.tasks.items():
            other = loaded.tasks[name]
            orig = {n.name: n.provenance for n in task.dataflow.nodes}
            back = {n.name: n.provenance for n in other.dataflow.nodes}
            assert orig == back

    def test_dot_labels_carry_source_lines(self):
        module = compile_minic(GEMM_SRC, filename="gemm.mc")
        circuit = translate_module(module, name="gemm_dot")
        dot = to_dot(circuit)
        assert "gemm.mc:" in dot

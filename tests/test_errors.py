"""Tests for the exception hierarchy (single catchable root, rich
messages)."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError) or \
                    obj is errors.ReproError, name

    def test_frontend_family(self):
        assert issubclass(errors.LexError, errors.FrontendError)
        assert issubclass(errors.ParseError, errors.FrontendError)
        assert issubclass(errors.LoweringError, errors.FrontendError)

    def test_graph_family(self):
        assert issubclass(errors.ValidationError, errors.GraphError)

    def test_type_mismatch_is_ir_error(self):
        assert issubclass(errors.TypeMismatchError, errors.IRError)


class TestMessages:
    def test_lex_error_position(self):
        err = errors.LexError("bad char", 3, 7)
        assert "3:7" in str(err)
        assert err.line == 3 and err.column == 7

    def test_parse_error_without_position(self):
        assert str(errors.ParseError("oops")) == "oops"

    def test_validation_error_truncates(self):
        violations = [f"problem {i}" for i in range(10)]
        err = errors.ValidationError(violations)
        assert "+5 more" in str(err)
        assert err.violations == violations

    def test_deadlock_error_cycle(self):
        err = errors.DeadlockError(1234, "stuck here")
        assert err.cycle == 1234
        assert "1234" in str(err) and "stuck here" in str(err)


class TestCatchability:
    def test_single_root_catch(self):
        from repro.frontend import compile_minic
        with pytest.raises(errors.ReproError):
            compile_minic("func main( {")  # syntax error
        with pytest.raises(errors.ReproError):
            compile_minic("func main(n: i32) { x = 1; }")  # lowering

"""Tests for the exception hierarchy (single catchable root, rich
messages)."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError) or \
                    obj is errors.ReproError, name

    def test_frontend_family(self):
        assert issubclass(errors.LexError, errors.FrontendError)
        assert issubclass(errors.ParseError, errors.FrontendError)
        assert issubclass(errors.LoweringError, errors.FrontendError)

    def test_graph_family(self):
        assert issubclass(errors.ValidationError, errors.GraphError)

    def test_type_mismatch_is_ir_error(self):
        assert issubclass(errors.TypeMismatchError, errors.IRError)


class TestMessages:
    def test_lex_error_position(self):
        err = errors.LexError("bad char", 3, 7)
        assert "3:7" in str(err)
        assert err.line == 3 and err.column == 7

    def test_parse_error_without_position(self):
        assert str(errors.ParseError("oops")) == "oops"

    def test_validation_error_truncates(self):
        violations = [f"problem {i}" for i in range(10)]
        err = errors.ValidationError(violations)
        assert "+5 more" in str(err)
        assert err.violations == violations

    def test_deadlock_error_cycle(self):
        err = errors.DeadlockError(1234, "stuck here")
        assert err.cycle == 1234
        assert "1234" in str(err) and "stuck here" in str(err)


class TestCatchability:
    def test_single_root_catch(self):
        from repro.frontend import compile_minic
        with pytest.raises(errors.ReproError):
            compile_minic("func main( {")  # syntax error
        with pytest.raises(errors.ReproError):
            compile_minic("func main(n: i32) { x = 1; }")  # lowering


class TestExitCodes:
    """Every error family maps to a documented, distinct exit code."""

    def test_family_codes(self):
        cases = [
            (errors.ParseError("x"), 2),
            (errors.LexError("x", 1, 1), 2),
            (errors.TranslationError("x"), 3),
            (errors.ValidationError(["x"]), 3),
            (errors.DeadlockError(9, "x"), 4),
            (errors.WorkloadError("x"), 5),
            (errors.SimulationTimeout(10, 10), 6),
            (errors.WatchdogTimeout(10, 1.0, 0.5), 6),
            (errors.LIViolationError("x"), 7),
            (errors.VerificationError("x"), 7),
            (errors.PassError("x"), 8),
            (errors.ReproError("x"), 2),
        ]
        for exc, want in cases:
            assert errors.exit_code_for(exc) == want, type(exc).__name__

    def test_most_derived_class_wins(self):
        # DeadlockError is a SimulationError; 4 must win over 6.
        assert issubclass(errors.DeadlockError, errors.SimulationError)
        assert errors.exit_code_for(errors.DeadlockError(1, "x")) == 4

    def test_non_repro_exception_is_internal(self):
        assert errors.exit_code_for(ValueError("x")) == 1


class TestErrorDocument:
    def test_basic_shape(self):
        doc = errors.error_document(errors.ReproError("boom"))
        assert doc == {"error": "ReproError", "message": "boom",
                       "exit_code": 2}

    def test_deadlock_includes_diagnostics(self):
        diags = [{"task": "t", "instances": []}]
        err = errors.DeadlockError(77, "stuck", diags)
        doc = errors.error_document(err)
        assert doc["error"] == "DeadlockError"
        assert doc["exit_code"] == 4
        assert doc["cycle"] == 77
        assert doc["diagnostics"] == diags

    def test_position_fields(self):
        doc = errors.error_document(errors.LexError("bad", 3, 7))
        assert doc["line"] == 3 and doc["column"] == 7

    def test_timeout_fields(self):
        doc = errors.error_document(errors.SimulationTimeout(50, 50))
        assert doc["cycle"] == 50 and doc["max_cycles"] == 50
        doc = errors.error_document(
            errors.WatchdogTimeout(2048, 1.5, 1.0))
        assert doc["elapsed"] == 1.5 and doc["limit"] == 1.0

    def test_li_violation_detail(self):
        err = errors.LIViolationError(
            "diverged", {"memory": {"mismatched_words": 3}})
        doc = errors.error_document(err)
        assert doc["exit_code"] == 7
        assert doc["detail"]["memory"]["mismatched_words"] == 3


class TestRetryClassification:
    def test_error_family_by_name(self):
        assert errors.error_family("WorkerDeath") == "transient"
        assert errors.error_family("WatchdogTimeout") == "transient"
        assert errors.error_family("SupervisorTimeout") == "transient"
        assert errors.error_family("OSError") == "transient"
        assert errors.error_family("DeadlockError") == "deterministic"
        assert errors.error_family("LIViolationError") == \
            "deterministic"
        assert errors.error_family("PassError") == "deterministic"
        assert errors.error_family("SomethingNovel") == "deterministic"

    def test_family_for_is_isinstance_aware(self):
        assert errors.family_for(
            errors.WatchdogTimeout(1, 2.0, 1.0)) == "transient"
        assert errors.family_for(
            errors.DeadlockError(10)) == "deterministic"
        assert errors.family_for(PermissionError("nope")) == \
            "transient"  # an OSError subclass
        assert errors.family_for(ValueError("x")) == "deterministic"

    def test_unexpected_error_document_shape(self):
        try:
            raise KeyError("missing")
        except KeyError as exc:
            doc = errors.unexpected_error_document(exc)
        assert doc["error"] == "KeyError"
        assert doc["exit_code"] == 1
        assert doc["family"] == "deterministic"
        assert any("KeyError" in line for line in doc["traceback"])
        assert len(doc["traceback"]) <= 8


class TestSweepErrors:
    def test_poison_point_error(self):
        err = errors.PoisonPointError("bad point", index=3, deaths=2)
        assert errors.exit_code_for(err) == 11
        assert err.index == 3 and err.deaths == 2
        assert isinstance(err, errors.ReproError)

    def test_sweep_interrupted_carries_resume_hint(self):
        err = errors.SweepInterrupted("sweep-xyz", 2, 10, "SIGTERM")
        assert errors.exit_code_for(err) == 130
        assert "repro explore --resume sweep-xyz" in str(err)
        assert "2/10" in str(err)
        assert err.signal_name == "SIGTERM"

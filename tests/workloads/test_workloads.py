"""Tests for the workload suite: golden results against independent
Python references, and full interp==sim equivalence per workload."""

import math

import pytest

from repro.errors import WorkloadError
from repro.frontend import translate_module
from repro.sim import simulate
from repro.workloads import WORKLOADS, get_workload, workload_names
from repro.workloads import polybench, tensor_apps


class TestRegistry:
    def test_all_nineteen_present(self):
        assert set(WORKLOADS) == {
            "gemm", "covar", "fft", "spmv", "2mm", "3mm",
            "fib", "msort", "saxpy", "stencil", "img_scale",
            "conv", "dense8", "dense16", "softm8", "softm16",
            "relu_t", "2mm_t", "conv_t"}

    def test_categories(self):
        assert len(workload_names("polybench")) == 6
        assert len(workload_names("cilk")) == 5
        assert len(workload_names("tensorflow")) == 5
        assert len(workload_names("inhouse")) == 3

    def test_unknown_raises(self):
        with pytest.raises(WorkloadError):
            get_workload("quicksort3000")

    def test_tensor_variants_exist(self):
        for name in ("relu_t", "2mm_t", "conv_t"):
            assert "tensor" in get_workload(name).variants


class TestGoldenAgainstPython:
    """Cross-check the interpreter goldens with plain-Python math."""

    def test_gemm(self):
        w = get_workload("gemm")
        gold = w.golden()
        n = polybench.GEMM_N
        a, b = gold.get_array("A"), gold.get_array("B")
        c = gold.get_array("C")
        for i in range(n):
            for j in range(n):
                want = sum(a[i * n + k] * b[k * n + j]
                           for k in range(n))
                assert c[i * n + j] == pytest.approx(want)

    def test_fft_matches_dft(self):
        w = get_workload("fft")
        gold = w.golden()
        n = polybench.FFT_N
        # Reconstruct the original (bit-reversed) input.
        fresh = w.fresh_memory()
        re_in = fresh.get_array("re")
        bits = polybench.FFT_STAGES

        def rev(i):
            out = 0
            for b in range(bits):
                out = (out << 1) | ((i >> b) & 1)
            return out

        x = [re_in[rev(i)] for i in range(n)]
        re, im = gold.get_array("re"), gold.get_array("im")
        for k in range(0, n, 7):
            want = sum(x[t] * complex(math.cos(-2 * math.pi * k * t / n),
                                      math.sin(-2 * math.pi * k * t / n))
                       for t in range(n))
            assert re[k] == pytest.approx(want.real, abs=1e-6)
            assert im[k] == pytest.approx(want.imag, abs=1e-6)

    def test_fib(self):
        gold = get_workload("fib").golden()
        def fib(n):
            return n if n < 2 else fib(n - 1) + fib(n - 2)
        assert gold.get_array("res")[0] == fib(12)

    def test_msort_sorts(self):
        w = get_workload("msort")
        gold = w.golden()
        inp = w.fresh_memory().get_array("arr")
        assert gold.get_array("arr") == sorted(inp)

    def test_saxpy(self):
        w = get_workload("saxpy")
        gold = w.golden()
        fresh = w.fresh_memory()
        x, y0 = fresh.get_array("x"), fresh.get_array("y")
        for got, xi, yi in zip(gold.get_array("y"), x, y0):
            assert got == pytest.approx(2.5 * xi + yi)

    def test_softmax_sums_to_one(self):
        for name in ("softm8", "softm16"):
            gold = get_workload(name).golden()
            probs = gold.get_array("probs")
            assert sum(probs) == pytest.approx(1.0, abs=1e-6)
            assert all(p > 0 for p in probs)

    def test_dense_relu_nonnegative(self):
        gold = get_workload("dense8").golden()
        assert all(v >= 0 for v in gold.get_array("outp"))

    def test_conv_t_variants_agree(self):
        # The scalar and tensor sources compute the same values.
        w = get_workload("conv_t")
        scalar = w.golden("base").get_array("ys")
        tensor = w.golden("tensor").get_array("ys")
        flat = [v for tile in tensor for v in tile]
        assert all(a == pytest.approx(b)
                   for a, b in zip(scalar, flat))

    def test_2mm_t_variants_agree(self):
        w = get_workload("2mm_t")
        scalar = w.golden("base").get_array("C")
        tensor = w.golden("tensor")
        flat = [v for tile in tensor.get_array("C") for v in tile]
        assert all(a == pytest.approx(b)
                   for a, b in zip(scalar, flat))

    def test_verify_catches_corruption(self):
        w = get_workload("saxpy")
        mem = w.golden()
        mem.write(mem.base["y"], 1e9)
        with pytest.raises(WorkloadError):
            w.verify(mem)


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_end_to_end_equivalence(name):
    """Every workload: baseline uIR simulation matches the interpreter."""
    w = get_workload(name)
    circuit = translate_module(w.module())
    mem = w.fresh_memory()
    simulate(circuit, mem, list(w.args))
    w.verify(mem)


@pytest.mark.parametrize("name", ["relu_t", "2mm_t", "conv_t"])
def test_tensor_variant_equivalence(name):
    w = get_workload(name)
    circuit = translate_module(w.module("tensor"))
    mem = w.fresh_memory("tensor")
    simulate(circuit, mem, list(w.args_for("tensor")))
    w.verify(mem, "tensor")

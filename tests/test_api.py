"""Tests for the Pipeline/Evaluation facade (repro.api)."""

import pytest

from repro import (
    Evaluation,
    PassManager,
    Pipeline,
    SimParams,
    evaluate,
    simulate,
    synthesize,
    translate_module,
)
from repro.errors import ReproError
from repro.frontend.interp import Memory
from repro.opt import parse_passes
from repro.workloads import get_workload

SRC = """
array x: f32[16];
array y: f32[16];
func main(n: i32, a: f32) {
  for (i = 0; i < n; i = i + 1) { y[i] = a * x[i] + y[i]; }
}
"""


class TestConstruction:
    def test_workload_by_name(self):
        pipe = Pipeline("saxpy")
        assert pipe.workload is get_workload("saxpy")
        assert pipe.name == "saxpy"
        assert pipe.circuit.tasks

    def test_workload_object(self):
        w = get_workload("fib")
        assert Pipeline(w).workload is w

    def test_minic_source(self):
        pipe = Pipeline(SRC, name="mini")
        assert pipe.workload is None
        assert pipe.name == "mini"

    def test_module(self):
        module = Pipeline(SRC).module
        assert Pipeline(module).circuit.tasks

    def test_unknown_workload(self):
        with pytest.raises(ReproError, match="neither a known"):
            Pipeline("not_a_workload")

    def test_unknown_variant(self):
        with pytest.raises(ReproError, match="variant"):
            Pipeline("saxpy", variant="nope")

    def test_bad_type(self):
        with pytest.raises(ReproError, match="cannot build"):
            Pipeline(123)


class TestChain:
    def test_matches_handwired_flow(self):
        """The facade must reproduce the four-call pattern exactly."""
        spec = "localize,banking=4,fusion,tuning"
        ev = Pipeline("saxpy").optimize(spec).simulate().synthesize()

        w = get_workload("saxpy")
        circuit = translate_module(w.module("base"), name="saxpy")
        PassManager(parse_passes(spec)).run(circuit)
        sim = simulate(circuit, w.fresh_memory("base"),
                       list(w.args_for("base")), SimParams())
        synth = synthesize(circuit, name="saxpy")

        assert ev.cycles == sim.cycles
        assert ev.synth.alms == synth.alms
        assert ev.synth.fpga_mhz == synth.fpga_mhz
        assert ev.verified is True

    def test_evaluation_fields(self):
        ev = Pipeline("fib").simulate().synthesize()
        assert isinstance(ev, Evaluation)
        assert ev.workload == "fib"
        assert ev.variant == "base"
        assert ev.passes == ""
        assert ev.cycles > 0
        assert ev.time_us == ev.cycles / ev.synth.fpga_mhz
        assert ev.stats.kernel in ("event", "dense")
        assert "cyc" in repr(ev)

    def test_to_json(self):
        doc = Pipeline("fib").simulate().synthesize().to_json()
        for key in ("name", "workload", "passes", "cycles", "stats",
                    "synth", "time_us", "verified"):
            assert key in doc
        assert doc["verified"] is True

    def test_pass_spec_accumulates(self):
        pipe = Pipeline("saxpy").optimize("localize")
        pipe.optimize("banking=4")
        assert pipe.pass_spec == \
            "memory_localization,scratchpad_banking=4"
        assert len(pipe.pass_log) == 2

    def test_instances_clear_spec(self):
        instance = parse_passes("fusion")[0]
        pipe = Pipeline("saxpy").optimize("localize")
        pipe.optimize(instance)
        assert pipe.pass_spec is None
        assert pipe.evaluation().passes is None

    def test_check_false_skips_verify(self):
        ev = Pipeline("saxpy").simulate(check=False).synthesize()
        assert ev.verified is None


class TestSourcePipelines:
    def test_verifies_against_interpreter(self):
        pipe = Pipeline(SRC, name="mini")
        mem = Memory(pipe.module)
        mem.set_array("x", [float(i) for i in range(16)])
        mem.set_array("y", [1.0] * 16)
        ev = pipe.simulate(args=[16, 2.0], memory=mem).synthesize()
        assert ev.verified is True
        assert mem.get_array("y") == [2.0 * i + 1.0 for i in range(16)]

    def test_optimized_source_still_verifies(self):
        pipe = Pipeline(SRC, name="mini").optimize(
            "localize,banking=2,fusion")
        mem = Memory(pipe.module)
        mem.set_array("x", [1.0] * 16)
        mem.set_array("y", [0.0] * 16)
        pipe.simulate(args=[16, 3.0], memory=mem)
        assert pipe.verified is True


class TestFromCircuit:
    def test_wraps_existing_circuit(self):
        donor = Pipeline("saxpy").optimize("localize")
        pipe = Pipeline.from_circuit(donor.circuit, workload="saxpy")
        ev = pipe.simulate().synthesize()
        assert ev.verified is True
        assert ev.cycles == donor.simulate().sim.cycles
        # Construction is unknown from a bare circuit.
        assert ev.passes is None


class TestEvaluateConvenience:
    def test_one_call(self):
        ev = evaluate("saxpy", "localize,banking=4")
        assert ev.verified is True
        assert ev.passes == \
            "memory_localization,scratchpad_banking=4"
        baseline = evaluate("saxpy")
        assert ev.cycles < baseline.cycles

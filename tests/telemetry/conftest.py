"""Telemetry tests share one invariant: the process-global switch
must be off again when each test ends, whatever the test did."""

import pytest

from repro import telemetry


@pytest.fixture(autouse=True)
def _reset_telemetry():
    telemetry.disable()
    yield
    telemetry.disable()

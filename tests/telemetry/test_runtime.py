"""Tests for the process-global telemetry switch and the disabled
(zero-cost) path through instrumented production code."""

import pytest

from repro import Pipeline, telemetry
from repro.telemetry import (
    NULL_METRICS,
    NULL_SPAN,
    NULL_TRACER,
    MetricsRegistry,
    Tracer,
)

SRC = """
array x: f32[16];
array y: f32[16];
func main(n: i32, a: f32) {
  for (i = 0; i < n; i = i + 1) { y[i] = a * x[i] + y[i]; }
}
"""


class TestSwitch:
    def test_disabled_by_default(self):
        assert not telemetry.enabled()
        assert telemetry.tracer() is NULL_TRACER
        assert telemetry.metrics() is NULL_METRICS

    def test_enable_swaps_in_live_collectors(self):
        tr, met = telemetry.enable()
        assert telemetry.enabled()
        assert isinstance(tr, Tracer) and telemetry.tracer() is tr
        assert isinstance(met, MetricsRegistry)
        telemetry.disable()
        assert telemetry.tracer() is NULL_TRACER

    def test_reenable_fresh_false_keeps_collectors(self):
        tr, _ = telemetry.enable()
        tr2, _ = telemetry.enable(fresh=False)
        assert tr2 is tr
        tr3, _ = telemetry.enable()          # fresh=True replaces
        assert tr3 is not tr

    def test_env_flag(self, monkeypatch):
        monkeypatch.delenv(telemetry.ENV_FLAG, raising=False)
        assert not telemetry.env_requests_telemetry()
        for off in ("0", "false", "off", ""):
            monkeypatch.setenv(telemetry.ENV_FLAG, off)
            assert not telemetry.env_requests_telemetry()
        monkeypatch.setenv(telemetry.ENV_FLAG, "1")
        assert telemetry.env_requests_telemetry()


class TestDisabledIsInert:
    def test_pipeline_run_leaves_no_telemetry(self):
        """The acceptance-side of 'zero-cost when disabled': a full
        Pipeline run records no spans, samples, or fingerprints."""
        Pipeline(SRC).optimize("localize,banking=2") \
            .simulate(args=[16, 2.0])
        assert telemetry.tracer() is NULL_TRACER
        assert NULL_TRACER.finished() == []
        assert NULL_METRICS.snapshot()["metrics"] == []
        telemetry.annotate("workload", "saxpy")
        telemetry.note_fingerprint("deadbeef")
        tr, _met = telemetry.enable()
        # nothing leaked from the disabled period into a new session
        rec = telemetry.collect_record(
            command="t", argv=[], status="ok", exit_code=0,
            wall_s=0.0, started=0.0)
        assert rec["annotations"] == {} and rec["fingerprints"] == []

    def test_null_span_identity_under_load(self):
        spans = {telemetry.tracer().span(f"s{i}") for i in range(100)}
        assert spans == {NULL_SPAN}


class TestCollectRecord:
    def test_spans_passes_and_context_land_in_record(self):
        tr, met = telemetry.enable()
        with tr.span("pipeline.optimize"):
            with tr.span("opt.memory_localization", category="opt",
                         changed=True, dN=-2):
                pass
        met.counter("dse.cache.object_hits").inc(3)
        telemetry.annotate("workload", "saxpy")
        telemetry.note_fingerprint("cafe")
        telemetry.note_fingerprint("cafe")   # deduplicated
        rec = telemetry.collect_record(
            command="explore", argv=["explore", "saxpy"], status="ok",
            exit_code=0, wall_s=0.5, started=1754000000.0)
        assert rec["command"] == "explore" and rec["status"] == "ok"
        assert "pipeline.optimize" in rec["stages"]
        assert [p["pass"] for p in rec["passes"]] == \
            ["memory_localization"]
        assert rec["passes"][0]["changed"] is True
        assert rec["fingerprints"] == ["cafe"]
        assert rec["annotations"] == {"workload": "saxpy"}
        names = [m["name"] for m in rec["metrics"]["metrics"]]
        assert names == ["dse.cache.object_hits"]

    def test_failed_run_carries_error_document(self):
        telemetry.enable()
        rec = telemetry.collect_record(
            command="simulate", argv=["simulate", "x.mc"],
            status="error", exit_code=2, wall_s=0.1,
            started=1754000000.0,
            error={"kind": "MiniCParseError", "message": "bad"})
        assert rec["status"] == "error" and rec["exit_code"] == 2
        assert rec["error"]["kind"] == "MiniCParseError"


class TestInstrumentedSeams:
    def test_pipeline_spans_cover_stages(self):
        tr, met = telemetry.enable()
        pipe = Pipeline(SRC) \
            .optimize("localize,banking=2").simulate(args=[16, 2.0])
        pipe.synthesize()
        stages = tr.stage_durations()
        for want in ("pipeline.frontend", "pipeline.optimize",
                     "pipeline.simulate", "pipeline.verify",
                     "pipeline.synthesize"):
            assert want in stages, f"missing stage span {want}"
        opt = [sp for sp in tr.finished() if sp.category == "opt"]
        assert {sp.name for sp in opt} == \
            {"opt.memory_localization", "opt.scratchpad_banking"}
        assert all("." in sp.span_id for sp in opt)
        assert len(telemetry._STATE.fingerprints) == 1

    def test_sim_run_span_nested_under_simulate(self):
        tr, _ = telemetry.enable()
        Pipeline(SRC).simulate(args=[16, 2.0], check=False)
        by_name = {sp.name: sp for sp in tr.finished()}
        sim = by_name["sim.run"]
        stage = by_name["pipeline.simulate"]
        assert sim.parent_id == stage.span_id
        assert sim.attrs["cycles"] == stage.attrs["cycles"] > 0

    @pytest.mark.parametrize("batch", [3])
    def test_batch_counters(self, batch):
        _, met = telemetry.enable()
        from repro import SimParams
        pipe = Pipeline(SRC)
        pipe.evaluate_many([[16, float(i)] for i in range(batch)],
                           params=SimParams(batch=batch))
        runs = met.get("sim.batch.runs")
        assert runs is not None
        assert sum(s["value"] for s in runs.samples()) == 1
        lanes = met.get("sim.batch.lanes")
        assert sum(s["value"] for s in lanes.samples()) == batch

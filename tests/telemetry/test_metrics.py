"""Tests for repro.telemetry.metrics (counters/gauges/histograms)."""

import pytest

from repro.telemetry import NULL_METRICS, MetricsRegistry
from repro.telemetry.metrics import (
    METRICS_SCHEMA,
    NULL_INSTRUMENT,
)


class TestCounter:
    def test_inc_and_value(self):
        reg = MetricsRegistry()
        c = reg.counter("dse.cache.object_hits")
        c.inc()
        c.inc(2)
        assert c.value() == 3

    def test_labels_keep_separate_samples(self):
        reg = MetricsRegistry()
        c = reg.counter("sim.batch.runs")
        c.inc(mode="vector")
        c.inc(mode="vector")
        c.inc(mode="deopt")
        assert c.value(mode="vector") == 2
        assert c.value(mode="deopt") == 1
        assert c.value(mode="missing") == 0

    def test_memoized_by_name(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")


class TestGauge:
    def test_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("dse.workers_alive")
        g.set(4)
        g.dec()
        g.inc(2)
        assert g.value() == 5


class TestHistogram:
    def test_cumulative_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("dse.group_size", buckets=(1, 4, 16))
        for v in (1, 2, 3, 20):
            h.observe(v)
        doc = h.to_json()
        assert doc["count"] == 4
        assert doc["sum"] == 26
        by_le = {b["le"]: b["count"] for b in doc["buckets"]}
        assert by_le == {1: 1, 4: 3, 16: 3, "+Inf": 4}


class TestExports:
    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a").inc(2, kind="x")
        snap = reg.snapshot()
        assert snap["schema"] == METRICS_SCHEMA
        # sorted by name, every sample dict-shaped
        assert [m["name"] for m in snap["metrics"]] == ["a", "b"]
        assert snap["metrics"][0]["samples"] == [
            {"labels": {"kind": "x"}, "value": 2}]

    def test_prometheus_text(self):
        reg = MetricsRegistry()
        reg.counter("dse.cache.object_hits", help="hits").inc(3)
        reg.histogram("lat", buckets=(1,)).observe(0.5)
        text = reg.render_prometheus()
        assert "# HELP repro_dse_cache_object_hits hits" in text
        assert "# TYPE repro_dse_cache_object_hits counter" in text
        assert "repro_dse_cache_object_hits 3" in text
        assert 'repro_lat_bucket{le="1"} 1' in text
        assert "repro_lat_count 1" in text

    def test_labelled_prometheus_sample(self):
        reg = MetricsRegistry()
        reg.counter("fuzz.violations").inc(mode="batch", error="sim")
        text = reg.render_prometheus()
        assert ('repro_fuzz_violations{error="sim",mode="batch"} 1'
                in text)


class TestNullMetrics:
    def test_hands_out_shared_instrument(self):
        assert NULL_METRICS.counter("a") is NULL_INSTRUMENT
        assert NULL_METRICS.gauge("b") is NULL_INSTRUMENT
        assert NULL_METRICS.histogram("c") is NULL_INSTRUMENT

    def test_records_nothing(self):
        NULL_METRICS.counter("a").inc(5, mode="x")
        NULL_METRICS.histogram("c").observe(1.0)
        assert NULL_METRICS.counter("a").value() == 0
        assert NULL_METRICS.snapshot() == {"schema": METRICS_SCHEMA,
                                           "metrics": []}
        assert NULL_METRICS.render_prometheus() == ""

"""Tests for the persistent run ledger (repro.telemetry.ledger)."""

import json
import multiprocessing
import os

import pytest

from repro.telemetry import (
    LEDGER_SCHEMA,
    RECORD_KEYS,
    RunLedger,
    build_record,
    diff_records,
    new_run_id,
)


def _record(run_id="r1", command="simulate", status="ok", **over):
    base = dict(run_id=run_id, command=command, argv=["x.mc"],
                status=status, exit_code=0, wall_s=1.25,
                started=1754000000.0)
    base.update(over)
    return build_record(**base)


class TestRecordSchema:
    def test_golden_key_set(self):
        """The v1 record's key set is pinned: changing it is a schema
        bump, not a drive-by (see DESIGN.md section 10)."""
        rec = _record()
        assert tuple(rec) == RECORD_KEYS == (
            "schema", "run_id", "ts", "command", "argv", "status",
            "exit_code", "wall_s", "stages", "spans", "passes",
            "fingerprints", "annotations", "metrics", "error",
        )
        assert rec["schema"] == LEDGER_SCHEMA == "repro.run/v1"

    def test_all_keys_present_even_when_empty(self):
        rec = _record()
        assert rec["stages"] == {}
        assert rec["spans"] == [] and rec["passes"] == []
        assert rec["fingerprints"] == []
        assert rec["metrics"] == {} and rec["error"] is None

    def test_stages_exported_in_ms(self):
        rec = _record(stages={"pipeline.simulate": 0.25})
        assert rec["stages"] == {"pipeline.simulate": 250.0}

    def test_json_round_trip(self):
        rec = _record(error={"kind": "ReproError", "message": "boom"},
                      metrics={"schema": "s", "metrics": []})
        assert json.loads(json.dumps(rec)) == rec

    def test_run_ids_sortable_and_unique(self):
        ids = {new_run_id() for _ in range(20)}
        assert len(ids) == 20


class TestAppendAndRead:
    def test_append_then_records(self, tmp_path):
        ledger = RunLedger(str(tmp_path))
        ledger.append(_record("a"))
        ledger.append(_record("b"))
        records, skipped = ledger.records()
        assert [r["run_id"] for r in records] == ["a", "b"]
        assert skipped == 0

    def test_reader_skips_torn_and_foreign_lines(self, tmp_path):
        ledger = RunLedger(str(tmp_path))
        ledger.append(_record("a"))
        with open(ledger.path, "a") as fh:
            fh.write('{"torn": \n')              # torn write
            fh.write('{"schema": "other/v9"}\n')  # foreign schema
            fh.write("not json at all\n")
        ledger.append(_record("b"))
        records, skipped = ledger.records()
        assert [r["run_id"] for r in records] == ["a", "b"]
        assert skipped == 3

    def test_missing_file_is_empty_not_error(self, tmp_path):
        records, skipped = RunLedger(str(tmp_path)).records()
        assert records == [] and skipped == 0

    def test_golden_bytes_on_disk(self, tmp_path):
        # Pins the ledger's byte format through the shared
        # repro.util.jsonl writer: canonical one-line JSON (sorted
        # keys, compact separators) + newline, nothing else.  A change
        # here breaks append-only compatibility with old ledgers.
        from repro.util.jsonl import dumps_line

        ledger = RunLedger(str(tmp_path))
        record = _record("golden")
        ledger.append(record)
        with open(ledger.path, "rb") as fh:
            raw = fh.read()
        assert raw == dumps_line(record).encode("utf-8")
        assert raw.endswith(b"}\n")
        assert b": " not in raw and b", " not in raw


class TestFind:
    def test_resolution_modes(self, tmp_path):
        ledger = RunLedger(str(tmp_path))
        for rid in ("20260101-a", "20260102-b", "20260103-c"):
            ledger.append(_record(rid))
        assert ledger.find("last")["run_id"] == "20260103-c"
        assert ledger.find("-2")["run_id"] == "20260102-b"
        assert ledger.find("0")["run_id"] == "20260101-a"
        assert ledger.find("20260102")["run_id"] == "20260102-b"

    def test_errors(self, tmp_path):
        ledger = RunLedger(str(tmp_path))
        with pytest.raises(LookupError, match="empty"):
            ledger.find("last")
        ledger.append(_record("20260101-a"))
        ledger.append(_record("20260102-b"))
        with pytest.raises(LookupError, match="out of range"):
            ledger.find("-5")
        with pytest.raises(LookupError, match="no run matching"):
            ledger.find("zzz")
        with pytest.raises(LookupError, match="ambiguous"):
            ledger.find("2026010")


def _append_worker(root, tag, n):
    ledger = RunLedger(root)
    for i in range(n):
        ledger.append(_record(f"{tag}-{i:03d}"))


class TestConcurrency:
    def test_parallel_appends_never_tear(self, tmp_path):
        """N processes x M appends must yield N*M parsable records —
        the O_APPEND single-write contract."""
        procs, each = 4, 25
        ctx = multiprocessing.get_context("spawn")
        workers = [ctx.Process(target=_append_worker,
                               args=(str(tmp_path), f"p{i}", each))
                   for i in range(procs)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert all(w.exitcode == 0 for w in workers)
        records, skipped = RunLedger(str(tmp_path)).records()
        assert skipped == 0
        assert len(records) == procs * each
        ids = [r["run_id"] for r in records]
        assert len(set(ids)) == len(ids)
        # each writer's own records stay in its append order
        for i in range(procs):
            mine = [x for x in ids if x.startswith(f"p{i}-")]
            assert mine == sorted(mine)


class TestDiff:
    def test_stage_and_metric_deltas(self):
        met_a = {"schema": "s", "metrics": [
            {"name": "dse.cache.object_hits", "type": "counter",
             "samples": [{"labels": {}, "value": 0}]}]}
        met_b = {"schema": "s", "metrics": [
            {"name": "dse.cache.object_hits", "type": "counter",
             "samples": [{"labels": {}, "value": 2}]}]}
        a = _record("a", stages={"dse.explore": 0.4}, metrics=met_a)
        b = _record("b", stages={"dse.explore": 0.1}, metrics=met_b)
        doc = diff_records(a, b)
        (stage,) = doc["stages_ms"]
        assert stage["key"] == "dse.explore"
        assert stage["a"] == 400.0 and stage["b"] == 100.0
        assert stage["delta"] == -300.0 and stage["ratio"] == 0.25
        (metric,) = doc["metrics"]
        assert metric["key"] == "dse.cache.object_hits"
        assert metric["delta"] == 2

    def test_histogram_flattens_to_sum_and_count(self):
        met = {"schema": "s", "metrics": [
            {"name": "dse.group_size", "type": "histogram",
             "buckets": [], "sum": 6.0, "count": 3}]}
        doc = diff_records(_record("a", metrics=met),
                           _record("b", metrics=met))
        keys = {m["key"] for m in doc["metrics"]}
        assert keys == {"dse.group_size.sum", "dse.group_size.count"}

    def test_labelled_samples_keyed_with_labels(self):
        met = {"schema": "s", "metrics": [
            {"name": "sim.batch.runs", "type": "counter",
             "samples": [{"labels": {"mode": "vector"}, "value": 1}]}]}
        doc = diff_records(_record("a", metrics=met),
                           _record("b", metrics=met))
        assert doc["metrics"][0]["key"] == "sim.batch.runs{mode=vector}"

"""Tests for repro.telemetry.tracer (nested wall-clock spans)."""

import threading

from repro.telemetry import NULL_SPAN, NULL_TRACER, Tracer
from repro.telemetry.tracer import TRACE_SCHEMA


class TestSpans:
    def test_nesting_sets_parent(self):
        tr = Tracer()
        with tr.span("outer") as outer:
            with tr.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        names = [sp.name for sp in tr.finished()]
        assert names == ["inner", "outer"]  # finish order

    def test_ids_unique_and_pid_tagged(self):
        import os
        tr = Tracer()
        ids = set()
        for _ in range(50):
            with tr.span("s") as sp:
                ids.add(sp.span_id)
        assert len(ids) == 50
        assert all(i.startswith(f"{os.getpid():x}.") for i in ids)

    def test_set_attaches_attrs(self):
        tr = Tracer()
        with tr.span("sim.run", kernel="event") as sp:
            sp.set(cycles=183)
        doc = tr.finished()[0].to_json()
        assert doc["args"] == {"kernel": "event", "cycles": 183}
        assert doc["wall_ms"] >= 0

    def test_exception_recorded_and_propagated(self):
        tr = Tracer()
        try:
            with tr.span("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("span swallowed the exception")
        assert tr.finished()[0].attrs["error"] == "ValueError"

    def test_stage_durations_accumulate_top_level(self):
        tr = Tracer()
        for _ in range(3):
            with tr.span("pipeline.simulate"):
                with tr.span("sim.run"):
                    pass
        stages = tr.stage_durations()
        assert set(stages) == {"pipeline.simulate"}  # no nested spans
        assert stages["pipeline.simulate"] >= 0

    def test_threads_keep_separate_stacks(self):
        tr = Tracer()
        seen = {}

        def worker(tag):
            with tr.span(f"t.{tag}") as sp:
                seen[tag] = sp.parent_id

        with tr.span("main"):
            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        # worker spans must NOT parent under the main thread's span
        assert all(parent is None for parent in seen.values())
        assert len(tr.finished()) == 5

    def test_to_json_caps_spans(self):
        tr = Tracer()
        for i in range(10):
            with tr.span(f"s{i}"):
                pass
        doc = tr.to_json(limit=4)
        assert doc["schema"] == TRACE_SCHEMA
        assert len(doc["spans"]) == 4
        assert doc["dropped_spans"] == 6


class TestPerfetto:
    def test_spans_become_complete_events(self):
        tr = Tracer()
        with tr.span("pipeline.simulate"):
            pass
        doc = tr.perfetto_trace()
        (ev,) = doc["traceEvents"]
        assert ev["ph"] == "X" and ev["pid"] == "pipeline"
        assert ev["name"] == "pipeline.simulate"
        assert ev["dur"] >= 0

    def test_sim_trace_scaled_into_span_window(self):
        tr = Tracer()
        with tr.span("sim.run") as sp:
            for _ in range(1000):
                pass
        sim_events = [
            {"cycle": 0, "name": "mul0", "cat": "stall",
             "dur": 50, "args": {"cause": "mem"}},
            {"cycle": 100, "name": "add0", "cat": "park", "args": {}},
        ]
        doc = tr.perfetto_trace([("sax", sim_events, sp, 100)])
        sim = [e for e in doc["traceEvents"] if e["pid"] == "sim:sax"]
        assert len(sim) == 2
        span_ev = next(e for e in doc["traceEvents"]
                       if e["pid"] == "pipeline")
        lo = span_ev["ts"]
        hi = span_ev["ts"] + span_ev["dur"]
        # cycle 0 maps to span start, last cycle to span end
        assert lo <= sim[0]["ts"] <= hi
        assert lo <= sim[1]["ts"] <= hi + 1e-6
        stall = next(e for e in sim if e["cat"] == "sim.stall")
        assert stall["ph"] == "X" and stall["name"] == "mem"
        park = next(e for e in sim if e["cat"] == "sim.park")
        assert park["ph"] == "i"


class TestNullTracer:
    def test_span_returns_shared_singleton(self):
        a = NULL_TRACER.span("anything", category="sim", k=1)
        b = NULL_TRACER.span("other")
        assert a is b is NULL_SPAN

    def test_null_span_api_is_inert(self):
        with NULL_TRACER.span("x") as sp:
            assert sp.set(cycles=9) is sp
        assert NULL_TRACER.finished() == []
        assert NULL_TRACER.stage_durations() == {}
        assert NULL_TRACER.perfetto_trace()["traceEvents"] == []

"""End-to-end CLI telemetry tests: the run ledger, ``repro runs``,
the unified Perfetto trace, ``report --batch`` and ``bench --check``."""

import json

import pytest

from repro.cli import main
from repro.telemetry import RunLedger

SRC = """
array x: f32[16];
array y: f32[16];
func main(n: i32, a: f32) {
  for (i = 0; i < n; i = i + 1) { y[i] = a * x[i] + y[i]; }
}
"""


@pytest.fixture
def src_file(tmp_path):
    path = tmp_path / "saxpy.mc"
    path.write_text(SRC)
    return str(path)


def tele(tmp_path, *argv, trace=None):
    """argv for one telemetry-enabled invocation rooted in tmp_path."""
    out = ["--telemetry", "--telemetry-dir", str(tmp_path)]
    if trace:
        out += ["--telemetry-trace", str(trace)]
    return out + list(argv)


class TestLedgerViaCli:
    def test_simulate_appends_one_record(self, tmp_path, src_file,
                                         capsys):
        assert main(tele(tmp_path, "simulate", src_file,
                         "--passes", "localize,banking=2",
                         "--args", "16", "2.0")) == 0
        records, skipped = RunLedger(str(tmp_path)).records()
        assert skipped == 0 and len(records) == 1
        rec = records[0]
        assert rec["command"] == "simulate"
        assert rec["status"] == "ok" and rec["exit_code"] == 0
        assert rec["argv"][0] == "--telemetry"
        # simulate drives the Pipeline facade now: the stage table
        # holds the pipeline.* top-level spans, sim.run nests inside.
        assert "pipeline.simulate" in rec["stages"]
        assert any(sp["name"] == "sim.run" for sp in rec["spans"])
        assert [p["pass"] for p in rec["passes"]] == \
            ["memory_localization", "scratchpad_banking"]
        assert all(p["wall_ms"] >= 0 for p in rec["passes"])
        assert len(rec["fingerprints"]) == 1
        err = capsys.readouterr().err
        assert "telemetry: recorded run" in err

    def test_failed_command_records_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.mc"
        bad.write_text("int main() { return 0; }")   # C, not MiniC
        code = main(tele(tmp_path, "simulate", str(bad)))
        assert code != 0
        (rec,), _ = RunLedger(str(tmp_path)).records()
        assert rec["status"] == "error"
        assert rec["exit_code"] == code
        assert rec["error"] and rec["error"].get("message")

    def test_env_var_enables_without_flag(self, tmp_path, src_file,
                                          monkeypatch, capsys):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        monkeypatch.chdir(tmp_path)
        assert main(["simulate", src_file, "--args", "4", "1.0"]) == 0
        records, _ = RunLedger(".repro").records()
        assert len(records) == 1

    def test_runs_command_is_not_recorded(self, tmp_path, src_file,
                                          capsys):
        main(tele(tmp_path, "simulate", src_file, "--args", "4", "1.0"))
        main(tele(tmp_path, "runs", "list"))
        records, _ = RunLedger(str(tmp_path)).records()
        assert [r["command"] for r in records] == ["simulate"]


class TestRunsCommand:
    def _seed(self, tmp_path, src_file, n=2):
        for i in range(n):
            assert main(tele(tmp_path, "simulate", src_file,
                             "--passes", "localize",
                             "--args", str(4 * (i + 1)), "1.0")) == 0

    def test_list(self, tmp_path, src_file, capsys):
        self._seed(tmp_path, src_file)
        capsys.readouterr()
        assert main(["runs", "list", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        lines = [ln for ln in out.splitlines() if ln.strip()]
        assert len(lines) == 2
        assert "simulate" in out and "-1" in out and "-2" in out

    def test_show_replays_stages_and_metrics(self, tmp_path, src_file,
                                             capsys):
        self._seed(tmp_path, src_file, n=1)
        capsys.readouterr()
        assert main(["runs", "show", "last",
                     "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "pipeline.simulate" in out     # stage timing replayed
        assert "memory_localization" in out   # per-pass timing

    def test_show_json(self, tmp_path, src_file, capsys):
        self._seed(tmp_path, src_file, n=1)
        capsys.readouterr()
        assert main(["runs", "show", "last", "--json",
                     "--dir", str(tmp_path)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.run/v1"

    def test_diff(self, tmp_path, src_file, capsys):
        self._seed(tmp_path, src_file)
        capsys.readouterr()
        assert main(["runs", "diff", "-2", "-1",
                     "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "pipeline.simulate" in out

    def test_bad_ref_is_repro_error(self, tmp_path, src_file, capsys):
        self._seed(tmp_path, src_file, n=1)
        assert main(["runs", "show", "zzz",
                     "--dir", str(tmp_path)]) != 0
        assert "no run matching" in capsys.readouterr().err


class TestUnifiedTrace:
    def test_pipeline_and_sim_share_one_timeline(self, tmp_path,
                                                 src_file, capsys):
        """Acceptance: with telemetry enabled, a single exported
        Perfetto trace carries Pipeline spans AND cycle-level sim
        events."""
        trace = tmp_path / "trace.json"
        assert main(tele(tmp_path, "simulate", src_file,
                         "--passes", "localize",
                         "--args", "16", "2.0",
                         "--obs-level", "trace", trace=trace)) == 0
        doc = json.loads(trace.read_text())
        pids = {ev["pid"] for ev in doc["traceEvents"]}
        assert "pipeline" in pids
        assert any(p.startswith("sim:") for p in pids)
        spans = [ev for ev in doc["traceEvents"]
                 if ev["pid"] == "pipeline"]
        sim_events = [ev for ev in doc["traceEvents"]
                      if ev["pid"].startswith("sim:")]
        run = next(ev for ev in spans if ev["name"] == "sim.run")
        lo, hi = run["ts"], run["ts"] + run["dur"]
        assert all(lo - 1e-3 <= ev["ts"] <= hi + 1e-3
                   for ev in sim_events), \
            "sim cycle events must land inside their sim.run span"


class TestReportBatch:
    def test_report_carries_batch_section(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        assert main(["report", "saxpy", "--passes", "localize",
                     "--batch", "2", "--json", str(out)]) == 0
        doc = json.loads(out.read_text())
        batch = doc["layers"]["sim"]["batch"]
        assert batch["lanes"] == 2
        assert len(batch["lane_cycles"]) == 2
        assert batch["failed_lanes"] == []

    def test_markdown_mentions_batch(self, tmp_path, capsys):
        assert main(["report", "saxpy", "--batch", "2"]) == 0
        assert "Batched simulation" in capsys.readouterr().out


class TestBenchCheck:
    def _baseline(self, tmp_path, cycles=3080):
        doc = {
            "schema": "repro.bench_sim_throughput/v2",
            "config": "allopts",
            "kernels": ["dense", "event"],
            "rows": [{"workload": "saxpy", "cycles": cycles,
                      "event_over_dense": 1.5}],
            "geomean": {"event_over_dense": 1.5},
        }
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(doc))
        return str(path)

    def test_check_passes_with_loose_threshold(self, tmp_path, capsys):
        code = main(["bench", "--check",
                     "--baseline", self._baseline(tmp_path),
                     "--threshold", "0.99", "--repeat", "1"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "OK" in out and "saxpy: 3080 cycles" in out

    def test_cycle_drift_fails_hard(self, tmp_path, capsys):
        code = main(["bench", "--check",
                     "--baseline", self._baseline(tmp_path, cycles=1),
                     "--threshold", "0.99", "--repeat", "1"])
        assert code == 1
        assert "determinism break" in capsys.readouterr().out

    def test_missing_baseline_is_config_error(self, tmp_path, capsys):
        code = main(["bench", "--check",
                     "--baseline", str(tmp_path / "nope.json")])
        assert code != 0
        assert "baseline" in capsys.readouterr().err

    def test_check_json_dump(self, tmp_path, capsys):
        out = tmp_path / "check.json"
        assert main(["bench", "--check",
                     "--baseline", self._baseline(tmp_path),
                     "--threshold", "0.99", "--repeat", "1",
                     "--json", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro.bench-check/v1"
        assert doc["ok"] is True

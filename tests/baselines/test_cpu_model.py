"""Tests for the ARM-A9-style CPU cycle model."""

import pytest

from repro.cpu.arm_model import ArmA9Model, _block_cost
from repro.frontend import compile_minic
from repro.frontend.interp import Memory

LOOP = """
array a: f32[64];
func main(n: i32) {
  for (i = 0; i < n; i = i + 1) { a[i] = a[i] * 2.0 + 1.0; }
}
"""


def cycles(src, *args, init=None):
    module = compile_minic(src)
    mem = Memory(module)
    if init:
        init(mem)
    return ArmA9Model(module).run(mem, *args)


class TestCpuModel:
    def test_scales_with_work(self):
        assert cycles(LOOP, 64).cycles > cycles(LOOP, 8).cycles

    def test_ipc_bounded_by_width(self):
        r = cycles(LOOP, 64)
        assert 0 < r.ipc <= 2.0

    def test_time_at_1ghz(self):
        r = cycles(LOOP, 16)
        assert r.time_us == pytest.approx(r.cycles / 1000.0)

    def test_dependent_chain_slower_than_parallel(self):
        dep = """
array o: i32[1];
func main(n: i32) {
  var x: i32 = 1;
  for (i = 0; i < n; i = i + 1) {
    x = x * 3;
    x = x * 5;
    x = x * 7;
    x = x * 11;
  }
  o[0] = x;
}
"""
        par = """
array o: i32[1];
func main(n: i32) {
  var x: i32 = 0;
  for (i = 0; i < n; i = i + 1) {
    var a: i32 = i * 3;
    var b: i32 = i * 5;
    var c: i32 = i * 7;
    var d: i32 = i * 11;
    x = x + a + b + c + d;
  }
  o[0] = x;
}
"""
        # Serial multiply chain: latency bound; independent multiplies
        # issue in parallel on the 2-wide core.
        assert cycles(dep, 64).cycles > cycles(par, 64).cycles * 0.8

    def test_branchy_code_pays_mispredicts(self):
        regular = """
array a: i32[64];
func main(n: i32) {
  for (i = 0; i < n; i = i + 1) { a[i] = i; }
}
"""
        branchy = """
array a: i32[64];
array r: i32[64];
func main(n: i32) {
  for (i = 0; i < n; i = i + 1) {
    if (r[i] > 0) { a[i] = 1; } else { a[i] = 2; }
  }
}
"""
        import random
        rng = random.Random(5)
        init = lambda m: m.set_array(
            "r", [rng.choice([-1, 1]) for _ in range(64)])
        per_iter_regular = cycles(regular, 64).cycles / 64
        per_iter_branchy = cycles(branchy, 64, init=init).cycles / 64
        assert per_iter_branchy > per_iter_regular

    def test_tensor_ops_cost_scalar_equivalent(self):
        src = """
array a: tensor<2x2xf32>[8];
array b: tensor<2x2xf32>[8];
array c: tensor<2x2xf32>[8];
func main(n: i32) {
  for (i = 0; i < n; i = i + 1) { c[i] = a[i] * b[i]; }
}
"""
        init = lambda m: (m.set_array("a", [(1.0,) * 4] * 8),
                          m.set_array("b", [(1.0,) * 4] * 8))
        r = cycles(src, 8, init=init)
        # 8 tile matmuls = 64 mults + adds; far more than 8 cycles.
        assert r.cycles > 8 * 16

    def test_block_cost_minimum(self):
        module = compile_minic("func main(n: i32) { }")
        block = module.main.entry
        assert _block_cost(block) >= 1

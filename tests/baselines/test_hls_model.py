"""Tests for the statically-scheduled HLS baseline model."""

import pytest

from repro.frontend import compile_minic
from repro.frontend.interp import Memory
from repro.hls import HlsModel, estimate_hls
from repro.hls.model import HLS_RELATIVE_CLOCK

STREAM = """
array a: f32[64];
array b: f32[64];
func main(n: i32) {
  for (i = 0; i < n; i = i + 1) { b[i] = a[i] * 2.0; }
}
"""

GATHER = """
array idx: i32[64];
array x: f32[64];
array y: f32[64];
func main(n: i32) {
  for (i = 0; i < n; i = i + 1) { y[i] = x[idx[i]]; }
}
"""

REDUCE = """
array a: f32[64];
array o: f32[1];
func main(n: i32) {
  var s: f32 = 0.0;
  for (i = 0; i < n; i = i + 1) { s = s + a[i]; }
  o[0] = s;
}
"""

NESTED = """
array a: f32[64];
func main(n: i32) {
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < n; j = j + 1) { a[(i * n + j) & 63] = 1.0; }
  }
}
"""


def report(src, *args, **kw):
    module = compile_minic(src)
    return estimate_hls(module, Memory(module), *args, **kw)


class TestScheduling:
    def test_cycles_scale_with_trip_count(self):
        assert report(STREAM, 64).cycles > report(STREAM, 16).cycles

    def test_streaming_loop_reaches_ii1(self):
        r = report(STREAM, 64)
        info = next(iter(r.loop_info.values()))
        assert info.pipelined
        assert info.ii == 1
        assert info.streaming_ops == 2

    def test_gather_pressures_ports(self):
        r = report(GATHER, 64)
        info = next(iter(r.loop_info.values()))
        # idx[i] streams; x[idx[i]] is a random access.
        assert info.random_ops >= 1

    def test_streaming_off_increases_ii(self):
        on = report(STREAM, 64, streaming=True)
        off = report(STREAM, 64, streaming=False)
        assert off.cycles >= on.cycles

    def test_reduction_recurrence_ii(self):
        r = report(REDUCE, 64)
        info = next(iter(r.loop_info.values()))
        assert info.ii >= 4  # fadd latency bound

    def test_nested_loop_serialization(self):
        # Outer loop is not pipelined (contains the inner loop).
        module = compile_minic(NESTED)
        model = HlsModel(module)
        r = model.run(Memory(module), 8)
        assert len(r.loop_info) == 1  # only the inner is pipelined

    def test_relative_clock(self):
        r = report(STREAM, 16)
        assert r.relative_clock == pytest.approx(1 / 1.2)
        t_400 = r.time_at(400.0)
        assert t_400 == pytest.approx(r.cycles / (400 / 1.2))

    def test_deterministic(self):
        assert report(STREAM, 32).cycles == report(STREAM, 32).cycles

    def test_data_dependent_trip_counts(self):
        # SPMV-style inner bounds come from the dynamic trace.
        src = """
array rowptr: i32[5];
array vals: f32[16];
array y: f32[4];
func main(rows: i32) {
  for (i = 0; i < rows; i = i + 1) {
    var lo: i32 = rowptr[i];
    var hi: i32 = rowptr[i + 1];
    var s: f32 = 0.0;
    for (k = lo; k < hi; k = k + 1) { s = s + vals[k]; }
    y[i] = s;
  }
}
"""
        module = compile_minic(src)
        mem = Memory(module)
        mem.set_array("rowptr", [0, 2, 4, 9, 16])
        sparse = HlsModel(module).run(mem, 4).cycles
        mem2 = Memory(module)
        mem2.set_array("rowptr", [0, 0, 0, 0, 0])
        empty = HlsModel(module).run(mem2, 4).cycles
        assert sparse > empty

"""Tests for the experiment harness and reporting."""

import os

import pytest

from repro.bench import (
    all_opts_for,
    banking_stack,
    format_table,
    fusion_stack,
    localization_stack,
    normalize,
    run_workload,
    tiling_stack,
)
from repro.bench.configs import CILK_SET
from repro.bench.reporting import emit, results_dir
from repro.errors import ReproError, WorkloadError


class TestEvaluate:
    """The harness surface, via its replacement (repro.api)."""

    def test_baseline_run(self):
        from repro.api import evaluate
        ev = evaluate("spmv")
        assert ev.workload == "spmv"
        assert ev.cycles > 0
        assert 200 < ev.synth.fpga_mhz <= 500
        assert ev.time_us == pytest.approx(ev.cycles
                                           / ev.synth.fpga_mhz)

    def test_accepts_workload_object(self):
        from repro.api import Pipeline
        from repro.workloads import get_workload
        pipe = Pipeline(get_workload("spmv"))
        ev = pipe.optimize(None).simulate().synthesize()
        assert ev.workload == "spmv"

    def test_pass_log_captured(self):
        from repro.api import Pipeline
        pipe = Pipeline("spmv")
        pipe.optimize(fusion_stack())
        pipe.simulate()
        ev = pipe.synthesize()
        assert ev.pass_log and ev.pass_log[0].pass_name == "op_fusion"

    def test_unknown_workload(self):
        from repro.api import evaluate
        with pytest.raises((WorkloadError, ReproError)):
            evaluate("nope")

    def test_verification_always_on(self):
        # The pipeline verifies against the interpreter; a pass stack
        # that changed behavior would raise.  (Exercise a deep stack.)
        from repro.api import Pipeline
        pipe = Pipeline("spmv")
        pipe.optimize(all_opts_for("spmv"))
        ev = pipe.simulate().synthesize()
        assert ev.cycles > 0

    def test_tensor_variant(self):
        from repro.api import evaluate
        ev = evaluate("relu_t", variant="tensor")
        assert ev.variant == "tensor"


class TestRunWorkloadShim:
    """run_workload is deprecated but must keep working (one
    compatibility test, per the deprecation contract)."""

    def test_shim_warns_and_matches_pipeline(self):
        with pytest.warns(DeprecationWarning, match="run_workload"):
            r = run_workload("spmv", fusion_stack(), "fusion")
        assert r.workload == "spmv"
        assert r.config == "fusion"
        assert r.cycles > 0
        assert r.pass_log and r.pass_log[0].pass_name == "op_fusion"
        assert r.time_us == pytest.approx(r.cycles / r.fpga_mhz)


class TestConfigs:
    def test_stacks_are_fresh_instances(self):
        a, b = fusion_stack(), fusion_stack()
        assert a[0] is not b[0]

    def test_cilk_set_members_exist(self):
        from repro.workloads import WORKLOADS
        assert set(CILK_SET) <= set(WORKLOADS)

    def test_all_opts_grouping(self):
        cilk = [type(p).__name__ for p in all_opts_for("saxpy")]
        loops = [type(p).__name__ for p in all_opts_for("gemm")]
        assert "ExecutionTiling" in cilk
        assert "ExecutionTiling" not in loops
        assert "MemoryLocalization" in loops

    def test_tensor_workload_gets_tensor_pass(self):
        names = [type(p).__name__ for p in all_opts_for("relu_t")]
        assert names[0] == "TensorOps"

    def test_stack_builders(self):
        assert tiling_stack(4)
        assert localization_stack()
        assert banking_stack(2)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bbbb"], [[1, 2], [333, 4]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbbb" in lines[1]
        assert len(lines) == 5

    def test_format_floats(self):
        text = format_table(["x"], [[1.23456]])
        assert "1.23" in text

    def test_normalize(self):
        out = normalize({"a": 10.0, "b": 5.0}, "a")
        assert out == {"a": 1.0, "b": 0.5}

    def test_emit_writes_file(self, capsys):
        emit("selftest_experiment", "hello world")
        out = capsys.readouterr().out
        assert "selftest_experiment" in out
        path = os.path.join(results_dir(), "selftest_experiment.txt")
        assert open(path).read().strip() == "hello world"
        os.remove(path)

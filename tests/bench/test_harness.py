"""Tests for the experiment harness and reporting."""

import os

import pytest

from repro.bench import (
    all_opts_for,
    banking_stack,
    format_table,
    fusion_stack,
    localization_stack,
    normalize,
    run_workload,
    tiling_stack,
)
from repro.bench.configs import CILK_SET
from repro.bench.reporting import emit, results_dir
from repro.errors import WorkloadError


class TestRunWorkload:
    def test_baseline_run(self):
        r = run_workload("spmv")
        assert r.workload == "spmv"
        assert r.cycles > 0
        assert 200 < r.fpga_mhz <= 500
        assert r.time_us == pytest.approx(r.cycles / r.fpga_mhz)

    def test_accepts_workload_object(self):
        from repro.workloads import get_workload
        r = run_workload(get_workload("spmv"))
        assert r.workload == "spmv"

    def test_pass_log_captured(self):
        r = run_workload("spmv", fusion_stack(), "fusion")
        assert r.pass_log and r.pass_log[0].pass_name == "op_fusion"

    def test_unknown_workload(self):
        with pytest.raises(WorkloadError):
            run_workload("nope")

    def test_verification_always_on(self):
        # run_workload verifies against the interpreter; a pass stack
        # that changed behavior would raise.  (Exercise a deep stack.)
        r = run_workload("spmv", all_opts_for("spmv"), "stacked")
        assert r.cycles > 0

    def test_tensor_variant(self):
        r = run_workload("relu_t", config="t", variant="tensor")
        assert r.variant == "tensor"


class TestConfigs:
    def test_stacks_are_fresh_instances(self):
        a, b = fusion_stack(), fusion_stack()
        assert a[0] is not b[0]

    def test_cilk_set_members_exist(self):
        from repro.workloads import WORKLOADS
        assert set(CILK_SET) <= set(WORKLOADS)

    def test_all_opts_grouping(self):
        cilk = [type(p).__name__ for p in all_opts_for("saxpy")]
        loops = [type(p).__name__ for p in all_opts_for("gemm")]
        assert "ExecutionTiling" in cilk
        assert "ExecutionTiling" not in loops
        assert "MemoryLocalization" in loops

    def test_tensor_workload_gets_tensor_pass(self):
        names = [type(p).__name__ for p in all_opts_for("relu_t")]
        assert names[0] == "TensorOps"

    def test_stack_builders(self):
        assert tiling_stack(4)
        assert localization_stack()
        assert banking_stack(2)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bbbb"], [[1, 2], [333, 4]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbbb" in lines[1]
        assert len(lines) == 5

    def test_format_floats(self):
        text = format_table(["x"], [[1.23456]])
        assert "1.23" in text

    def test_normalize(self):
        out = normalize({"a": 10.0, "b": 5.0}, "a")
        assert out == {"a": 1.0, "b": 0.5}

    def test_emit_writes_file(self, capsys):
        emit("selftest_experiment", "hello world")
        out = capsys.readouterr().out
        assert "selftest_experiment" in out
        path = os.path.join(results_dir(), "selftest_experiment.txt")
        assert open(path).read().strip() == "hello world"
        os.remove(path)

"""Unit tests for the bench regression gate (repro.bench.regression)."""

import json

import pytest

from repro.bench.regression import (
    CHECK_SCHEMA,
    DEFAULT_BASELINE,
    check_throughput,
)
from repro.errors import ReproError


def _baseline(tmp_path, **over):
    doc = {
        "schema": "repro.bench_sim_throughput/v2",
        "config": "allopts",
        "kernels": ["dense", "event"],
        "rows": [{"workload": "saxpy", "cycles": 3080,
                  "event_over_dense": 1.5},
                 {"workload": "stencil", "cycles": 261,
                  "event_over_dense": 1.4}],
        "geomean": {"event_over_dense": 1.45},
    }
    doc.update(over)
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps(doc))
    return str(path)


class TestCheckThroughput:
    def test_doc_shape_and_subset_geomean(self, tmp_path):
        doc = check_throughput(_baseline(tmp_path),
                               workloads=["saxpy"], repeat=1,
                               threshold=0.99)
        assert doc["schema"] == CHECK_SCHEMA
        assert doc["ok"], doc["failures"]
        (row,) = doc["rows"]
        assert row["workload"] == "saxpy" and row["cycles"] == 3080
        # the committed geomean is computed over the *selected* rows
        # (saxpy's own 1.5), not the whole suite's 1.45
        assert doc["committed_geomean"]["event_over_dense"] == 1.5

    def test_unknown_workload_raises(self, tmp_path):
        with pytest.raises(ReproError, match="not in the committed"):
            check_throughput(_baseline(tmp_path), workloads=["nope"])

    def test_wrong_schema_raises(self, tmp_path):
        with pytest.raises(ReproError, match="not a "):
            check_throughput(_baseline(tmp_path, schema="x/v1"))

    def test_missing_baseline_raises(self, tmp_path):
        with pytest.raises(ReproError, match="cannot read"):
            check_throughput(str(tmp_path / "gone.json"))

    def test_committed_baseline_exists_in_repo(self):
        with open(DEFAULT_BASELINE) as fh:
            doc = json.load(fh)
        assert doc["schema"].startswith("repro.bench_sim_throughput/")
        assert {"geomean", "rows"} <= set(doc)

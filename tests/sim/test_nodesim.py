"""Node-level simulator tests on hand-built micro-dataflows."""

import pytest

from repro.core import AcceleratorCircuit, Cache, Junction, TaskBlock
from repro.core.nodes import (
    ComputeNode,
    ConstNode,
    LiveIn,
    LiveOut,
    LoadNode,
    LoopControl,
    PhiNode,
    SelectNode,
    StoreNode,
)
from repro.core.structures import Scratchpad
from repro.sim import SimParams, simulate
from repro.types import BOOL, F32, I32


class _Mem:
    def __init__(self, words):
        self.words = words


def micro_circuit(build):
    """Build a 1-task circuit via ``build(task, df)``; returns it."""
    c = AcceleratorCircuit("micro")
    c.add_structure(Cache("l1", size_words=64))
    task = TaskBlock("main", "func")
    c.add_task(task)
    build(c, task, task.dataflow)
    return c


def run(circuit, args, words=None, **params):
    return simulate(circuit, _Mem(words or [0] * 64), args,
                    SimParams(validate=True, **params))


class TestComputeLatency:
    def _pipeline_circuit(self, ops):
        def build(c, task, df):
            task.live_in_types = [I32]
            task.live_out_types = [I32]
            li = df.add(LiveIn(0, I32))
            prev = li.out
            for i, op in enumerate(ops):
                node = df.add(ComputeNode(op, I32, name=f"n{i}"))
                df.connect(prev, node.in_ports[0])
                cn = df.add(ConstNode(1, I32, name=f"c{i}"))
                df.connect(cn.out, node.in_ports[1])
                prev = node.out
            lo = df.add(LiveOut(0, I32))
            df.connect(prev, lo.inp)
        return micro_circuit(build)

    def test_result_correct(self):
        c = self._pipeline_circuit(["add", "add", "add"])
        assert run(c, [5]).results == [8]

    def test_longer_chain_takes_longer(self):
        short = run(self._pipeline_circuit(["add"]), [1]).cycles
        long = run(self._pipeline_circuit(["add"] * 6), [1]).cycles
        assert long > short
        # Baseline: ~2 cycles per buffered hop.
        assert long - short >= 5

    def test_mul_latency_exceeds_add(self):
        add = run(self._pipeline_circuit(["add"]), [1]).cycles
        mul = run(self._pipeline_circuit(["mul"]), [1]).cycles
        assert mul > add


class TestSelectAndPredication:
    def test_select_chooses(self):
        def build(c, task, df):
            task.live_in_types = [I32]
            task.live_out_types = [I32]
            li = df.add(LiveIn(0, I32))
            cmp = df.add(ComputeNode("gt", BOOL, name="cmp",
                                     operand_types=[I32, I32]))
            zero = df.add(ConstNode(0, I32, name="z"))
            df.connect(li.out, cmp.in_ports[0])
            df.connect(zero.out, cmp.in_ports[1])
            sel = df.add(SelectNode(I32, name="sel"))
            a = df.add(ConstNode(100, I32, name="a"))
            b = df.add(ConstNode(200, I32, name="b"))
            df.connect(cmp.out, sel.cond)
            df.connect(a.out, sel.a)
            df.connect(b.out, sel.b)
            lo = df.add(LiveOut(0, I32))
            df.connect(sel.out, lo.inp)
        c = micro_circuit(build)
        assert run(c, [5]).results == [100]
        c = micro_circuit(build)
        assert run(c, [-5]).results == [200]

    def test_predicated_store_suppressed(self):
        def build(c, task, df):
            task.live_in_types = [I32]  # predicate as 0/1
            li = df.add(LiveIn(0, I32))
            addr = df.add(ConstNode(3, I32, name="addr"))
            data = df.add(ConstNode(42, I32, name="data"))
            st = df.add(StoreNode(I32, name="st"))
            df.connect(addr.out, st.addr)
            df.connect(data.out, st.data)
            df.connect(li.out, st.enable_predicate())
            j = Junction("j", c.default_cache)
            j.attach(st)
            task.add_junction(j)
        words = [0] * 64
        run(micro_circuit(build), [1], words)
        assert words[3] == 42
        words = [0] * 64
        run(micro_circuit(build), [0], words)
        assert words[3] == 0

    def test_predicated_load_returns_poison(self):
        def build(c, task, df):
            task.live_in_types = [I32]
            task.live_out_types = [F32]
            li = df.add(LiveIn(0, I32))
            addr = df.add(ConstNode(2, I32, name="addr"))
            ld = df.add(LoadNode(F32, name="ld"))
            df.connect(addr.out, ld.addr)
            df.connect(li.out, ld.enable_predicate())
            lo = df.add(LiveOut(0, F32))
            df.connect(ld.out, lo.inp)
            j = Junction("j", c.default_cache)
            j.attach(ld)
            task.add_junction(j)
        words = [0.0] * 64
        words[2] = 7.5
        assert run(micro_circuit(build), [1], words).results == [7.5]
        assert run(micro_circuit(build), [0],
                   list(words)).results == [0.0]


class TestLoopMachinery:
    def _sum_loop(self, stages=5):
        def build(c, task, df):
            task.kind = "loop"
            task.live_in_types = [I32]
            task.live_out_types = [I32]
            li = df.add(LiveIn(0, I32))
            ctl = df.add(LoopControl())
            ctl.pipeline_stages = stages
            z = df.add(ConstNode(0, I32, name="z"))
            one = df.add(ConstNode(1, I32, name="one"))
            df.connect(z.out, ctl.start, latched=True)
            df.connect(li.out, ctl.bound, latched=True)
            df.connect(one.out, ctl.step, latched=True)
            phi = df.add(PhiNode(I32, name="acc"))
            df.connect(z.out, phi.init, latched=True)
            add = df.add(ComputeNode("add", I32, name="add"))
            df.connect(phi.out, add.in_ports[0])
            df.connect(ctl.index, add.in_ports[1])
            df.connect(add.out, phi.back)
            lo = df.add(LiveOut(0, I32))
            df.connect(phi.final, lo.inp)
        return micro_circuit(build)

    def test_sum_reduction(self):
        assert run(self._sum_loop(), [6]).results == [15]

    def test_zero_trips_returns_init(self):
        assert run(self._sum_loop(), [0]).results == [0]

    def test_single_trip(self):
        assert run(self._sum_loop(), [1]).results == [0]

    def test_pipeline_stages_set_issue_interval(self):
        fast = run(self._sum_loop(stages=1), [32]).cycles
        slow = run(self._sum_loop(stages=8), [32]).cycles
        assert slow > fast + 32  # at least ~1 extra cycle/iteration

    def test_iteration_stats(self):
        result = run(self._sum_loop(), [10])
        assert result.stats.iterations["main"] == 10


class TestMemoryNodes:
    def _copy_loop(self):
        def build(c, task, df):
            spad = c.add_structure(Scratchpad("sp", size_words=64))
            task.kind = "loop"
            task.live_in_types = [I32]
            ctl = df.add(LoopControl())
            z = df.add(ConstNode(0, I32, name="z"))
            one = df.add(ConstNode(1, I32, name="one"))
            li = df.add(LiveIn(0, I32))
            df.connect(z.out, ctl.start, latched=True)
            df.connect(li.out, ctl.bound, latched=True)
            df.connect(one.out, ctl.step, latched=True)
            ld = df.add(LoadNode(I32, name="ld"))
            df.connect(ctl.index, ld.addr)
            st = df.add(StoreNode(I32, name="st"))
            base = df.add(ConstNode(32, I32, name="base"))
            addr = df.add(ComputeNode("add", I32, name="addr"))
            df.connect(base.out, addr.in_ports[0], latched=True)
            df.connect(ctl.index, addr.in_ports[1])
            df.connect(addr.out, st.addr)
            df.connect(ld.out, st.data)
            j = Junction("j", spad, issue_width=2)
            j.attach(ld)
            j.attach(st)
            task.add_junction(j)
        return micro_circuit(build)

    def test_copies_data(self):
        words = list(range(64))
        run(self._copy_loop(), [16], words)
        assert words[32:48] == list(range(16))

    def test_memory_stats(self):
        words = list(range(64))
        result = run(self._copy_loop(), [16], words)
        assert result.stats.memory_reads == 16
        assert result.stats.memory_writes == 16

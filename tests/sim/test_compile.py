"""Compiled-kernel artifact caching, fallback policy, hybrid plan.

Bit-identity of the compiled kernel itself is pinned by the
equivalence matrix (test_engine_equivalence) and the kernel
differential fuzz (tests/verify/test_kernel_differential); this file
covers the machinery around it: the per-fingerprint artifact cache,
the fallback-vs-raise policy when a circuit cannot be specialized,
and the interpreted-task hybrid.
"""

import warnings

import pytest

from repro.bench.configs import all_opts_for
from repro.errors import EXIT_CODES, KernelCompileError
from repro.frontend import translate_module
from repro.opt.pass_manager import PassManager
from repro.sim import SimParams, simulate
from repro.sim import compile as simcompile
from repro.workloads import WORKLOADS


def _build(name="saxpy", config="allopts"):
    w = WORKLOADS[name]
    passes = [] if config == "baseline" else all_opts_for(name)
    circuit = translate_module(w.module(), name=f"{name}_{config}")
    PassManager(list(passes)).run(circuit)
    return w, circuit


@pytest.fixture(autouse=True)
def _fresh_cache():
    simcompile.clear_cache()
    yield
    simcompile.clear_cache()


class TestArtifactCache:
    def test_object_identity_memo(self):
        _, circuit = _build()
        first = simcompile.compiled_for(circuit)
        assert simcompile.compiled_for(circuit) is first
        stats = simcompile.cache_stats()
        assert stats["memoized_objects"] == 1
        assert stats["entries"] == 1

    def test_fingerprint_cache_shared_across_equal_builds(self):
        # Two independent builds of the same workload/config hash to
        # the same canonical fingerprint, so the second compile is a
        # cache hit returning the same artifact object.
        _, c1 = _build()
        _, c2 = _build()
        assert c1 is not c2
        assert simcompile.compiled_for(c1) is simcompile.compiled_for(c2)
        assert simcompile.cache_stats()["entries"] == 1

    def test_precompile_seeds_cache(self):
        from repro.core.serialize import canonical_circuit, \
            circuit_fingerprint
        _, circuit = _build()
        canon = canonical_circuit(circuit)
        fp = circuit_fingerprint(canon)
        art = simcompile.precompile(canon, fp)
        assert art.fingerprint == fp
        assert simcompile.compiled_for(canon) is art

    def test_simulate_reuses_artifact_across_runs(self):
        w, circuit = _build("fib", "baseline")
        for _ in range(2):
            mem = w.fresh_memory()
            simulate(circuit, mem, list(w.args_for()),
                     SimParams(kernel="compiled"))
        assert simcompile.cache_stats()["entries"] == 1


class TestFallbackPolicy:
    def test_fallback_warns_and_records_error(self, monkeypatch):
        monkeypatch.delitem(simcompile._STEP_COMPILERS, "compute")
        w, circuit = _build("fib", "baseline")
        mem = w.fresh_memory()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = simulate(circuit, mem, list(w.args_for()),
                              SimParams(kernel="compiled"))
        assert any("falling back" in str(c.message) for c in caught)
        assert result.compile_error is not None
        assert result.compile_error["error"] == "KernelCompileError"
        assert result.compile_error["exit_code"] == 10
        # The fallback run is a full event-kernel run.
        assert result.stats.kernel == "event"
        assert result.cycles > 0

    def test_no_fallback_raises_exit_code_10(self, monkeypatch):
        monkeypatch.delitem(simcompile._STEP_COMPILERS, "compute")
        w, circuit = _build("fib", "baseline")
        mem = w.fresh_memory()
        with pytest.raises(KernelCompileError):
            simulate(circuit, mem, list(w.args_for()),
                     SimParams(kernel="compiled",
                               compile_fallback=False))
        assert EXIT_CODES["KernelCompileError"] == 10

    def test_successful_compile_sets_no_error(self):
        w, circuit = _build("fib", "baseline")
        mem = w.fresh_memory()
        result = simulate(circuit, mem, list(w.args_for()),
                          SimParams(kernel="compiled"))
        assert result.compile_error is None
        assert result.stats.kernel == "compiled"


class TestHybridPlan:
    def test_short_lived_tasks_stay_interpreted(self):
        # saxpy/allopts has both flavors: loop-header tasks (loopctl,
        # thousands of sweeps per instance -> compiled) and a
        # parallel_for body (no loopctl, hundreds of short-lived
        # instances -> interpreted).
        _, circuit = _build("saxpy", "allopts")
        art = simcompile.compiled_for(circuit)
        flags = {name: t.interpreted for name, t in art.tasks.items()}
        assert any(flags.values()), f"no interpreted task in {flags}"
        assert not all(flags.values()), f"no compiled task in {flags}"
        for name, task in circuit.tasks.items():
            has_loop = any(n.kind == "loopctl"
                           for n in task.dataflow.nodes)
            assert art.tasks[name].interpreted == (not has_loop)

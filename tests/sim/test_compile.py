"""Compiled-kernel artifact caching, fallback policy, hybrid plan.

Bit-identity of the compiled kernel itself is pinned by the
equivalence matrix (test_engine_equivalence) and the kernel
differential fuzz (tests/verify/test_kernel_differential); this file
covers the machinery around it: the per-fingerprint artifact cache,
the fallback-vs-raise policy when a circuit cannot be specialized,
and the interpreted-task hybrid.
"""

import warnings

import pytest

from repro.bench.configs import all_opts_for
from repro.errors import EXIT_CODES, KernelCompileError
from repro.frontend import translate_module
from repro.opt.pass_manager import PassManager
from repro.sim import SimParams, simulate
from repro.sim import compile as simcompile
from repro.workloads import WORKLOADS


def _build(name="saxpy", config="allopts"):
    w = WORKLOADS[name]
    passes = [] if config == "baseline" else all_opts_for(name)
    circuit = translate_module(w.module(), name=f"{name}_{config}")
    PassManager(list(passes)).run(circuit)
    return w, circuit


@pytest.fixture(autouse=True)
def _fresh_cache():
    simcompile.clear_cache()
    yield
    simcompile.clear_cache()


class TestArtifactCache:
    def test_object_identity_memo(self):
        _, circuit = _build()
        first = simcompile.compiled_for(circuit)
        assert simcompile.compiled_for(circuit) is first
        stats = simcompile.cache_stats()
        assert stats["memoized_objects"] == 1
        assert stats["entries"] == 1

    def test_fingerprint_cache_shared_across_equal_builds(self):
        # Two independent builds of the same workload/config hash to
        # the same canonical fingerprint, so the second compile is a
        # cache hit returning the same artifact object.
        _, c1 = _build()
        _, c2 = _build()
        assert c1 is not c2
        assert simcompile.compiled_for(c1) is simcompile.compiled_for(c2)
        assert simcompile.cache_stats()["entries"] == 1

    def test_precompile_seeds_cache(self):
        from repro.core.serialize import canonical_circuit, \
            circuit_fingerprint
        _, circuit = _build()
        canon = canonical_circuit(circuit)
        fp = circuit_fingerprint(canon)
        art = simcompile.precompile(canon, fp)
        assert art.fingerprint == fp
        assert simcompile.compiled_for(canon) is art

    def test_simulate_reuses_artifact_across_runs(self):
        w, circuit = _build("fib", "baseline")
        for _ in range(2):
            mem = w.fresh_memory()
            simulate(circuit, mem, list(w.args_for()),
                     SimParams(kernel="compiled"))
        assert simcompile.cache_stats()["entries"] == 1


class TestFallbackPolicy:
    def test_fallback_warns_and_records_error(self, monkeypatch):
        monkeypatch.delitem(simcompile._STEP_COMPILERS, "compute")
        w, circuit = _build("fib", "baseline")
        mem = w.fresh_memory()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = simulate(circuit, mem, list(w.args_for()),
                              SimParams(kernel="compiled"))
        assert any("falling back" in str(c.message) for c in caught)
        assert result.compile_error is not None
        assert result.compile_error["error"] == "KernelCompileError"
        assert result.compile_error["exit_code"] == 10
        # The fallback run is a full event-kernel run.
        assert result.stats.kernel == "event"
        assert result.cycles > 0

    def test_no_fallback_raises_exit_code_10(self, monkeypatch):
        monkeypatch.delitem(simcompile._STEP_COMPILERS, "compute")
        w, circuit = _build("fib", "baseline")
        mem = w.fresh_memory()
        with pytest.raises(KernelCompileError):
            simulate(circuit, mem, list(w.args_for()),
                     SimParams(kernel="compiled",
                               compile_fallback=False))
        assert EXIT_CODES["KernelCompileError"] == 10

    def test_successful_compile_sets_no_error(self):
        w, circuit = _build("fib", "baseline")
        mem = w.fresh_memory()
        result = simulate(circuit, mem, list(w.args_for()),
                          SimParams(kernel="compiled"))
        assert result.compile_error is None
        assert result.stats.kernel == "compiled"


class TestTraceTier:
    """Trace recording, guard taxonomy, and the artifact round-trip.

    Bit identity of the trace kernel is pinned by the equivalence
    matrix; this class covers the tier's machinery: recorded firing
    sets landing on (and re-arming from) the fingerprint-keyed
    artifact, the deopt taxonomy, and the forced fault-plan disable.
    """

    def _run(self, w, circuit, kernel="trace", **kw):
        mem = w.fresh_memory()
        return simulate(circuit, mem, list(w.args_for()),
                        SimParams(kernel=kernel, **kw))

    def test_recording_lands_on_the_artifact(self):
        # gemm's inner loop sustains a steady state for hundreds of
        # cycles, so a trace must form, and the recorded firing set
        # must be cached on the compiled artifact for warm re-arming.
        w, circuit = _build("gemm", "allopts")
        result = self._run(w, circuit)
        assert result.trace is not None
        assert result.trace["formed"] > 0
        assert 0.0 <= result.trace["coverage"] <= 1.0
        art = simcompile.compiled_for(circuit)
        proven = [t for t in art.tasks.values() if t.trace_proven]
        assert proven, "no task marked trace_proven after formation"
        recorded = [t for t in proven if t.steady_idxs is not None]
        assert recorded, "no recorded firing set on the artifact"
        for task in recorded:
            assert all(isinstance(i, int) for i in task.steady_idxs)

    def test_warm_runs_skip_re_detection(self):
        # Second run on the same circuit object: every formation must
        # re-arm from the proven artifact (warm == formed) and the
        # simulation must stay deterministic.
        w, circuit = _build("gemm", "allopts")
        cold = self._run(w, circuit)
        warm = self._run(w, circuit)
        assert warm.cycles == cold.cycles
        assert warm.trace["formed"] > 0
        assert warm.trace["warm"] == warm.trace["formed"]

    def test_fingerprint_cache_shares_traces_across_builds(self):
        # An independent build of the same workload/config hits the
        # fingerprint cache, so it inherits the recorded traces too:
        # warm from its very first run.
        w, c1 = _build("gemm", "allopts")
        self._run(w, c1)
        _, c2 = _build("gemm", "allopts")
        assert simcompile.compiled_for(c2) is simcompile.compiled_for(c1)
        warm = self._run(w, c2)
        assert warm.trace["formed"] > 0
        assert warm.trace["warm"] == warm.trace["formed"]

    def test_deopt_reasons_stay_in_taxonomy(self):
        for name in ("gemm", "fib", "stencil"):
            w, circuit = _build(name, "allopts")
            result = self._run(w, circuit)
            assert set(result.trace["deopts"]) <= {
                "quiet", "complete", "divergence", "run_end"}, (
                f"{name}: unknown deopt reason in "
                f"{result.trace['deopts']}")
            # Every formation eventually deopts (run_end folds the
            # still-live ones), so the books must balance.
            assert sum(result.trace["deopts"].values()) == \
                result.trace["formed"]

    def test_fresh_artifact_has_no_trace_state(self):
        _, circuit = _build("gemm", "allopts")
        art = simcompile.compiled_for(circuit)
        for task in art.tasks.values():
            assert task.trace_proven is False
            assert task.steady_idxs is None
            assert task.warm_after == 0

    def test_fault_plan_disables_the_tier(self):
        # An active FaultPlan forces the compiled path: no formations,
        # no trace report — but behavior must match the event kernel
        # under the identical plan, cycles included.
        from repro.sim.faults import FaultPlan
        plan = FaultPlan.generate(3)
        w, circuit = _build("gemm", "allopts")
        tr = self._run(w, circuit, kernel="trace", faults=plan)
        ev = self._run(w, circuit, kernel="event", faults=plan)
        assert tr.trace is None
        assert tr.cycles == ev.cycles
        assert list(tr.results) == list(ev.results)

    def test_trace_metrics_stay_out_of_simstats(self):
        # Stats parity is the contract that makes the tier safe to
        # enable anywhere; formation telemetry must never leak into
        # the SimStats document.
        w, circuit = _build("gemm", "allopts")
        result = self._run(w, circuit)
        doc = result.stats.to_json()
        assert "trace" not in doc
        assert doc["kernel"] == "trace"


class TestHybridPlan:
    def test_short_lived_tasks_stay_interpreted(self):
        # saxpy/allopts has both flavors: loop-header tasks (loopctl,
        # thousands of sweeps per instance -> compiled) and a
        # parallel_for body (no loopctl, hundreds of short-lived
        # instances -> interpreted).
        _, circuit = _build("saxpy", "allopts")
        art = simcompile.compiled_for(circuit)
        flags = {name: t.interpreted for name, t in art.tasks.items()}
        assert any(flags.values()), f"no interpreted task in {flags}"
        assert not all(flags.values()), f"no compiled task in {flags}"
        for name, task in circuit.tasks.items():
            has_loop = any(n.kind == "loopctl"
                           for n in task.dataflow.nodes)
            assert art.tasks[name].interpreted == (not has_loop)

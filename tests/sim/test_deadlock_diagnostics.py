"""DeadlockError diagnostics, exercised on a cyclic-backpressure
deadlock forced by a permanent credit-withhold fault.

From some cycle on, every dataflow edge refuses credit: producers
stall on full downstream channels while consumers starve on empty
upstream ones — the classic backpressure cycle.  The engine must
report *why*: per-task blocked-node causes with source locations, not
just "no progress"."""

import pytest

from repro.errors import DeadlockError
from repro.frontend import translate_module
from repro.sim import SimParams, simulate
from repro.sim.faults import FaultPlan
from repro.workloads import get_workload

FREEZE = FaultPlan(seed=0, freeze_at=60)

#: The stall taxonomy of repro.sim.observe.
CAUSES = {"upstream_empty", "downstream_full", "bank_conflict",
          "junction_arb", "dram_inflight", "task_queue_full",
          "child_wait", "iter_window", "idle"}


def _deadlock(workload="saxpy", kernel="event"):
    w = get_workload(workload)
    circuit = translate_module(w.module(), name=workload)
    with pytest.raises(DeadlockError) as exc:
        simulate(circuit, w.fresh_memory(), list(w.args_for()),
                 SimParams(kernel=kernel, faults=FREEZE,
                           deadlock_window=500, max_cycles=200_000))
    return exc.value


class TestDiagnosticsStructure:
    def test_per_task_entries(self):
        err = _deadlock()
        assert err.diagnostics, "diagnostics must not be empty"
        for entry in err.diagnostics:
            assert set(entry) >= {"task", "ready", "active", "parked",
                                  "instances"}

    def test_blocked_nodes_have_cause_and_location(self):
        err = _deadlock()
        blocked = [n for entry in err.diagnostics
                   for inst in entry["instances"]
                   for n in inst["blocked_nodes"]]
        assert blocked
        for node in blocked:
            assert node["cause"] in CAUSES
        # The frozen edges manifest as the backpressure pair.
        causes = {n["cause"] for n in blocked}
        assert "downstream_full" in causes or \
            "upstream_empty" in causes
        # Source attribution: locations point into the MiniC source.
        locs = [n["loc"] for n in blocked if n.get("loc")]
        assert locs and any(".mc" in loc for loc in locs)

    def test_report_string_names_blocked_nodes(self):
        err = _deadlock()
        assert "blocked" in str(err)
        assert any(cause in str(err)
                   for cause in ("downstream_full", "upstream_empty"))

    def test_instance_progress_snapshot(self):
        err = _deadlock()
        inst = err.diagnostics[0]["instances"][0]
        assert "liveouts" in inst and "/" in inst["liveouts"]
        assert "pending_children" in inst


class TestKernelAgreement:
    def test_both_kernels_diagnose_the_same_deadlock(self):
        event = _deadlock(kernel="event")
        dense = _deadlock(kernel="dense")
        assert event.cycle == dense.cycle

        def causes(err):
            return {n["cause"] for entry in err.diagnostics
                    for inst in entry["instances"]
                    for n in inst["blocked_nodes"]}

        # The backpressure pair is diagnosed identically; the event
        # kernel may attribute *extra* causes (finer wake bookkeeping,
        # e.g. the blocked spawn as task_queue_full).
        assert causes(dense) <= causes(event)
        assert {"downstream_full", "upstream_empty"} <= causes(event)


class TestDeadlockPrecedence:
    def test_deadlock_wins_over_max_cycles(self):
        """Guard ordering: a quiescent circuit is reported as deadlock
        even when max_cycles would also have tripped soon after."""
        w = get_workload("saxpy")
        circuit = translate_module(w.module(), name="saxpy")
        with pytest.raises(DeadlockError):
            simulate(circuit, w.fresh_memory(), list(w.args_for()),
                     SimParams(faults=FREEZE, deadlock_window=200,
                               max_cycles=100_000))

    def test_frozen_retry_loop_is_not_progress(self):
        """A permanently enqueue-blocked instance retrying its park
        must not defeat deadlock detection (the retry-livelock bug):
        detection fires within ~deadlock_window of quiescence."""
        err = _deadlock()
        # freeze at 60, window 500: detection must come well before
        # the multi-thousand-cycle fault-free completion.
        assert err.cycle < 60 + 500 + 100

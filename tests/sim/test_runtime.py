"""Tests for the task runtime: queues, tiles, parking, sync."""

import pytest

from repro.frontend import compile_minic, translate_module
from repro.frontend.interp import Memory
from repro.sim import SimParams, simulate

from tests.conftest import assert_equivalent, run_both

FIB = """
array o: i32[1];
func fib(n: i32) -> i32 {
  if (n < 2) { return n; }
  var a: i32 = fib(n - 1);
  var b: i32 = fib(n - 2);
  return a + b;
}
func main(n: i32) { o[0] = fib(n); }
"""


class TestRecursion:
    def test_fib_correct(self):
        golden, mem, result = run_both(FIB, [10])
        assert mem.get_array("o") == [55]

    def test_parking_happens(self):
        _, _, result = run_both(FIB, [9])
        assert result.stats.parked > 0

    def test_invocation_count(self):
        # fib(n) makes fib(n-1)+fib(n-2)+1 invocations (classic).
        _, _, result = run_both(FIB, [8])
        # fib calls: 2*fib(9)... for n=8: invocations of 'fib' = 67.
        assert result.stats.invocations["fib"] == 67

    def test_tiles_speed_up_recursion(self):
        def cycles(tiles):
            module = compile_minic(FIB)
            circuit = translate_module(module)
            circuit.tasks["fib"].num_tiles = tiles
            mem = Memory(module)
            return simulate(circuit, mem, [10]).cycles
        assert cycles(4) < cycles(1) * 0.6


class TestSpawnAndSync:
    def test_spawned_results_visible_after_sync(self):
        assert_equivalent("""
array a: i32[8];
array o: i32[1];
func w(i: i32) { a[i] = i * i; }
func main(n: i32) {
  spawn w(1);
  spawn w(2);
  sync;
  o[0] = a[1] + a[2];
}
""", [0])

    def test_parallel_for_full(self):
        golden, mem, result = run_both("""
array a: i32[32];
func main(n: i32) {
  parallel_for (i = 0; i < n; i = i + 1) { a[i] = i * 3; }
}
""", [32])
        assert mem.get_array("a") == [i * 3 for i in range(32)]
        assert result.stats.invocations["main_task0"] == 32

    def test_msort_pattern(self):
        assert_equivalent("""
array arr: i32[16];
array tmp: i32[16];
func msort(lo: i32, n: i32) {
  if (n < 2) { return; }
  var half: i32 = n / 2;
  spawn msort(lo, half);
  spawn msort(lo + half, n - half);
  sync;
  var i: i32 = lo;
  var j: i32 = lo + half;
  for (k = 0; k < n; k = k + 1) {
    var takeleft: i32 = 0;
    if (j >= lo + n) { takeleft = 1; }
    else {
      if (i < lo + half) {
        if (arr[i] <= arr[j]) { takeleft = 1; }
      }
    }
    if (takeleft == 1) { tmp[lo + k] = arr[i]; i = i + 1; }
    else { tmp[lo + k] = arr[j]; j = j + 1; }
  }
  for (k2 = 0; k2 < n; k2 = k2 + 1) { arr[lo + k2] = tmp[lo + k2]; }
}
func main(n: i32) { msort(0, n); }
""", [16], init=lambda m: m.set_array(
            "arr", [9, 3, 7, 1, 8, 2, 6, 4, 15, 11, 13, 10, 14, 12,
                    5, 0]))


class TestWindows:
    def test_loop_invocation_window_helps(self):
        source = """
array a: f32[64];
array b: f32[64];
func main(n: i32) {
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < 4; j = j + 1) {
      b[i * 4 + j] = a[i * 4 + j] * 2.0;
    }
  }
}
"""
        module = compile_minic(source)

        def cycles(window):
            circuit = translate_module(module)
            mem = Memory(module)
            mem.set_array("a", [1.0] * 64)
            return simulate(circuit, mem, [16],
                            SimParams(loop_invocation_window=window)
                            ).cycles
        assert cycles(4) < cycles(1)

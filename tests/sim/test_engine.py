"""End-to-end simulator behavior tests."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.frontend import compile_minic, translate_module
from repro.frontend.interp import Memory
from repro.sim import SimParams, Simulator, simulate

from tests.conftest import assert_equivalent


class TestBasicExecution:
    def test_returns_root_liveouts(self):
        module = compile_minic(
            "func main(n: i32) -> i32 { return n * 3; }")
        circuit = translate_module(module)
        result = simulate(circuit, Memory(module), [7])
        assert result.results == [21]

    def test_cycles_positive_and_stats(self, saxpy_source, saxpy_init):
        module = compile_minic(saxpy_source)
        circuit = translate_module(module)
        mem = Memory(module)
        saxpy_init(mem)
        result = simulate(circuit, mem, [16, 2.0])
        assert result.cycles > 16
        assert result.stats.memory_reads == 32
        assert result.stats.memory_writes == 16
        assert result.stats.iterations

    def test_deterministic(self, saxpy_source, saxpy_init):
        def once():
            module = compile_minic(saxpy_source)
            circuit = translate_module(module)
            mem = Memory(module)
            saxpy_init(mem)
            return simulate(circuit, mem, [16, 2.0]).cycles
        assert once() == once()

    def test_wrong_root_arity(self):
        module = compile_minic("func main(n: i32) { }")
        circuit = translate_module(module)
        with pytest.raises(SimulationError):
            simulate(circuit, Memory(module), [])

    def test_max_cycles_guard(self, saxpy_source, saxpy_init):
        module = compile_minic(saxpy_source)
        circuit = translate_module(module)
        mem = Memory(module)
        saxpy_init(mem)
        with pytest.raises(SimulationError):
            simulate(circuit, mem, [16, 2.0],
                     SimParams(max_cycles=10))

    def test_deadlock_detection(self):
        # An unconnected liveout can never be satisfied.
        from repro.core import AcceleratorCircuit, Cache, TaskBlock
        from repro.core.nodes import LiveIn, LiveOut
        from repro.types import I32
        c = AcceleratorCircuit("dead")
        c.add_structure(Cache("l1"))
        t = TaskBlock("main", "func")
        t.live_in_types = [I32]
        t.live_out_types = [I32]
        t.dataflow.add(LiveIn(0, I32))
        lo = t.dataflow.add(LiveOut(0, I32))
        c.add_task(t)
        with pytest.raises((DeadlockError, Exception)):
            simulate(c, _FakeMemory(), [1],
                     SimParams(deadlock_window=50, validate=False))


class _FakeMemory:
    words = [0] * 16


class TestExecutionModelPhenomena:
    def test_pipelining_beats_serial_sum(self):
        # 2N independent iterations take far less than 2N * latency.
        source = """
array a: f32[64];
array b: f32[64];
func main(n: i32) {
  for (i = 0; i < n; i = i + 1) { b[i] = a[i] * 2.0 + 1.0; }
}
"""
        module = compile_minic(source)
        circuit = translate_module(module)
        mem = Memory(module)
        mem.set_array("a", [1.0] * 64)
        result = simulate(circuit, mem, [64])
        # Unpipelined latency would be > 20 cycles per iteration.
        assert result.cycles < 64 * 15

    def test_independent_loops_overlap(self):
        # Two independent loops run concurrently: the pair costs less
        # than twice one loop.
        one = """
array a: f32[32];
func main(n: i32) {
  for (i = 0; i < n; i = i + 1) { a[i] = 1.0; }
}
"""
        two = """
array a: f32[32];
array b: f32[32];
func main(n: i32) {
  for (i = 0; i < n; i = i + 1) { a[i] = 1.0; }
  for (j = 0; j < n; j = j + 1) { b[j] = 2.0; }
}
"""
        def cycles(src):
            module = compile_minic(src)
            circuit = translate_module(module)
            return simulate(circuit, Memory(module), [32]).cycles
        assert cycles(two) < 2 * cycles(one) * 0.85

    def test_dependent_loops_serialize(self):
        # A loop reading the previous loop's output must wait for it.
        source = """
array a: f32[32];
array b: f32[32];
func main(n: i32) {
  for (i = 0; i < n; i = i + 1) { a[i] = 2.0; }
  for (j = 0; j < n; j = j + 1) { b[j] = a[j] + 1.0; }
}
"""
        golden, mem, _ = __import__("tests.conftest",
                                    fromlist=["run_both"]).run_both(
            source, [32])
        assert mem.get_array("b") == [3.0] * 32

    def test_queue_depth_throttles_parent(self):
        # Shallow task queues couple the parent to the child's rate.
        source = """
array a: f32[64];
func main(n: i32) {
  parallel_for (i = 0; i < n; i = i + 1) { a[i] = f32(i) * 2.0; }
}
"""
        module = compile_minic(source)

        def run(depth):
            circuit = translate_module(module)
            for edge in circuit.task_edges:
                edge.queue_depth = depth
            mem = Memory(module)
            return simulate(circuit, mem, [64]).cycles

        assert run(16) <= run(1)


class TestPredicationEffects:
    def test_predicated_off_store_suppressed(self):
        assert_equivalent("""
array a: i32[8];
func main(n: i32) {
  for (i = 0; i < n; i = i + 1) {
    if (i == 3) { a[i] = 99; }
  }
}
""", [8])

    def test_poisoned_load_value_never_used(self):
        # a[i-1] under predicate i>0: the poisoned lane must not leak.
        assert_equivalent("""
array a: i32[8];
array b: i32[8];
func main(n: i32) {
  for (i = 0; i < n; i = i + 1) {
    var v: i32 = 0;
    if (i > 0) { v = a[i - 1]; }
    b[i] = v;
  }
}
""", [8], init=lambda m: m.set_array("a", [5] * 8))

    def test_predicated_recursive_call(self):
        assert_equivalent("""
array o: i32[1];
func f(n: i32) -> i32 {
  if (n < 1) { return 0; }
  return n + f(n - 1);
}
func main(n: i32) { o[0] = f(n); }
""", [5])

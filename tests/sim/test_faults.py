"""Unit tests for the fault-injection layer: plan determinism and
serialization, per-site derivation, fault channels, the max-cycles
boundary (both kernels), and the wall-clock watchdog."""

import pytest

from repro.errors import SimulationTimeout, WatchdogTimeout
from repro.frontend import translate_module
from repro.sim import SimParams, simulate
from repro.sim.faults import (FAULT_CATEGORIES, FaultChannel,
                              FaultEventChannel, FaultInjector,
                              FaultPlan)
from repro.util.rng import derive_seed, rng_for, site_fraction
from repro.workloads import get_workload


def _sim(workload, **params):
    w = get_workload(workload)
    circuit = translate_module(w.module(), name=workload)
    return simulate(circuit, w.fresh_memory(), list(w.args_for()),
                    SimParams(**params))


class TestFaultPlan:
    def test_generate_deterministic(self):
        assert FaultPlan.generate(7) == FaultPlan.generate(7)
        assert FaultPlan.generate(7) != FaultPlan.generate(8)

    def test_json_round_trip(self):
        plan = FaultPlan.generate(3, intensity=1.5)
        doc = plan.to_json()
        assert doc["schema"] == "repro.faultplan/v1"
        assert FaultPlan.from_json(doc) == plan

    def test_rejects_unknown_schema(self):
        with pytest.raises(ValueError, match="schema"):
            FaultPlan.from_json({"schema": "bogus/v9", "seed": 1})

    def test_without_category(self):
        plan = FaultPlan.generate(3)
        cats = plan.active_categories()
        assert cats  # generated plans always enable something
        for cat in cats:
            assert cat in FAULT_CATEGORIES
            reduced = plan.without(cat)
            assert cat not in reduced.active_categories()
            assert reduced.seed == plan.seed
        with pytest.raises(ValueError, match="unknown fault category"):
            plan.without("cosmic_rays")

    def test_freeze_is_a_category(self):
        plan = FaultPlan(seed=1, freeze_at=100)
        assert plan.active_categories() == ["freeze"]
        assert plan.without("freeze").active_categories() == []


class TestInjectorDerivation:
    def test_site_decisions_are_stable(self):
        plan = FaultPlan.generate(11)
        a, b = FaultInjector(plan), FaultInjector(plan)
        for ord_ in range(20):
            assert a.channel_extra("t", ord_) == \
                b.channel_extra("t", ord_)
            assert a.stall_window("t", ord_) == \
                b.stall_window("t", ord_)
        assert a.fu_extra("t", "mul_3") == b.fu_extra("t", "mul_3")
        assert a.memory_extra("spad") == b.memory_extra("spad")

    def test_rates_are_respected(self):
        plan = FaultPlan(seed=5, jitter_rate=0.0, jitter_max=4,
                         fu_rate=0.0, fu_latency_max=4)
        inj = FaultInjector(plan)
        assert all(inj.channel_extra("t", i) == 0 for i in range(50))
        assert inj.fu_extra("t", "add_1") == 0

    def test_full_rate_hits_every_site(self):
        plan = FaultPlan(seed=5, jitter_rate=1.0, jitter_max=3)
        inj = FaultInjector(plan)
        extras = [inj.channel_extra("t", i) for i in range(50)]
        assert all(1 <= e <= 3 for e in extras)
        assert len(set(extras)) > 1  # per-site, not one global value

    def test_freeze_dominates_transient_window(self):
        plan = FaultPlan(seed=5, stall_rate=1.0, stall_max=10,
                         freeze_at=123)
        assert FaultInjector(plan).stall_window("t", 0) == (123, None)

    def test_grant_shuffle_preserves_multiset(self):
        from collections import deque
        plan = FaultPlan(seed=5, arbiter_shuffle=True)
        inj = FaultInjector(plan)
        q = deque(range(8))
        inj.now = 17
        inj.shuffle_grants("junction0", q)
        assert sorted(q) == list(range(8))
        # Same (seed, junction, cycle) => same permutation.
        q2 = deque(range(8))
        inj2 = FaultInjector(plan)
        inj2.now = 17
        inj2.shuffle_grants("junction0", q2)
        assert list(q) == list(q2)


class _OwnerStub:
    """Minimal stand-in for a DataflowInstance wiring EventChannels."""

    def __init__(self):
        self._dirty = []

    def wake_node(self, idx):
        pass


def _make(cls, **kw):
    ch = cls(**kw)
    if isinstance(ch, FaultEventChannel):
        ch.owner = _OwnerStub()
    return ch


class TestFaultChannels:
    @pytest.mark.parametrize("cls", [FaultChannel, FaultEventChannel])
    def test_jitter_delays_visibility(self, cls):
        inj = FaultInjector(FaultPlan(seed=1))
        # stages=1 normally means visible after one commit; extra=2
        # stretches that to three commits.
        ch = _make(cls, capacity=2, stages=1, extra=2, window=None,
                   injector=inj)
        assert ch.can_push()
        ch.push(42)
        for _ in range(2):
            ch.commit()
            assert not ch.ready()
        ch.commit()
        assert ch.ready() and ch.pop() == 42

    @pytest.mark.parametrize("cls", [FaultChannel, FaultEventChannel])
    def test_extra_adds_buffering(self, cls):
        inj = FaultInjector(FaultPlan(seed=1))
        ch = _make(cls, capacity=1, stages=1, extra=2, window=None,
                   injector=inj)
        # Each injected register stage is a buffer slot too.
        for v in range(3):
            assert ch.can_push()
            ch.push(v)
            ch.commit()
        assert not ch.can_push()

    @pytest.mark.parametrize("cls", [FaultChannel, FaultEventChannel])
    def test_stall_window_withholds_credit(self, cls):
        inj = FaultInjector(FaultPlan(seed=1))
        ch = _make(cls, capacity=2, stages=1, extra=0, window=(5, 8),
                   injector=inj)
        inj.now = 4
        assert ch.can_push()
        for now in (5, 6, 7):
            inj.now = now
            assert not ch.can_push()
        inj.now = 8
        assert ch.can_push()

    @pytest.mark.parametrize("cls", [FaultChannel, FaultEventChannel])
    def test_permanent_freeze_never_restores(self, cls):
        inj = FaultInjector(FaultPlan(seed=1))
        ch = _make(cls, capacity=2, stages=1, extra=0,
                   window=(5, None), injector=inj)
        inj.now = 1_000_000
        assert not ch.can_push()

    @pytest.mark.parametrize("cls", [FaultChannel, FaultEventChannel])
    def test_fifo_order_through_jitter(self, cls):
        inj = FaultInjector(FaultPlan(seed=1))
        ch = _make(cls, capacity=4, stages=1, extra=3, window=None,
                   injector=inj)
        ch.push(1)
        ch.commit()
        ch.push(2)
        for _ in range(5):
            ch.commit()
        assert ch.pop() == 1
        assert ch.pop() == 2


class TestMaxCyclesBoundary:
    """The historical ``now > max_cycles`` allowed one extra cycle;
    both kernels must now stop at exactly ``max_cycles``."""

    @pytest.mark.parametrize("kernel", ["event", "dense"])
    def test_raises_at_exact_bound(self, kernel):
        with pytest.raises(SimulationTimeout) as exc:
            _sim("gemm", kernel=kernel, max_cycles=100)
        assert exc.value.cycle == 100
        assert exc.value.max_cycles == 100
        assert "max_cycles=100" in str(exc.value)

    def test_both_kernels_raise_identically(self):
        cycles = set()
        for kernel in ("event", "dense"):
            with pytest.raises(SimulationTimeout) as exc:
                _sim("gemm", kernel=kernel, max_cycles=257)
            cycles.add(exc.value.cycle)
        assert cycles == {257}

    def test_completing_run_unaffected(self):
        result = _sim("fib", kernel="event")
        # A bound of exactly the completion cycle count must not trip.
        again = _sim("fib", kernel="event",
                     max_cycles=result.cycles)
        assert again.cycles == result.cycles

    def test_timeout_carries_partial_stats(self):
        with pytest.raises(SimulationTimeout) as exc:
            _sim("gemm", max_cycles=300)
        assert exc.value.stats.cycles == 300


class TestWatchdog:
    def test_wallclock_timeout_raises(self):
        # Zero budget: trips at the first stride check (cycle 2048).
        with pytest.raises(WatchdogTimeout) as exc:
            _sim("gemm", wallclock_timeout=0.0)
        assert exc.value.cycle == 2048
        assert exc.value.limit == 0.0
        assert exc.value.elapsed > 0.0

    def test_generous_budget_never_trips(self):
        result = _sim("gemm", wallclock_timeout=600.0)
        assert result.cycles > 0

    def test_heartbeat_reports_progress(self):
        beats = []
        _sim("gemm", heartbeat_cycles=1000,
             heartbeat=lambda now, stats: beats.append(now))
        assert beats == sorted(beats)
        assert beats and beats[0] == 1000


class TestKernelEquivalenceUnderFaults:
    """Bit-identical event/dense equivalence extends to faulted runs —
    same cycles, same results, same memory."""

    @pytest.mark.parametrize("seed", [1, 2])
    def test_gemm(self, seed):
        plan = FaultPlan.generate(seed)
        outcomes = []
        for kernel in ("event", "dense"):
            w = get_workload("gemm")
            circuit = translate_module(w.module(), name="gemm")
            mem = w.fresh_memory()
            r = simulate(circuit, mem, list(w.args_for()),
                         SimParams(kernel=kernel, faults=plan))
            outcomes.append((r.cycles, r.results, list(mem.words)))
        assert outcomes[0] == outcomes[1]


class TestRngHelpers:
    def test_rng_for_matches_legacy_sequences(self):
        import random
        assert rng_for(42).random() == random.Random(42).random()

    def test_streams_are_independent(self):
        assert rng_for(42, "a").random() != rng_for(42, "b").random()

    def test_derive_seed_order_sensitive(self):
        assert derive_seed("a", 1) != derive_seed(1, "a")

    def test_site_fraction_range(self):
        vals = [site_fraction(9, "s", i) for i in range(200)]
        assert all(0.0 <= v < 1.0 for v in vals)
        assert len(set(vals)) > 150

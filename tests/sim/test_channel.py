"""Tests for ready/valid channels."""

from hypothesis import given, strategies as st

from repro.sim.channel import Channel, LatchedChannel


class TestChannel:
    def test_push_invisible_until_commit(self):
        ch = Channel(2)
        ch.push(1)
        assert not ch.ready()
        ch.commit()
        assert ch.ready() and ch.peek() == 1

    def test_two_stage_latency(self):
        ch = Channel(2, stages=2)
        ch.push("x")
        ch.commit()
        assert not ch.ready()       # still in the in-flight register
        ch.commit()
        assert ch.ready()

    def test_single_stage_latency(self):
        ch = Channel(2, stages=1)
        ch.push("x")
        ch.commit()
        assert ch.ready()

    def test_capacity_backpressure(self):
        ch = Channel(2)
        ch.push(1)
        ch.push(2)
        assert not ch.can_push()
        ch.commit()
        assert not ch.can_push()
        ch.pop()
        assert ch.can_push()

    def test_capacity_at_least_stages(self):
        ch = Channel(1, stages=2)
        assert ch.capacity == 2

    def test_fifo_order(self):
        ch = Channel(8)
        for v in (1, 2, 3):
            ch.push(v)
        ch.commit()
        assert [ch.pop() for _ in range(3)] == [1, 2, 3]

    def test_two_stage_sustains_full_throughput(self):
        # One token per cycle in, one per cycle out, never stalls.
        ch = Channel(2, stages=2)
        delivered = []
        pushed = 0
        for cycle in range(20):
            if ch.ready():
                delivered.append(ch.pop())
            if ch.can_push():
                ch.push(pushed)
                pushed += 1
            ch.commit()
        assert delivered == list(range(len(delivered)))
        assert len(delivered) >= 17

    def test_commit_reports_movement(self):
        ch = Channel(4)
        assert not ch.commit()
        ch.push(1)
        assert ch.commit()

    def test_clear(self):
        ch = Channel(4, stages=2)
        ch.push(1)
        ch.commit()
        ch.clear()
        assert ch.occupancy == 0
        ch.commit()
        assert not ch.ready()

    @given(st.lists(st.integers(), max_size=40))
    def test_fifo_property(self, values):
        ch = Channel(capacity=1000)
        for v in values:
            ch.push(v)
        ch.commit()
        out = []
        while ch.ready():
            out.append(ch.pop())
        assert out == values


class TestLatchedChannel:
    def test_unset_not_ready(self):
        ch = LatchedChannel()
        assert not ch.ready()

    def test_latch_then_repeated_reads(self):
        ch = LatchedChannel()
        ch.latch(42)
        assert ch.ready()
        assert ch.pop() == 42
        assert ch.pop() == 42   # non-consuming

    def test_push_is_latch(self):
        ch = LatchedChannel()
        assert ch.can_push()
        ch.push(7)
        assert ch.peek() == 7

    def test_commit_is_noop(self):
        ch = LatchedChannel()
        ch.latch(1)
        assert not ch.commit()

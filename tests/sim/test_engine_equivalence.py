"""Kernel equivalence, stall attribution, and stats schema.

The equivalence matrix pins the event-driven, compiled, and trace
kernels against cycle counts, memory digests, and results recorded
from the seed (dense) engine on every built-in workload, under both
the baseline and the full optimization stack.  Any wakeup that is dropped
or delivered in the wrong cycle — or any compiled specialization that
diverges from the reference step semantics — shows up as a
cycle-count or memory mismatch here.
"""

import hashlib
import json
import os

import pytest

from repro.bench.configs import all_opts_for
from repro.errors import DeadlockError
from repro.frontend import compile_minic, translate_module
from repro.frontend.interp import Memory
from repro.opt.pass_manager import PassManager
from repro.sim import SimParams, simulate
from repro.sim.stats import STATS_SCHEMA
from repro.workloads import WORKLOADS

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden",
                           "seed_cycles.json")
with open(GOLDEN_PATH) as _fh:
    GOLDEN = json.load(_fh)

#: Small/medium workloads exercised per-config in the default run;
#: the rest of the matrix is gated behind RUN_FULL_MATRIX=1 to keep
#: the tier-1 suite fast.
FAST_MATRIX = ["saxpy", "stencil", "fib", "dense8", "softm8", "relu_t"]
SLOW_MATRIX = [name for name in WORKLOADS if name not in FAST_MATRIX]
full_matrix = pytest.mark.skipif(
    not os.environ.get("RUN_FULL_MATRIX"),
    reason="set RUN_FULL_MATRIX=1 to run the full workload matrix")


def _mem_digest(mem) -> str:
    h = hashlib.sha256()
    for word in mem.words:
        h.update(repr(word).encode())
    return h.hexdigest()[:16]


def _run_config(name: str, config: str, kernel: str = "event"):
    w = WORKLOADS[name]
    passes = [] if config == "baseline" else all_opts_for(name)
    circuit = translate_module(w.module(), name=f"{name}_{config}")
    PassManager(list(passes)).run(circuit)
    mem = w.fresh_memory()
    params = SimParams(kernel=kernel)
    result = simulate(circuit, mem, list(w.args_for()), params)
    return result, mem


class TestEventKernelEquivalence:
    @pytest.mark.parametrize("kernel", ["event", "compiled", "trace"])
    @pytest.mark.parametrize("config", ["baseline", "allopts"])
    @pytest.mark.parametrize("name", FAST_MATRIX)
    def test_matches_seed_golden(self, name, config, kernel):
        golden = GOLDEN[f"{name}/{config}"]
        result, mem = _run_config(name, config, kernel=kernel)
        assert result.cycles == golden["cycles"], (
            f"{name}/{config}: {kernel} kernel cycles {result.cycles} "
            f"!= seed {golden['cycles']}")
        assert _mem_digest(mem) == golden["mem"], (
            f"{name}/{config}: memory image diverged from seed")
        assert list(result.results) == golden["results"]

    @pytest.mark.slow
    @full_matrix
    @pytest.mark.parametrize("kernel", ["event", "compiled", "trace"])
    @pytest.mark.parametrize("config", ["baseline", "allopts"])
    @pytest.mark.parametrize("name", SLOW_MATRIX)
    def test_matches_seed_golden_slow(self, name, config, kernel):
        golden = GOLDEN[f"{name}/{config}"]
        result, mem = _run_config(name, config, kernel=kernel)
        assert result.cycles == golden["cycles"]
        assert _mem_digest(mem) == golden["mem"]
        assert list(result.results) == golden["results"]

    @pytest.mark.parametrize("name", ["saxpy", "fib"])
    def test_compiled_stats_identical_to_event(self, name):
        # Bit identity extends to the observability layer: every
        # counter the event kernel produces, the compiled kernel must
        # reproduce exactly (only the kernel label may differ).
        ev, _ = _run_config(name, "allopts", kernel="event")
        co, _ = _run_config(name, "allopts", kernel="compiled")
        ev_doc = ev.stats.to_json()
        co_doc = co.stats.to_json()
        assert ev_doc.pop("kernel") == "event"
        assert co_doc.pop("kernel") == "compiled"
        assert ev_doc == co_doc

    @pytest.mark.parametrize("name", ["saxpy", "fib"])
    def test_trace_stats_identical_to_event(self, name):
        # The trace tier's contract is stricter than speed: superblock
        # stepping and time jumps must leave every observable counter
        # exactly as the event kernel wrote it.  Formation/deopt
        # telemetry rides SimResult.trace, never SimStats.
        ev, _ = _run_config(name, "allopts", kernel="event")
        tr, _ = _run_config(name, "allopts", kernel="trace")
        ev_doc = ev.stats.to_json()
        tr_doc = tr.stats.to_json()
        assert ev_doc.pop("kernel") == "event"
        assert tr_doc.pop("kernel") == "trace"
        assert ev_doc == tr_doc
        assert ev.trace is None
        assert tr.trace is not None
        assert set(tr.trace) == {"formed", "warm", "deopts",
                                 "trace_cycles", "jumped_cycles",
                                 "coverage", "per_task"}

    def test_dense_kernel_still_matches(self):
        # The dense path must stay a faithful oracle.
        golden = GOLDEN["saxpy/baseline"]
        result, mem = _run_config("saxpy", "baseline", kernel="dense")
        assert result.cycles == golden["cycles"]
        assert _mem_digest(mem) == golden["mem"]

    def test_golden_covers_every_workload(self):
        for name in WORKLOADS:
            assert f"{name}/baseline" in GOLDEN
            assert f"{name}/allopts" in GOLDEN


class TestStallAttribution:
    def test_memory_bound_loop_blames_dram(self):
        result, _ = _run_config("saxpy", "baseline")
        stalls = result.stats.stall_cycles
        assert stalls, "counters mode should attribute stalls"
        assert stalls.get("dram_inflight", 0) > 0
        # Attribution must never exceed total instance-sleep time.
        assert all(c >= 0 for c in stalls.values())

    def test_per_node_attribution_names_real_nodes(self):
        result, _ = _run_config("saxpy", "baseline")
        rows = result.stats.top_stalled_nodes(5)
        assert rows
        for label, cause, cycles in rows:
            assert cycles > 0
            assert isinstance(label, str) and label
            assert isinstance(cause, str) and cause

    def test_observe_off_disables_counters(self):
        w = WORKLOADS["saxpy"]
        circuit = translate_module(w.module(), name="saxpy_off")
        PassManager([]).run(circuit)
        mem = w.fresh_memory()
        result = simulate(circuit, mem, list(w.args_for()),
                          SimParams(observe="off"))
        assert not result.stats.stall_cycles

    def test_trace_mode_produces_chrome_trace(self, tmp_path):
        w = WORKLOADS["saxpy"]
        circuit = translate_module(w.module(), name="saxpy_trace")
        PassManager([]).run(circuit)
        mem = w.fresh_memory()
        result = simulate(circuit, mem, list(w.args_for()),
                          SimParams(observe="trace"))
        doc = result.observer.chrome_trace()
        assert doc["traceEvents"]
        path = tmp_path / "trace.json"
        result.observer.write_chrome_trace(str(path))
        loaded = json.loads(path.read_text())
        assert loaded["traceEvents"] == doc["traceEvents"]

    def test_deadlock_diagnostics_name_blocked_nodes(self):
        # An unconnected liveout can never be satisfied.
        from repro.core import AcceleratorCircuit, Cache, TaskBlock
        from repro.core.nodes import LiveIn, LiveOut
        from repro.types import I32

        circuit = AcceleratorCircuit("dead")
        circuit.add_structure(Cache("l1"))
        task = TaskBlock("main", "func")
        task.live_in_types = [I32]
        task.live_out_types = [I32]
        task.dataflow.add(LiveIn(0, I32))
        liveout = task.dataflow.add(LiveOut(0, I32))
        circuit.add_task(task)

        class _FakeMemory:
            words = [0] * 16

        with pytest.raises(DeadlockError) as exc_info:
            simulate(circuit, _FakeMemory(), [5],
                     SimParams(deadlock_window=50, validate=False))
        err = exc_info.value
        assert err.diagnostics, "deadlock must carry diagnostics"
        entry = err.diagnostics[0]
        assert entry["task"] == "main"
        blocked = entry["instances"][0]["blocked_nodes"]
        assert any(n["node"] == liveout.name for n in blocked)
        assert any(n["cause"] == "upstream_empty" for n in blocked)
        assert "upstream_empty" in str(err)


class TestStatsJsonSchema:
    def test_schema_and_required_fields(self, tmp_path):
        result, _ = _run_config("saxpy", "baseline")
        doc = result.stats.to_json()
        assert doc["schema"] == STATS_SCHEMA
        assert doc["kernel"] == "event"
        assert doc["cycles"] == result.cycles
        for key in ("stall_cycles", "node_stalls", "site_stalls",
                    "memory_reads", "memory_writes",
                    "idle_engine_cycles"):
            assert key in doc, f"missing stats field {key}"
        path = tmp_path / "stats.json"
        result.stats.dump_json(str(path))
        assert json.loads(path.read_text()) == json.loads(
            json.dumps(doc))

    def test_json_round_trip_is_plain_data(self):
        result, _ = _run_config("fib", "baseline")
        doc = json.loads(json.dumps(result.stats.to_json()))
        assert doc["kernel"] == "event"
        assert isinstance(doc["stall_cycles"], dict)
        assert isinstance(doc["node_stalls"], dict)

"""Tests for the memory-system models."""

import pytest

from repro.core.structures import Cache, DRAMModel, Scratchpad
from repro.sim.memory import CacheSim, DRAMSim, MemRequest, ScratchpadSim
from repro.sim.stats import SimStats


def drive(sim, cycles, start=0):
    for now in range(start, start + cycles):
        sim.tick(now)
        sim.commit()


class TestDRAM:
    def test_fixed_latency(self):
        image = [10, 20, 30]
        dram = DRAMSim(DRAMModel(latency=5, requests_per_cycle=2),
                       image, SimStats())
        req = MemRequest(1, False)
        dram.submit(req)
        drive(dram, 5)
        assert not req.done
        drive(dram, 3, start=5)
        assert req.done and req.value == 20

    def test_bandwidth_limit(self):
        image = [0] * 8
        stats = SimStats()
        dram = DRAMSim(DRAMModel(latency=1, requests_per_cycle=1),
                       image, stats)
        reqs = [MemRequest(i, False) for i in range(4)]
        for r in reqs:
            dram.submit(r)
        drive(dram, 3)
        # 1 per cycle: after 3 ticks only ~2 can be complete.
        assert sum(r.done for r in reqs) <= 2

    def test_write_performs(self):
        image = [0, 0]
        dram = DRAMSim(DRAMModel(latency=1), image, SimStats())
        dram.submit(MemRequest(1, True, value=99))
        drive(dram, 4)
        assert image[1] == 99


class TestScratchpad:
    def make(self, banks=2, ports=1, latency=1, words=16):
        image = list(range(words))
        spad = Scratchpad("s", size_words=words, banks=banks,
                          ports_per_bank=ports, latency=latency)
        return ScratchpadSim(spad, image, SimStats()), image

    def test_read_roundtrip(self):
        sim, image = self.make()
        req = MemRequest(5, False)
        sim.submit(req)
        drive(sim, 4)
        assert req.done and req.value == 5

    def test_write_then_read(self):
        sim, image = self.make()
        w = MemRequest(3, True, value=77)
        sim.submit(w)
        drive(sim, 4)
        assert image[3] == 77

    def test_bank_conflicts_serialize(self):
        sim, _ = self.make(banks=1, ports=1, latency=1)
        reqs = [MemRequest(i, False) for i in range(4)]
        for r in reqs:
            sim.submit(r)
        drive(sim, 3)
        assert sum(r.done for r in reqs) < 4
        drive(sim, 4, start=3)
        assert all(r.done for r in reqs)

    def test_banking_parallelizes(self):
        # Same 4 requests over 4 banks finish sooner than over 1 bank.
        def time_to_done(banks):
            sim, _ = self.make(banks=banks)
            reqs = [MemRequest(i, False) for i in range(4)]
            for r in reqs:
                sim.submit(r)
            for now in range(32):
                sim.tick(now)
                sim.commit()
                if all(r.done for r in reqs):
                    return now
            return 99
        assert time_to_done(4) < time_to_done(1)

    def test_dual_port_reads_and_writes_dont_compete(self):
        sim, _ = self.make(banks=1, ports=1)
        r = MemRequest(0, False)
        w = MemRequest(1, True, value=5)
        sim.submit(r)
        sim.submit(w)
        drive(sim, 4)
        # 1R1W SRAM: both complete as fast as a lone request would.
        assert r.done and w.done


class TestCache:
    def make(self, banks=1, size=64):
        image = [i * 10 for i in range(256)]
        stats = SimStats()
        dram = DRAMSim(DRAMModel(latency=6, requests_per_cycle=2),
                       image, stats)
        cache = Cache("c", size_words=size, banks=banks, line_words=4,
                      hit_latency=1)
        return CacheSim(cache, image, stats, dram), dram, stats

    def drive_both(self, csim, dram, cycles, start=0):
        for now in range(start, start + cycles):
            csim.tick(now)
            dram.tick(now)
            csim.commit()
            dram.commit()

    def test_miss_then_hit(self):
        csim, dram, stats = self.make()
        miss = MemRequest(8, False)
        csim.submit(miss)
        self.drive_both(csim, dram, 15)
        assert miss.done and miss.value == 80
        assert stats.cache_misses == 1
        hit = MemRequest(9, False)  # same line
        csim.submit(hit)
        self.drive_both(csim, dram, 6, start=15)
        assert hit.done and stats.cache_hits == 1

    def test_mshr_coalesces_same_line(self):
        csim, dram, stats = self.make()
        reqs = [MemRequest(4 + i, False) for i in range(4)]
        for r in reqs:
            csim.submit(r)
        self.drive_both(csim, dram, 20)
        assert all(r.done for r in reqs)
        # Only one DRAM fill despite 4 misses to the line.
        assert stats.dram_requests == 1

    def test_write_through(self):
        csim, dram, stats = self.make()
        w = MemRequest(0, True, value=123)
        csim.submit(w)
        self.drive_both(csim, dram, 20)
        assert w.done
        assert csim.image[0] == 123
        # The write-through also reached the DRAM queue.
        assert stats.dram_requests >= 1

    def test_conflict_eviction(self):
        csim, dram, stats = self.make(size=16)  # 4 lines
        a = MemRequest(0, False)
        csim.submit(a)
        self.drive_both(csim, dram, 15)
        # Address 16 lines maps onto the same set (4 sets, 1 bank).
        b = MemRequest(16, False)
        csim.submit(b)
        self.drive_both(csim, dram, 15, start=15)
        c = MemRequest(0, False)   # evicted: miss again
        csim.submit(c)
        self.drive_both(csim, dram, 15, start=30)
        assert stats.cache_misses == 3


class TestAssociativity:
    def make(self, ways, size=16):
        from repro.core.structures import Cache, DRAMModel
        from repro.sim.memory import CacheSim, DRAMSim, MemRequest
        from repro.sim.stats import SimStats
        image = [i for i in range(256)]
        stats = SimStats()
        dram = DRAMSim(DRAMModel(latency=4, requests_per_cycle=2),
                       image, stats)
        cache = Cache("c", size_words=size, banks=1, line_words=4,
                      hit_latency=1, ways=ways)
        return CacheSim(cache, image, stats, dram), dram, stats

    def drive(self, csim, dram, cycles, start=0):
        for now in range(start, start + cycles):
            csim.tick(now)
            dram.tick(now)
            csim.commit()
            dram.commit()

    def access(self, csim, dram, addr, start):
        from repro.sim.memory import MemRequest
        req = MemRequest(addr, False)
        csim.submit(req)
        self.drive(csim, dram, 12, start)
        assert req.done
        return req

    def test_two_way_keeps_conflicting_pair(self):
        # 16-word cache, 4 lines. Direct mapped: addr 0 and addr 16
        # conflict; 2-way keeps both.
        csim, dram, stats = self.make(ways=2)
        self.access(csim, dram, 0, 0)
        self.access(csim, dram, 16, 20)
        self.access(csim, dram, 0, 40)   # hit under 2-way
        assert stats.cache_misses == 2
        assert stats.cache_hits == 1

    def test_direct_mapped_thrashes(self):
        csim, dram, stats = self.make(ways=1)
        self.access(csim, dram, 0, 0)
        self.access(csim, dram, 16, 20)
        self.access(csim, dram, 0, 40)   # evicted: miss again
        assert stats.cache_misses == 3

    def test_lru_eviction_order(self):
        csim, dram, stats = self.make(ways=2)
        self.access(csim, dram, 0, 0)    # set 0: {0}
        self.access(csim, dram, 16, 20)  # set 0: {0,16}
        self.access(csim, dram, 0, 40)   # touch 0 -> LRU is 16
        self.access(csim, dram, 32, 60)  # evicts 16
        self.access(csim, dram, 0, 80)   # still resident
        assert stats.cache_hits == 2

    def test_bad_ways_rejected(self):
        import pytest
        from repro.core.structures import Cache
        from repro.errors import GraphError
        with pytest.raises(GraphError):
            Cache("c", ways=0)

"""Observability exports: Chrome trace shape, stats v3 round-trip,
source-level stall attribution, and provenance in deadlock reports."""

import json

import pytest

from repro.core import AcceleratorCircuit, Cache, SourceLoc, TaskBlock
from repro.core.nodes import LiveIn, LiveOut
from repro.errors import DeadlockError
from repro.frontend import translate_module
from repro.opt.pass_manager import PassManager
from repro.sim import SimParams, simulate
from repro.sim.stats import STATS_SCHEMA, SimStats
from repro.types import I32
from repro.workloads import WORKLOADS


def _run(name, observe="counters", trace_capacity=65536):
    w = WORKLOADS[name]
    circuit = translate_module(w.module(), name=f"{name}_{observe}")
    PassManager([]).run(circuit)
    mem = w.fresh_memory()
    return simulate(circuit, mem, list(w.args_for()),
                    SimParams(observe=observe,
                              trace_capacity=trace_capacity))


class TestChromeTraceShape:
    def test_required_keys_and_monotonic_ts(self):
        result = _run("gemm", observe="trace")
        doc = result.observer.chrome_trace()
        events = doc["traceEvents"]
        assert events
        last_ts = -1
        for ev in events:
            for key in ("name", "ph", "pid", "tid", "ts", "cat"):
                assert key in ev, f"trace event missing {key!r}"
            assert ev["ph"] in ("X", "i")
            if ev["ph"] == "X":
                assert ev["dur"] > 0
            assert ev["ts"] >= last_ts, "ts must be monotonic"
            last_ts = ev["ts"]

    def test_stall_events_carry_source_locations(self):
        result = _run("gemm", observe="trace")
        doc = result.observer.chrome_trace()
        locs = [ev["args"]["loc"] for ev in doc["traceEvents"]
                if "loc" in ev.get("args", {})]
        assert locs, "stall events should carry provenance"
        assert any("gemm.mc:" in loc for loc in locs)

    def test_ring_capacity_bounds_events(self):
        result = _run("gemm", observe="trace", trace_capacity=16)
        obs = result.observer
        assert len(obs.ring) <= 16
        assert obs.dropped > 0


class TestStatsV3:
    def test_schema_bumped(self):
        assert STATS_SCHEMA == "repro.simstats/v3"

    def test_dump_load_round_trip_equal(self, tmp_path):
        result = _run("gemm")
        stats = result.stats
        assert stats.source_stalls, "v3 field must be populated"
        path = tmp_path / "stats.json"
        stats.dump_json(str(path))
        loaded = SimStats.load_json(str(path))
        assert loaded.to_json() == stats.to_json()
        assert loaded.source_stalls == dict(stats.source_stalls)
        assert loaded.junction_grants == stats.junction_grants

    def test_v2_documents_still_load(self):
        doc = _run("saxpy").stats.to_json()
        doc["schema"] = "repro.simstats/v2"
        del doc["source_stalls"]
        stats = SimStats.from_json(doc)
        assert stats.cycles == doc["cycles"]
        assert stats.source_stalls == {}

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError):
            SimStats.from_json({"schema": "repro.simstats/v1"})


class TestSourceAttribution:
    def test_source_stalls_use_provenance_labels(self):
        result = _run("gemm")
        stats = result.stats
        assert stats.source_stalls
        assert any(label.startswith("gemm.mc:")
                   for label in stats.source_stalls)
        # Node-attributed cycles and source-attributed cycles agree:
        # every charged (node, cause) with provenance also charged a
        # source bucket.
        node_total = sum(c for causes in stats.node_stalls.values()
                        for c in causes.values())
        src_total = sum(c for causes in stats.source_stalls.values()
                        for c in causes.values())
        assert 0 < src_total <= node_total

    def test_top_stalled_sources_ranked(self):
        stats = _run("gemm").stats
        rows = stats.top_stalled_sources(5)
        assert rows
        cycles = [row[2] for row in rows]
        assert cycles == sorted(cycles, reverse=True)
        for loc, cause, cyc in rows:
            assert "gemm.mc" in loc
            assert cyc > 0


class TestDeadlockProvenance:
    def test_deadlock_report_names_source_line(self):
        circuit = AcceleratorCircuit("dead")
        circuit.add_structure(Cache("l1"))
        task = TaskBlock("main", "func")
        task.live_in_types = [I32]
        task.live_out_types = [I32]
        livein = task.dataflow.add(LiveIn(0, I32))
        liveout = task.dataflow.add(LiveOut(0, I32))
        livein.provenance = (SourceLoc("broken.mc", 7, "main"),)
        liveout.provenance = (SourceLoc("broken.mc", 9, "main"),)
        circuit.add_task(task)

        class _FakeMemory:
            words = [0] * 16

        with pytest.raises(DeadlockError) as exc_info:
            simulate(circuit, _FakeMemory(), [5],
                     SimParams(deadlock_window=50, validate=False))
        err = exc_info.value
        blocked = err.diagnostics[0]["instances"][0]["blocked_nodes"]
        assert any(n.get("loc") == "broken.mc:9 (main)"
                   for n in blocked)
        assert "broken.mc:9 (main)" in str(err)

"""Batched simulation: lane identity, deopt, and error isolation.

The batched driver's contract is the repo's usual one — per-lane
results and memory bit-identical to N independent event-kernel runs —
plus its own machinery: uniform-control vectorization with deopt on
lane-divergent control, the enforced scalar fallback under fault
plans, per-lane failure isolation with batch-aware error documents,
and a numpy fast path that must agree bit-for-bit with the pure-Python
lane loop.
"""

import os
import random

import pytest

from repro.core.lanes import (LaneValues, have_numpy, lane_fingerprint,
                              numpy_note)
from repro.errors import LaneDivergence
from repro.frontend import compile_minic, translate_module
from repro.frontend.interp import Memory
from repro.sim import SimParams, simulate, simulate_batch
from repro.sim.faults import FaultPlan
from repro.sim.stats import SimStats
from repro.workloads import WORKLOADS

FAST_MATRIX = ["saxpy", "stencil", "fib", "dense8", "softm8", "relu_t"]
SLOW_MATRIX = [name for name in WORKLOADS if name not in FAST_MATRIX]
full_matrix = pytest.mark.skipif(
    not os.environ.get("RUN_FULL_MATRIX"),
    reason="set RUN_FULL_MATRIX=1 to run the full workload matrix")


def _perturb_floats(mem, rng) -> None:
    """Type-preserving per-lane input variation.  Floats only: integer
    words may be loop bounds or index-array entries, and corrupting
    those breaks the *workload*, not the batching."""
    for i, v in enumerate(mem.words):
        if type(v) is float and rng.random() < 0.4:
            mem.words[i] = float(rng.randrange(-50, 50))


def _lanes_for(name: str, n: int, seed: int = 7):
    w = WORKLOADS[name]
    rng = random.Random(seed)
    lanes = []
    for _ in range(n):
        mem = w.fresh_memory()
        _perturb_floats(mem, rng)
        lanes.append(mem)
    return lanes


def _check_identity(name: str, n: int, kernel: str = "compiled",
                    expect_mode: str = "vectorized") -> None:
    """Batch of N vs N independent event-kernel runs, bit-for-bit."""
    w = WORKLOADS[name]
    circuit = translate_module(w.module(), name=f"{name}_batch")
    args = list(w.args_for())
    lanes = _lanes_for(name, n)
    refs = []
    for mem in lanes:
        ref_mem = w.fresh_memory()
        ref_mem.words[:] = mem.words
        result = simulate(circuit, ref_mem, args, SimParams())
        refs.append((result.cycles, list(result.results),
                     list(ref_mem.words)))
    batch = simulate_batch(circuit, lanes, [args] * n,
                           SimParams(kernel=kernel))
    assert batch.ok, batch.errors
    assert batch.mode == expect_mode
    for i in range(n):
        assert batch.results[i].cycles == refs[i][0], f"lane {i} cycles"
        assert list(batch.results[i].results) == refs[i][1], \
            f"lane {i} results"
        assert lanes[i].words == refs[i][2], f"lane {i} memory"


class TestLaneIdentity:
    @pytest.mark.parametrize("name", FAST_MATRIX)
    def test_batched_matches_independent_runs(self, name):
        _check_identity(name, 4)

    @pytest.mark.slow
    @full_matrix
    @pytest.mark.parametrize("name", SLOW_MATRIX)
    def test_batched_matches_independent_runs_slow(self, name):
        _check_identity(name, 4)

    def test_event_kernel_also_batches(self):
        _check_identity("saxpy", 4, kernel="event")

    def test_single_lane_goes_sequential(self):
        _check_identity("saxpy", 1, expect_mode="sequential")

    @pytest.mark.skipif(not have_numpy(), reason="numpy not installed")
    def test_numpy_and_pure_python_agree(self, monkeypatch):
        # Above the lane threshold the numpy fast path engages; with
        # the escape hatch set, the same run uses the list loop.  Both
        # must match the independent scalar runs bit-for-bit, which
        # _check_identity asserts.
        _check_identity("gemm", 12)
        monkeypatch.setenv("REPRO_BATCH_NO_NUMPY", "1")
        assert not have_numpy()
        _check_identity("gemm", 12)

    def test_capability_note(self, monkeypatch):
        if have_numpy():
            assert numpy_note() is None
        monkeypatch.setenv("REPRO_BATCH_NO_NUMPY", "1")
        note = numpy_note()
        assert note is not None and "numpy" in note


class TestControlDivergence:
    def test_divergent_control_deopts_and_stays_identical(self):
        # Per-lane trip counts differ -> the loop bound is
        # lane-divergent control -> the vectorized attempt must deopt,
        # and the sequential re-run must still be bit-identical.
        source = """
array out: i32[4];
func main(n: i32) {
  var s = 0;
  for (i = 0; i < n; i = i + 1) {
    s = s + i;
  }
  out[0] = s;
}
"""
        module = compile_minic(source, filename="diverge.mc")
        circuit = translate_module(module, name="diverge")
        args_lanes = [[3], [5], [9]]
        refs = []
        for a in args_lanes:
            mem = Memory(module)
            result = simulate(circuit, mem, a, SimParams())
            refs.append((result.cycles, list(mem.words)))
        lanes = [Memory(module) for _ in args_lanes]
        batch = simulate_batch(circuit, lanes, args_lanes,
                               SimParams(kernel="compiled"))
        assert batch.mode == "deopt"
        assert batch.deopt["error"] == "LaneDivergence"
        assert batch.ok
        for i, (cycles, words) in enumerate(refs):
            assert batch.results[i].cycles == cycles
            assert lanes[i].words == words

    def test_divergent_payload_stays_vectorized(self):
        # Divergent *data* (not control) must not deopt.
        source = """
array out: i32[4];
func main(a: i32) {
  out[0] = a * a + 1;
}
"""
        module = compile_minic(source, filename="payload.mc")
        circuit = translate_module(module, name="payload")
        lanes = [Memory(module) for _ in range(3)]
        batch = simulate_batch(circuit, lanes, [[2], [5], [11]],
                               SimParams(kernel="compiled"))
        assert batch.mode == "vectorized"
        assert [m.words[0] for m in lanes] == [5, 26, 122]

    def test_lane_values_bool_raises_on_divergence(self):
        with pytest.raises(LaneDivergence):
            bool(LaneValues([True, False, True]))
        assert bool(LaneValues([True, True])) is True
        # True vs 1 is a *class* divergence: repr-identity would break.
        with pytest.raises(LaneDivergence):
            int(LaneValues([True, 1]))


class TestErrorIsolation:
    def test_failed_lane_reports_index_and_fingerprint(self):
        # Lane 1 divides by zero; lanes 0 and 2 must complete and the
        # error document must carry the lane index and its input
        # fingerprint.
        source = """
array out: i32[4];
func main(a: i32, b: i32) {
  out[0] = a / b;
}
"""
        module = compile_minic(source, filename="divz.mc")
        circuit = translate_module(module, name="divz")
        args_lanes = [[8, 2], [8, 0], [9, 3]]
        lanes = [Memory(module) for _ in args_lanes]
        before = list(lanes[1].words)
        batch = simulate_batch(circuit, lanes, args_lanes,
                               SimParams(kernel="compiled"))
        assert not batch.ok
        assert batch.results[0] is not None and lanes[0].words[0] == 4
        assert batch.results[2] is not None and lanes[2].words[0] == 3
        err = batch.errors[1]
        assert batch.results[1] is None
        assert err["lane"] == 1
        assert err["error"] == "SimulationError"
        assert err["input_fingerprint"] == \
            lane_fingerprint(args_lanes[1], before)
        assert batch.errors[0] is None and batch.errors[2] is None

    def test_fault_plan_forces_sequential(self):
        # Satellite policy: an active fault plan runs lanes scalar
        # (per-lane LI identity is the fuzzer's job; the driver's job
        # is to never vectorize under faults).
        w = WORKLOADS["saxpy"]
        circuit = translate_module(w.module(), name="saxpy_faults")
        lanes = [w.fresh_memory() for _ in range(3)]
        plan = FaultPlan.generate(1)
        batch = simulate_batch(circuit, lanes,
                               [list(w.args_for())] * 3,
                               SimParams(kernel="compiled",
                                         faults=plan))
        assert batch.mode == "sequential"
        assert batch.ok
        w.verify(lanes[0])


class TestBatchStats:
    def test_stats_round_trip_with_batch(self):
        w = WORKLOADS["saxpy"]
        circuit = translate_module(w.module(), name="saxpy_stats")
        lanes = [w.fresh_memory() for _ in range(3)]
        batch = simulate_batch(circuit, lanes,
                               [list(w.args_for())] * 3,
                               SimParams(kernel="compiled"))
        doc = batch.stats.to_json()
        assert doc["batch"] == {"lanes": 3, "mode": "vectorized",
                                "lane_cycles": batch.stats.lane_cycles}
        back = SimStats.from_json(doc)
        assert back.batch_lanes == 3
        assert back.batch_mode == "vectorized"
        assert back.lane_cycles == batch.stats.lane_cycles

    def test_scalar_stats_document_unchanged(self):
        # The v3 round-trip must not grow a "batch" key on scalar runs.
        w = WORKLOADS["saxpy"]
        circuit = translate_module(w.module(), name="saxpy_scalar")
        mem = w.fresh_memory()
        result = simulate(circuit, mem, list(w.args_for()), SimParams())
        doc = result.stats.to_json()
        assert "batch" not in doc
        assert SimStats.from_json(doc).batch_lanes == 0

    def test_merged_aggregates(self):
        a, b = SimStats(), SimStats()
        a.cycles, b.cycles = 10, 25
        a.memory_reads, b.memory_reads = 3, 4
        a.invocations["main"] = 1
        b.invocations["main"] = 2
        merged = SimStats.merged([a, b])
        assert merged.cycles == 25
        assert merged.memory_reads == 7
        assert merged.invocations["main"] == 3
        assert SimStats.merged([]).cycles == 0


class TestEvaluateMany:
    def test_pipeline_evaluate_many_verifies_lanes(self):
        from repro import Pipeline
        pipe = Pipeline("saxpy")
        batch = pipe.evaluate_many(
            params=SimParams(kernel="compiled", batch=3))
        assert batch.ok
        assert batch.verified == [True, True, True]
        assert batch.mode == "vectorized"

    def test_module_pipeline_per_lane_args(self):
        from repro import Pipeline
        source = """
array out: i32[4];
func main(a: i32, b: i32) {
  out[0] = a * b + 1;
}
"""
        pipe = Pipeline(source, name="mul")
        batch = pipe.evaluate_many([[2, 3], [4, 5], [6, 7]],
                                   SimParams(kernel="compiled"))
        assert batch.ok and batch.verified == [True, True, True]
        assert batch.mode == "vectorized"

"""Tests for the writeback-buffer pass and its simulator model."""

import pytest

from repro.core.structures import Scratchpad
from repro.errors import PassError
from repro.frontend import compile_minic, translate_module
from repro.opt import MemoryLocalization, PassManager, WritebackBuffer
from repro.sim.memory import MemRequest, ScratchpadSim
from repro.sim.stats import SimStats

from tests.conftest import assert_equivalent

RMW = """
array a: i32[32];
func main(n: i32) {
  for (i = 0; i < n; i = i + 1) {
    a[i] = a[i] + 1;
  }
}
"""


class TestPass:
    def test_requires_scratchpads_first(self):
        c = translate_module(compile_minic(RMW))
        log = PassManager([WritebackBuffer(8)]).run(c)
        assert not log[0].changed  # nothing to buffer yet

    def test_sets_entries(self):
        c = translate_module(compile_minic(RMW))
        PassManager([MemoryLocalization(), WritebackBuffer(6)]).run(c)
        assert all(s.write_buffer_entries == 6
                   for s in c.scratchpads())

    def test_bad_size(self):
        with pytest.raises(PassError):
            WritebackBuffer(0)

    def test_scoped(self):
        c = translate_module(compile_minic("""
array a: i32[8];
array b: i32[8];
func main(n: i32) {
  for (i = 0; i < n; i = i + 1) { a[i] = b[i]; }
}
"""))
        PassManager([MemoryLocalization(),
                     WritebackBuffer(4, scratchpads=["spad_a"])]).run(c)
        homes = {s.name: s.write_buffer_entries
                 for s in c.scratchpads()}
        assert homes["spad_a"] == 4 and homes["spad_b"] == 0

    def test_preserves_behavior_rmw(self):
        assert_equivalent(
            RMW, [32],
            init=lambda m: m.set_array("a", list(range(32))),
            passes=[MemoryLocalization(), WritebackBuffer(8)])

    def test_preserves_behavior_accumulator(self):
        # The hard case: read-after-buffered-write to one address.
        assert_equivalent("""
array o: i32[1];
array w: i32[16];
func main(n: i32) {
  for (i = 0; i < n; i = i + 1) {
    o[0] = o[0] + w[i];
  }
}
""", [16], init=lambda m: m.set_array("w", list(range(16))),
            passes=[MemoryLocalization(), WritebackBuffer(8)])


class TestSimModel:
    def make(self, entries):
        spad = Scratchpad("s", size_words=16, banks=1,
                          write_buffer_entries=entries)
        image = [0] * 16
        return ScratchpadSim(spad, image, SimStats()), image

    def drive(self, sim, cycles):
        for now in range(cycles):
            sim.tick(now)
            sim.commit()

    def test_buffered_write_completes_fast(self):
        sim, image = self.make(entries=4)
        req = MemRequest(3, True, value=9)
        sim.submit(req)
        sim.commit()
        assert req.done       # completed on buffer entry
        self.drive(sim, 3)
        assert image[3] == 9  # and drained to the array

    def test_forwarding_supplies_latest_value(self):
        sim, image = self.make(entries=4)
        sim.submit(MemRequest(5, True, value=1))
        sim.submit(MemRequest(5, True, value=2))
        read = MemRequest(5, False)
        sim.submit(read)
        # Serve the read before the buffer drains everything.
        sim.commit()
        sim.tick(0)
        assert read.done or True
        self.drive(sim, 4)
        assert read.value == 2

    def test_full_buffer_falls_back_to_queue(self):
        sim, image = self.make(entries=1)
        first = MemRequest(0, True, value=1)
        second = MemRequest(1, True, value=2)
        sim.submit(first)
        sim.submit(second)
        sim.commit()
        assert first.done
        assert not second.done  # queued behind the full buffer
        self.drive(sim, 4)
        assert second.done and image[1] == 2

    def test_busy_until_drained(self):
        sim, _ = self.make(entries=4)
        sim.submit(MemRequest(0, True, value=7))
        sim.commit()
        assert sim.busy()
        self.drive(sim, 3)
        assert not sim.busy()

"""Tests for the pass framework."""

import pytest

from repro.errors import PassError
from repro.frontend import compile_minic, translate_module
from repro.opt import Pass, PassManager, PassResult
from repro.opt.pass_manager import PassResult as PR

SRC = """
array a: f32[16];
func main(n: i32) {
  for (i = 0; i < n; i = i + 1) { a[i] = a[i] * 2.0; }
}
"""


def circuit():
    return translate_module(compile_minic(SRC))


class AddNodePass(Pass):
    name = "add_node"

    def apply(self, c):
        from repro.core.nodes import ConstNode
        from repro.types import I32
        task = c.root_task
        task.dataflow.add(ConstNode(0, I32, name="extra"))
        # Dangling consts are allowed; validation passes.
        return self._result(True)


class BreakingPass(Pass):
    name = "breaker"

    def apply(self, c):
        from repro.core.nodes import ComputeNode
        from repro.types import I32
        c.root_task.dataflow.add(ComputeNode("add", I32))
        return self._result(True)


class CrashingPass(Pass):
    name = "boom"

    def apply(self, c):
        raise ValueError("kaboom")


class TestPassManager:
    def test_runs_in_order(self):
        order = []

        class P(Pass):
            def __init__(self, tag):
                self.name = tag
                self.tag = tag
                self.order = order

            def apply(self, c):
                self.order.append(self.tag)
                return self._result(False)

        PassManager([P("a"), P("b"), P("c")]).run(circuit())
        assert order == ["a", "b", "c"]

    def test_delta_accounting_automatic(self):
        log = PassManager([AddNodePass()]).run(circuit())
        assert log[0].nodes_added == 1
        assert log[0].delta_nodes == 1

    def test_validation_catches_broken_pass(self):
        with pytest.raises(PassError) as err:
            PassManager([BreakingPass()]).run(circuit())
        assert "breaker" in str(err.value)

    def test_validation_can_be_disabled(self):
        PassManager([BreakingPass()], validate=False).run(circuit())

    def test_crash_wrapped_as_pass_error(self):
        with pytest.raises(PassError) as err:
            PassManager([CrashingPass()]).run(circuit())
        assert "boom" in str(err.value)

    def test_log_kept(self):
        pm = PassManager([AddNodePass()])
        pm.run(circuit())
        assert len(pm.log) == 1
        assert pm.log[0].pass_name == "add_node"

    def test_registry_covers_all_passes(self):
        from repro.opt import PASS_REGISTRY
        assert set(PASS_REGISTRY) == {
            "task_pipelining", "execution_tiling",
            "memory_localization", "scratchpad_banking",
            "cache_banking", "op_fusion", "tensor_ops",
            "parameter_tuning", "bitwidth_tuning",
            "writeback_buffer", "perf_counters"}
        for cls in PASS_REGISTRY.values():
            assert issubclass(cls, Pass)
            assert cls().name  # constructible with defaults

"""perf_counters pass: behavior neutrality, costing, serialization.

The central invariant: inserting the PMU changes *nothing* the
architecture can observe — cycles, memory images and results stay
bit-identical to the uninstrumented circuit (checked against the seed
goldens for every workload under both the baseline and the full
optimization stack) — while the synthesis model charges real area for
the counter hardware.
"""

import hashlib
import json
import os

import pytest

from repro.bench.configs import all_opts_for
from repro.core.serialize import circuit_from_dict, circuit_to_dict
from repro.core.structures import CounterSpec, PerfCounterBank
from repro.errors import GraphError
from repro.frontend import translate_module
from repro.opt import PassManager, PerfCounters
from repro.rtl import emit_chisel, emit_verilog, synthesize
from repro.sim import simulate
from repro.workloads import WORKLOADS

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                           "sim", "golden", "seed_cycles.json")
with open(GOLDEN_PATH) as _fh:
    GOLDEN = json.load(_fh)


def _mem_digest(mem) -> str:
    h = hashlib.sha256()
    for word in mem.words:
        h.update(repr(word).encode())
    return h.hexdigest()[:16]


def _instrumented_run(name: str, config: str):
    w = WORKLOADS[name]
    passes = [] if config == "baseline" else list(all_opts_for(name))
    circuit = translate_module(w.module(), name=f"{name}_{config}_pmu")
    PassManager(passes + [PerfCounters()]).run(circuit)
    mem = w.fresh_memory()
    result = simulate(circuit, mem, list(w.args_for()))
    return circuit, result, mem


class TestBehaviorNeutrality:
    """All 19 workloads, both configs, vs the seed goldens."""

    @pytest.mark.parametrize("config", ["baseline", "allopts"])
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_bit_identical_to_uninstrumented(self, name, config):
        golden = GOLDEN[f"{name}/{config}"]
        _circuit, result, mem = _instrumented_run(name, config)
        assert result.cycles == golden["cycles"], (
            f"{name}/{config}: perf_counters changed the cycle count")
        assert _mem_digest(mem) == golden["mem"], (
            f"{name}/{config}: perf_counters perturbed memory")
        assert list(result.results) == golden["results"]


class TestPassStructure:
    def test_banks_inserted_per_task_plus_global(self):
        circuit, _result, _mem = _instrumented_run("gemm", "baseline")
        banks = [s for s in circuit.structures
                 if isinstance(s, PerfCounterBank)]
        names = {b.name for b in banks}
        for task in circuit.tasks:
            assert f"{task}_pmu" in names
        assert "mem_pmu" in names
        assert "global_pmu" in names

    def test_idempotent(self):
        w = WORKLOADS["gemm"]
        circuit = translate_module(w.module(), name="gemm_idem")
        PassManager([PerfCounters(), PerfCounters()]).run(circuit)
        names = [s.name for s in circuit.structures]
        assert len(names) == len(set(names))

    def test_counter_values_are_physical(self):
        # 8x8x8 GEMM: 512 loads from each of A and B, 64 stores to C.
        w = WORKLOADS["gemm"]
        circuit = translate_module(w.module(), name="gemm_pmu_values")
        PassManager([PerfCounters()]).run(circuit)
        mem = w.fresh_memory()
        result = simulate(circuit, mem, list(w.args_for()))
        samples = {}
        for s in circuit.structures:
            if isinstance(s, PerfCounterBank):
                samples.update(s.sample(result.stats))
        invocations = {k: v for k, v in samples.items()
                       if k.endswith(".invocations")}
        assert invocations["main.invocations"] == 1
        assert sum(invocations.values()) == sum(
            result.stats.invocations.values())
        grants = [v for k, v in samples.items()
                  if k.endswith(".grants")]
        assert grants and sum(grants) == \
            result.stats.memory_reads + result.stats.memory_writes
        assert samples["fires.compute"] == \
            result.stats.node_fires["compute"]

    def test_counter_spec_rejects_unknown_kind(self):
        with pytest.raises(GraphError):
            CounterSpec("x", "cache_miss_rate", "t")

    def test_provenance_flows_onto_banks(self):
        circuit, _result, _mem = _instrumented_run("gemm", "baseline")
        task_banks = [s for s in circuit.structures
                      if isinstance(s, PerfCounterBank) and s.task]
        assert task_banks
        assert any(b.provenance for b in task_banks)
        loc = next(iter(b.provenance for b in task_banks
                        if b.provenance))[0]
        assert loc.file == "gemm.mc"


class TestCostAndLowering:
    def test_synthesis_charges_counter_overhead(self):
        w = WORKLOADS["gemm"]
        plain = translate_module(w.module(), name="gemm_plain")
        inst = translate_module(w.module(), name="gemm_inst")
        PassManager([PerfCounters()]).run(inst)
        r_plain = synthesize(plain)
        r_inst = synthesize(inst)
        assert r_plain.pmu_counters == 0
        assert r_plain.pmu_alms == 0
        assert r_inst.pmu_counters > 0
        assert r_inst.pmu_alms > 0
        assert r_inst.pmu_regs > 0
        assert r_inst.pmu_area_kum2 > 0
        assert r_inst.alms > r_plain.alms
        assert r_inst.regs > r_plain.regs
        assert r_inst.asic_area_kum2 > r_plain.asic_area_kum2
        # The Table-2 row shape is pinned elsewhere; the PMU breakout
        # must not leak into it.
        assert r_inst.row().keys() == r_plain.row().keys()

    def test_chisel_and_verilog_emit_pmu(self):
        w = WORKLOADS["gemm"]
        circuit = translate_module(w.module(), name="gemm_rtl")
        PassManager([PerfCounters()]).run(circuit)
        chisel = emit_chisel(circuit)
        assert "PerfCounterBank" in chisel
        verilog = emit_verilog(circuit)
        assert "module pmu_" in verilog
        assert "event_strobe" in verilog
        # Counters never drive a ready signal (neutrality invariant).
        assert "ready" not in [
            line for line in verilog.splitlines()
            if line.strip().startswith("module pmu_")][0]


class TestSerialization:
    def test_bank_round_trips_through_json(self):
        w = WORKLOADS["gemm"]
        circuit = translate_module(w.module(), name="gemm_ser")
        PassManager([PerfCounters()]).run(circuit)
        doc = json.loads(json.dumps(circuit_to_dict(circuit)))
        loaded = circuit_from_dict(doc)
        orig = {s.name: s for s in circuit.structures
                if isinstance(s, PerfCounterBank)}
        back = {s.name: s for s in loaded.structures
                if isinstance(s, PerfCounterBank)}
        assert orig.keys() == back.keys()
        for name, bank in orig.items():
            other = back[name]
            assert other.task == bank.task
            assert [(c.name, c.kind, c.target, c.width)
                    for c in other.counters] == \
                [(c.name, c.kind, c.target, c.width)
                 for c in bank.counters]

"""Behavioral tests for each uopt pass: structure changes + preserved
semantics + intended performance direction."""

import pytest

from repro.core.structures import Scratchpad
from repro.errors import PassError
from repro.frontend import compile_minic, translate_module
from repro.frontend.interp import Memory
from repro.opt import (
    CacheBanking,
    ExecutionTiling,
    MemoryLocalization,
    OpFusion,
    ParameterTuning,
    PassManager,
    ScratchpadBanking,
    TaskPipelining,
    TensorOps,
)
from repro.sim import simulate

from tests.conftest import assert_equivalent, run_both

SAXPY = """
array x: f32[64];
array y: f32[64];
func main(n: i32, a: f32) {
  for (i = 0; i < n; i = i + 1) { y[i] = a * x[i] + y[i]; }
}
"""

PARLOOP = """
array a: i32[64];
func main(n: i32) {
  parallel_for (i = 0; i < n; i = i + 1) { a[i] = i * i; }
}
"""


def saxpy_init(mem):
    mem.set_array("x", [float(i % 9) for i in range(64)])
    mem.set_array("y", [0.5] * 64)


class TestTaskPipelining:
    def test_decouples_edges(self):
        c = translate_module(compile_minic(SAXPY))
        log = PassManager([TaskPipelining(queue_depth=32)]).run(c)
        assert log[0].changed
        assert all(e.decoupled and e.queue_depth == 32
                   for e in c.task_edges)

    def test_scoped_to_children(self):
        c = translate_module(compile_minic(PARLOOP))
        child = [e.child for e in c.task_edges
                 if e.kind == "spawn"][0]
        PassManager([TaskPipelining(children=[child])]).run(c)
        for e in c.task_edges:
            assert e.decoupled == (e.child == child)

    def test_preserves_behavior(self):
        assert_equivalent(SAXPY, [64, 2.0], init=saxpy_init,
                          passes=[TaskPipelining()])


class TestExecutionTiling:
    def test_targets_spawned_subtree(self):
        c = translate_module(compile_minic("""
array a: f32[32];
func main(n: i32) {
  parallel_for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < 2; j = j + 1) { a[i * 2 + j] = 1.0; }
  }
}
"""))
        PassManager([ExecutionTiling(4)]).run(c)
        tiled = [t.name for t in c.tasks.values() if t.num_tiles == 4]
        # The detach task AND its nested loop both replicate.
        assert len(tiled) == 2
        assert "main" not in tiled

    def test_explicit_map(self):
        c = translate_module(compile_minic(PARLOOP))
        target = [e.child for e in c.task_edges
                  if e.kind == "spawn"][0]
        PassManager([ExecutionTiling({target: 8})]).run(c)
        assert c.tasks[target].num_tiles == 8

    def test_unknown_task_rejected(self):
        c = translate_module(compile_minic(PARLOOP))
        with pytest.raises(PassError):
            PassManager([ExecutionTiling({"nope": 2})]).run(c)

    def test_bad_count_rejected(self):
        c = translate_module(compile_minic(PARLOOP))
        with pytest.raises(PassError):
            PassManager([ExecutionTiling({"main": 0})]).run(c)

    def test_preserves_behavior_and_speeds_up(self):
        golden, mem1, base = run_both(PARLOOP, [64])
        golden2, mem2, tiled = run_both(
            PARLOOP, [64], passes=[TaskPipelining(),
                                   ExecutionTiling(4)])
        assert mem2.words == golden2.words
        assert tiled.cycles < base.cycles


class TestMemoryLocalization:
    def test_creates_scratchpads(self):
        c = translate_module(compile_minic(SAXPY))
        log = PassManager([MemoryLocalization()]).run(c)
        spads = c.scratchpads()
        assert {s.name for s in spads} == {"spad_x", "spad_y"}
        assert c.home_of("x").name == "spad_x"

    def test_junctions_rerouted(self):
        c = translate_module(compile_minic(SAXPY))
        PassManager([MemoryLocalization()]).run(c)
        loop = next(t for t in c.tasks.values() if t.kind == "loop")
        targets = {j.structure.name for j in loop.junctions
                   if j.clients}
        assert targets == {"spad_x", "spad_y"}

    def test_grouped_scratchpad(self):
        c = translate_module(compile_minic(SAXPY))
        PassManager([MemoryLocalization(
            groups={"spad_all": ["x", "y"]})]).run(c)
        assert len(c.scratchpads()) == 1
        assert c.home_of("x") is c.home_of("y")

    def test_unknown_array_rejected(self):
        c = translate_module(compile_minic(SAXPY))
        with pytest.raises(PassError):
            PassManager([MemoryLocalization(arrays=["zz"])]).run(c)

    def test_preserves_behavior_and_speeds_up(self):
        golden, mem, base = run_both(SAXPY, [64, 2.0], saxpy_init)
        golden2, mem2, local = run_both(
            SAXPY, [64, 2.0], saxpy_init,
            passes=[MemoryLocalization()])
        assert mem2.words == golden2.words
        assert local.cycles < base.cycles


class TestBanking:
    def test_scratchpad_banking(self):
        c = translate_module(compile_minic(SAXPY))
        PassManager([MemoryLocalization(),
                     ScratchpadBanking(4)]).run(c)
        assert all(s.banks == 4 for s in c.scratchpads())

    def test_banking_widens_junctions(self):
        c = translate_module(compile_minic(SAXPY))
        PassManager([MemoryLocalization(),
                     ScratchpadBanking(4)]).run(c)
        loop = next(t for t in c.tasks.values() if t.kind == "loop")
        assert all(j.issue_width >= 4 for j in loop.junctions
                   if j.clients)

    def test_cache_banking(self):
        c = translate_module(compile_minic(SAXPY))
        PassManager([CacheBanking(2)]).run(c)
        assert c.default_cache.banks == 2

    def test_bad_bank_count(self):
        with pytest.raises(PassError):
            ScratchpadBanking(0)

    def test_preserves_behavior(self):
        assert_equivalent(
            SAXPY, [64, 2.0], init=saxpy_init,
            passes=[MemoryLocalization(), ScratchpadBanking(4),
                    CacheBanking(4), ParameterTuning()])


class TestOpFusion:
    ADDRY = """
array a: i32[64];
array b: i32[64];
func main(n: i32) {
  for (i = 0; i < n; i = i + 1) {
    b[(i * 2 + 1) & 63] = a[(i + 3) & 63] + 7;
  }
}
"""

    def test_chains_fused(self):
        c = translate_module(compile_minic(self.ADDRY))
        log = PassManager([OpFusion()]).run(c)
        assert log[0].details["chains"] >= 1
        fused = [n for n in c.all_nodes() if n.kind == "fused"]
        assert fused
        assert all(len(n.exprs) >= 2 for n in fused)

    def test_loop_control_retimed(self):
        c = translate_module(compile_minic(self.ADDRY))
        PassManager([OpFusion()]).run(c)
        loop = next(t for t in c.tasks.values() if t.kind == "loop")
        ctl = loop.dataflow.nodes_of_kind("loopctl")[0]
        assert ctl.pipeline_stages == OpFusion.RETIMED_STAGES

    def test_edges_debuffered(self):
        c = translate_module(compile_minic(self.ADDRY))
        log = PassManager([OpFusion()]).run(c)
        assert log[0].details["edges_debuffered"] > 0

    def test_fused_delay_within_budget(self):
        c = translate_module(compile_minic(self.ADDRY))
        fusion = OpFusion()
        PassManager([fusion]).run(c)
        from repro.opt.passes.op_fusion import _any_node_delay
        budget = fusion.min_budget_ns
        for n in c.all_nodes():
            if n.kind == "fused":
                assert n.delay_ns <= budget + 1e-9

    def test_preserves_behavior_and_speeds_up(self):
        init = lambda m: m.set_array("a", list(range(64)))
        golden, mem, base = run_both(self.ADDRY, [48], init)
        golden2, mem2, fused = run_both(self.ADDRY, [48], init,
                                        passes=[OpFusion()])
        assert mem2.words == golden2.words
        assert fused.cycles < base.cycles

    def test_float_ops_not_fused(self):
        c = translate_module(compile_minic(SAXPY))
        PassManager([OpFusion()]).run(c)
        for n in c.all_nodes():
            if n.kind == "fused":
                assert not any(op.startswith("f")
                               for op, *_ in n.exprs)


class TestTensorOps:
    RELU = """
array a: f32[64];
array b: f32[64];
func main(n: i32) {
  for (i = 0; i < n; i = i + 1) {
    var v: f32 = a[i];
    var r: f32 = 0.0;
    if (v > 0.0) { r = v; }
    b[i] = r;
  }
}
"""
    MAP2 = """
array a: f32[64];
array b: f32[64];
array c: f32[64];
func main(n: i32) {
  for (i = 0; i < n; i = i + 1) { c[i] = a[i] + b[i]; }
}
"""

    def init(self, mem):
        for name in mem.module.globals:
            if name in ("a", "b"):
                mem.set_array(name,
                              [float(i - 30) / 3 for i in range(64)])

    def test_relu_tensorized(self):
        c = translate_module(compile_minic(self.RELU))
        log = PassManager([TensorOps(2, 2)]).run(c)
        assert log[0].details["tensorized"]
        tnodes = [n for n in c.all_nodes() if n.kind == "tensor"]
        assert len(tnodes) == 1 and tnodes[0].op == "trelu"

    def test_map2_tensorized_as_tadd(self):
        c = translate_module(compile_minic(self.MAP2))
        log = PassManager([TensorOps(2, 2)]).run(c)
        assert log[0].details["tensorized"]
        tnodes = [n for n in c.all_nodes() if n.kind == "tensor"]
        assert tnodes[0].op == "tadd"

    def test_trip_count_shrinks(self):
        golden, mem, base = run_both(self.RELU, [64], self.init)
        g2, m2, opt = run_both(self.RELU, [64], self.init,
                               passes=[TensorOps(2, 2)])
        assert m2.words == g2.words
        base_iters = sum(base.stats.iterations.values())
        opt_iters = sum(opt.stats.iterations.values())
        assert opt_iters * 4 == base_iters

    def test_speedup(self):
        _, _, base = run_both(self.RELU, [64], self.init)
        _, _, opt = run_both(self.RELU, [64], self.init,
                             passes=[TensorOps(2, 2)])
        assert opt.cycles < base.cycles / 1.5

    def test_non_matching_loop_untouched(self):
        c = translate_module(compile_minic(SAXPY))
        log = PassManager([TensorOps(2, 2)]).run(c)
        assert not log[0].changed

    def test_4x4_shape(self):
        _, m2, _ = run_both(self.RELU, [64], self.init,
                            passes=[TensorOps(4, 4)])
        g = run_both(self.RELU, [64], self.init)[0]
        assert m2.words == g.words


class TestParameterTuning:
    def test_widens_and_deepens(self):
        c = translate_module(compile_minic(SAXPY))
        log = PassManager([ParameterTuning()]).run(c)
        assert log[0].details["junctions_widened"] >= 1
        loop = next(t for t in c.tasks.values() if t.kind == "loop")
        for node in loop.memory_nodes():
            assert node.max_outstanding >= 8

    def test_preserves_behavior(self):
        assert_equivalent(SAXPY, [64, 2.0], init=saxpy_init,
                          passes=[ParameterTuning()])


class TestStackedComposition:
    def test_full_stack_equivalent(self):
        assert_equivalent(
            SAXPY, [64, 2.0], init=saxpy_init,
            passes=[CacheBanking(4), MemoryLocalization(),
                    ScratchpadBanking(4), OpFusion(),
                    TaskPipelining(), ParameterTuning()])

    def test_stack_order_independent_for_behavior(self):
        p1 = [OpFusion(), MemoryLocalization(), ScratchpadBanking(2)]
        p2 = [MemoryLocalization(), ScratchpadBanking(2), OpFusion()]
        g1, m1, _ = run_both(SAXPY, [64, 2.0], saxpy_init, passes=p1)
        g2, m2, _ = run_both(SAXPY, [64, 2.0], saxpy_init, passes=p2)
        assert m1.words == g1.words
        assert m2.words == g2.words

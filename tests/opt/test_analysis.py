"""Tests for the uopt analyses."""

import pytest

from repro.frontend import compile_minic, translate_module
from repro.opt import OpFusion, PassManager
from repro.opt.analysis import (
    critical_path_ns,
    dataflow_depth,
    memory_access_groups,
    recurrence_ii,
    spawn_target_tasks,
)

SAXPY = """
array x: f32[32];
array y: f32[32];
func main(n: i32, a: f32) {
  for (i = 0; i < n; i = i + 1) { y[i] = a * x[i] + y[i]; }
}
"""

REDUCE = """
array a: f32[32];
array o: f32[1];
func main(n: i32) {
  var s: f32 = 0.0;
  for (i = 0; i < n; i = i + 1) { s = s + a[i]; }
  o[0] = s;
}
"""


def circ(src):
    return translate_module(compile_minic(src))


def loop_of(circuit):
    return next(t for t in circuit.tasks.values() if t.kind == "loop")


class TestMemoryAccessGroups:
    def test_groups_by_array(self):
        groups = memory_access_groups(circ(SAXPY))
        assert set(groups) == {"x", "y"}
        assert len(groups["x"]) == 1
        assert len(groups["y"]) == 2  # load + store

    def test_nodes_paired_with_tasks(self):
        groups = memory_access_groups(circ(SAXPY))
        for array, items in groups.items():
            for task, node in items:
                assert node in task.dataflow.nodes
                assert node.array == array


class TestDepthAndDelay:
    def test_depth_positive_and_fp_deep(self):
        loop = loop_of(circ(SAXPY))
        depth = dataflow_depth(loop)
        # addr chain + load + fmul(4) + fadd(4) + store at least.
        assert depth >= 10

    def test_fusion_reduces_depth(self):
        c1 = circ("""
array a: i32[32];
func main(n: i32) {
  for (i = 0; i < n; i = i + 1) { a[(i * 2 + 3) & 31] = i; }
}
""")
        c2 = circ("""
array a: i32[32];
func main(n: i32) {
  for (i = 0; i < n; i = i + 1) { a[(i * 2 + 3) & 31] = i; }
}
""")
        PassManager([OpFusion()]).run(c2)
        assert dataflow_depth(loop_of(c2)) <= dataflow_depth(loop_of(c1))

    def test_critical_path_fp_dominated(self):
        loop = loop_of(circ(SAXPY))
        from repro.core import oplib
        assert critical_path_ns(loop) == pytest.approx(
            oplib.op_info("fmul", None).delay_ns)

    def test_critical_path_grows_after_fusion(self):
        c = circ("""
array a: i32[32];
func main(n: i32) {
  for (i = 0; i < n; i = i + 1) { a[(i * 2 + 3) & 31] = i; }
}
""")
        before = critical_path_ns(loop_of(c))
        PassManager([OpFusion()]).run(c)
        after = critical_path_ns(loop_of(c))
        assert after >= before


class TestRecurrence:
    def test_reduction_recurrence(self):
        loop = loop_of(circ(REDUCE))
        # fadd (latency 4) through the phi back edge, plus the phi.
        assert recurrence_ii(loop) >= 5

    def test_independent_loop_bound_by_control(self):
        loop = loop_of(circ(SAXPY))
        assert recurrence_ii(loop) == \
            loop.dataflow.nodes_of_kind("loopctl")[0].pipeline_stages


class TestSpawnTargets:
    def test_parallel_for_target(self):
        c = circ("""
array a: i32[8];
func main(n: i32) {
  parallel_for (i = 0; i < n; i = i + 1) { a[i] = i; }
}
""")
        targets = spawn_target_tasks(c)
        assert targets == ["main_task0"]

    def test_recursive_target(self):
        c = circ("""
array o: i32[1];
func fib(n: i32) -> i32 {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
func main(n: i32) { o[0] = fib(n); }
""")
        assert "fib" in spawn_target_tasks(c)

    def test_plain_loops_not_targets(self):
        assert spawn_target_tasks(circ(SAXPY)) == []

"""Tests for the pass-spec mini-language (repro.opt.specs)."""

import pickle

import pytest

from repro.errors import ReproError
from repro.opt import (
    PASS_REGISTRY,
    PassSpec,
    coerce_passes,
    parse_pass_specs,
    parse_passes,
    spec_to_string,
)
from repro.opt.specs import PASS_ALIASES, canonical_pass_name


class TestCanonicalNames:
    def test_aliases_resolve(self):
        assert canonical_pass_name("localize") == "memory_localization"
        assert canonical_pass_name("banking") == "scratchpad_banking"
        assert canonical_pass_name("fuse") == "op_fusion"
        assert canonical_pass_name("tiling") == "execution_tiling"

    def test_registry_names_pass_through(self):
        for name in PASS_REGISTRY:
            assert canonical_pass_name(name) == name

    def test_every_alias_targets_registry(self):
        for target in PASS_ALIASES.values():
            assert target in PASS_REGISTRY

    def test_unknown_name(self):
        with pytest.raises(ReproError, match="unknown pass"):
            canonical_pass_name("warp_drive")


class TestParsing:
    def test_bare_names(self):
        specs = parse_pass_specs("localize,fusion")
        assert [s.name for s in specs] == [
            "memory_localization", "op_fusion"]
        assert all(s.kwargs == () for s in specs)

    def test_primary_knob_shorthand(self):
        (spec,) = parse_pass_specs("banking=4")
        assert spec.name == "scratchpad_banking"
        assert dict(spec.kwargs) == {"banks": 4}

    def test_key_value_form(self):
        (spec,) = parse_pass_specs("fusion=retime_loop_control:false")
        assert spec.name == "op_fusion"
        assert dict(spec.kwargs) == {"retime_loop_control": False}

    def test_value_types(self):
        (spec,) = parse_pass_specs("tiling=2")
        assert dict(spec.kwargs)["tiles"] == 2
        (spec,) = parse_pass_specs("pipelining=8")
        assert dict(spec.kwargs)["queue_depth"] == 8

    def test_whitespace_and_empty_segments(self):
        assert parse_pass_specs(" localize , ,fusion, ") == \
            parse_pass_specs("localize,fusion")

    def test_none_and_empty(self):
        assert parse_pass_specs(None) == []
        assert parse_pass_specs("") == []
        assert parse_passes(None) == []

    def test_sequence_and_nested(self):
        specs = parse_pass_specs(["localize", "banking=2,fusion"])
        assert [s.name for s in specs] == [
            "memory_localization", "scratchpad_banking", "op_fusion"]

    def test_unknown_knob(self):
        with pytest.raises(ReproError, match="no knob"):
            parse_pass_specs("banking=warp:1")

    def test_no_primary_knob(self):
        with pytest.raises(ReproError, match="shorthand"):
            parse_pass_specs("localize=4")

    def test_odd_key_value_parts(self):
        with pytest.raises(ReproError, match="key:value"):
            parse_pass_specs("banking=banks:4:extra")

    def test_pass_instances_rejected(self):
        instance = parse_passes("fusion")[0]
        with pytest.raises(ReproError, match="pre-built"):
            parse_pass_specs(instance)


class TestPassSpec:
    def test_round_trip(self):
        specs = parse_pass_specs(
            "memory_localization,scratchpad_banking=4,"
            "op_fusion=retime_loop_control:false,"
            "execution_tiling=2")
        # Primary-knob kwargs render back to the shorthand form...
        assert spec_to_string(specs) == (
            "memory_localization,scratchpad_banking=4,"
            "op_fusion=false,execution_tiling=2")
        # ...and the canonical text re-parses to an equal pipeline.
        assert parse_pass_specs(spec_to_string(specs)) == specs

    def test_aliases_canonicalize(self):
        assert spec_to_string(parse_pass_specs(
            "localize,banking=4")) == \
            "memory_localization,scratchpad_banking=4"

    def test_picklable(self):
        specs = parse_pass_specs("banking=4,fusion")
        assert pickle.loads(pickle.dumps(specs)) == specs

    def test_instantiate_is_fresh(self):
        spec = PassSpec.make("banking", banks=4)
        a, b = spec.instantiate(), spec.instantiate()
        assert a is not b
        assert a.banks == b.banks == 4

    def test_make_checks_kwargs(self):
        with pytest.raises(ReproError, match="no knob"):
            PassSpec.make("banking", warp=1)


class TestCoercePasses:
    def test_spec_string(self):
        instances, label = coerce_passes("localize,banking=4")
        assert [type(i).__name__ for i in instances] == [
            "MemoryLocalization", "ScratchpadBanking"]
        assert label == "memory_localization,scratchpad_banking=4"

    def test_none(self):
        assert coerce_passes(None) == ([], "")

    def test_instances_lose_label(self):
        instance = parse_passes("fusion")[0]
        instances, label = coerce_passes(["localize", instance])
        assert len(instances) == 2
        assert label is None

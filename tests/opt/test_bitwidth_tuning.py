"""Tests for value-range analysis and bit-width tuning."""

import pytest
from hypothesis import given, strategies as st

from repro.frontend import compile_minic, translate_module
from repro.opt import BitwidthTuning, PassManager
from repro.opt.passes.bitwidth_tuning import (
    FULL,
    bits_for,
    value_ranges,
)
from repro.rtl import synthesize

from tests.conftest import assert_equivalent

MASKY = """
array a: i32[64];
array b: i32[64];
func main(n: i32) {
  for (i = 0; i < 64; i = i + 1) {
    var v: i32 = a[i] & 255;
    b[i] = (v * 3 + 7) & 1023;
  }
}
"""


def loop_task(src):
    c = translate_module(compile_minic(src))
    task = next(t for t in c.tasks.values() if t.kind == "loop")
    return c, task


class TestBitsFor:
    @pytest.mark.parametrize("interval,bits", [
        ((0, 1), 1), ((0, 255), 8), ((0, 256), 9),
        ((-1, 0), 1), ((-128, 127), 8), ((-129, 0), 9),
        ((-2, 1), 2), ((0, 0), 1),
    ])
    def test_cases(self, interval, bits):
        assert bits_for(interval) == bits

    @given(st.integers(-10**6, 10**6), st.integers(-10**6, 10**6))
    def test_interval_fits(self, a, b):
        lo, hi = min(a, b), max(a, b)
        width = bits_for((lo, hi))
        if lo >= 0:
            assert hi < (1 << width)
        else:
            assert -(1 << (width - 1)) <= lo and \
                hi < (1 << (width - 1))


class TestValueRanges:
    def test_const_range(self):
        _, task = loop_task(MASKY)
        ranges = value_ranges(task)
        consts = [n for n in task.dataflow.nodes if n.kind == "const"
                  and n.value == 255]
        assert ranges[id(consts[0].out)] == (255, 255)

    def test_mask_bounds_range(self):
        _, task = loop_task(MASKY)
        ranges = value_ranges(task)
        ands = [n for n in task.dataflow.nodes
                if n.kind == "compute" and n.op == "and"]
        for node in ands:
            lo, hi = ranges[id(node.out)]
            assert lo >= 0 and hi <= 1023

    def test_counted_index_range(self):
        _, task = loop_task(MASKY)
        ranges = value_ranges(task)
        ctl = task.dataflow.nodes_of_kind("loopctl")[0]
        assert ranges[id(ctl.index)] == (0, 64)

    def test_unknown_livein_is_full(self):
        _, task = loop_task("""
array b: i32[64];
func main(n: i32) {
  for (i = 0; i < n; i = i + 1) { b[i & 63] = n; }
}
""")
        ranges = value_ranges(task)
        liveins = [x for x in task.dataflow.nodes
                   if x.kind == "livein"]
        for li in liveins:
            assert ranges.get(id(li.out), FULL) == FULL

    def test_unstable_phi_widens(self):
        _, task = loop_task("""
array o: i32[1];
func main(n: i32) {
  var s: i32 = 1;
  for (i = 0; i < n; i = i + 1) { s = s * 3; }
  o[0] = s;
}
""")
        ranges = value_ranges(task)
        phi = task.dataflow.nodes_of_kind("phi")[0]
        assert ranges[id(phi.out)] == FULL


class TestPass:
    def test_tunes_nodes_and_connections(self):
        c = translate_module(compile_minic(MASKY))
        log = PassManager([BitwidthTuning()]).run(c)
        assert log[0].details["nodes_tuned"] >= 1
        assert log[0].details["connections_tuned"] >= 1

    def test_reduces_area(self):
        c1 = translate_module(compile_minic(MASKY))
        c2 = translate_module(compile_minic(MASKY))
        PassManager([BitwidthTuning()]).run(c2)
        assert synthesize(c2).alms < synthesize(c1).alms
        assert synthesize(c2).regs < synthesize(c1).regs

    def test_preserves_behavior(self):
        assert_equivalent(
            MASKY, [0],
            init=lambda m: m.set_array(
                "a", [(i * 37) % 1024 for i in range(64)]),
            passes=[BitwidthTuning()])

    def test_never_widens(self):
        c = translate_module(compile_minic(MASKY))
        PassManager([BitwidthTuning()]).run(c)
        for node in c.all_nodes():
            tuned = getattr(node, "tuned_width", None)
            if tuned is not None:
                assert tuned < node.outputs[0].type.bits

    def test_float_workload_untouched(self):
        src = """
array x: f32[16];
func main(n: i32) {
  for (i = 0; i < 16; i = i + 1) { x[i] = x[i] * 2.0; }
}
"""
        c = translate_module(compile_minic(src))
        log = PassManager([BitwidthTuning()]).run(c)
        # Only address arithmetic can tune; no float node may carry
        # a tuned width.
        for node in c.all_nodes():
            if getattr(node, "tuned_width", None) is not None:
                assert not node.outputs[0].type.is_float

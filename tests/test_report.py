"""`repro report`: cross-layer join, verdicts, and the pinned schema.

The report document is the contract between the toolchain and any
downstream tooling (CI artifact diffing, notebooks), so its shape is
pinned here: all three layers (sim / opt / synth) must be present,
every task block gets a bound-by verdict from the fixed vocabulary,
and the top-stalled-sources table speaks in MiniC source labels.
"""

import json

import pytest

from repro.api import Pipeline
from repro.bench.harness import RunResult
from repro.cli import main
from repro.opt import PASS_REGISTRY
from repro.report import (
    BOUND_BY_GROUPS,
    REPORT_SCHEMA,
    build_report,
    render_markdown,
)

REPORT_PASSES = ["memory_localization", "scratchpad_banking",
                 "perf_counters"]


@pytest.fixture(scope="module")
def gemm_report():
    passes = [PASS_REGISTRY[name]() for name in REPORT_PASSES]
    pipe = Pipeline("gemm", name="gemm_report-test")
    pipe.optimize(passes)
    pipe.simulate()
    pipe.synthesize(name="gemm")
    run = RunResult(workload="gemm", config="report-test",
                    cycles=pipe.sim.cycles,
                    fpga_mhz=pipe.synth.fpga_mhz,
                    stats=pipe.sim.stats, synth=pipe.synth,
                    pass_log=list(pipe.pass_log),
                    circuit=pipe.circuit)
    return build_report(run), run


class TestReportSchema:
    def test_header(self, gemm_report):
        report, _run = gemm_report
        assert report["schema"] == REPORT_SCHEMA
        assert report["workload"] == "gemm"
        assert report["config"] == "report-test"

    def test_all_three_layers_present(self, gemm_report):
        report, _run = gemm_report
        assert set(report["layers"]) == {"sim", "opt", "synth"}

    def test_sim_layer(self, gemm_report):
        report, run = gemm_report
        sim = report["layers"]["sim"]
        assert sim["cycles"] == run.cycles
        assert sim["total_stall_cycles"] > 0
        assert sim["top_sources"], "needs a top-sources table"
        for entry in sim["top_sources"]:
            assert set(entry) == {"loc", "cause", "cycles"}
            assert "gemm.mc" in entry["loc"]
        cycles = [e["cycles"] for e in sim["top_sources"]]
        assert cycles == sorted(cycles, reverse=True)
        assert sim["counters"], "perf_counters bank readouts missing"
        assert "gemm_report-test_pmu" not in sim["counters"]  # per task
        assert any(bank.endswith("_pmu") for bank in sim["counters"])

    def test_opt_layer(self, gemm_report):
        report, _run = gemm_report
        passes = report["layers"]["opt"]["passes"]
        assert [p["name"] for p in passes] == REPORT_PASSES
        for p in passes:
            for key in ("changed", "nodes_added", "edges_added",
                        "wall_ms", "details"):
                assert key in p

    def test_synth_layer(self, gemm_report):
        report, _run = gemm_report
        synth = report["layers"]["synth"]
        row = synth["table2_row"]
        assert set(row) == {"bench", "MHz", "mW", "ALMs", "Reg",
                            "DSP", "kum2", "asic_mW", "GHz"}
        pmu = synth["pmu_overhead"]
        assert pmu["counters"] > 0
        assert pmu["alms"] > 0
        assert pmu["area_kum2"] > 0

    def test_verdict_per_task_block(self, gemm_report):
        report, run = gemm_report
        assert set(report["verdicts"]) == set(run.circuit.tasks)
        for verdict in report["verdicts"].values():
            assert verdict["bound_by"] in BOUND_BY_GROUPS
            groups = verdict["stall_cycles_by_group"]
            assert set(groups) == set(BOUND_BY_GROUPS)
            assert verdict["stall_cycles_total"] == sum(groups.values())

    def test_json_serializable(self, gemm_report):
        report, _run = gemm_report
        assert json.loads(json.dumps(report)) == report


class TestMarkdown:
    def test_render_contains_all_sections(self, gemm_report):
        report, _run = gemm_report
        md = render_markdown(report)
        for heading in ("# Bottleneck report: gemm",
                        "## Bound-by verdicts",
                        "## Top stalled source lines",
                        "## Hardware performance counters",
                        "## Optimization passes",
                        "## Synthesis estimate"):
            assert heading in md
        assert "gemm.mc:" in md
        assert "PMU overhead" in md


class TestCli:
    def test_report_command_writes_all_outputs(self, tmp_path, capsys):
        jsonp = str(tmp_path / "report.json")
        mdp = str(tmp_path / "report.md")
        statsp = str(tmp_path / "stats.json")
        rc = main(["report", "gemm",
                   "--passes", ",".join(REPORT_PASSES),
                   "--json", jsonp, "--md", mdp,
                   "--stats-json", statsp])
        assert rc == 0
        report = json.load(open(jsonp))
        assert report["schema"] == REPORT_SCHEMA
        assert set(report["layers"]) == {"sim", "opt", "synth"}
        assert "## Bound-by verdicts" in open(mdp).read()
        stats = json.load(open(statsp))
        assert stats["schema"] == "repro.simstats/v3"

    def test_report_defaults_to_stdout_markdown(self, capsys):
        assert main(["report", "saxpy"]) == 0
        out = capsys.readouterr().out
        assert "# Bottleneck report: saxpy" in out
        assert "## Bound-by verdicts" in out

    def test_baseline_report_has_empty_pass_list(self, capsys):
        assert main(["report", "saxpy", "--json", "/dev/null"]) == 0

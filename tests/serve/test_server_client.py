"""End-to-end daemon tests: a real ``ServeServer`` on a background
thread, real sockets, and the synchronous :class:`ServeClient`.

The serving guarantees under test:

* every response streams at least one heartbeat before its result;
* N concurrent identical requests are answered by ONE computation and
  receive bit-identical payload bytes (``dedup_hits == N - 1``);
* queued compatible scalar requests coalesce into one lane-group whose
  per-request payloads are bit-identical to direct scalar execution;
* evaluation errors come back as structured response documents, while
  protocol-level garbage is rejected with an error event;
* the client retries connection-level failures and distinguishes a
  hung server (``ServeTimeout``) from a dead one
  (``ServeConnectionError``).

Thread executor throughout: the pool shares this process, so direct
:func:`repro.api.execute` results are byte-comparable and tests stay
fast.  Process-pool supervision is covered in test_scheduler.py.
"""

import json
import socket
import threading
import time

import pytest

from repro.api import execute
from repro.api.requests import EVAL_SCHEMA, EvaluationRequest
from repro.dse.engine import PointResult, RetryPolicy
from repro.errors import ReproError
from repro.serve import (
    COUNTER_KEYS,
    PROTOCOL,
    ServeClient,
    ServeConnectionError,
    ServeTimeout,
    response_payload_bytes,
    start_in_thread,
)
from repro.serve.protocol import event_bytes, response_header

SRC = """
array x: f32[16];
array y: f32[16];
func main(n: i32, a: f32) {
  for (i = 0; i < n; i = i + 1) { y[i] = a * x[i] + y[i]; }
}
"""

FAST_RETRY = RetryPolicy(max_attempts=2, base_delay=0.02, jitter=0.0)


@pytest.fixture
def server():
    """A factory for thread-backed daemons, stopped at teardown."""
    handles = []

    def make(**kwargs):
        kwargs.setdefault("executor", "thread")
        kwargs.setdefault("workers", 2)
        kwargs.setdefault("heartbeat_s", 0.05)
        handle = start_in_thread(**kwargs)
        handles.append(handle)
        return handle

    yield make
    for handle in handles:
        handle.stop()


def client_for(handle, **kw):
    kw.setdefault("timeout", 60.0)
    return ServeClient(handle.address, **kw)


#: A deliberately slow request (dense kernel x 8 lanes, ~2s) used to
#: park a one-worker daemon so concurrent requests provably queue.
BLOCKER = EvaluationRequest(workload="fib",
                            sim={"kernel": "dense", "batch": 8})


def occupy_worker(handle):
    """Send BLOCKER from a background thread; returns (thread, event)
    where the event fires once a heartbeat shows the worker actually
    picked it up — the deterministic moment to enqueue rivals."""
    running = threading.Event()

    def on_hb(ev):
        if ev.get("state") == "running":
            running.set()

    thread = threading.Thread(
        target=lambda: client_for(
            handle, on_heartbeat=on_hb).evaluate(BLOCKER))
    thread.start()
    return thread, running


class TestRoundTrip:
    def test_health(self, server):
        doc = client_for(server()).health()
        assert doc["status"] == "ok"
        assert isinstance(doc["pid"], int)
        assert doc["uptime_s"] >= 0

    def test_evaluate_matches_direct_execution(self, server):
        req = EvaluationRequest(workload="fib", passes="localize")
        resp = client_for(server()).evaluate(req)
        assert resp.ok, resp.error
        assert resp.request_key == req.canonical_key()
        assert resp.meta["lru"] in ("hit", "miss")
        direct = execute(req)
        assert response_payload_bytes(resp.to_json()) == \
            response_payload_bytes(direct.to_json()), \
            "served payload must be bit-identical to local execution"

    def test_second_identical_request_hits_the_front_lru(self, server):
        handle = server(workers=1)
        client = client_for(handle)
        req = EvaluationRequest(source=SRC, args=(16, 2.0))
        first = client.evaluate(req)
        second = client.evaluate(req)       # sequential: no dedup
        assert first.ok and second.ok
        assert second.meta["lru"] == "hit"
        counters = client.report()["scheduler"]["counters"]
        assert counters["lru_hits"] >= 1
        assert counters["dedup_hits"] == 0

    def test_evaluate_many_lanes_match_direct(self, server):
        req = EvaluationRequest(source=SRC,
                                args_list=((4, 1.0), (8, 2.0)))
        resp = client_for(server()).evaluate(req)
        assert resp.ok, resp.error
        assert len(resp.lanes) == 2
        direct = execute(req)
        assert response_payload_bytes(resp.to_json()) == \
            response_payload_bytes(direct.to_json())

    def test_heartbeat_streams_before_every_result(self, server):
        beats = []
        client = client_for(server(), on_heartbeat=beats.append)
        assert client.evaluate(EvaluationRequest(workload="fib")).ok
        assert beats, "heartbeat-first: >=1 heartbeat before a result"
        assert beats[0]["state"] in ("queued", "running")
        assert "queue_depth" in beats[0]

    def test_unix_socket_transport(self, server, tmp_path):
        path = str(tmp_path / "serve.sock")
        handle = server(socket_path=path)
        assert handle.address == f"unix:{path}"
        client = ServeClient(handle.address, timeout=60.0)
        assert client.health()["status"] == "ok"
        assert client.evaluate(EvaluationRequest(workload="covar")).ok


class TestDedup:
    N = 6

    def test_n_subscribers_one_execution_same_bytes(self, server):
        handle = server(workers=1)
        req = EvaluationRequest(workload="fib")
        # Occupy the lone worker so the duplicates provably overlap:
        # they all queue behind the blocker, dedup while queued.
        results = [None] * self.N
        errors = []
        barrier = threading.Barrier(self.N)

        def fire(i):
            try:
                barrier.wait(10)
                results[i] = client_for(handle).evaluate(req)
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        block_thread, running = occupy_worker(handle)
        assert running.wait(30), "blocker never reached the worker"
        threads = [threading.Thread(target=fire, args=(i,))
                   for i in range(self.N)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        block_thread.join(60)
        assert not errors, errors

        payloads = {response_payload_bytes(r.to_json())
                    for r in results}
        assert len(payloads) == 1, \
            "dedup subscribers must receive identical payload bytes"
        assert all(r.ok for r in results)
        counters = client_for(handle).report()["scheduler"]["counters"]
        assert counters["dedup_hits"] == self.N - 1
        # blocker + one shared execution
        assert counters["executions"] == 2
        assert counters["requests"] == self.N + 1


class TestCoalescing:
    ARGS = ((4, 1.0), (8, 2.0), (16, 0.5))

    def test_queued_group_rides_one_batch_bit_identically(
            self, server):
        handle = server(workers=1, max_batch=8)
        reqs = [EvaluationRequest(source=SRC, args=args)
                for args in self.ARGS]
        results = [None] * len(reqs)
        errors = []
        barrier = threading.Barrier(len(reqs))

        def fire(i):
            try:
                barrier.wait(10)
                results[i] = client_for(handle).evaluate(reqs[i])
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        block_thread, running = occupy_worker(handle)
        assert running.wait(30), "blocker never reached the worker"
        threads = [threading.Thread(target=fire, args=(i,))
                   for i in range(len(reqs))]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        block_thread.join(60)
        assert not errors, errors

        counters = client_for(handle).report()["scheduler"]["counters"]
        assert counters["batches"] == 1
        assert counters["coalesced_lanes"] == len(reqs) - 1
        for req, resp in zip(reqs, results):
            assert resp.ok, resp.error
            assert resp.meta["coalesced"] == len(reqs)
            direct = execute(req)
            assert response_payload_bytes(resp.to_json()) == \
                response_payload_bytes(direct.to_json()), \
                f"lane args={req.args} diverged from scalar execution"


class TestErrors:
    def test_evaluation_error_is_a_structured_response(self, server):
        resp = client_for(server()).evaluate(
            EvaluationRequest(workload="fib", passes="no_such_pass"))
        assert not resp.ok
        assert resp.error["family"] == "deterministic"
        assert resp.error["exit_code"] != 0
        assert "no_such_pass" in resp.error["message"]

    def test_malformed_request_rejected_with_error_event(self, server):
        client = client_for(server())
        with pytest.raises(ReproError, match="server rejected"):
            client._call("/v1/evaluate", {"schema": EVAL_SCHEMA})

    def test_version_skew_rejected_loudly(self, server):
        client = client_for(server())
        doc = EvaluationRequest(workload="fib").to_json()
        doc["schema"] = "repro.eval/v99"
        with pytest.raises(ReproError, match="unsupported schema"):
            client._call("/v1/evaluate", doc)

    def test_unknown_verb_rejected(self, server):
        client = client_for(server())
        with pytest.raises(ReproError, match="unknown path"):
            client._call("/v1/teleport", {})


class TestExploreAndReport:
    def test_explore_sweep_through_the_queue(self, server):
        handle = server(max_batch=8)
        report = client_for(handle).explore({
            "workload": "saxpy",
            "grid": {"banks": [1, 2]},
            "pipeline": "localize,banking={banks}",
            "objectives": ["time_us", "alms"],
        })
        assert report["workload"] == "saxpy"
        points = [PointResult.from_json(p) for p in report["points"]]
        assert len(points) == 2
        assert all(p.ok for p in points)
        assert {p.params["banks"] for p in points} == {1, 2}
        assert report["pareto"], "a 2-point sweep has a frontier"
        assert set(report["scheduler"]["counters"]) == \
            set(COUNTER_KEYS)

    def test_explore_spec_validated(self, server):
        client = client_for(server())
        with pytest.raises(ReproError, match="workload"):
            client.explore({"grid": {"banks": [1]}})
        with pytest.raises(ReproError, match="unknown objective"):
            client.explore({"workload": "saxpy",
                            "grid": {"banks": [1]},
                            "objectives": ["beauty"]})

    def test_report_counters_complete(self, server):
        doc = client_for(server()).report()
        assert doc["protocol"] == PROTOCOL
        assert set(doc["scheduler"]["counters"]) == set(COUNTER_KEYS)

    def test_shutdown_verb_stops_the_daemon(self, server):
        handle = server()
        client = client_for(handle)
        assert client.shutdown()["status"] == "shutting down"
        handle._thread.join(15)
        assert not handle._thread.is_alive()
        dead = ServeClient(handle.address, retry=FAST_RETRY,
                           connect_timeout=1.0)
        with pytest.raises(ServeConnectionError):
            dead.health()


def _free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def _fake_server(behavior, conns=4):
    """A misbehaving 'daemon': accepts ``conns`` connections and runs
    ``behavior`` against each."""
    listener = socket.socket()
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind(("127.0.0.1", 0))
    listener.listen(8)
    port = listener.getsockname()[1]

    def loop():
        for _ in range(conns):
            try:
                conn, _ = listener.accept()
            except OSError:
                return
            try:
                behavior(conn)
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

    threading.Thread(target=loop, daemon=True).start()
    return listener, port


class TestClientFailureModes:
    def test_connection_refused_retries_then_raises(self):
        port = _free_port()
        client = ServeClient(f"127.0.0.1:{port}", retry=FAST_RETRY,
                             connect_timeout=0.5)
        with pytest.raises(ServeConnectionError,
                           match=r"after 2 attempt\(s\)"):
            client.health()

    def test_silent_server_is_a_timeout_not_a_retry_loop(self):
        def mute(conn):
            conn.recv(65536)
            time.sleep(1.0)   # never answer

        listener, port = _fake_server(mute)
        try:
            client = ServeClient(f"127.0.0.1:{port}",
                                 timeout=0.25, retry=FAST_RETRY)
            t0 = time.monotonic()
            with pytest.raises(ServeTimeout,
                               match="not even a heartbeat"):
                client.health()
            # ServeTimeout is terminal: no retry sleep was spent.
            assert time.monotonic() - t0 < 0.9
        finally:
            listener.close()

    def test_killed_mid_stream_retries_then_raises(self):
        def die_after_hello(conn):
            conn.recv(65536)
            conn.sendall(response_header() + event_bytes(
                {"event": "hello", "protocol": PROTOCOL}))
            # connection drops before any result event

        listener, port = _fake_server(die_after_hello)
        try:
            client = ServeClient(f"127.0.0.1:{port}", timeout=5.0,
                                 retry=FAST_RETRY)
            with pytest.raises(ServeConnectionError,
                               match="before a result"):
                client.health()
        finally:
            listener.close()

    def test_protocol_skew_fails_fast(self):
        def wrong_protocol(conn):
            conn.recv(65536)
            conn.sendall(response_header() + event_bytes(
                {"event": "hello", "protocol": "repro.serve/99"}))

        listener, port = _fake_server(wrong_protocol)
        try:
            client = ServeClient(f"127.0.0.1:{port}", timeout=5.0,
                                 retry=FAST_RETRY)
            with pytest.raises(ReproError, match="protocol skew"):
                client.health()
        finally:
            listener.close()

    def test_heartbeats_keep_a_slow_evaluation_alive(self, server):
        # Read timeout far below the evaluation's wall time: only the
        # heartbeat stream keeps the client from tripping ServeTimeout.
        handle = server(workers=1, heartbeat_s=0.05)
        client = client_for(handle, timeout=0.5)
        block_thread, running = occupy_worker(handle)
        assert running.wait(30)
        resp = client.evaluate(EvaluationRequest(workload="covar"))
        assert resp.ok                   # waited ~2s behind the blocker
        block_thread.join(60)

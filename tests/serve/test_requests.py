"""The ``repro.eval/v1`` wire schema: round-trip goldens, identity
keys, and the strategy-independence contract.

These requests cross process boundaries (CLI -> daemon -> pool
worker), so the schema is pinned hard: unknown schemas, unknown keys,
and unknown sim fields are rejected loudly instead of silently
dropped, and the response's deterministic payload (everything but
``meta``) must serialize identically no matter how the evaluation was
executed.
"""

import json

import pytest

from repro.api import execute
from repro.api.requests import (
    EVAL_SCHEMA,
    GROUP_FIELDS,
    SIM_FIELDS,
    EvaluationRequest,
    EvaluationResponse,
)
from repro.errors import ReproError

SRC = """
array x: f32[16];
array y: f32[16];
func main(n: i32, a: f32) {
  for (i = 0; i < n; i = i + 1) { y[i] = a * x[i] + y[i]; }
}
"""


class TestRequestRoundTrip:
    def test_workload_request_round_trips(self):
        req = EvaluationRequest(workload="fib", passes="localize",
                                sim={"kernel": "event"}, name="fib-t")
        doc = req.to_json()
        assert doc["schema"] == EVAL_SCHEMA
        assert doc["kind"] == "evaluate"
        back = EvaluationRequest.from_json(doc)
        assert back == req
        assert back.canonical_key() == req.canonical_key()

    def test_source_request_round_trips(self):
        req = EvaluationRequest(source=SRC, args=(16, 2.0), seed=7)
        back = EvaluationRequest.from_json(req.to_json())
        assert back == req
        assert back.args == (16, 2.0)

    def test_batched_request_round_trips(self):
        req = EvaluationRequest(source=SRC,
                                args_list=((4, 1.0), (8, 2.0)))
        doc = req.to_json()
        assert doc["kind"] == "evaluate_many"
        back = EvaluationRequest.from_json(doc)
        assert back == req
        assert back.is_batch and back.kind == "evaluate_many"

    def test_json_wire_safe(self):
        req = EvaluationRequest(workload="gemm", sim={"batch": 3})
        assert json.loads(json.dumps(req.to_json())) == req.to_json()


class TestRequestValidation:
    def test_needs_exactly_one_of_workload_or_source(self):
        with pytest.raises(ReproError, match="exactly one"):
            EvaluationRequest()
        with pytest.raises(ReproError, match="exactly one"):
            EvaluationRequest(workload="fib", source=SRC)

    def test_unknown_sim_field_rejected(self):
        with pytest.raises(ReproError, match="unknown sim field"):
            EvaluationRequest(workload="fib", sim={"warp_speed": 9})

    def test_all_declared_sim_fields_accepted(self):
        sim = {name: None for name in SIM_FIELDS}
        sim.update(kernel="event", batch=None)
        assert EvaluationRequest(workload="fib", sim=sim)

    def test_seed_rejected_for_batched_request(self):
        with pytest.raises(ReproError, match="scalar-request knob"):
            EvaluationRequest(source=SRC, seed=3,
                              args_list=((4, 1.0), (8, 1.0)))

    def test_seed_rejected_for_workload_request(self):
        with pytest.raises(ReproError, match="workloads own"):
            EvaluationRequest(workload="fib", seed=3)

    def test_schema_skew_rejected(self):
        doc = EvaluationRequest(workload="fib").to_json()
        doc["schema"] = "repro.eval/v2"
        with pytest.raises(ReproError, match="unsupported schema"):
            EvaluationRequest.from_json(doc)

    def test_unknown_key_rejected_not_dropped(self):
        doc = EvaluationRequest(workload="fib").to_json()
        doc["priority"] = "high"
        with pytest.raises(ReproError, match="version skew"):
            EvaluationRequest.from_json(doc)


class TestIdentityKeys:
    def test_canonical_key_is_content_identity(self):
        a = EvaluationRequest(source=SRC, args=(16, 2.0))
        b = EvaluationRequest(source=SRC, args=(16, 2.0))
        c = EvaluationRequest(source=SRC, args=(8, 2.0))
        assert a.canonical_key() == b.canonical_key()
        assert a.canonical_key() != c.canonical_key()

    def test_group_key_ignores_args_only(self):
        a = EvaluationRequest(source=SRC, args=(16, 2.0),
                              passes="localize")
        b = EvaluationRequest(source=SRC, args=(4, 1.0),
                              passes="localize")
        c = EvaluationRequest(source=SRC, args=(16, 2.0),
                              passes="localize,banking=2")
        assert a.group_key() == b.group_key()
        assert a.group_key() != c.group_key()
        assert "args" not in GROUP_FIELDS

    def test_sim_config_splits_the_group(self):
        a = EvaluationRequest(workload="fib",
                              sim={"kernel": "event"})
        b = EvaluationRequest(workload="fib",
                              sim={"kernel": "dense"})
        assert a.group_key() != b.group_key()


class TestCoalescible:
    def test_plain_scalar_is_coalescible(self):
        assert EvaluationRequest(workload="fib").coalescible

    def test_batched_request_is_not(self):
        assert not EvaluationRequest(
            source=SRC, args_list=((4, 1.0), (8, 1.0))).coalescible
        assert not EvaluationRequest(
            workload="fib", sim={"batch": 2}).coalescible

    def test_faulted_request_is_not(self):
        req = EvaluationRequest(
            workload="fib",
            sim={"faults": {"events": [], "seed": 1}})
        assert not req.coalescible

    def test_seeded_request_is_not(self):
        assert not EvaluationRequest(source=SRC, seed=3).coalescible


class TestResponse:
    def test_round_trip_and_payload_excludes_meta(self):
        resp = EvaluationResponse(
            status="ok", request_key="k" * 64,
            evaluation={"cycles": 10}, meta={"wall_s": 1.23})
        back = EvaluationResponse.from_json(resp.to_json())
        assert back == resp
        assert back.ok and back.cycles == 10
        payload = resp.payload()
        assert "meta" not in payload
        assert payload["evaluation"] == {"cycles": 10}

    def test_bad_status_rejected(self):
        with pytest.raises(ReproError, match="ok|error"):
            EvaluationResponse(status="maybe")

    def test_unknown_key_rejected(self):
        doc = EvaluationResponse(status="ok").to_json()
        doc["extra"] = 1
        with pytest.raises(ReproError, match="version skew"):
            EvaluationResponse.from_json(doc)


class TestDeterministicPayload:
    """The contract the daemon's dedup/coalescing guarantees lean on:
    re-executing the same request yields bit-identical payloads."""

    def test_repeated_execution_is_bit_identical(self):
        from repro.serve import response_payload_bytes
        req = EvaluationRequest(workload="fib")
        first = execute(req)
        second = execute(req)
        assert first.ok, first.error
        assert response_payload_bytes(first.to_json()) == \
            response_payload_bytes(second.to_json())

    def test_payload_carries_no_wall_clock(self):
        req = EvaluationRequest(workload="fib", passes="localize")
        resp = execute(req)
        assert resp.ok
        assert "wall_s" in resp.meta          # meta has it...
        doc = resp.payload()                  # ...the payload doesn't
        assert "wall" not in json.dumps(doc)
        for entry in doc["evaluation"]["pass_log"]:
            assert set(entry) == {"name", "changed", "dN", "dE"}

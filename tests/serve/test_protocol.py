"""HTTP-lite framing: request encoding/parsing, NDJSON events, and
address syntax.  Pure protocol tests — no sockets, no daemon."""

import asyncio
import json

import pytest

from repro.errors import ReproError
from repro.serve import parse_address
from repro.serve.protocol import (
    PROTOCOL,
    ProtocolError,
    encode_request,
    event_bytes,
    parse_event,
    read_request,
    response_header,
    verb_of,
)


def parse_raw(raw: bytes):
    """Feed raw bytes through read_request as a client would send
    them."""
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)
    return asyncio.run(go())


class TestFraming:
    def test_encode_then_read_round_trips(self):
        doc = {"workload": "fib", "sim": {"kernel": "event"}}
        method, path, body = parse_raw(
            encode_request("/v1/evaluate", doc))
        assert (method, path) == ("POST", "/v1/evaluate")
        assert body == doc

    def test_empty_body_allowed(self):
        method, path, body = parse_raw(
            encode_request("/v1/health", None))
        assert (method, path) == ("POST", "/v1/health")
        assert body is None

    def test_port_scan_probe_is_silent(self):
        assert parse_raw(b"") == ("", "", None)

    def test_truncated_header_is_protocol_error(self):
        with pytest.raises(ProtocolError, match="truncated"):
            parse_raw(b"POST /v1/health HTTP/1.0\r\nContent-")

    def test_malformed_request_line(self):
        with pytest.raises(ProtocolError, match="malformed"):
            parse_raw(b"GARBAGE\r\n\r\n")

    def test_oversized_body_rejected_before_read(self):
        raw = (b"POST /v1/evaluate HTTP/1.0\r\n"
               b"Content-Length: 999999999999\r\n\r\n")
        with pytest.raises(ProtocolError, match="too large"):
            parse_raw(raw)

    def test_undecodable_json_body(self):
        raw = (b"POST /v1/evaluate HTTP/1.0\r\n"
               b"Content-Length: 3\r\n\r\n{x}")
        with pytest.raises(ProtocolError, match="undecodable"):
            parse_raw(raw)

    def test_response_header_is_http(self):
        head = response_header()
        assert head.startswith(b"HTTP/1.0 200 OK\r\n")
        assert b"application/x-ndjson" in head
        assert head.endswith(b"\r\n\r\n")


class TestEvents:
    def test_event_bytes_is_canonical_ndjson(self):
        line = event_bytes({"b": 1, "event": "hello", "a": 2})
        assert line.endswith(b"\n")
        # sort_keys: the serialization is byte-stable, which is what
        # lets dedup subscribers literally share payload bytes.
        assert line == event_bytes({"a": 2, "event": "hello", "b": 1})
        assert json.loads(line) == {"a": 2, "b": 1, "event": "hello"}

    def test_parse_event_round_trips(self):
        doc = {"event": "heartbeat", "elapsed_s": 0.5}
        assert parse_event(event_bytes(doc).strip()) == doc

    def test_parse_event_rejects_garbage(self):
        with pytest.raises(ProtocolError, match="undecodable"):
            parse_event(b"not json")
        with pytest.raises(ProtocolError, match="event field"):
            parse_event(b'{"hello": 1}')


class TestVerbs:
    def test_known_verbs_map(self):
        assert verb_of("/v1/evaluate") == "evaluate"
        assert verb_of("/v1/evaluate_many") == "evaluate_many"
        assert verb_of("/v1/explore?x=1") == "explore"

    def test_unknown_path_lists_the_verbs(self):
        with pytest.raises(ProtocolError, match="/v1/evaluate"):
            verb_of("/v1/bogus")
        with pytest.raises(ProtocolError):
            verb_of("/evaluate")


class TestParseAddress:
    def test_host_port(self):
        assert parse_address("10.0.0.2:9000") == \
            ("tcp", ("10.0.0.2", 9000))

    def test_port_only_defaults_host(self):
        assert parse_address(":8651") == ("tcp", ("127.0.0.1", 8651))
        assert parse_address("8651") == ("tcp", ("127.0.0.1", 8651))

    def test_unix_path(self):
        assert parse_address("unix:/tmp/s.sock") == \
            ("unix", "/tmp/s.sock")

    def test_bad_addresses(self):
        for bad in ("", "unix:", "host:notaport"):
            with pytest.raises(ReproError):
                parse_address(bad)


def test_protocol_identity_pinned():
    # Version-skew detection on both sides keys off this string.
    assert PROTOCOL == "repro.serve/1"

"""Scheduler semantics: dedup, coalescing, retry classification,
supervision, and the per-request ledger.

These tests drive the :class:`~repro.serve.scheduler.Scheduler`
directly inside one event loop.  Determinism trick: after
``scheduler.start()`` the worker tasks exist but have not yet run, and
``submit()`` never yields to them (uncontended asyncio locks acquire
on the fast path), so every request submitted before the first
``await`` on a job is *guaranteed* to be queued together — dedup and
coalescing decisions become exact counter assertions, not races.

Worker-death chaos reuses the serve worker's ``REPRO_SERVE_CHAOS``
env hook (set before the pool spawns, inherited by its processes),
mirroring the DSE supervision tests.
"""

import asyncio
import json

import pytest

from repro.api import execute
from repro.api.requests import EVAL_SCHEMA, EvaluationRequest
from repro.dse.engine import RetryPolicy
from repro.errors import ReproError
from repro.serve import COUNTER_KEYS, Scheduler, response_payload_bytes
from repro.serve import worker as worker_mod

SRC = """
array x: f32[16];
array y: f32[16];
func main(n: i32, a: f32) {
  for (i = 0; i < n; i = i + 1) { y[i] = a * x[i] + y[i]; }
}
"""

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.02, jitter=0.0)


def run(coro, timeout=180):
    return asyncio.run(asyncio.wait_for(coro, timeout))


async def _finish(sched, jobs):
    for job in jobs:
        await job.done.wait()
    await sched.close()


class TestDedup:
    def test_one_execution_n_subscribers(self):
        async def go():
            sched = Scheduler(workers=1, executor="thread")
            await sched.start()
            req = EvaluationRequest(workload="fib")
            jobs = [await sched.submit(req) for _ in range(5)]
            assert all(j is jobs[0] for j in jobs), \
                "identical requests must share one Job"
            assert jobs[0].subscribers == 5
            assert sched.counters["requests"] == 5
            assert sched.counters["dedup_hits"] == 4
            await _finish(sched, jobs[:1])
            assert sched.counters["executions"] == 1
            assert sched.counters["ok"] == 1
            return jobs[0]

        job = run(go())
        # The sealed bytes every subscriber streams: one canonical
        # result event carrying the response + its payload sha.
        event = json.loads(job.payload_bytes)
        assert event["event"] == "result"
        assert event["response"]["status"] == "ok"
        assert len(event["payload_sha"]) == 64

    def test_distinct_requests_do_not_dedup(self):
        async def go():
            sched = Scheduler(workers=2, executor="thread")
            await sched.start()
            a = await sched.submit(EvaluationRequest(workload="fib"))
            b = await sched.submit(EvaluationRequest(workload="covar"))
            assert a is not b
            assert sched.counters["dedup_hits"] == 0
            await _finish(sched, [a, b])
            assert sched.counters["executions"] == 2

        run(go())


class TestCoalescing:
    ARGS = ((4, 1.0), (8, 2.0), (16, 0.5))

    def _requests(self):
        return [EvaluationRequest(source=SRC, args=args)
                for args in self.ARGS]

    def test_lane_group_is_bit_identical_to_sequential(self):
        async def go():
            sched = Scheduler(workers=1, executor="thread",
                              max_batch=8)
            await sched.start()
            jobs = [await sched.submit(r) for r in self._requests()]
            await _finish(sched, jobs)
            assert sched.counters["executions"] == 1
            assert sched.counters["batches"] == 1
            assert sched.counters["coalesced_lanes"] == 2
            assert sched.counters["ok"] == 3
            return [j.response_doc for j in jobs]

        docs = run(go())
        for req, doc in zip(self._requests(), docs):
            assert doc["meta"]["coalesced"] == 3
            direct = execute(req)
            assert direct.ok
            assert response_payload_bytes(doc) == \
                response_payload_bytes(direct.to_json()), \
                f"coalesced lane for args={req.args} diverged"

    def test_max_batch_caps_the_group(self):
        async def go():
            sched = Scheduler(workers=1, executor="thread",
                              max_batch=2)
            await sched.start()
            jobs = [await sched.submit(r) for r in self._requests()]
            await _finish(sched, jobs)
            assert sched.counters["executions"] == 2
            assert sched.counters["batches"] == 1
            assert sched.counters["coalesced_lanes"] == 1

        run(go())

    def test_different_groups_never_coalesce(self):
        async def go():
            sched = Scheduler(workers=1, executor="thread",
                              max_batch=8)
            await sched.start()
            a = await sched.submit(
                EvaluationRequest(source=SRC, args=(4, 1.0)))
            b = await sched.submit(
                EvaluationRequest(source=SRC, args=(8, 1.0),
                                  passes="localize"))
            await _finish(sched, [a, b])
            assert sched.counters["batches"] == 0
            assert sched.counters["executions"] == 2

        run(go())

    def test_non_coalescible_request_rides_alone(self):
        async def go():
            sched = Scheduler(workers=1, executor="thread",
                              max_batch=8)
            await sched.start()
            # seeded source request: never coalesced
            a = await sched.submit(
                EvaluationRequest(source=SRC, args=(4, 1.0), seed=3))
            b = await sched.submit(
                EvaluationRequest(source=SRC, args=(8, 1.0), seed=3))
            assert not a.coalescible
            await _finish(sched, [a, b])
            assert sched.counters["batches"] == 0
            assert sched.counters["executions"] == 2

        run(go())


class TestRetryClassification:
    def test_deterministic_failure_never_retried(self):
        async def go():
            sched = Scheduler(workers=1, executor="thread",
                              retry=FAST_RETRY)
            await sched.start()
            job = await sched.submit(
                EvaluationRequest(workload="fib",
                                  passes="no_such_pass"))
            await _finish(sched, [job])
            assert sched.counters["errors"] == 1
            assert sched.counters["retries"] == 0
            return job.response_doc

        doc = run(go())
        assert doc["status"] == "error"
        assert doc["error"]["family"] == "deterministic"
        assert doc["error"]["exit_code"] != 0

    def test_transient_failure_retried_to_success(self, monkeypatch):
        calls = {"n": 0}
        real = worker_mod.run_payload

        def flaky(doc):
            calls["n"] += 1
            if calls["n"] == 1:
                return {"schema": EVAL_SCHEMA, "status": "error",
                        "request_key": "", "evaluation": None,
                        "lanes": None,
                        "error": {"error": "OSError",
                                  "message": "synthetic flake",
                                  "exit_code": 1,
                                  "family": "transient"},
                        "meta": {}}
            return real(doc)

        monkeypatch.setattr(worker_mod, "run_payload", flaky)

        async def go():
            sched = Scheduler(workers=1, executor="thread",
                              retry=FAST_RETRY)
            await sched.start()
            job = await sched.submit(EvaluationRequest(workload="fib"))
            await _finish(sched, [job])
            assert sched.counters["retries"] == 1
            assert sched.counters["ok"] == 1
            assert job.attempts == 2
            assert job.response_doc["status"] == "ok"

        run(go())

    def test_transient_failure_exhausts_attempts(self, monkeypatch):
        def always_flaky(_doc):
            return {"schema": EVAL_SCHEMA, "status": "error",
                    "request_key": "", "evaluation": None,
                    "lanes": None,
                    "error": {"error": "OSError",
                              "message": "synthetic flake",
                              "exit_code": 1, "family": "transient"},
                    "meta": {}}

        monkeypatch.setattr(worker_mod, "run_payload", always_flaky)

        async def go():
            sched = Scheduler(workers=1, executor="thread",
                              retry=FAST_RETRY)
            await sched.start()
            job = await sched.submit(EvaluationRequest(workload="fib"))
            await _finish(sched, [job])
            assert job.attempts == FAST_RETRY.max_attempts
            assert sched.counters["retries"] == \
                FAST_RETRY.max_attempts - 1
            assert job.response_doc["status"] == "error"
            assert job.response_doc["error"]["family"] == "transient"

        run(go())


class TestSupervisorTimeout:
    def test_hung_request_times_out_then_succeeds(self, monkeypatch):
        calls = {"n": 0}
        real = worker_mod.run_payload

        def hang_once(doc):
            calls["n"] += 1
            if calls["n"] == 1:
                import time
                time.sleep(1.5)
            return real(doc)

        monkeypatch.setattr(worker_mod, "run_payload", hang_once)

        # Two pool threads: the abandoned hung future keeps one busy,
        # the retry must land on the other.
        async def go():
            sched = Scheduler(workers=2, executor="thread",
                              retry=FAST_RETRY, job_timeout=0.5)
            await sched.start()
            job = await sched.submit(EvaluationRequest(workload="fib"))
            await _finish(sched, [job])
            assert sched.counters["timeouts"] >= 1
            assert sched.counters["retries"] >= 1
            assert job.response_doc["status"] == "ok"

        run(go())


class TestWorkerDeath:
    """SIGKILL chaos against a real process pool (slow: pool spawn)."""

    def _chaos(self, monkeypatch, **kill):
        monkeypatch.setenv("REPRO_SERVE_CHAOS",
                           json.dumps({"kill_request": kill}))

    def test_death_respawns_pool_and_retries(self, tmp_path,
                                             monkeypatch):
        self._chaos(monkeypatch, substr="fib",
                    flag=str(tmp_path / "spent"))

        async def go():
            sched = Scheduler(workers=1, executor="process",
                              retry=FAST_RETRY)
            await sched.start()
            job = await sched.submit(EvaluationRequest(workload="fib"))
            await _finish(sched, [job])
            assert sched.counters["worker_deaths"] == 1
            assert sched.counters["retries"] >= 1
            assert job.deaths == 1
            assert job.response_doc["status"] == "ok"

        run(go())

    def test_repeat_killer_is_quarantined(self, monkeypatch):
        self._chaos(monkeypatch, substr="fib")  # no flag: kills every time

        async def go():
            sched = Scheduler(workers=1, executor="process",
                              retry=FAST_RETRY)
            await sched.start()
            poison = await sched.submit(
                EvaluationRequest(workload="fib"))
            innocent = await sched.submit(
                EvaluationRequest(workload="covar"))
            await _finish(sched, [poison, innocent])
            assert sched.counters["quarantined"] == 1
            assert poison.deaths >= 2
            assert poison.response_doc["status"] == "error"
            assert poison.response_doc["error"]["error"] == \
                "PoisonPointError"
            assert poison.response_doc["error"]["family"] == "poison"
            # the daemon survives: the innocent request still lands
            assert innocent.response_doc["status"] == "ok"

        run(go())


class TestLifecycle:
    def test_unknown_executor_rejected(self):
        with pytest.raises(ReproError, match="unknown executor"):
            Scheduler(executor="quantum")

    def test_close_fails_queued_requests_loudly(self):
        async def go():
            sched = Scheduler(workers=1, executor="thread")
            await sched.start()
            job = await sched.submit(EvaluationRequest(workload="fib"))
            await sched.close()   # before the worker ever ran
            assert job.done.is_set()
            return job.response_doc

        doc = run(go())
        assert doc["status"] == "error"
        assert "shut down" in doc["error"]["message"]
        assert doc["error"]["family"] == "transient"

    def test_submit_after_close_rejected(self):
        async def go():
            sched = Scheduler(workers=1, executor="thread")
            await sched.start()
            await sched.close()
            with pytest.raises(ReproError, match="shutting down"):
                await sched.submit(EvaluationRequest(workload="fib"))

        run(go())

    def test_snapshot_shape(self):
        async def go():
            sched = Scheduler(workers=2, executor="thread",
                              max_batch=4)
            await sched.start()
            snap = sched.snapshot()
            await sched.close()
            return snap

        snap = run(go())
        assert set(snap["counters"]) == set(COUNTER_KEYS)
        assert snap["workers"] == 2
        assert snap["executor"] == "thread"
        assert snap["max_batch"] == 4
        assert snap["queue_depth"] == 0


class TestLedger:
    def test_one_record_per_finalized_request(self, tmp_path):
        from repro.telemetry import RunLedger

        async def go():
            sched = Scheduler(workers=1, executor="thread",
                              ledger_root=str(tmp_path))
            await sched.start()
            jobs = [await sched.submit(EvaluationRequest(
                workload="fib")) for _ in range(3)]
            await _finish(sched, jobs)
            return jobs[0]

        job = run(go())
        records, skipped = RunLedger(str(tmp_path)).records()
        assert skipped == 0
        # 3 requests deduped into ONE computation -> one record,
        # carrying all three subscribers.
        assert len(records) == 1
        rec = records[0]
        assert rec["command"] == "serve"
        assert rec["status"] == "ok"
        assert rec["annotations"]["request_key"] == job.key
        assert rec["annotations"]["subscribers"] == 3

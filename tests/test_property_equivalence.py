"""Property-based equivalence: random MiniC programs behave identically
under the reference interpreter and the cycle-level uIR simulation,
with and without optimization passes.

This is the repository's strongest invariant — the paper's claim that
microarchitecture transformations are decoupled from behavior.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.frontend import compile_minic, translate_module
from repro.frontend.interp import Interpreter, Memory
from repro.opt import (
    CacheBanking,
    MemoryLocalization,
    OpFusion,
    ParameterTuning,
    PassManager,
    ScratchpadBanking,
    TaskPipelining,
)
from repro.sim import SimParams, simulate
from repro.sim.faults import FaultPlan

# ---------------------------------------------------------------------------
# Random program generator (always well-formed by construction)
# ---------------------------------------------------------------------------

_BINOPS = ["+", "-", "*", "&", "|", "^"]


@st.composite
def expressions(draw, names, depth=0):
    """An integer expression over ``names`` (safe: no division)."""
    if depth >= 2 or draw(st.booleans()):
        choice = draw(st.integers(0, 2))
        if choice == 0 or not names:
            return str(draw(st.integers(-20, 20)))
        if choice == 1:
            return draw(st.sampled_from(names))
        return f"inp[({draw(st.sampled_from(names))}) & 15]"
    op = draw(st.sampled_from(_BINOPS))
    left = draw(expressions(names, depth + 1))
    right = draw(expressions(names, depth + 1))
    return f"({left} {op} {right})"


@st.composite
def loop_bodies(draw, names):
    """Loop bodies whose stores are race-free by construction: each
    store site s writes ``out[i*4 + s]`` (iteration-disjoint), matching
    the Cilk-style race-freedom the execution model assumes (see
    DESIGN.md).  Data and condition expressions stay fully random."""
    lines = []
    local_names = list(names)
    slot = 0
    n_stmts = draw(st.integers(1, 3))
    for _ in range(n_stmts):
        kind = draw(st.integers(0, 2))
        if kind == 0:
            var = f"t{len(local_names)}"
            lines.append(
                f"var {var}: i32 = {draw(expressions(local_names))};")
            local_names.append(var)
        elif kind == 1:
            lines.append(
                f"out[i * 4 + {slot}] = "
                f"{draw(expressions(local_names))};")
            slot += 1
        else:
            cond = draw(expressions(local_names))
            body = (f"out[i * 4 + {slot}] = "
                    f"{draw(expressions(local_names))};")
            slot += 1
            lines.append(f"if (({cond}) > 0) {{ {body} }}")
    if slot == 0:
        lines.append(f"out[i * 4] = {draw(expressions(local_names))};")
    return "\n    ".join(lines)


@st.composite
def programs(draw):
    trip = draw(st.integers(1, 12))
    body = draw(loop_bodies(["i", "n"]))
    reduction = draw(st.booleans())
    red_decl, red_update, red_store = "", "", ""
    if reduction:
        red_decl = "var acc: i32 = 0;"
        red_update = f"acc = acc + ({draw(expressions(['i', 'acc']))});"
        red_store = "out[60] = acc;"
    source = f"""
array inp: i32[16];
array out: i32[64];
func main(n: i32) {{
  {red_decl}
  for (i = 0; i < n; i = i + 1) {{
    {body}
    {red_update}
  }}
  {red_store}
}}
"""
    return source, trip


_SLOW = settings(max_examples=25, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow,
                                        HealthCheck.data_too_large,
                                        HealthCheck.filter_too_much])


def _check(source, trip, passes=()):
    module = compile_minic(source)
    golden = Memory(module)
    golden.set_array("inp", [(i * 13 + 5) % 97 - 40 for i in range(16)])
    Interpreter(module, golden).run(trip)

    circuit = translate_module(module)
    if passes:
        PassManager(list(passes)).run(circuit)
    mem = Memory(module)
    mem.set_array("inp", [(i * 13 + 5) % 97 - 40 for i in range(16)])
    simulate(circuit, mem, [trip])
    assert mem.words == golden.words, source


class TestRandomPrograms:
    @_SLOW
    @given(programs())
    def test_baseline_equivalence(self, prog):
        source, trip = prog
        _check(source, trip)

    @_SLOW
    @given(programs())
    def test_fusion_preserves_behavior(self, prog):
        source, trip = prog
        _check(source, trip, [OpFusion()])

    @_SLOW
    @given(programs())
    def test_memory_passes_preserve_behavior(self, prog):
        source, trip = prog
        _check(source, trip,
               [MemoryLocalization(), ScratchpadBanking(2),
                ParameterTuning()])

    @_SLOW
    @given(programs())
    def test_full_stack_preserves_behavior(self, prog):
        source, trip = prog
        _check(source, trip,
               [CacheBanking(2), MemoryLocalization(),
                ScratchpadBanking(4), OpFusion(), TaskPipelining(),
                ParameterTuning()])


# ---------------------------------------------------------------------------
# Trace-kernel bit identity under random fault activation
# ---------------------------------------------------------------------------

def _run_kernel(module, circuit, trip, kernel, plan):
    """One simulation; returns (outcome, memory words) where outcome
    is either ("ok", cycles, results, stats-doc) or ("raise", type)."""
    mem = Memory(module)
    mem.set_array("inp", [(i * 13 + 5) % 97 - 40 for i in range(16)])
    try:
        res = simulate(circuit, mem, [trip],
                       SimParams(kernel=kernel, faults=plan))
    except Exception as exc:  # noqa: BLE001 - compared across kernels
        return ("raise", type(exc)), mem.words
    doc = res.stats.to_json()
    doc.pop("kernel")
    return ("ok", res.cycles, list(res.results), doc), mem.words


class TestTraceKernelEquivalence:
    """kernel="trace" must be bit-identical to the event kernel on
    random programs — cycles, memory, results, and the full SimStats
    document — with and without a randomly activated fault plan.

    Fault events land at random mid-run cycles; an active plan forces
    the tier's deopt policy (disabled outright), so this property
    pins both the superblock/jump fast path and the forced-fallback
    path against the same oracle.
    """

    @_SLOW
    @given(programs(), st.integers(0, 2 ** 16),
           st.sampled_from([None, 0.5, 1.0, 2.0]))
    def test_trace_is_bit_identical_to_event(self, prog, seed,
                                             intensity):
        source, trip = prog
        plan = None if intensity is None else \
            FaultPlan.generate(seed, intensity=intensity)
        module = compile_minic(source)
        circuit = translate_module(module)
        PassManager([CacheBanking(2), MemoryLocalization(),
                     ScratchpadBanking(4), OpFusion(),
                     TaskPipelining(), ParameterTuning()]).run(circuit)
        ev, ev_words = _run_kernel(module, circuit, trip, "event",
                                   plan)
        tr, tr_words = _run_kernel(module, circuit, trip, "trace",
                                   plan)
        assert tr == ev, source
        assert tr_words == ev_words, source

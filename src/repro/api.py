"""The unified toolflow facade: ``Pipeline`` and ``Evaluation``.

Every consumer of the toolchain — the CLI, the bench harness, the
design-space-exploration engine, and the examples — used to hand-wire
the same four calls: ``translate_module`` -> ``PassManager`` ->
``simulate`` -> ``synthesize``.  :class:`Pipeline` packages that flow
behind one chainable entry point::

    from repro import Pipeline

    ev = (Pipeline("img_scale")
          .optimize("localize,banking=4,fusion,tuning")
          .simulate()
          .synthesize())
    print(ev.cycles, ev.time_us, ev.synth.alms)

A Pipeline accepts a workload name, a :class:`~repro.workloads.Workload`,
MiniC source text, or an already-compiled
:class:`~repro.frontend.ir.Module`.  ``optimize`` takes pass instances,
:class:`~repro.opt.PassSpec` objects, or the spec mini-language
(``"banking=4,tiling=2"``, see :mod:`repro.opt.specs`).  Each stage
returns the Pipeline so the chain reads like the paper's Figure 1;
``synthesize()`` (or :meth:`Pipeline.evaluation`) returns the typed
:class:`Evaluation` aggregate.

The old hand-wired pattern keeps working — the four building blocks
remain public and `repro.bench.run_workload` is now a thin shim over
this facade.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from . import telemetry
from .errors import ReproError, WorkloadError
from .frontend import compile_minic, translate_module
from .frontend.interp import Interpreter, Memory
from .frontend.ir import Module
from .opt import PassManager, PassResult, coerce_passes
from .rtl import SynthesisReport, synthesize
from .sim import (BatchResult, SimParams, SimResult, simulate,
                  simulate_batch)
from .workloads import WORKLOADS, Workload


@dataclass
class Evaluation:
    """Typed aggregate of one end-to-end pipeline evaluation."""

    name: str
    workload: Optional[str]
    variant: str
    #: Canonical pass-spec string, or None when the pipeline was built
    #: from pre-constructed pass instances (not spec-recoverable).
    passes: Optional[str]
    pass_log: List[PassResult] = field(default_factory=list)
    sim: Optional[SimResult] = None
    synth: Optional[SynthesisReport] = None
    #: Result of behavior verification: True/False, or None when the
    #: simulation ran unchecked (or never ran).
    verified: Optional[bool] = None

    @property
    def cycles(self) -> Optional[int]:
        return self.sim.cycles if self.sim else None

    @property
    def stats(self):
        return self.sim.stats if self.sim else None

    @property
    def results(self) -> List:
        return self.sim.results if self.sim else []

    @property
    def time_us(self) -> Optional[float]:
        """FPGA wall-clock estimate; needs both sim and synthesis."""
        if self.sim is None or self.synth is None:
            return None
        return self.sim.cycles / self.synth.fpga_mhz

    def to_json(self) -> Dict:
        doc: Dict = {
            "name": self.name,
            "workload": self.workload,
            "variant": self.variant,
            "passes": self.passes,
            "verified": self.verified,
            "pass_log": [{"name": r.pass_name, "changed": r.changed,
                          "dN": r.delta_nodes, "dE": r.delta_edges,
                          "wall_ms": round(r.wall_ms, 3)}
                         for r in self.pass_log],
        }
        if self.sim is not None:
            doc["cycles"] = self.sim.cycles
            doc["results"] = list(self.sim.results)
            doc["stats"] = self.sim.stats.to_json()
        if self.synth is not None:
            doc["synth"] = self.synth.to_json()
            if self.sim is not None:
                doc["time_us"] = self.time_us
        return doc

    def __repr__(self) -> str:
        bits = [self.name]
        if self.sim is not None:
            bits.append(f"{self.sim.cycles} cyc")
        if self.time_us is not None:
            bits.append(f"{self.time_us:.2f} us")
        if self.synth is not None:
            bits.append(f"{self.synth.alms} ALMs")
        return f"Evaluation({', '.join(bits)})"


class Pipeline:
    """Chainable workload -> uIR -> uopt -> sim -> synthesis facade."""

    def __init__(self, workload, *, variant: str = "base",
                 name: Optional[str] = None):
        self.workload: Optional[Workload] = None
        self.variant = variant
        with telemetry.tracer().span("pipeline.frontend") as _sp:
            if isinstance(workload, Workload):
                self.workload = workload
            elif isinstance(workload, Module):
                self.module = workload
            elif isinstance(workload, str):
                if _looks_like_source(workload):
                    self.module = compile_minic(
                        workload, filename=name or "<pipeline>")
                elif workload in WORKLOADS:
                    self.workload = WORKLOADS[workload]
                else:
                    raise ReproError(
                        f"{workload!r} is neither a known workload "
                        f"({', '.join(sorted(WORKLOADS))}) nor MiniC "
                        f"source text")
            else:
                raise ReproError(
                    f"cannot build a Pipeline from "
                    f"{type(workload).__name__}")
            if self.workload is not None:
                if variant != "base" and \
                        variant not in self.workload.variants:
                    raise ReproError(
                        f"workload {self.workload.name!r} has no "
                        f"variant {variant!r}")
                self.module = self.workload.module(variant)
                default = self.workload.name if variant == "base" \
                    else f"{self.workload.name}_{variant}"
            else:
                default = "pipeline"
            self.name = name or default
            self.circuit = translate_module(self.module, name=self.name)
            _sp.set(name=self.name)
        if telemetry.enabled():
            telemetry.annotate("workload", self.workload.name
                               if self.workload else self.name)
        self.pass_log: List[PassResult] = []
        #: Canonical spec of everything optimize() ran, None once a
        #: non-spec pass instance slips in.
        self.pass_spec: Optional[str] = ""
        self.sim: Optional[SimResult] = None
        self.memory: Optional[Memory] = None
        self.synth: Optional[SynthesisReport] = None
        self.verified: Optional[bool] = None

    @classmethod
    def from_circuit(cls, circuit, *, workload=None,
                     variant: str = "base") -> "Pipeline":
        """Wrap an already-translated (possibly optimized) circuit."""
        pipe = cls.__new__(cls)
        pipe.workload = WORKLOADS[workload] if isinstance(workload, str) \
            else workload
        pipe.variant = variant
        pipe.module = pipe.workload.module(variant) if pipe.workload \
            else None
        pipe.name = circuit.name
        pipe.circuit = circuit
        pipe.pass_log = []
        pipe.pass_spec = None
        pipe.sim = None
        pipe.memory = None
        pipe.synth = None
        pipe.verified = None
        return pipe

    # -- stage 2: uopt ---------------------------------------------------
    def optimize(self, passes=None, *, validate: bool = True,
                 validate_each: bool = False) -> "Pipeline":
        """Run a pass pipeline (spec string / specs / instances)."""
        instances, label = coerce_passes(passes)
        manager = PassManager(instances, validate=validate,
                              validate_each=validate_each)
        with telemetry.tracer().span("pipeline.optimize",
                                     passes=label or "") as _sp:
            self.pass_log.extend(manager.run(self.circuit))
            _sp.set(n_passes=len(manager.log))
        if self.pass_spec is None or label is None:
            self.pass_spec = None
        else:
            self.pass_spec = ",".join(
                p for p in (self.pass_spec, label) if p)
        return self

    # -- stage "sim": cycle-level execution ------------------------------
    def simulate(self, params: Optional[SimParams] = None, *,
                 args: Optional[Sequence] = None,
                 memory: Optional[Memory] = None,
                 kernel: Optional[str] = None,
                 check: bool = True) -> "Pipeline":
        """Simulate the circuit; verify behavior unless ``check=False``.

        Workload pipelines default ``args``/``memory`` from the
        workload and verify against its golden data.  Source/module
        pipelines snapshot the initial memory image and compare the
        simulated result against the reference interpreter run on the
        same snapshot.  ``kernel`` ("event" / "dense" / "compiled")
        overrides the kernel without building a full ``SimParams``.
        """
        if kernel is not None:
            params = replace(params or SimParams(), kernel=kernel)
        if self.workload is not None:
            if args is None:
                args = self.workload.args_for(self.variant)
            if memory is None:
                memory = self.workload.fresh_memory(self.variant)
        else:
            if memory is None:
                memory = Memory(self.module)
            args = args or ()
        golden: Optional[Memory] = None
        if check and self.workload is None:
            golden = Memory(self.module)
            golden.words[:] = memory.words
        tel = telemetry.tracer()
        with tel.span("pipeline.simulate",
                      kernel=(params.kernel if params
                              else "event")) as _sp:
            self.sim = simulate(self.circuit, memory, list(args),
                                params)
            _sp.set(cycles=self.sim.cycles)
        if telemetry.enabled():
            from .core.serialize import circuit_fingerprint
            telemetry.note_fingerprint(circuit_fingerprint(self.circuit))
        self.memory = memory
        if not check:
            self.verified = None
            return self
        with tel.span("pipeline.verify"):
            if self.workload is not None:
                self.workload.verify(memory, self.variant)  # raises
                self.verified = True
            else:
                returned = Interpreter(self.module, golden).run(*args)
                if returned is None:
                    expected: List = []
                elif isinstance(returned, (list, tuple)):
                    expected = list(returned)
                else:
                    expected = [returned]
                self.verified = (memory.words == golden.words
                                 and list(self.sim.results) == expected)
                if not self.verified:
                    raise WorkloadError(
                        f"{self.name}: simulated memory/results "
                        f"diverge from the reference interpreter")
        return self

    # -- stage "sim", batched --------------------------------------------
    def evaluate_many(self, args_list: Optional[Sequence[Sequence]] = None,
                      params: Optional[SimParams] = None, *,
                      kernel: Optional[str] = None,
                      check: bool = True) -> BatchResult:
        """Simulate N independent workload instances in one batched run.

        Each entry of ``args_list`` is one lane's root-argument list;
        ``None`` replicates the pipeline's default arguments across
        ``params.batch`` lanes (which must then be set).  All lanes
        share this pipeline's circuit — same fingerprint, so the whole
        batch steps through one compiled kernel
        (:func:`repro.sim.simulate_batch`); per-lane results and
        memory are bit-identical to N independent runs.

        With ``check=True`` every surviving lane is verified: workload
        pipelines run the workload golden check per lane, module
        pipelines re-run the reference interpreter on each lane's
        input snapshot.  A diverging lane raises
        :class:`~repro.errors.WorkloadError` naming the lane;
        otherwise ``BatchResult.verified`` records the per-lane
        outcomes (failed lanes stay ``False``).
        """
        if kernel is not None:
            params = replace(params or SimParams(), kernel=kernel)
        params = params or SimParams()
        if args_list is None:
            if not params.batch:
                raise ReproError(
                    "evaluate_many needs args_list or SimParams.batch")
            default = self.workload.args_for(self.variant) \
                if self.workload is not None else ()
            args_list = [list(default) for _ in range(params.batch)]
        else:
            args_list = [list(a) for a in args_list]
        n = len(args_list)
        if self.workload is not None:
            memories = [self.workload.fresh_memory(self.variant)
                        for _ in range(n)]
        else:
            memories = [Memory(self.module) for _ in range(n)]
        snapshots = [list(m.words) for m in memories] if check else None
        with telemetry.tracer().span("pipeline.simulate_batch",
                                     lanes=n) as _sp:
            batch = simulate_batch(self.circuit, memories, args_list,
                                   replace(params, batch=n))
            _sp.set(mode=batch.mode,
                    ok=sum(e is None for e in batch.errors))
        if not check:
            return batch
        verified = [False] * n
        for i in range(n):
            if batch.results[i] is None:
                continue
            mem = memories[i]
            if self.workload is not None:
                self.workload.verify(mem, self.variant)  # raises on fail
            else:
                golden = Memory(self.module)
                golden.words[:] = snapshots[i]
                returned = Interpreter(self.module, golden).run(
                    *args_list[i])
                if returned is None:
                    expected: List = []
                elif isinstance(returned, (list, tuple)):
                    expected = list(returned)
                else:
                    expected = [returned]
                if (mem.words != golden.words
                        or list(batch.results[i].results) != expected):
                    raise WorkloadError(
                        f"{self.name}: lane {i} diverges from the "
                        f"reference interpreter")
            verified[i] = True
        batch.verified = verified
        return batch

    # -- stage 3: synthesis ----------------------------------------------
    def synthesize(self, name: Optional[str] = None) -> Evaluation:
        """Estimate FPGA/ASIC quality and return the full Evaluation."""
        with telemetry.tracer().span("pipeline.synthesize") as _sp:
            self.synth = synthesize(self.circuit, name=name or self.name)
            _sp.set(alms=self.synth.alms, fpga_mhz=self.synth.fpga_mhz)
        return self.evaluation()

    def evaluation(self) -> Evaluation:
        """Typed aggregate of everything the chain has produced."""
        return Evaluation(
            name=self.name,
            workload=self.workload.name if self.workload else None,
            variant=self.variant,
            passes=self.pass_spec,
            pass_log=list(self.pass_log),
            sim=self.sim,
            synth=self.synth,
            verified=self.verified)

    # -- conveniences ----------------------------------------------------
    @property
    def cycles(self) -> Optional[int]:
        return self.sim.cycles if self.sim else None

    @property
    def stats(self):
        return self.sim.stats if self.sim else None

    def __repr__(self) -> str:
        stages = ["translated"]
        if self.pass_log:
            stages.append(f"{len(self.pass_log)} passes")
        if self.sim is not None:
            stages.append(f"simulated {self.sim.cycles} cyc")
        if self.synth is not None:
            stages.append("synthesized")
        return f"Pipeline({self.name}: {', '.join(stages)})"


def _looks_like_source(text: str) -> bool:
    """MiniC source vs workload name: source has structure, names don't."""
    return any(ch in text for ch in "\n{};(")


def evaluate(workload, passes=None, params: Optional[SimParams] = None,
             *, variant: str = "base", check: bool = True,
             name: Optional[str] = None) -> Evaluation:
    """One-call convenience: build, optimize, simulate, synthesize."""
    pipe = Pipeline(workload, variant=variant, name=name)
    pipe.optimize(passes)
    pipe.simulate(params, check=check)
    return pipe.synthesize()

"""Hand-written lexer for MiniC."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from ..errors import LexError

KEYWORDS = {
    "func", "array", "var", "if", "else", "for", "parallel_for", "while",
    "spawn", "sync", "return",
}

TWO_CHAR = {"==", "!=", "<=", ">=", "<<", ">>", "&&", "||", "+=", "->"}
ONE_CHAR = set("+-*/%<>=!&|^(){}[],;:~")


@dataclass
class Token:
    kind: str  # 'ident', 'int', 'float', 'kw', 'punct', 'eof'
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.column})"


def tokenize(source: str) -> List[Token]:
    """Lex a full MiniC program into a token list ending with ``eof``."""
    tokens: List[Token] = []
    line, col = 1, 1
    i, n = 0, len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            col = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "/" and i + 1 < n and source[i + 1] == "/":
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch == "/" and i + 1 < n and source[i + 1] == "*":
            i += 2
            col += 2
            while i + 1 < n and not (source[i] == "*"
                                     and source[i + 1] == "/"):
                if source[i] == "\n":
                    line += 1
                    col = 1
                else:
                    col += 1
                i += 1
            if i + 1 >= n:
                raise LexError("unterminated block comment", line, col)
            i += 2
            col += 2
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n
                            and source[i + 1].isdigit()):
            start = i
            start_col = col
            has_dot = False
            has_exp = False
            while i < n:
                c = source[i]
                if c.isdigit():
                    pass
                elif c == "." and not has_dot and not has_exp:
                    has_dot = True
                elif c in "eE" and not has_exp and i > start:
                    has_exp = True
                    if i + 1 < n and source[i + 1] in "+-":
                        i += 1
                        col += 1
                else:
                    break
                i += 1
                col += 1
            text = source[start:i]
            kind = "float" if (has_dot or has_exp) else "int"
            tokens.append(Token(kind, text, line, start_col))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            start_col = col
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
                col += 1
            text = source[start:i]
            kind = "kw" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, start_col))
            continue
        two = source[i:i + 2]
        if two in TWO_CHAR:
            tokens.append(Token("punct", two, line, col))
            i += 2
            col += 2
            continue
        if ch in ONE_CHAR:
            tokens.append(Token("punct", ch, line, col))
            i += 1
            col += 1
            continue
        raise LexError(f"unexpected character {ch!r}", line, col)
    tokens.append(Token("eof", "", line, col))
    return tokens

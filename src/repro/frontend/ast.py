"""Abstract syntax tree for MiniC.

MiniC is the reproduction's stand-in for the paper's C++/Cilk/
Tensorflow inputs: a small C-like language with ``parallel_for`` /
``spawn`` / ``sync`` (Cilk semantics via Tapir) and tensor intrinsics
(``tmul``/``tadd``/``trelu`` over ``tensor<RxCxT>`` arrays).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..types import Type


@dataclass
class Node:
    """Base AST node; ``line`` is the 1-based source line."""
    line: int = 0


# -- Expressions -----------------------------------------------------------

@dataclass
class Expr(Node):
    pass


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class FloatLit(Expr):
    value: float = 0.0


@dataclass
class Name(Expr):
    ident: str = ""


@dataclass
class Index(Expr):
    base: str = ""
    index: Optional[Expr] = None


@dataclass
class BinOp(Expr):
    op: str = ""
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class UnOp(Expr):
    op: str = ""
    operand: Optional[Expr] = None


@dataclass
class CallExpr(Expr):
    func: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class CastExpr(Expr):
    target: Optional[Type] = None
    operand: Optional[Expr] = None


# -- Statements ------------------------------------------------------------

@dataclass
class Stmt(Node):
    pass


@dataclass
class Block(Node):
    statements: List[Stmt] = field(default_factory=list)


@dataclass
class VarDecl(Stmt):
    name: str = ""
    declared_type: Optional[Type] = None
    init: Optional[Expr] = None


@dataclass
class Assign(Stmt):
    target: Optional[Expr] = None  # Name or Index
    value: Optional[Expr] = None


@dataclass
class If(Stmt):
    cond: Optional[Expr] = None
    then_block: Optional[Block] = None
    else_block: Optional[Block] = None


@dataclass
class For(Stmt):
    var: str = ""
    init: Optional[Expr] = None
    cond: Optional[Expr] = None
    update: Optional[Expr] = None  # value assigned to var each iteration
    body: Optional[Block] = None
    parallel: bool = False


@dataclass
class While(Stmt):
    cond: Optional[Expr] = None
    body: Optional[Block] = None


@dataclass
class SpawnStmt(Stmt):
    call: Optional[CallExpr] = None


@dataclass
class SyncStmt(Stmt):
    pass


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr] = None


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


# -- Top level -------------------------------------------------------------

@dataclass
class Param(Node):
    name: str = ""
    type: Optional[Type] = None


@dataclass
class ArrayDecl(Node):
    name: str = ""
    elem: Optional[Type] = None
    size: int = 0


@dataclass
class FuncDecl(Node):
    name: str = ""
    params: List[Param] = field(default_factory=list)
    return_type: Optional[Type] = None
    body: Optional[Block] = None


@dataclass
class Program(Node):
    arrays: List[ArrayDecl] = field(default_factory=list)
    functions: List[FuncDecl] = field(default_factory=list)

"""Translation from software IR to uIR (paper Algorithm 1).

Stage 1 walks the program and carves it into *regions*, each of which
becomes a uIR task block:

* one ``func`` region per reachable function (its straight-line,
  forward-branching spine),
* one ``loop`` region per natural loop (every nested loop is its own
  asynchronously-scheduled task, section 3.5),
* one ``detach`` region per Tapir detach (a Cilk-spawned body).

Stage 2 lowers each region's hyperblock into a pipelined dataflow:
forward branches become dataflow predication + selects, memory ops
become load/store transit nodes behind a junction, child regions appear
as call/spawn interface nodes, and counted loops get a loop-control
sequencer with phi nodes for loop-carried values.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import TranslationError
from ..types import BOOL, I32, VOID, Type
from ..core.circuit import AcceleratorCircuit, TaskBlock, TaskEdge
from ..core.graph import Port
from ..core.provenance import SourceLoc
from ..core.nodes import (
    CallNode,
    ComputeNode,
    ConstNode,
    LiveIn,
    LiveOut,
    LoadNode,
    LoopControl,
    PhiNode,
    SelectNode,
    SpawnNode,
    StoreNode,
    TensorComputeNode,
)
from ..core.structures import Cache, Junction
from . import cfg as cfg_mod
from .ir import (
    Argument,
    BasicBlock,
    Branch,
    Call,
    CondBranch,
    Constant,
    Detach,
    Function,
    GlobalArray,
    Instruction,
    Module,
    Phi,
    Reattach,
    Return,
    Sync,
    Value,
)

_BIG_BOUND = 1 << 30  # "infinite" bound for conditional loops

_TENSOR_OPCODES = {"tmul", "tadd", "tsub", "trelu"}


# ---------------------------------------------------------------------------
# Array access summaries (for memory-dependence ordering)
# ---------------------------------------------------------------------------

def trace_array(value: Value) -> Optional[str]:
    """Follow gep chains back to the defining global array (points-to)."""
    seen = 0
    while seen < 64:
        if isinstance(value, GlobalArray):
            return value.name
        if isinstance(value, Instruction) and value.opcode == "gep":
            value = value.operands[0]
            seen += 1
            continue
        return None
    return None


def function_access_sets(module: Module) -> Dict[str, Tuple[Set, Set]]:
    """Per-function (reads, writes) array-name sets, transitively closed
    over the call graph (fixpoint handles recursion).  ``None`` inside a
    set is the unknown array (conflicts with everything)."""
    local: Dict[str, Tuple[Set, Set]] = {}
    calls: Dict[str, Set[str]] = {}
    for fn in module.functions.values():
        reads: Set = set()
        writes: Set = set()
        callees: Set[str] = set()
        for instr in fn.instructions():
            if instr.opcode in ("load", "tload"):
                reads.add(trace_array(instr.operands[0]))
            elif instr.opcode in ("store", "tstore"):
                writes.add(trace_array(instr.operands[1]))
            elif isinstance(instr, Call):
                callees.add(instr.callee.name)
        local[fn.name] = (reads, writes)
        calls[fn.name] = callees
    summary = {name: (set(r), set(w)) for name, (r, w) in local.items()}
    changed = True
    while changed:
        changed = False
        for name, callees in calls.items():
            r, w = summary[name]
            for callee in callees:
                cr, cw = summary[callee]
                if not cr <= r or not cw <= w:
                    r |= cr
                    w |= cw
                    changed = True
    return summary


def _self_conflict(access: Tuple[Set, Set]) -> bool:
    """Must successive invocations of one task be serialized?

    Only a read/write overlap (in-place update, e.g. an FFT stage)
    forces it: write/write across invocations touches disjoint elements
    under the race-freedom assumption (DESIGN.md)."""
    reads, writes = access
    if None in writes and (reads or writes):
        return True
    if None in reads and writes:
        return True
    return bool(reads & writes)


def _conflict(a: Tuple[Set, Set], b: Tuple[Set, Set]) -> bool:
    ar, aw = a
    br, bw = b
    if None in aw and (br or bw):
        return True
    if None in bw and (ar or aw):
        return True
    if (None in ar and bw) or (None in br and aw):
        return True
    return bool(aw & (br | bw)) or bool(ar & bw)


# ---------------------------------------------------------------------------
# Stage 1: regions
# ---------------------------------------------------------------------------

class Region:
    """A set of basic blocks that becomes one uIR task block."""

    def __init__(self, kind: str, name: str, raw_blocks: Set[BasicBlock]):
        self.kind = kind                  # 'func' | 'loop' | 'detach'
        self.name = name
        self.raw_blocks = raw_blocks      # including children's blocks
        self.blocks: List[BasicBlock] = []  # own blocks, topo order
        self.parent: Optional["Region"] = None
        self.children: List["Region"] = []
        self.loop: Optional[cfg_mod.Loop] = None
        self.induction: Optional[cfg_mod.InductionInfo] = None
        self.detach: Optional[Detach] = None
        self.function: Optional[Function] = None
        # Filled during translation:
        self.live_ins: List[Value] = []
        self.live_outs: List[Value] = []
        self.task: Optional[TaskBlock] = None
        self.reads: Set = set()
        self.writes: Set = set()

    def __repr__(self) -> str:
        return (f"Region({self.kind} {self.name}, "
                f"{len(self.blocks)} own blocks)")


def _detach_region_blocks(detach: Detach) -> Set[BasicBlock]:
    """Blocks of the detached body (stop at the matching reattach)."""
    blocks: Set[BasicBlock] = set()
    work = [detach.body]
    while work:
        block = work.pop()
        if block in blocks:
            continue
        blocks.add(block)
        term = block.terminator
        if isinstance(term, Reattach):
            continue
        work.extend(block.successors())
    return blocks


def build_regions(function: Function,
                  prefix: str) -> List[Region]:
    """Carve ``function`` into nested regions (children before parents
    in the returned list)."""
    loops = cfg_mod.find_loops(function)
    rpo = cfg_mod.reverse_post_order(function)
    rpo_pos = {b: i for i, b in enumerate(rpo)}

    regions: List[Region] = []
    func_region = Region("func", prefix, set(rpo))
    func_region.function = function
    regions.append(func_region)

    for i, loop in enumerate(loops):
        name = f"{prefix}_loop_{loop.header.name.replace('.', '_')}"
        region = Region("loop", name, set(loop.blocks))
        region.loop = loop
        region.function = function
        region.induction = cfg_mod.recognize_induction(loop)
        regions.append(region)

    detach_count = 0
    for block in rpo:
        term = block.terminator
        if isinstance(term, Detach):
            name = f"{prefix}_task{detach_count}"
            detach_count += 1
            region = Region("detach", name, _detach_region_blocks(term))
            region.detach = term
            region.function = function
            regions.append(region)

    # Nesting: parent = smallest strict superset of raw blocks.
    for region in regions:
        best: Optional[Region] = None
        for other in regions:
            if other is region:
                continue
            if region.raw_blocks < other.raw_blocks or (
                    region.raw_blocks == other.raw_blocks
                    and _inner_of_equal(region, other)):
                if best is None or len(other.raw_blocks) < \
                        len(best.raw_blocks):
                    best = other
        region.parent = best
        if best is not None:
            best.children.append(region)

    # Own blocks = raw minus children's raw, in RPO order.
    for region in regions:
        child_blocks: Set[BasicBlock] = set()
        for child in region.children:
            child_blocks |= child.raw_blocks
        own = [b for b in rpo
               if b in region.raw_blocks and b not in child_blocks]
        region.blocks = own

    # Children before parents (innermost first).
    regions.sort(key=lambda r: len(r.raw_blocks))
    return regions


def _inner_of_equal(a: Region, b: Region) -> bool:
    """Tie-break when a loop and a detach own the same raw block set:
    the detach body nests inside the loop."""
    return a.kind == "detach" and b.kind == "loop"


# ---------------------------------------------------------------------------
# Stage 2: region -> dataflow
# ---------------------------------------------------------------------------

class RegionTranslator:
    """Builds one task block's dataflow from its region."""

    def __init__(self, mt: "ModuleTranslator", region: Region):
        self.mt = mt
        self.region = region
        kind = "loop" if region.kind == "loop" else "func"
        if region.kind == "func" and region.function.name == \
                mt.module.main.name:
            kind = "func"
        self.task = TaskBlock(region.name, kind)
        region.task = self.task
        self.df = self.task.dataflow
        self.block_set = set(region.blocks)
        self.value_map: Dict[Value, Port] = {}
        self.const_cache: Dict[Tuple, ConstNode] = {}
        self.livein_ports: Dict[Value, Port] = {}
        self.block_pred: Dict[BasicBlock, Optional[Port]] = {}
        self.edge_pred: Dict[Tuple[BasicBlock, BasicBlock],
                             Optional[Port]] = {}
        # Provenance of conditional predicates (keyed by predicate port
        # identity), for complementary-pair simplification at merges:
        # id(port) -> (parent_pred, cond_port, polarity).
        self.pred_provenance: Dict[int,
                                   Tuple[Optional[Port], Port, bool]] = {}
        self.loopctl: Optional[LoopControl] = None
        self.phi_nodes: Dict[Phi, PhiNode] = {}
        self.skip: Set[Instruction] = set()
        self.junction: Optional[Junction] = None
        self.returns: List[Tuple[BasicBlock, Optional[Value]]] = []
        # Effect sites in program order: (node, (reads, writes)).
        self.effect_sites: List[Tuple[object, Tuple[Set, Set]]] = []
        self._name_counter = 0
        # Loops whose header is a successor of this region's blocks.
        self.child_loop_by_header: Dict[BasicBlock, Region] = {}
        for child in region.children:
            if child.kind == "loop":
                self.child_loop_by_header[child.loop.header] = child
        self.child_detach_by_instr: Dict[Detach, Region] = {}
        for child in region.children:
            if child.kind == "detach":
                self.child_detach_by_instr[child.detach] = child

    # ------------------------------------------------------------------
    def fresh(self, base: str) -> str:
        self._name_counter += 1
        return f"{base}_{self._name_counter}"

    # -- provenance -----------------------------------------------------
    def _stamp(self, node, instr: Optional[Instruction] = None):
        """Record where ``node`` came from: source file, the producing
        instruction's line, and the enclosing task as context."""
        line = getattr(instr, "line", 0) if instr is not None else 0
        node.provenance = (SourceLoc(self.mt.source_file, line,
                                     self.region.name),)
        return node

    def _region_line(self, region: Region) -> int:
        """Representative source line of a child region (its header's
        terminator for loops, the detach instruction for tasks)."""
        if region.kind == "loop" and region.loop is not None:
            term = region.loop.header.terminator
            return getattr(term, "line", 0) if term is not None else 0
        if region.detach is not None:
            return getattr(region.detach, "line", 0)
        return 0

    # -- live-in computation --------------------------------------------
    def compute_live_ins(self) -> List[Value]:
        defined: Set[Value] = set()
        for block in self.region.blocks:
            defined.update(block.instructions)
        produced_by_children: Set[Value] = set()
        for child in self.region.children:
            produced_by_children.update(child.live_outs)

        order: List[Value] = []
        seen: Set[Value] = set()

        # Function tasks have a fixed ABI: live-ins are the function
        # arguments, in signature order (call sites and the host wire
        # them positionally).
        if self.region.kind == "func" and self.region.function is not None:
            for arg in self.region.function.args:
                order.append(arg)
                seen.add(arg)

        def need(value: Value) -> None:
            if value in seen:
                return
            seen.add(value)
            if isinstance(value, (Constant, GlobalArray)):
                return
            if value in defined or value in produced_by_children:
                return
            if isinstance(value, (Argument, Instruction)):
                order.append(value)

        for block in self.region.blocks:
            for instr in block.instructions:
                for op in instr.operands:
                    need(op)
        for child in self.region.children:
            for value in child.live_ins:
                need(value)
        return order

    # -- main entry ----------------------------------------------------------
    def translate(self) -> None:
        region = self.region
        self.mt.circuit.add_task(self.task)
        region.live_ins = self.compute_live_ins()
        if region.kind == "func" and region.function is not None and \
                len(region.live_ins) > len(region.function.args):
            extra = [v.short() for v in
                     region.live_ins[len(region.function.args):]]
            raise TranslationError(
                f"{region.name}: values {extra} defined inside a child "
                f"region escape into the function body (early return "
                f"from a loop is not supported)")
        self.task.live_in_types = [v.type for v in region.live_ins]
        for i, value in enumerate(region.live_ins):
            node = self.df.add(LiveIn(i, value.type,
                                      name=f"livein_{_vname(value, i)}"))
            self.livein_ports[value] = node.out
            self.value_map[value] = node.out

        if region.kind == "loop":
            self._setup_loop_control()

        # Walk blocks in region order: predicates, phis, instructions.
        entry = region.blocks[0]
        self.block_pred[entry] = self._entry_predicate()
        for block in region.blocks:
            if block not in self.block_pred:
                self.block_pred[block] = self._merge_block_pred(block)
            if block is not entry or region.kind != "loop":
                self._convert_merge_phis(block)
            self._convert_instructions(block)
            self._compute_edge_preds(block)

        if region.kind == "loop":
            self._finish_loop()
        else:
            self._finish_func()

        self._pace_unlocked_effects()
        self._prune_dead_nodes()

        # Every node carries provenance: synthesized plumbing (consts,
        # predicates, selects, live-ins/outs) maps to the enclosing
        # task with no specific line.
        for node in self.df.nodes:
            if not node.provenance:
                self._stamp(node)

    def _prune_dead_nodes(self) -> None:
        """Drop pure nodes whose outputs nobody consumes (e.g. inverted
        predicates built for edges that later simplified away)."""
        df = self.df
        changed = True
        prunable = ("compute", "select", "const", "tensor", "fused")
        while changed:
            changed = False
            for node in list(df.nodes):
                if node.kind not in prunable:
                    continue
                if any(port.outgoing for port in node.outputs):
                    continue
                df.remove(node)
                changed = True

    # -- loop scaffolding ------------------------------------------------
    def _setup_loop_control(self) -> None:
        region = self.region
        loop = region.loop
        ind = region.induction
        # Loops must exit only through the header (no break / early
        # return); multiple exit edges cannot lower to one loop-control
        # sequencer.
        for block in loop.blocks:
            for succ in block.successors():
                if succ not in loop.blocks and block is not loop.header:
                    raise TranslationError(
                        f"{region.name}: loop exits from {block.name} "
                        f"(early return/break is not supported)")
        ctl = LoopControl(name="loopctl",
                          conditional=ind is None)
        self.df.add(ctl)
        self._stamp(ctl, loop.header.terminator)
        self.loopctl = ctl
        if ind is not None:
            self._connect(self.resolve(ind.start), ctl.start)
            self._connect(self.resolve(ind.bound), ctl.bound)
            self._connect(self.resolve(ind.step), ctl.step)
            self.value_map[ind.phi] = ctl.index
            self.skip.add(ind.cond)
            if not self._has_other_uses(ind.update, {ind.phi, ind.cond}):
                self.skip.add(ind.update)
        else:
            self._connect(self.const_port(0, I32), ctl.start)
            self._connect(self.const_port(_BIG_BOUND, I32), ctl.bound)
            self._connect(self.const_port(1, I32), ctl.step)

        header = loop.header
        latch_blocks = set(loop.latches)
        for phi in header.phis:
            if ind is not None and phi is ind.phi:
                continue
            node = PhiNode(phi.type, name=self.fresh(f"phi_{phi.name}"))
            self.df.add(node)
            self.phi_nodes[phi] = node
            self.value_map[phi] = node.out
            init_value = None
            for b, v in phi.incomings:
                if b not in loop.blocks:
                    init_value = v
            if init_value is None:
                raise TranslationError(
                    f"{region.name}: phi {phi.name} has no init value")
            self._connect(self.resolve(init_value), node.init)
        # Detect loop-carried memory accumulators (load+store through
        # the same address producer): serialize iterations.
        if self._has_carried_memory_dependence():
            ctl.max_in_flight = 1

    def _has_other_uses(self, instr: Instruction,
                        allowed: Set[Instruction]) -> bool:
        for block in self.region.blocks:
            for user in block.instructions:
                if user in allowed or user is instr:
                    continue
                if instr in user.operands:
                    return True
                if isinstance(user, CondBranch) and user.cond is instr:
                    return True
        # Uses in child regions (live-in there)?
        for child in self.region.children:
            if instr in child.live_ins:
                return True
        return False

    def _has_carried_memory_dependence(self) -> bool:
        """Detect read-modify-write accumulators (``o[p] += ...``): a
        load and store through the same *loop-invariant* address —
        every iteration touches that one location, so iterations must
        not overlap.  Same-address pairs whose index varies with the
        iteration (e.g. an FFT butterfly's ``re[lo]``) are a
        within-iteration dependence (handled by ordering edges), and
        loads/stores at distinct indices are iteration-independent
        (Cilk-style race freedom, see DESIGN.md)."""
        def addr_key(ptr: Value):
            if isinstance(ptr, Instruction) and ptr.opcode == "gep":
                idx = ptr.operands[1]
                if isinstance(idx, Constant):
                    return (trace_array(ptr), "const", idx.value)
                if self._loop_variant(idx):
                    return None
                return (trace_array(ptr), "val", id(idx))
            if self._loop_variant(ptr):
                return None
            return ("*", "val", id(ptr))

        load_keys = set()
        for block in self.region.blocks:
            for instr in block.instructions:
                if instr.opcode in ("load", "tload"):
                    key = addr_key(instr.operands[0])
                    if key is not None:
                        load_keys.add(key)
        for block in self.region.blocks:
            for instr in block.instructions:
                if instr.opcode in ("store", "tstore") and \
                        addr_key(instr.operands[1]) in load_keys:
                    return True
        return False

    def _loop_variant(self, value: Value, depth: int = 0) -> bool:
        """Does ``value`` (transitively) depend on a header phi?"""
        if depth > 32:
            return True  # be conservative on very deep expressions
        if not isinstance(value, Instruction):
            return False
        block = value.block
        if block is None or block not in self.region.loop.blocks:
            return False
        if isinstance(value, Phi) and block is self.region.loop.header:
            return True
        return any(self._loop_variant(op, depth + 1)
                   for op in value.operands)

    # -- predicates -------------------------------------------------------
    def _entry_predicate(self) -> Optional[Port]:
        return None  # unconditional; loop pacing handled separately

    def _merge_block_pred(self, block: BasicBlock) -> Optional[Port]:
        edges = self._incoming_region_edges(block)
        incoming = [pred for _src, pred in edges]
        if not incoming:
            return None
        if any(p is None for p in incoming):
            return None
        # Complementary pair (then/else of one branch rejoining): the
        # merge is reached whenever the parent was.
        if len(edges) == 2:
            infos = [self.pred_provenance.get(id(p)) for p in incoming]
            if all(infos) and infos[0][1] is infos[1][1] \
                    and infos[0][0] is infos[1][0] \
                    and infos[0][2] != infos[1][2]:
                return infos[0][0]
        acc = incoming[0]
        for p in incoming[1:]:
            acc = self._make_logic("or", acc, p)
        return acc

    def _incoming_region_edges(self, block: BasicBlock):
        """Region-internal edges into ``block``, with child-loop exits
        redirected to the loop's entry edge predicate."""
        result = []
        for (src, dst), pred in self.edge_pred.items():
            if dst is block:
                result.append((src, pred))
        return result

    def _compute_edge_preds(self, block: BasicBlock) -> None:
        term = block.terminator
        pred = self.block_pred.get(block)
        if isinstance(term, Branch):
            self._record_edge(block, term.target, pred)
        elif isinstance(term, CondBranch):
            region = self.region
            if region.kind == "loop" and block is region.loop.header \
                    and region.induction is not None:
                # Counted-loop header: loop control already gates
                # iterations; the body edge is unconditional.
                body = region.induction.body_entry
                self._record_edge(block, body, None)
                return
            cond_port = self.resolve(term.cond)
            then_pred = self._make_and(pred, cond_port)
            else_pred = self._make_and(pred, self._make_not(cond_port))
            self.pred_provenance[id(then_pred)] = (pred, cond_port, True)
            self.pred_provenance[id(else_pred)] = (pred, cond_port, False)
            self._record_edge(block, term.then_block, then_pred)
            self._record_edge(block, term.else_block, else_pred)
        elif isinstance(term, Detach):
            self._record_edge(block, term.cont, pred)
        elif isinstance(term, Reattach):
            self._record_edge(block, term.cont, pred)

    def _record_edge(self, src: BasicBlock, dst: BasicBlock,
                     pred: Optional[Port]) -> None:
        region = self.region
        if region.kind == "loop" and dst is region.loop.header:
            return  # back edge: handled by loop control
        if dst in self.child_loop_by_header:
            child = self.child_loop_by_header[dst]
            call = self._emit_loop_call(child, pred)
            # The loop behaves as a pass-through to its exits.
            for exit_block in child.loop.exit_blocks():
                if exit_block in self.block_set:
                    self.edge_pred[(src, exit_block)] = pred
            return
        if dst not in self.block_set:
            return
        self.edge_pred[(src, dst)] = pred

    def _make_and(self, a: Optional[Port],
                  b: Optional[Port]) -> Optional[Port]:
        if a is None:
            return b
        if b is None:
            return a
        return self._make_logic("and", a, b)

    def _make_not(self, a: Port) -> Port:
        node = ComputeNode("xor", BOOL, arity=2,
                           name=self.fresh("not"))
        self.df.add(node)
        self._connect(a, node.in_ports[0])
        self._connect(self.const_port(1, BOOL), node.in_ports[1])
        return node.out

    def _make_logic(self, op: str, a: Port, b: Port) -> Port:
        node = ComputeNode(op, BOOL, arity=2, name=self.fresh(op))
        self.df.add(node)
        self._connect(a, node.in_ports[0])
        self._connect(b, node.in_ports[1])
        return node.out

    # -- merge phis (forward control flow) ---------------------------------
    def _convert_merge_phis(self, block: BasicBlock) -> None:
        phis = block.phis
        if not phis:
            return
        edges = self._incoming_region_edges(block)
        if not edges:
            raise TranslationError(
                f"{self.region.name}: merge block {block.name} with phis "
                f"has no region-internal predecessors")
        for phi in phis:
            acc: Optional[Port] = None
            for src, pred in reversed(list(edges)):
                value = None
                for b, v in phi.incomings:
                    if b is src or self._edge_covers(src, b):
                        value = v
                        break
                if value is None:
                    continue
                port = self.resolve(value)
                if acc is None:
                    acc = port
                elif pred is None:
                    acc = port
                else:
                    sel = SelectNode(phi.type,
                                     name=self.fresh(f"sel_{phi.name}"))
                    self.df.add(sel)
                    self._connect(pred, sel.cond)
                    self._connect(port, sel.a)
                    self._connect(acc, sel.b)
                    acc = sel.out
            if acc is None:
                raise TranslationError(
                    f"{self.region.name}: could not build select tree "
                    f"for phi {phi.name}")
            self.value_map[phi] = acc

    def _edge_covers(self, region_src: BasicBlock,
                     phi_block: BasicBlock) -> bool:
        """A phi incoming block may be inside a child loop whose exit
        reaches this merge; the region edge source then stands for it."""
        child = None
        for c in self.region.children:
            if c.kind == "loop" and phi_block in c.raw_blocks:
                child = c
                break
        return child is not None and region_src not in self.block_set

    # -- instruction conversion ------------------------------------------
    def _convert_instructions(self, block: BasicBlock) -> None:
        pred = self.block_pred.get(block)
        for instr in block.instructions:
            if isinstance(instr, Phi) or instr in self.skip:
                continue
            if isinstance(instr, (Branch, CondBranch)):
                continue
            if isinstance(instr, Return):
                self.returns.append((block, instr.value))
                continue
            if isinstance(instr, Sync):
                self._emit_sync(instr)
                continue
            if isinstance(instr, Reattach):
                continue
            if isinstance(instr, Detach):
                child = self.child_detach_by_instr.get(instr)
                if child is None:
                    raise TranslationError(
                        f"{self.region.name}: detach without child region")
                self._emit_spawn(child, pred)
                continue
            if isinstance(instr, Call):
                self._emit_function_call(instr, pred)
                continue
            if instr.opcode in ("load", "tload"):
                self._emit_load(instr, pred)
                continue
            if instr.opcode in ("store", "tstore"):
                self._emit_store(instr, pred)
                continue
            self._emit_compute(instr)

    def _emit_compute(self, instr: Instruction) -> None:
        operand_types = [op.type for op in instr.operands]
        if instr.opcode == "select":
            node = SelectNode(instr.type, name=self.fresh(instr.name
                                                          or "select"))
            self.df.add(node)
            self._stamp(node, instr)
            self._connect(self.resolve(instr.operands[0]), node.cond)
            self._connect(self.resolve(instr.operands[1]), node.a)
            self._connect(self.resolve(instr.operands[2]), node.b)
            self.value_map[instr] = node.out
            return
        if instr.opcode in _TENSOR_OPCODES:
            cls = TensorComputeNode
        else:
            cls = ComputeNode
        if instr.opcode == "gep":
            node = ComputeNode("gep", I32, arity=2,
                               name=self.fresh(instr.name or "gep"),
                               operand_types=[I32, I32])
            node.gep_scale = instr.operands[0].type.pointee.words
        else:
            node = cls(instr.opcode, instr.type,
                       arity=len(instr.operands),
                       name=self.fresh(instr.name or instr.opcode),
                       operand_types=operand_types)
        self.df.add(node)
        self._stamp(node, instr)
        for op, port in zip(instr.operands, node.in_ports):
            self._connect(self.resolve(op), port)
        self.value_map[instr] = node.out

    def _emit_load(self, instr: Instruction, pred: Optional[Port]) -> None:
        node = LoadNode(instr.type, name=self.fresh(instr.name or "load"))
        self.df.add(node)
        self._stamp(node, instr)
        node.array = trace_array(instr.operands[0])
        self._connect(self.resolve(instr.operands[0]), node.addr)
        if pred is not None:
            self._connect(pred, node.enable_predicate())
        self._attach_memory(node)
        self.value_map[instr] = node.out
        self._order_effect(node, ({node.array}, set()))

    def _emit_store(self, instr: Instruction, pred: Optional[Port]) -> None:
        value, ptr = instr.operands
        node = StoreNode(value.type, name=self.fresh("store"))
        self.df.add(node)
        self._stamp(node, instr)
        node.array = trace_array(ptr)
        self._connect(self.resolve(ptr), node.addr)
        self._connect(self.resolve(value), node.data)
        if pred is not None:
            self._connect(pred, node.enable_predicate())
        self._attach_memory(node)
        self._order_effect(node, (set(), {node.array}))

    def _emit_function_call(self, instr: Call,
                            pred: Optional[Port]) -> None:
        callee_region = self.mt.func_regions[instr.callee.name]
        callee_name = callee_region.name
        arg_types = [a.type for a in instr.operands]
        access = self.mt.func_access[instr.callee.name]
        if instr.spawned:
            node = SpawnNode(callee_name, arg_types,
                             name=self.fresh(f"spawn_{instr.callee.name}"))
            self.df.add(node)
            self._stamp(node, instr)
            for op, port in zip(instr.operands, node.arg_ports):
                self._connect(self.resolve(op), port)
            if pred is not None:
                self._connect(pred, node.enable_predicate())
            self.mt.add_task_edge(self.task.name, callee_name, "spawn")
            self._order_effect(node, access)
            return
        ret_types = ([] if instr.callee.return_type == VOID
                     else [instr.callee.return_type])
        node = CallNode(callee_name, arg_types, ret_types,
                        name=self.fresh(f"call_{instr.callee.name}"))
        self.df.add(node)
        self._stamp(node, instr)
        for op, port in zip(instr.operands, node.arg_ports):
            self._connect(self.resolve(op), port)
        if pred is not None:
            self._connect(pred, node.enable_predicate())
        if node.ret_ports:
            self.value_map[instr] = node.ret_ports[0]
        self.mt.add_task_edge(self.task.name, callee_name, "call")
        if _self_conflict(access):
            node.serialize = True
        self._order_effect(node, access)

    def _emit_loop_call(self, child: Region,
                        pred: Optional[Port]) -> CallNode:
        arg_types = [v.type for v in child.live_ins]
        ret_types = [v.type for v in child.live_outs]
        node = CallNode(child.name, arg_types, ret_types,
                        name=self.fresh(f"call_{child.name}"))
        self.df.add(node)
        node.provenance = (SourceLoc(self.mt.source_file,
                                     self._region_line(child),
                                     self.region.name),)
        for value, port in zip(child.live_ins, node.arg_ports):
            self._connect(self.resolve(value), port)
        if pred is not None:
            self._connect(pred, node.enable_predicate())
        for value, port in zip(child.live_outs, node.ret_ports):
            self.value_map[value] = port
        self.mt.add_task_edge(self.task.name, child.name, "call")
        access = (child.reads, child.writes)
        if _self_conflict(access) and self.region.kind == "loop":
            # In-place child (e.g. an FFT stage): its invocations from
            # successive outer iterations must not overlap.
            node.serialize = True
        self._order_effect(node, access)
        return node

    def _emit_sync(self, instr: Optional[Instruction] = None) -> None:
        if self.region.kind == "loop":
            raise TranslationError(
                f"{self.region.name}: sync inside a loop body is not "
                f"supported (hoist the parallel region)")
        from ..core.nodes import SyncNode
        node = SyncNode(name=self.fresh("sync"))
        self.df.add(node)
        self._stamp(node, instr)
        # A sync is a full barrier: order it against every prior effect
        # and let every later effect order against it.
        self._order_effect(node, ({None}, {None}))

    def _emit_spawn(self, child: Region, pred: Optional[Port]) -> None:
        arg_types = [v.type for v in child.live_ins]
        node = SpawnNode(child.name, arg_types,
                         name=self.fresh(f"spawn_{child.name}"))
        self.df.add(node)
        node.provenance = (SourceLoc(self.mt.source_file,
                                     self._region_line(child),
                                     self.region.name),)
        for value, port in zip(child.live_ins, node.arg_ports):
            self._connect(self.resolve(value), port)
        if pred is not None:
            self._connect(pred, node.enable_predicate())
        self.mt.add_task_edge(self.task.name, child.name, "spawn")
        self._order_effect(node, (child.reads, child.writes))

    # -- memory-dependence ordering ------------------------------------------
    def _order_effect(self, node, access: Tuple[Set, Set]) -> None:
        self.region.reads |= access[0]
        self.region.writes |= access[1]
        if not hasattr(node, "enable_order_in"):
            self.effect_sites.append((node, access))
            return
        for prior, prior_access in self.effect_sites:
            if prior.kind == "spawn" and node.kind == "spawn":
                continue  # spawns are concurrent by definition (Cilk)
            if not _conflict(prior_access, access):
                continue
            done_port = self._done_port_of(prior)
            if done_port is None:
                continue
            target = node.enable_order_in()
            if target.incoming is not None:
                existing = target.incoming.src
                self.df.disconnect(target.incoming)
                merged = self._make_logic("and", existing, done_port)
                self._connect(merged, target)
            else:
                self._connect(done_port, target)
        self.effect_sites.append((node, access))

    @staticmethod
    def _done_port_of(node) -> Optional[Port]:
        if node.kind in ("load", "store"):
            return node.done
        if node.kind == "call":
            return node.order_out
        if node.kind == "spawn":
            # Spawn completion is only observable through sync (or the
            # parent task's completion); ordering after its *issue* is
            # all the fire-and-forget interface offers.  Cilk semantics
            # require a sync before reading spawned results anyway.
            return node.issued
        if node.kind == "sync":
            return node.done
        return None

    def _attach_memory(self, node) -> None:
        if self.junction is None:
            self.junction = Junction(
                f"{self.task.name}_junc", self.mt.cache,
                issue_width=self.mt.junction_issue_width)
            self.task.add_junction(self.junction)
        self.junction.attach(node)
        self.task.reindex_junctions()

    # -- finishing --------------------------------------------------------
    def _finish_loop(self) -> None:
        region = self.region
        loop = region.loop
        ind = region.induction
        latch_set = set(loop.latches)

        # Back edges for carried phis.
        for phi, node in self.phi_nodes.items():
            back_value = None
            for b, v in phi.incomings:
                if b in loop.blocks:
                    back_value = v
            if back_value is None:
                raise TranslationError(
                    f"{region.name}: phi {phi.name} lacks a back value")
            self._connect(self.resolve(back_value), node.back)

        # Conditional loops: feed the continue condition.
        if ind is None:
            header_term = loop.header.terminator
            if not isinstance(header_term, CondBranch):
                raise TranslationError(
                    f"{region.name}: general loop header must end in a "
                    f"conditional branch")
            cond_port = self.resolve(header_term.cond)
            if header_term.else_block in loop.blocks and \
                    header_term.then_block not in loop.blocks:
                cond_port = self._make_not(cond_port)
            self._connect(cond_port, self.loopctl.cont)

        # Live-outs: carried values observed after the loop.
        live_outs: List[Value] = []
        for phi in loop.header.phis:
            if self._used_outside(phi):
                live_outs.append(phi)
        region.live_outs = live_outs
        self.task.live_out_types = [v.type for v in live_outs]
        for i, value in enumerate(live_outs):
            out_node = self.df.add(LiveOut(i, value.type,
                                           name=f"liveout{i}"))
            if ind is not None and value is ind.phi:
                self._connect(self.loopctl.final, out_node.inp)
            else:
                src = self.phi_nodes[value].final
                self._connect(src, out_node.inp)

        # Returns inside loops are not supported (the paper extracts
        # loops as self-scheduling tasks; early returns stay outside).
        if self.returns:
            raise TranslationError(
                f"{region.name}: return inside a loop body is not "
                f"supported")

    def _used_outside(self, value: Instruction) -> bool:
        region_blocks = self.region.raw_blocks
        function = self.region.function
        for block in function.blocks:
            if block in region_blocks:
                continue
            for instr in block.instructions:
                if value in instr.operands:
                    return True
                if isinstance(instr, CondBranch) and instr.cond is value:
                    return True
        return False

    def _finish_func(self) -> None:
        region = self.region
        function = region.function
        if function is not None and function.return_type != VOID \
                and region.kind == "func":
            acc: Optional[Port] = None
            for block, value in reversed(self.returns):
                if value is None:
                    raise TranslationError(
                        f"{region.name}: missing return value")
                port = self.resolve(value)
                pred = self.block_pred.get(block)
                if acc is None or pred is None:
                    acc = port
                else:
                    sel = SelectNode(function.return_type,
                                     name=self.fresh("retsel"))
                    self.df.add(sel)
                    self._connect(pred, sel.cond)
                    self._connect(port, sel.a)
                    self._connect(acc, sel.b)
                    acc = sel.out
            if acc is None:
                raise TranslationError(
                    f"{region.name}: function returns a value but has "
                    f"no return sites")
            region.live_outs = [None]  # placeholder: single return value
            self.task.live_out_types = [function.return_type]
            node = self.df.add(LiveOut(0, function.return_type,
                                       name="liveout0"))
            self._connect(acc, node.inp)
        else:
            region.live_outs = []
            self.task.live_out_types = []

    # -- pacing (iteration locking) -------------------------------------------
    def _pace_unlocked_effects(self) -> None:
        if self.task.kind != "loop":
            # Func tasks: every connection carries exactly one token
            # per invocation, which paces everything — except an
            # effect node with NO inputs at all (e.g. a call to a
            # zero-argument child).  Give it a one-shot trigger.
            for node in list(self.df.nodes):
                if node.kind not in ("load", "store", "call", "spawn"):
                    continue
                if any(p.incoming is not None for p in node.inputs):
                    continue
                trigger = self.const_port(1, BOOL)
                self._connect(trigger, node.enable_predicate())
            return
        if self.loopctl is not None and self.loopctl.conditional:
            # Conditional loops run speculative iterations past the
            # failing check; every side effect must consume a 'valid
            # iteration' token so speculation never becomes visible.
            self._gate_effects_on_active()
        locked: Set[int] = set()
        if self.loopctl is not None:
            locked.add(id(self.loopctl))
        for node in self.df.nodes:
            if node.kind == "phi":
                locked.add(id(node))
        changed = True
        while changed:
            changed = False
            for node in self.df.nodes:
                if id(node) in locked:
                    continue
                for port in node.inputs:
                    conn = port.incoming
                    if conn is not None and not conn.latched and \
                            id(conn.src.node) in locked:
                        locked.add(id(node))
                        changed = True
                        break
        for node in self.df.nodes:
            if node.kind not in ("load", "store", "call", "spawn"):
                continue
            if id(node) in locked:
                continue
            self._merge_active_into_pred(node)

    def _gate_effects_on_active(self) -> None:
        for node in list(self.df.nodes):
            if node.kind in ("load", "store", "call", "spawn"):
                self._merge_active_into_pred(node)

    def _merge_active_into_pred(self, node) -> None:
        active = self.loopctl.active
        if node.pred is not None and node.pred.incoming is not None:
            existing = node.pred.incoming.src
            if existing is active:
                return
            self.df.disconnect(node.pred.incoming)
            merged = self._make_logic("and", active, existing)
            self._connect(merged, node.pred)
        else:
            self._connect(active, node.enable_predicate())

    # -- operand resolution ------------------------------------------------
    def resolve(self, value: Value) -> Port:
        if value in self.value_map:
            return self.value_map[value]
        if isinstance(value, Constant):
            return self.const_port(value.value, value.type)
        if isinstance(value, GlobalArray):
            base = self.mt.array_base[value.name]
            return self.const_port(base, I32)
        raise TranslationError(
            f"{self.region.name}: operand {value.short()} is not "
            f"available in this region (missing live-in?)")

    def const_port(self, value, type_: Type) -> Port:
        key = (value, str(type_))
        node = self.const_cache.get(key)
        if node is None:
            node = ConstNode(value, type_,
                             name=self.fresh(f"const"))
            self.df.add(node)
            self.const_cache[key] = node
        return node.out

    def _connect(self, src: Port, dst: Port) -> None:
        latched = self._is_latched_source(src)
        self.df.connect(src, dst, latched=latched)

    def _is_latched_source(self, src: Port) -> bool:
        if self.task.kind != "loop":
            return False
        return src.node.kind in ("const", "livein")


def _vname(value: Value, idx: int) -> str:
    name = getattr(value, "name", "") or f"v{idx}"
    return name.replace(".", "_")


# ---------------------------------------------------------------------------
# Module-level driver
# ---------------------------------------------------------------------------

class ModuleTranslator:
    """Runs Stage 1 + Stage 2 over a whole module."""

    def __init__(self, module: Module, name: Optional[str] = None,
                 cache_size_words: int = 16384,
                 junction_issue_width: int = 2):
        self.module = module
        self.source_file = module.source_file or module.name
        self.circuit = AcceleratorCircuit(name or module.name)
        self.cache = Cache("l1", size_words=cache_size_words)
        self.circuit.add_structure(self.cache)
        self.junction_issue_width = junction_issue_width
        self.func_regions: Dict[str, Region] = {}
        self.func_access = function_access_sets(module)
        self._edges: Set[Tuple[str, str, str]] = set()
        # Array layout identical to interp.Memory.
        self.array_base: Dict[str, int] = {}
        addr = 0
        for gname, glob in module.globals.items():
            self.array_base[gname] = addr
            self.circuit.array_layout[gname] = (addr, glob.size_words)
            addr += glob.size_words

    def add_task_edge(self, parent: str, child: str, kind: str) -> None:
        # Deferred: the child's task may not be translated yet (calls
        # across functions); edges materialize at the end.
        self._edges.add((parent, child, kind))

    def translate(self) -> AcceleratorCircuit:
        reachable = self._reachable_functions()
        # Pre-create func region names so call sites resolve.
        all_regions: List[Tuple[Function, List[Region]]] = []
        for fn in reachable:
            regions = build_regions(fn, prefix=fn.name)
            all_regions.append((fn, regions))
            for region in regions:
                if region.kind == "func":
                    self.func_regions[fn.name] = region
        mains = [pair for pair in all_regions
                 if pair[0].name == self.module.main.name]
        others = [pair for pair in all_regions
                  if pair[0].name != self.module.main.name]
        # Translate children before parents within each function; the
        # build_regions list is already innermost-first per function.
        for fn, regions in mains + others:
            for region in regions:
                RegionTranslator(self, region).translate()
        for parent, child, kind in sorted(self._edges):
            self.circuit.add_task_edge(TaskEdge(parent, child, kind=kind))
        self.circuit.root = self.func_regions[self.module.main.name].name
        return self.circuit

    def _reachable_functions(self) -> List[Function]:
        main = self.module.main
        seen = {main.name}
        order = [main]
        work = [main]
        while work:
            fn = work.pop()
            for instr in fn.instructions():
                if isinstance(instr, Call) and \
                        instr.callee.name not in seen:
                    seen.add(instr.callee.name)
                    order.append(instr.callee)
                    work.append(instr.callee)
        return order


def translate_module(module: Module, name: Optional[str] = None,
                     **kwargs) -> AcceleratorCircuit:
    """Translate a software-IR module into a baseline uIR circuit."""
    return ModuleTranslator(module, name, **kwargs).translate()

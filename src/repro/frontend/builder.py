"""Convenience builder for the software IR.

Workloads and the MiniC lowering both construct IR through this class.
Structured helpers (``for_range``, ``parallel_for``, ``if_else``) emit
the canonical CFG shapes that the uIR translator recognizes: counted
loops with a single header phi per carried value, and Tapir
detach/reattach regions for parallel iterations.
"""

from __future__ import annotations

import contextlib
from typing import List, Optional, Sequence, Tuple, Union

from ..errors import IRError
from ..types import BOOL, I32, VOID, FloatType, IntType, TensorType, Type
from .ir import (
    BasicBlock,
    Branch,
    Call,
    CondBranch,
    Constant,
    Detach,
    Function,
    GlobalArray,
    Instruction,
    Module,
    Phi,
    Reattach,
    Return,
    Sync,
    Value,
    result_type,
)

Operand = Union[Value, int, float]


class LoopHandle:
    """Handle returned by ``for_range``: induction var + carried values."""

    def __init__(self, builder: "IRBuilder", header: BasicBlock,
                 body: BasicBlock, exit_block: BasicBlock, var: Phi,
                 preheader: BasicBlock):
        self._builder = builder
        self.header = header
        self.body = body
        self.exit = exit_block
        self.var = var
        self._preheader = preheader
        self._carries: List[Tuple[Phi, Optional[Value]]] = []

    def carry(self, init: Operand, type_: Optional[Type] = None,
              name: str = "carry") -> Phi:
        """Declare a loop-carried value with initial value ``init``."""
        b = self._builder
        init_v = b.as_value(init, type_)
        phi = Phi(init_v.type, b.fresh(name))
        phi.add_incoming(self._preheader, init_v)
        # Phis must precede other header instructions.
        self.header.instructions.insert(
            len([i for i in self.header.instructions if i.is_phi]), phi)
        phi.block = self.header
        self._carries.append((phi, None))
        return phi

    def set_carry(self, phi: Phi, value: Value) -> None:
        """Provide the next-iteration value of a carried phi."""
        for idx, (p, _v) in enumerate(self._carries):
            if p is phi:
                self._carries[idx] = (p, value)
                return
        raise IRError("set_carry on unknown phi")

    def finish(self, latch: BasicBlock, next_var: Value) -> None:
        self.var.add_incoming(latch, next_var)
        for phi, update in self._carries:
            if update is None:
                raise IRError(
                    f"loop-carried phi {phi.name} never given an update")
            phi.add_incoming(latch, update)


class IfElseHandle:
    """Handle for structured if/else with optional value merge."""

    def __init__(self, builder: "IRBuilder", cond: Value,
                 then_block: BasicBlock, else_block: BasicBlock,
                 merge: BasicBlock):
        self._builder = builder
        self._cond = cond
        self._then = then_block
        self._else = else_block
        self.merge = merge
        self._then_value: Optional[Tuple[BasicBlock, Value]] = None
        self._else_value: Optional[Tuple[BasicBlock, Value]] = None
        self.phi: Optional[Phi] = None

    @contextlib.contextmanager
    def then(self):
        b = self._builder
        b.position(self._then)
        yield
        end = b.current
        if not end.is_terminated:
            b.branch(self.merge)
        self._then_end = end

    @contextlib.contextmanager
    def otherwise(self):
        b = self._builder
        b.position(self._else)
        yield
        end = b.current
        if not end.is_terminated:
            b.branch(self.merge)
        self._else_end = end

    def then_value(self, value: Value) -> None:
        self._then_value = (self._builder.current, value)

    def else_value(self, value: Value) -> None:
        self._else_value = (self._builder.current, value)

    def close(self) -> None:
        b = self._builder
        b.position(self.merge)
        if self._then_value and self._else_value:
            tb, tv = self._then_value
            eb, ev = self._else_value
            phi = Phi(tv.type, b.fresh("ifval"))
            phi.add_incoming(tb, tv)
            phi.add_incoming(eb, ev)
            self.merge.instructions.insert(0, phi)
            phi.block = self.merge
            self.phi = phi


class IRBuilder:
    """Builds software IR with automatic naming and type inference."""

    def __init__(self, module: Optional[Module] = None):
        self.module = module or Module()
        self.function: Optional[Function] = None
        self.current: Optional[BasicBlock] = None
        self._counter = 0
        #: Source line stamped onto every appended instruction (0 =
        #: no source info); the MiniC lowering updates it per AST node.
        self.line = 0

    # ------------------------------------------------------------------
    # Module-level construction
    # ------------------------------------------------------------------
    def global_array(self, name: str, elem: Type, size: int) -> GlobalArray:
        return self.module.add_global(name, elem, size)

    def new_function(self, name: str, args: Sequence[Tuple[str, Type]],
                     return_type: Type = VOID) -> Function:
        function = Function(name, args, return_type)
        self.module.add_function(function)
        self.function = function
        self.current = function.new_block("entry")
        return function

    def arg(self, name: str) -> Value:
        if self.function is None:
            raise IRError("no current function")
        for a in self.function.args:
            if a.name == name:
                return a
        raise IRError(f"no argument named {name}")

    # ------------------------------------------------------------------
    # Positioning and naming
    # ------------------------------------------------------------------
    def position(self, block: BasicBlock) -> None:
        self.current = block

    def block(self, name: str) -> BasicBlock:
        if self.function is None:
            raise IRError("no current function")
        return self.function.new_block(name)

    def fresh(self, base: str) -> str:
        self._counter += 1
        return f"{base}{self._counter}"

    # ------------------------------------------------------------------
    # Values
    # ------------------------------------------------------------------
    def const(self, value, type_: Optional[Type] = None) -> Constant:
        if type_ is None:
            if isinstance(value, bool):
                type_ = BOOL
            elif isinstance(value, int):
                type_ = I32
            elif isinstance(value, float):
                type_ = FloatType(32)
            else:
                raise IRError(f"cannot infer constant type for {value!r}")
        return Constant(value, type_)

    def as_value(self, v: Operand, type_: Optional[Type] = None) -> Value:
        if isinstance(v, Value):
            return v
        return self.const(v, type_)

    # ------------------------------------------------------------------
    # Instruction emission
    # ------------------------------------------------------------------
    def emit(self, opcode: str, operands: Sequence[Operand],
             name: str = "") -> Instruction:
        ops = [self.as_value(o) for o in operands]
        type_ = result_type(opcode, ops)
        instr = Instruction(opcode, ops, type_,
                            name or (self.fresh(opcode)
                                     if type_ != VOID else ""))
        self._append(instr)
        return instr

    def _append(self, instr: Instruction) -> Instruction:
        if self.current is None:
            raise IRError("builder has no current block")
        if not instr.line:
            instr.line = self.line
        self.current.append(instr)
        return instr

    # Arithmetic -------------------------------------------------------
    def add(self, a, b, name=""):
        return self.emit("add", [a, b], name)

    def sub(self, a, b, name=""):
        return self.emit("sub", [a, b], name)

    def mul(self, a, b, name=""):
        return self.emit("mul", [a, b], name)

    def div(self, a, b, name=""):
        return self.emit("div", [a, b], name)

    def rem(self, a, b, name=""):
        return self.emit("rem", [a, b], name)

    def and_(self, a, b, name=""):
        return self.emit("and", [a, b], name)

    def or_(self, a, b, name=""):
        return self.emit("or", [a, b], name)

    def xor(self, a, b, name=""):
        return self.emit("xor", [a, b], name)

    def shl(self, a, b, name=""):
        return self.emit("shl", [a, b], name)

    def lshr(self, a, b, name=""):
        return self.emit("lshr", [a, b], name)

    def ashr(self, a, b, name=""):
        return self.emit("ashr", [a, b], name)

    def fadd(self, a, b, name=""):
        return self.emit("fadd", [a, b], name)

    def fsub(self, a, b, name=""):
        return self.emit("fsub", [a, b], name)

    def fmul(self, a, b, name=""):
        return self.emit("fmul", [a, b], name)

    def fdiv(self, a, b, name=""):
        return self.emit("fdiv", [a, b], name)

    def exp(self, a, name=""):
        return self.emit("exp", [a], name)

    def sqrt(self, a, name=""):
        return self.emit("sqrt", [a], name)

    def itof(self, a, name=""):
        return self.emit("itof", [a], name)

    def ftoi(self, a, name=""):
        return self.emit("ftoi", [a], name)

    def cmp(self, pred: str, a, b, name=""):
        return self.emit(pred, [a, b], name)

    def select(self, cond, a, b, name=""):
        return self.emit("select", [cond, a, b], name)

    # Tensor ops -------------------------------------------------------
    def tmul(self, a, b, name=""):
        return self.emit("tmul", [a, b], name)

    def tadd(self, a, b, name=""):
        return self.emit("tadd", [a, b], name)

    def trelu(self, a, name=""):
        return self.emit("trelu", [a], name)

    # Memory -----------------------------------------------------------
    def gep(self, base: Value, index: Operand, name=""):
        return self.emit("gep", [base, index], name)

    def load(self, ptr: Value, name=""):
        return self.emit("load", [ptr], name)

    def store(self, value: Operand, ptr: Value):
        return self.emit("store", [value, ptr])

    def tload(self, ptr: Value, name=""):
        return self.emit("tload", [ptr], name)

    def tstore(self, value: Value, ptr: Value):
        return self.emit("tstore", [value, ptr])

    def index(self, array: GlobalArray, idx: Operand, name=""):
        """Address of ``array[idx]`` (a gep)."""
        return self.gep(array, idx, name)

    def load_elem(self, array: GlobalArray, idx: Operand, name=""):
        ptr = self.index(array, idx)
        if isinstance(array.elem, TensorType):
            return self.tload(ptr, name)
        return self.load(ptr, name)

    def store_elem(self, array: GlobalArray, idx: Operand, value: Operand):
        ptr = self.index(array, idx)
        if isinstance(array.elem, TensorType):
            return self.tstore(value, ptr)
        return self.store(value, ptr)

    # Calls and parallelism ---------------------------------------------
    def call(self, callee: Function, args: Sequence[Operand],
             name: str = "", spawned: bool = False) -> Call:
        instr = Call(callee, [self.as_value(a) for a in args],
                     name or (self.fresh("call")
                              if callee.return_type != VOID else ""),
                     spawned=spawned)
        self._append(instr)
        return instr

    def spawn(self, callee: Function, args: Sequence[Operand],
              name: str = "") -> Call:
        return self.call(callee, args, name, spawned=True)

    def sync(self) -> Sync:
        instr = Sync()
        self._append(instr)
        return instr

    # Control flow -------------------------------------------------------
    def branch(self, target: BasicBlock) -> Branch:
        instr = Branch(target)
        self._append(instr)
        return instr

    def cond_branch(self, cond: Value, then_block: BasicBlock,
                    else_block: BasicBlock) -> CondBranch:
        instr = CondBranch(cond, then_block, else_block)
        self._append(instr)
        return instr

    def ret(self, value: Optional[Operand] = None) -> Return:
        v = self.as_value(value) if value is not None else None
        instr = Return(v)
        self._append(instr)
        return instr

    # Structured helpers ---------------------------------------------------
    @contextlib.contextmanager
    def for_range(self, name: str, start: Operand, bound: Operand,
                  step: Operand = 1):
        """Counted loop ``for (name = start; name < bound; name += step)``.

        Yields a :class:`LoopHandle`; the builder is positioned in the
        loop body inside the ``with`` and at the exit block after it.
        """
        preheader = self.current
        header = self.block(f"{name}.header")
        body = self.block(f"{name}.body")
        exit_block = self.block(f"{name}.exit")

        start_v = self.as_value(start, I32)
        bound_v = self.as_value(bound, I32)
        step_v = self.as_value(step, I32)

        self.branch(header)
        self.position(header)
        var = Phi(I32, name)
        var.add_incoming(preheader, start_v)
        header.append(var)
        cond = self.cmp("lt", var, bound_v)
        self.cond_branch(cond, body, exit_block)

        self.position(body)
        handle = LoopHandle(self, header, body, exit_block, var, preheader)
        yield handle
        latch = self.current
        next_var = self.add(var, step_v, name=self.fresh(f"{name}.next"))
        self.branch(header)
        handle.finish(latch, next_var)
        self.position(exit_block)

    @contextlib.contextmanager
    def parallel_for(self, name: str, start: Operand, bound: Operand,
                     step: Operand = 1):
        """Tapir parallel loop: each iteration body is detached.

        The body must not carry values between iterations (communicate
        through memory), matching Cilk ``parallel_for`` semantics.
        """
        preheader = self.current
        header = self.block(f"{name}.header")
        spawn_block = self.block(f"{name}.detach")
        body = self.block(f"{name}.task")
        latch = self.block(f"{name}.latch")
        exit_block = self.block(f"{name}.exit")

        start_v = self.as_value(start, I32)
        bound_v = self.as_value(bound, I32)
        step_v = self.as_value(step, I32)

        self.branch(header)
        self.position(header)
        var = Phi(I32, name)
        var.add_incoming(preheader, start_v)
        header.append(var)
        cond = self.cmp("lt", var, bound_v)
        self.cond_branch(cond, spawn_block, exit_block)

        self.position(spawn_block)
        detach = Detach(body, latch)
        self._append(detach)

        self.position(body)
        yield var
        if not self.current.is_terminated:
            self._append(Reattach(latch))

        self.position(latch)
        next_var = self.add(var, step_v, name=self.fresh(f"{name}.next"))
        self.branch(header)
        var.add_incoming(latch, next_var)

        self.position(exit_block)
        self.sync()

    @contextlib.contextmanager
    def if_then(self, cond: Value):
        then_block = self.block("if.then")
        merge = self.block("if.merge")
        self.cond_branch(cond, then_block, merge)
        self.position(then_block)
        yield
        if not self.current.is_terminated:
            self.branch(merge)
        self.position(merge)

    @contextlib.contextmanager
    def if_else(self, cond: Value):
        then_block = self.block("if.then")
        else_block = self.block("if.else")
        merge = self.block("if.merge")
        self.cond_branch(cond, then_block, else_block)
        handle = IfElseHandle(self, cond, then_block, else_block, merge)
        yield handle
        handle.close()

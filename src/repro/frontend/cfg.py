"""Control-flow analyses over the software IR.

Implements the classic toolkit the translator needs: predecessor maps,
reverse post-order, iterative dominators (Cooper-Harvey-Kennedy),
natural-loop detection, and a loop-nesting forest.  Detach edges are
ordinary CFG edges for dominance purposes; loops are detected from
back edges whose header dominates the latch.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..errors import IRError
from .ir import BasicBlock, Branch, CondBranch, Detach, Function, Phi


def predecessors(function: Function) -> Dict[BasicBlock, List[BasicBlock]]:
    preds: Dict[BasicBlock, List[BasicBlock]] = {
        b: [] for b in function.blocks}
    for block in function.blocks:
        for succ in block.successors():
            preds[succ].append(block)
    return preds


def reverse_post_order(function: Function) -> List[BasicBlock]:
    """Blocks in reverse post-order from the entry (unreachable dropped)."""
    visited: Set[BasicBlock] = set()
    order: List[BasicBlock] = []

    def visit(block: BasicBlock) -> None:
        stack = [(block, iter(block.successors()))]
        visited.add(block)
        while stack:
            node, it = stack[-1]
            advanced = False
            for succ in it:
                if succ not in visited:
                    visited.add(succ)
                    stack.append((succ, iter(succ.successors())))
                    advanced = True
                    break
            if not advanced:
                order.append(node)
                stack.pop()

    visit(function.entry)
    order.reverse()
    return order


def dominators(function: Function) -> Dict[BasicBlock, BasicBlock]:
    """Immediate-dominator map (entry maps to itself)."""
    rpo = reverse_post_order(function)
    index = {b: i for i, b in enumerate(rpo)}
    preds = predecessors(function)
    entry = function.entry
    idom: Dict[BasicBlock, Optional[BasicBlock]] = {b: None for b in rpo}
    idom[entry] = entry

    def intersect(a: BasicBlock, b: BasicBlock) -> BasicBlock:
        while a is not b:
            while index[a] > index[b]:
                a = idom[a]  # type: ignore[assignment]
            while index[b] > index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for block in rpo:
            if block is entry:
                continue
            candidates = [p for p in preds[block]
                          if p in index and idom[p] is not None]
            if not candidates:
                continue
            new_idom = candidates[0]
            for p in candidates[1:]:
                new_idom = intersect(new_idom, p)
            if idom[block] is not new_idom:
                idom[block] = new_idom
                changed = True
    return {b: d for b, d in idom.items() if d is not None}


def dominates(idom: Dict[BasicBlock, BasicBlock],
              a: BasicBlock, b: BasicBlock) -> bool:
    """Does ``a`` dominate ``b`` under immediate-dominator map ``idom``?"""
    runner = b
    while True:
        if runner is a:
            return True
        parent = idom.get(runner)
        if parent is None or parent is runner:
            return runner is a
        runner = parent


class Loop:
    """A natural loop: header + body blocks (+ nested loops)."""

    def __init__(self, header: BasicBlock, latches: List[BasicBlock]):
        self.header = header
        self.latches = list(latches)
        self.blocks: Set[BasicBlock] = {header}
        self.parent: Optional["Loop"] = None
        self.children: List["Loop"] = []

    @property
    def depth(self) -> int:
        d, cur = 1, self.parent
        while cur is not None:
            d += 1
            cur = cur.parent
        return d

    def contains(self, block: BasicBlock) -> bool:
        return block in self.blocks

    def exit_blocks(self) -> List[BasicBlock]:
        exits: List[BasicBlock] = []
        for block in self.blocks:
            for succ in block.successors():
                if succ not in self.blocks and succ not in exits:
                    exits.append(succ)
        return exits

    def __repr__(self) -> str:
        return (f"Loop(header={self.header.name}, "
                f"blocks={sorted(b.name for b in self.blocks)})")


def find_loops(function: Function) -> List[Loop]:
    """All natural loops, outermost first, with nesting links set."""
    idom = dominators(function)
    preds = predecessors(function)
    reachable = set(reverse_post_order(function))

    header_latches: Dict[BasicBlock, List[BasicBlock]] = {}
    for block in reachable:
        for succ in block.successors():
            if succ in reachable and dominates(idom, succ, block):
                header_latches.setdefault(succ, []).append(block)

    loops: List[Loop] = []
    for header, latches in header_latches.items():
        loop = Loop(header, latches)
        work = [latch for latch in latches if latch is not header]
        while work:
            block = work.pop()
            if block in loop.blocks:
                continue
            loop.blocks.add(block)
            work.extend(p for p in preds[block] if p in reachable)
        loops.append(loop)

    # Build the nesting forest: a loop's parent is the smallest loop
    # strictly containing its header and all of its blocks.
    loops.sort(key=lambda l: len(l.blocks))
    for i, inner in enumerate(loops):
        for outer in loops[i + 1:]:
            if inner.header in outer.blocks and inner is not outer:
                inner.parent = outer
                outer.children.append(inner)
                break
    loops.sort(key=lambda l: -len(l.blocks))
    return loops


def top_level_loops(loops: List[Loop]) -> List[Loop]:
    return [l for l in loops if l.parent is None]


class InductionInfo:
    """A recognized counted loop: ``for (v = start; v < bound; v += step)``."""

    def __init__(self, phi: Phi, start, step, bound, update,
                 cond, exit_block: BasicBlock, body_entry: BasicBlock):
        self.phi = phi
        self.start = start
        self.step = step
        self.bound = bound
        self.update = update
        self.cond = cond
        self.exit_block = exit_block
        self.body_entry = body_entry

    def __repr__(self) -> str:
        return (f"InductionInfo({self.phi.name}: start={self.start.short()} "
                f"step={self.step.short()} bound={self.bound.short()})")


def recognize_induction(loop: Loop) -> Optional[InductionInfo]:
    """Match the canonical counted-loop shape emitted by the builder.

    Header: ``v = phi [pre: start] [latch: update]``, ``c = lt v, bound``,
    ``condbr c, body, exit`` where ``update = add v, step`` with the
    bound and step loop-invariant.  Returns ``None`` when the loop is
    not in this shape (it is then treated as a general loop).
    """
    header = loop.header
    term = header.terminator
    if not isinstance(term, CondBranch):
        return None
    then_b, else_b = term.then_block, term.else_block
    if then_b in loop.blocks and else_b not in loop.blocks:
        body_entry, exit_block = then_b, else_b
    elif else_b in loop.blocks and then_b not in loop.blocks:
        body_entry, exit_block = else_b, then_b
    else:
        return None
    cond = term.cond
    from .ir import Instruction  # local import to avoid cycle noise
    if not (isinstance(cond, Instruction) and cond.opcode == "lt"):
        return None
    for phi in header.phis:
        if cond.operands[0] is not phi:
            continue
        bound = cond.operands[1]
        if _defined_in_loop(bound, loop):
            continue
        start = update = None
        for block, value in phi.incomings:
            if block in loop.blocks:
                update = value
            else:
                start = value
        if start is None or update is None:
            continue
        if not (isinstance(update, Instruction) and update.opcode == "add"):
            continue
        if update.operands[0] is phi:
            step = update.operands[1]
        elif update.operands[1] is phi:
            step = update.operands[0]
        else:
            continue
        if _defined_in_loop(step, loop):
            continue
        return InductionInfo(phi, start, step, bound, update, cond,
                             exit_block, body_entry)
    return None


def _defined_in_loop(value, loop: Loop) -> bool:
    from .ir import Instruction
    return (isinstance(value, Instruction) and value.block is not None
            and value.block in loop.blocks)


def loop_of_block(loops: List[Loop],
                  block: BasicBlock) -> Optional[Loop]:
    """Innermost loop containing ``block`` (None if not in a loop)."""
    best: Optional[Loop] = None
    for loop in loops:
        if block in loop.blocks:
            if best is None or len(loop.blocks) < len(best.blocks):
                best = loop
    return best


def has_irreducible_edges(function: Function) -> bool:
    """Detect retreating edges whose target does not dominate the source."""
    idom = dominators(function)
    rpo = reverse_post_order(function)
    pos = {b: i for i, b in enumerate(rpo)}
    for block in rpo:
        for succ in block.successors():
            if succ in pos and pos[succ] <= pos[block]:
                if not dominates(idom, succ, block):
                    return True
    return False


def check_reducible(function: Function) -> None:
    if has_irreducible_edges(function):
        raise IRError(f"@{function.name}: irreducible control flow")

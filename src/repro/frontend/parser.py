"""Recursive-descent parser for MiniC.

Grammar sketch (see tests/frontend/test_parser.py for examples)::

    program      := (array_decl | func_decl)*
    array_decl   := "array" IDENT ":" type "[" INT "]" ";"
    func_decl    := "func" IDENT "(" params? ")" ("->" type)? block
    block        := "{" stmt* "}"
    stmt         := var_decl | assign | if | for | parallel_for | while
                  | spawn | sync | return | expr ";"
    for          := ("for"|"parallel_for") "(" IDENT "=" expr ";"
                     expr ";" IDENT "=" expr ")" block
    expr         := precedence-climbing over || && | ^ & ==/!= relational
                     <</>> +- */% with unary -/!/~ and postfix call/index

Types are written ``i32, i64, f32, i1, tensor<RxCxELEM>``; casts look
like calls: ``f32(x)``, ``i32(y)``.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import ParseError
from ..types import Type, parse_type
from . import ast
from .lexer import Token, tokenize

TYPE_NAMES = {"i1", "i8", "i16", "i32", "i64", "u32", "f32", "f64",
              "bool", "int", "float", "void", "tensor"}

# Binary operator precedence (higher binds tighter).
PRECEDENCE = {
    "||": 1, "&&": 2,
    "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


class Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing ------------------------------------------------
    @property
    def tok(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        t = self.tok
        self.pos += 1
        return t

    def check(self, text: str) -> bool:
        return self.tok.text == text and self.tok.kind in ("punct", "kw")

    def accept(self, text: str) -> bool:
        if self.check(text):
            self.advance()
            return True
        return False

    def expect(self, text: str) -> Token:
        if not self.check(text):
            raise ParseError(f"expected {text!r}, found {self.tok.text!r}",
                             self.tok.line, self.tok.column)
        return self.advance()

    def expect_ident(self) -> Token:
        if self.tok.kind != "ident":
            raise ParseError(f"expected identifier, found {self.tok.text!r}",
                             self.tok.line, self.tok.column)
        return self.advance()

    # -- types -----------------------------------------------------------
    def parse_type(self) -> Type:
        t = self.tok
        if t.kind != "ident" or t.text not in TYPE_NAMES:
            raise ParseError(f"expected type, found {t.text!r}",
                             t.line, t.column)
        self.advance()
        if t.text == "tensor":
            # ``tensor<2x2xf32>`` lexes as '<', '2', 'x2xf32', '>' (the
            # lexer greedily merges alphanumerics), so reassemble the
            # raw text between the angle brackets.
            self.expect("<")
            parts = []
            while not self.check(">"):
                tok = self.advance()
                if tok.kind == "eof":
                    raise ParseError("unterminated tensor type",
                                     t.line, t.column)
                parts.append(tok.text)
            self.expect(">")
            return parse_type(f"tensor<{''.join(parts)}>")
        return parse_type(t.text)

    # -- top level ---------------------------------------------------------
    def parse_program(self) -> ast.Program:
        program = ast.Program(line=1)
        while self.tok.kind != "eof":
            if self.check("array"):
                program.arrays.append(self.parse_array_decl())
            elif self.check("func"):
                program.functions.append(self.parse_func_decl())
            else:
                raise ParseError(
                    f"expected 'array' or 'func', found {self.tok.text!r}",
                    self.tok.line, self.tok.column)
        return program

    def parse_array_decl(self) -> ast.ArrayDecl:
        line = self.tok.line
        self.expect("array")
        name = self.expect_ident().text
        self.expect(":")
        elem = self.parse_type()
        self.expect("[")
        size_tok = self.advance()
        if size_tok.kind != "int":
            raise ParseError("array size must be an integer literal",
                             size_tok.line, size_tok.column)
        self.expect("]")
        self.expect(";")
        return ast.ArrayDecl(line=line, name=name, elem=elem,
                             size=int(size_tok.text))

    def parse_func_decl(self) -> ast.FuncDecl:
        line = self.tok.line
        self.expect("func")
        name = self.expect_ident().text
        self.expect("(")
        params: List[ast.Param] = []
        while not self.check(")"):
            if params:
                self.expect(",")
            pname = self.expect_ident().text
            self.expect(":")
            ptype = self.parse_type()
            params.append(ast.Param(name=pname, type=ptype))
        self.expect(")")
        return_type: Optional[Type] = None
        if self.accept("->"):
            return_type = self.parse_type()
        body = self.parse_block()
        return ast.FuncDecl(line=line, name=name, params=params,
                            return_type=return_type, body=body)

    # -- statements ----------------------------------------------------------
    def parse_block(self) -> ast.Block:
        line = self.tok.line
        self.expect("{")
        statements: List[ast.Stmt] = []
        while not self.check("}"):
            statements.append(self.parse_stmt())
        self.expect("}")
        return ast.Block(line=line, statements=statements)

    def parse_stmt(self) -> ast.Stmt:
        t = self.tok
        if self.check("var"):
            return self.parse_var_decl()
        if self.check("if"):
            return self.parse_if()
        if self.check("for") or self.check("parallel_for"):
            return self.parse_for()
        if self.check("while"):
            return self.parse_while()
        if self.check("spawn"):
            return self.parse_spawn()
        if self.check("sync"):
            self.advance()
            self.expect(";")
            return ast.SyncStmt(line=t.line)
        if self.check("return"):
            self.advance()
            value = None if self.check(";") else self.parse_expr()
            self.expect(";")
            return ast.ReturnStmt(line=t.line, value=value)
        # assignment or expression statement
        expr = self.parse_expr()
        if self.accept("="):
            if not isinstance(expr, (ast.Name, ast.Index)):
                raise ParseError("invalid assignment target",
                                 t.line, t.column)
            value = self.parse_expr()
            self.expect(";")
            return ast.Assign(line=t.line, target=expr, value=value)
        self.expect(";")
        return ast.ExprStmt(line=t.line, expr=expr)

    def parse_var_decl(self) -> ast.VarDecl:
        line = self.tok.line
        self.expect("var")
        name = self.expect_ident().text
        declared_type: Optional[Type] = None
        if self.accept(":"):
            declared_type = self.parse_type()
        self.expect("=")
        init = self.parse_expr()
        self.expect(";")
        return ast.VarDecl(line=line, name=name,
                           declared_type=declared_type, init=init)

    def parse_if(self) -> ast.If:
        line = self.tok.line
        self.expect("if")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        then_block = self.parse_block()
        else_block: Optional[ast.Block] = None
        if self.accept("else"):
            if self.check("if"):
                nested = self.parse_if()
                else_block = ast.Block(line=nested.line, statements=[nested])
            else:
                else_block = self.parse_block()
        return ast.If(line=line, cond=cond, then_block=then_block,
                      else_block=else_block)

    def parse_for(self) -> ast.For:
        line = self.tok.line
        parallel = self.tok.text == "parallel_for"
        self.advance()
        self.expect("(")
        var = self.expect_ident().text
        self.expect("=")
        init = self.parse_expr()
        self.expect(";")
        cond = self.parse_expr()
        self.expect(";")
        upd_name = self.expect_ident().text
        if upd_name != var:
            raise ParseError(
                f"for-loop update must assign {var!r}, not {upd_name!r}",
                self.tok.line, self.tok.column)
        if self.accept("+="):
            step = self.parse_expr()
            update = ast.BinOp(line=line, op="+",
                               left=ast.Name(line=line, ident=var),
                               right=step)
        else:
            self.expect("=")
            update = self.parse_expr()
        self.expect(")")
        body = self.parse_block()
        return ast.For(line=line, var=var, init=init, cond=cond,
                       update=update, body=body, parallel=parallel)

    def parse_while(self) -> ast.While:
        line = self.tok.line
        self.expect("while")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        body = self.parse_block()
        return ast.While(line=line, cond=cond, body=body)

    def parse_spawn(self) -> ast.SpawnStmt:
        line = self.tok.line
        self.expect("spawn")
        expr = self.parse_expr()
        if not isinstance(expr, ast.CallExpr):
            raise ParseError("spawn requires a function call", line, 0)
        self.expect(";")
        return ast.SpawnStmt(line=line, call=expr)

    # -- expressions -----------------------------------------------------------
    def parse_expr(self, min_prec: int = 1) -> ast.Expr:
        left = self.parse_unary()
        while True:
            op = self.tok.text
            if self.tok.kind != "punct" or op not in PRECEDENCE \
                    or PRECEDENCE[op] < min_prec:
                return left
            line = self.tok.line
            self.advance()
            right = self.parse_expr(PRECEDENCE[op] + 1)
            left = ast.BinOp(line=line, op=op, left=left, right=right)

    def parse_unary(self) -> ast.Expr:
        t = self.tok
        if t.kind == "punct" and t.text in {"-", "!", "~"}:
            self.advance()
            operand = self.parse_unary()
            if t.text == "-" and isinstance(operand, ast.IntLit):
                return ast.IntLit(line=t.line, value=-operand.value)
            if t.text == "-" and isinstance(operand, ast.FloatLit):
                return ast.FloatLit(line=t.line, value=-operand.value)
            return ast.UnOp(line=t.line, op=t.text, operand=operand)
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        t = self.tok
        if t.kind == "int":
            self.advance()
            return ast.IntLit(line=t.line, value=int(t.text))
        if t.kind == "float":
            self.advance()
            return ast.FloatLit(line=t.line, value=float(t.text))
        if t.kind == "punct" and t.text == "(":
            self.advance()
            expr = self.parse_expr()
            self.expect(")")
            return expr
        if t.kind == "ident":
            name = self.advance().text
            if self.check("(") and name in TYPE_NAMES:
                self.advance()
                operand = self.parse_expr()
                self.expect(")")
                return ast.CastExpr(line=t.line, target=parse_type(name),
                                    operand=operand)
            if self.accept("("):
                args: List[ast.Expr] = []
                while not self.check(")"):
                    if args:
                        self.expect(",")
                    args.append(self.parse_expr())
                self.expect(")")
                return ast.CallExpr(line=t.line, func=name, args=args)
            if self.accept("["):
                index = self.parse_expr()
                self.expect("]")
                return ast.Index(line=t.line, base=name, index=index)
            return ast.Name(line=t.line, ident=name)
        raise ParseError(f"unexpected token {t.text!r} in expression",
                         t.line, t.column)


def parse_program(source: str) -> ast.Program:
    """Parse MiniC source text into an AST."""
    return Parser(tokenize(source)).parse_program()

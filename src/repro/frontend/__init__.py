"""Software front-end: MiniC language, LLVM-like IR, CFG analyses,
reference interpreter, and translation into uIR (paper Algorithm 1)."""

from .ir import (  # noqa: F401
    Argument,
    BasicBlock,
    Constant,
    Function,
    GlobalArray,
    Instruction,
    Module,
    Value,
)
from .builder import IRBuilder  # noqa: F401
from .parser import parse_program  # noqa: F401
from .lower import lower_program  # noqa: F401
from .interp import Interpreter, Memory  # noqa: F401
from .translate import translate_module  # noqa: F401


def compile_minic(source: str, filename: str = ""):
    """Parse MiniC source and lower it to a software-IR module.

    ``filename`` seeds source provenance (``file:line`` labels in
    stall reports); defaults to the module name when omitted.
    """
    return lower_program(parse_program(source), source_file=filename)

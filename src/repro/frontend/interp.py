"""Reference interpreter for the software IR.

This is the golden functional model: workloads run here to produce
expected memory images, and every uIR simulation is checked against it
(the paper's central claim is that microarchitecture transformations
never change behavior).  It also records dynamic execution counts that
the HLS and ARM baseline cycle models consume.

Parallel constructs execute with serial semantics (Cilk's serial
elision): ``detach`` runs the detached region inline, ``spawn`` calls
run synchronously, and ``sync`` is a no-op.  This is deterministic and
functionally equivalent to any legal parallel schedule for the
race-free programs we model.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import InterpreterError
from ..types import BoolType, FloatType, IntType, PointerType, TensorType
from .ir import (
    Argument,
    BasicBlock,
    Branch,
    Call,
    CondBranch,
    Constant,
    Detach,
    Function,
    GlobalArray,
    Instruction,
    Module,
    Phi,
    Reattach,
    Return,
    Sync,
    Value,
)

MAX_STEPS = 50_000_000


class Memory:
    """Flat word-addressable memory with globals laid out at the base."""

    def __init__(self, module: Module, heap_words: int = 0):
        self.module = module
        self.base: Dict[str, int] = {}
        addr = 0
        for name, glob in module.globals.items():
            self.base[name] = addr
            addr += glob.size_words
        self.words: List[float] = [0] * (addr + heap_words)

    # -- raw access -----------------------------------------------------
    def read(self, addr: int):
        self._check(addr)
        return self.words[addr]

    def write(self, addr: int, value) -> None:
        self._check(addr)
        self.words[addr] = value

    def _check(self, addr: int) -> None:
        if not 0 <= addr < len(self.words):
            raise InterpreterError(
                f"memory access out of range: {addr} "
                f"(size {len(self.words)})")

    # -- array-level helpers ---------------------------------------------
    def set_array(self, name: str, values: Sequence) -> None:
        """Initialize global ``name``; tensor arrays take tuples."""
        glob = self.module.globals[name]
        base = self.base[name]
        if isinstance(glob.elem, TensorType):
            n = glob.elem.elements
            for i, tile in enumerate(values):
                if len(tile) != n:
                    raise InterpreterError(
                        f"tensor element {i} of @{name} has {len(tile)} "
                        f"values, expected {n}")
                for j, v in enumerate(tile):
                    self.write(base + i * n + j, v)
        else:
            for i, v in enumerate(values):
                self.write(base + i, v)

    def get_array(self, name: str) -> List:
        glob = self.module.globals[name]
        base = self.base[name]
        if isinstance(glob.elem, TensorType):
            n = glob.elem.elements
            return [tuple(self.words[base + i * n: base + (i + 1) * n])
                    for i in range(glob.size)]
        return list(self.words[base: base + glob.size])

    def snapshot(self) -> List[float]:
        return list(self.words)


class ExecStats:
    """Dynamic statistics collected during interpretation."""

    def __init__(self):
        self.instr_count = 0
        self.opcode_counts: Counter = Counter()
        self.block_counts: Counter = Counter()
        self.memory_accesses = 0
        self.spawned_tasks = 0
        self.call_counts: Counter = Counter()

    def __repr__(self) -> str:
        return (f"ExecStats(instrs={self.instr_count}, "
                f"mem={self.memory_accesses}, "
                f"spawns={self.spawned_tasks})")


class Interpreter:
    """Executes a module's ``main`` against a :class:`Memory`."""

    def __init__(self, module: Module, memory: Optional[Memory] = None,
                 block_hook=None):
        self.module = module
        self.memory = memory or Memory(module)
        self.stats = ExecStats()
        self.block_hook = block_hook
        self._steps = 0

    # ------------------------------------------------------------------
    def run(self, *args):
        """Run ``main(*args)``; returns its return value (or None)."""
        return self.run_function(self.module.main, list(args))

    def run_function(self, function: Function, args: Sequence):
        if len(args) != len(function.args):
            raise InterpreterError(
                f"@{function.name} expects {len(function.args)} args, "
                f"got {len(args)}")
        frame: Dict[Value, object] = dict(zip(function.args, args))
        return self._exec_region(function.entry, frame, stop_block=None)

    # ------------------------------------------------------------------
    def _exec_region(self, block: BasicBlock, frame: Dict[Value, object],
                     stop_block: Optional[BasicBlock]):
        """Execute from ``block`` until ``ret`` or a reattach-to-stop."""
        prev: Optional[BasicBlock] = None
        while True:
            if block is stop_block:
                return None
            self.stats.block_counts[
                f"{block.function.name}:{block.name}"] += 1
            if self.block_hook is not None:
                self.block_hook(block)
            self._run_phis(block, prev, frame)
            for instr in block.instructions:
                if isinstance(instr, Phi):
                    continue
                self._bump()
                if isinstance(instr, Return):
                    return (self._value(instr.value, frame)
                            if instr.value is not None else None)
                if isinstance(instr, Branch):
                    prev, block = block, instr.target
                    break
                if isinstance(instr, CondBranch):
                    cond = self._value(instr.cond, frame)
                    prev = block
                    block = instr.then_block if cond else instr.else_block
                    break
                if isinstance(instr, Detach):
                    # Serial elision: run the detached region inline.
                    self.stats.spawned_tasks += 1
                    self._exec_region(instr.body, frame,
                                      stop_block=instr.cont)
                    prev, block = block, instr.cont
                    break
                if isinstance(instr, Reattach):
                    if stop_block is not None and \
                            instr.cont is not stop_block:
                        raise InterpreterError(
                            "reattach to unexpected continuation")
                    return None
                if isinstance(instr, Sync):
                    continue
                self._exec_instr(instr, frame)
            else:
                raise InterpreterError(
                    f"block {block.name} fell through without terminator")

    def _run_phis(self, block: BasicBlock, prev: Optional[BasicBlock],
                  frame: Dict[Value, object]) -> None:
        phis = block.phis
        if not phis:
            return
        if prev is None:
            raise InterpreterError(
                f"entered block {block.name} with phis without predecessor")
        values = [self._value(phi.incoming_for(prev), frame) for phi in phis]
        for phi, v in zip(phis, values):
            frame[phi] = v
            self._bump()

    # ------------------------------------------------------------------
    def _value(self, v: Value, frame: Dict[Value, object]):
        if isinstance(v, Constant):
            return v.value
        if isinstance(v, GlobalArray):
            return self.memory.base[v.name]
        if v in frame:
            return frame[v]
        raise InterpreterError(f"use of undefined value {v.short()}")

    def _bump(self) -> None:
        self._steps += 1
        self.stats.instr_count += 1
        if self._steps > MAX_STEPS:
            raise InterpreterError("interpreter step limit exceeded")

    # ------------------------------------------------------------------
    def _exec_instr(self, instr: Instruction,
                    frame: Dict[Value, object]) -> None:
        op = instr.opcode
        self.stats.opcode_counts[op] += 1
        if isinstance(instr, Call):
            self.stats.call_counts[instr.callee.name] += 1
            args = [self._value(a, frame) for a in instr.operands]
            result = self.run_function(instr.callee, args)
            if instr.type.bits or result is not None:
                frame[instr] = result
            return
        vals = [self._value(o, frame) for o in instr.operands]
        if op in {"load", "tload", "store", "tstore"}:
            self._exec_memory(instr, vals, frame)
            return
        frame[instr] = self._eval_compute(instr, vals)

    def _exec_memory(self, instr: Instruction, vals,
                     frame: Dict[Value, object]) -> None:
        self.stats.memory_accesses += 1
        op = instr.opcode
        if op == "load":
            frame[instr] = self.memory.read(vals[0])
        elif op == "store":
            self.memory.write(vals[1], vals[0])
        elif op == "tload":
            t = instr.type
            assert isinstance(t, TensorType)
            base = vals[0]
            frame[instr] = tuple(
                self.memory.read(base + i) for i in range(t.elements))
        elif op == "tstore":
            tile, base = vals
            for i, v in enumerate(tile):
                self.memory.write(base + i, v)

    # ------------------------------------------------------------------
    def _eval_compute(self, instr: Instruction, vals):
        op = instr.opcode
        t = instr.type
        if op == "gep":
            ptr_t = instr.operands[0].type
            assert isinstance(ptr_t, PointerType)
            return vals[0] + int(vals[1]) * ptr_t.pointee.words
        if op in {"add", "sub", "mul", "div", "rem", "and", "or", "xor",
                  "shl", "lshr", "ashr"}:
            return self._int_binop(op, vals[0], vals[1], t)
        if op in {"fadd", "fsub", "fmul", "fdiv"}:
            a, b = float(vals[0]), float(vals[1])
            if op == "fadd":
                return a + b
            if op == "fsub":
                return a - b
            if op == "fmul":
                return a * b
            if b == 0.0:
                raise InterpreterError("float division by zero")
            return a / b
        if op in {"eq", "ne", "lt", "le", "gt", "ge"}:
            a, b = vals
            return {"eq": a == b, "ne": a != b, "lt": a < b,
                    "le": a <= b, "gt": a > b, "ge": a >= b}[op]
        if op == "select":
            return vals[1] if vals[0] else vals[2]
        if op == "neg":
            return self._wrap(-vals[0], t)
        if op == "fneg":
            return -float(vals[0])
        if op == "not":
            return self._wrap(~int(vals[0]), t)
        if op == "abs":
            return abs(vals[0])
        if op == "exp":
            return math.exp(float(vals[0]))
        if op == "sqrt":
            return math.sqrt(float(vals[0]))
        if op == "itof":
            return float(vals[0])
        if op == "ftoi":
            return int(vals[0])
        if op in {"tmul", "tadd", "tsub"}:
            return self._tensor_binop(op, vals[0], vals[1], t)
        if op == "trelu":
            return tuple(v if v > 0 else 0.0 for v in vals[0])
        raise InterpreterError(f"unsupported opcode {op}")

    @staticmethod
    def _wrap(value: int, t) -> int:
        if isinstance(t, IntType):
            return t.wrap(int(value))
        if isinstance(t, BoolType):
            return int(value) & 1
        return int(value)

    def _int_binop(self, op: str, a, b, t):
        a, b = int(a), int(b)
        if op == "add":
            r = a + b
        elif op == "sub":
            r = a - b
        elif op == "mul":
            r = a * b
        elif op == "div":
            if b == 0:
                raise InterpreterError("integer division by zero")
            r = int(a / b) if (a < 0) != (b < 0) and a % b else a // b
        elif op == "rem":
            if b == 0:
                raise InterpreterError("integer remainder by zero")
            r = a - (int(a / b) if (a < 0) != (b < 0) and a % b
                     else a // b) * b
        elif op == "and":
            r = a & b
        elif op == "or":
            r = a | b
        elif op == "xor":
            r = a ^ b
        elif op == "shl":
            r = a << (b & 31)
        elif op == "lshr":
            width = t.bits if t.bits else 32
            r = (a & ((1 << width) - 1)) >> (b & 31)
        elif op == "ashr":
            r = a >> (b & 31)
        else:
            raise InterpreterError(f"bad int binop {op}")
        return self._wrap(r, t)

    @staticmethod
    def _tensor_binop(op: str, a: Tuple, b: Tuple, t: TensorType):
        if op == "tadd":
            return tuple(x + y for x, y in zip(a, b))
        if op == "tsub":
            return tuple(x - y for x, y in zip(a, b))
        # tmul: rows x cols matrix product (square tiles).
        n, m = t.rows, t.cols
        out = []
        for i in range(n):
            for j in range(m):
                acc = 0.0
                for k in range(m):
                    acc += a[i * m + k] * b[k * m + j]
                out.append(acc)
        return tuple(out)


def run_module(module: Module, memory: Optional[Memory] = None, *args):
    """One-shot helper: interpret ``main(*args)`` and return (ret, interp)."""
    interp = Interpreter(module, memory)
    result = interp.run(*args)
    return result, interp

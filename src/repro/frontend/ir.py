"""LLVM-like software IR.

This is the "compiler IR" layer of the paper's Figure 3: programs
(MiniC text or builder calls) lower into this IR, classic analyses run
on it (CFG, dominators, loops), and :mod:`repro.frontend.translate`
converts it into the structural uIR graph.

The IR is SSA-flavored: every instruction producing a value is itself a
:class:`Value` and operands reference producer objects directly.  Loops
carry their values through :class:`Phi` instructions.  Parallelism uses
the Tapir representation the paper builds on: ``detach`` spawns a block
to run concurrently, ``reattach`` ends the spawned region, and ``sync``
waits for all children spawned by the current frame.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import IRError, TypeMismatchError
from ..types import (
    BOOL,
    VOID,
    BoolType,
    FloatType,
    IntType,
    PointerType,
    TensorType,
    Type,
    common_type,
)

# ---------------------------------------------------------------------------
# Opcode tables
# ---------------------------------------------------------------------------

INT_BINOPS = {"add", "sub", "mul", "div", "rem",
              "and", "or", "xor", "shl", "lshr", "ashr"}
FLOAT_BINOPS = {"fadd", "fsub", "fmul", "fdiv"}
CMP_OPS = {"eq", "ne", "lt", "le", "gt", "ge"}
UNARY_OPS = {"neg", "not", "itof", "ftoi", "exp", "sqrt", "abs", "fneg"}
TENSOR_BINOPS = {"tmul", "tadd", "tsub"}
TENSOR_UNOPS = {"trelu"}
MEMORY_OPS = {"load", "store", "tload", "tstore"}
TERMINATORS = {"br", "condbr", "ret", "detach", "reattach"}
COMPUTE_OPS = (INT_BINOPS | FLOAT_BINOPS | CMP_OPS | UNARY_OPS
               | TENSOR_BINOPS | TENSOR_UNOPS | {"select", "gep"})


# ---------------------------------------------------------------------------
# Values
# ---------------------------------------------------------------------------

class Value:
    """Anything usable as an instruction operand."""

    def __init__(self, type_: Type, name: str = ""):
        self.type = type_
        self.name = name

    def short(self) -> str:
        return f"%{self.name}" if self.name else "%?"


class Constant(Value):
    """An immediate scalar (or tensor literal) value."""

    def __init__(self, value, type_: Type):
        super().__init__(type_, name=str(value))
        self.value = value

    def short(self) -> str:
        return f"{self.value}:{self.type}"

    def __repr__(self) -> str:
        return f"Constant({self.value}, {self.type})"


class Argument(Value):
    """A function parameter."""

    def __init__(self, name: str, type_: Type, index: int):
        super().__init__(type_, name)
        self.index = index

    def __repr__(self) -> str:
        return f"Argument(%{self.name}:{self.type})"


class GlobalArray(Value):
    """A module-level array living in the global address space.

    ``size`` counts *elements* (scalars or whole tensors).  The
    interpreter and simulator assign word-granular base addresses.
    """

    def __init__(self, name: str, elem: Type, size: int):
        super().__init__(PointerType(elem), name)
        self.elem = elem
        self.size = size

    @property
    def size_words(self) -> int:
        return self.size * self.elem.words

    def short(self) -> str:
        return f"@{self.name}"

    def __repr__(self) -> str:
        return f"GlobalArray(@{self.name}: {self.elem}[{self.size}])"


# ---------------------------------------------------------------------------
# Instructions
# ---------------------------------------------------------------------------

class Instruction(Value):
    """A single IR operation inside a basic block."""

    def __init__(self, opcode: str, operands: Sequence[Value],
                 type_: Type = VOID, name: str = ""):
        super().__init__(type_, name)
        self.opcode = opcode
        self.operands: List[Value] = list(operands)
        self.block: Optional["BasicBlock"] = None
        #: MiniC source line that produced this instruction (0 =
        #: synthetic); stamped by IRBuilder from its current line.
        self.line: int = 0

    # --- classification helpers ------------------------------------
    @property
    def is_terminator(self) -> bool:
        return self.opcode in TERMINATORS or self.opcode == "sync"

    @property
    def is_memory(self) -> bool:
        return self.opcode in MEMORY_OPS

    @property
    def is_compute(self) -> bool:
        return self.opcode in COMPUTE_OPS

    @property
    def is_phi(self) -> bool:
        return self.opcode == "phi"

    def __repr__(self) -> str:
        ops = ", ".join(op.short() for op in self.operands)
        if self.type == VOID:
            return f"{self.opcode} {ops}"
        return f"%{self.name} = {self.opcode} {ops} : {self.type}"


class Phi(Instruction):
    """SSA phi: selects a value by predecessor block."""

    def __init__(self, type_: Type, name: str = ""):
        super().__init__("phi", [], type_, name)
        self.incomings: List[Tuple["BasicBlock", Value]] = []

    def add_incoming(self, block: "BasicBlock", value: Value) -> None:
        self.incomings.append((block, value))
        self.operands.append(value)

    def incoming_for(self, block: "BasicBlock") -> Value:
        for b, v in self.incomings:
            if b is block:
                return v
        raise IRError(f"phi {self.name} has no incoming for {block.name}")

    def replace_incoming_block(self, old: "BasicBlock",
                               new: "BasicBlock") -> None:
        self.incomings = [(new if b is old else b, v)
                          for b, v in self.incomings]

    def __repr__(self) -> str:
        inc = ", ".join(f"[{b.name}: {v.short()}]" for b, v in self.incomings)
        return f"%{self.name} = phi {inc} : {self.type}"


class Branch(Instruction):
    def __init__(self, target: "BasicBlock"):
        super().__init__("br", [])
        self.target = target

    def __repr__(self) -> str:
        return f"br {self.target.name}"


class CondBranch(Instruction):
    def __init__(self, cond: Value, then_block: "BasicBlock",
                 else_block: "BasicBlock"):
        super().__init__("condbr", [cond])
        self.then_block = then_block
        self.else_block = else_block

    @property
    def cond(self) -> Value:
        return self.operands[0]

    def __repr__(self) -> str:
        return (f"condbr {self.cond.short()}, "
                f"{self.then_block.name}, {self.else_block.name}")


class Return(Instruction):
    def __init__(self, value: Optional[Value] = None):
        super().__init__("ret", [value] if value is not None else [])

    @property
    def value(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None

    def __repr__(self) -> str:
        return f"ret {self.value.short()}" if self.operands else "ret"


class Call(Instruction):
    """Direct call; ``spawned`` marks a Cilk-style spawn site."""

    def __init__(self, callee: "Function", args: Sequence[Value],
                 name: str = "", spawned: bool = False):
        super().__init__("call", args, callee.return_type, name)
        self.callee = callee
        self.spawned = spawned

    def __repr__(self) -> str:
        kind = "spawn" if self.spawned else "call"
        args = ", ".join(a.short() for a in self.operands)
        lhs = f"%{self.name} = " if self.type != VOID else ""
        return f"{lhs}{kind} @{self.callee.name}({args})"


class Detach(Instruction):
    """Tapir detach: run ``body`` concurrently, continue at ``cont``."""

    def __init__(self, body: "BasicBlock", cont: "BasicBlock"):
        super().__init__("detach", [])
        self.body = body
        self.cont = cont

    def __repr__(self) -> str:
        return f"detach {self.body.name}, {self.cont.name}"


class Reattach(Instruction):
    """Tapir reattach: terminates a detached region."""

    def __init__(self, cont: "BasicBlock"):
        super().__init__("reattach", [])
        self.cont = cont

    def __repr__(self) -> str:
        return f"reattach {self.cont.name}"


class Sync(Instruction):
    """Tapir sync: wait for every task detached by this frame."""

    def __init__(self):
        super().__init__("sync", [])

    @property
    def is_terminator(self) -> bool:  # sync does not end a block
        return False

    def __repr__(self) -> str:
        return "sync"


# ---------------------------------------------------------------------------
# Structure
# ---------------------------------------------------------------------------

class BasicBlock:
    """A straight-line sequence of instructions ending in a terminator."""

    def __init__(self, name: str, function: Optional["Function"] = None):
        self.name = name
        self.function = function
        self.instructions: List[Instruction] = []

    def append(self, instr: Instruction) -> Instruction:
        if self.is_terminated:
            raise IRError(f"block {self.name} already terminated")
        instr.block = self
        self.instructions.append(instr)
        return instr

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    @property
    def phis(self) -> List[Phi]:
        return [i for i in self.instructions if isinstance(i, Phi)]

    def successors(self) -> List["BasicBlock"]:
        term = self.terminator
        if isinstance(term, Branch):
            return [term.target]
        if isinstance(term, CondBranch):
            return [term.then_block, term.else_block]
        if isinstance(term, Detach):
            return [term.body, term.cont]
        if isinstance(term, Reattach):
            return [term.cont]
        return []

    def __repr__(self) -> str:
        return f"BasicBlock({self.name}, {len(self.instructions)} instrs)"

    def dump(self) -> str:
        lines = [f"{self.name}:"]
        lines.extend(f"  {instr!r}" for instr in self.instructions)
        return "\n".join(lines)


class Function:
    """A function: arguments plus an ordered list of basic blocks."""

    def __init__(self, name: str, arg_specs: Sequence[Tuple[str, Type]],
                 return_type: Type = VOID):
        self.name = name
        self.args = [Argument(n, t, i)
                     for i, (n, t) in enumerate(arg_specs)]
        self.return_type = return_type
        self.blocks: List[BasicBlock] = []
        self.module: Optional["Module"] = None

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise IRError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def new_block(self, name: str) -> BasicBlock:
        block = BasicBlock(self._unique_block_name(name), self)
        self.blocks.append(block)
        return block

    def _unique_block_name(self, base: str) -> str:
        names = {b.name for b in self.blocks}
        if base not in names:
            return base
        i = 1
        while f"{base}.{i}" in names:
            i += 1
        return f"{base}.{i}"

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    def __repr__(self) -> str:
        return f"Function(@{self.name}, {len(self.blocks)} blocks)"

    def dump(self) -> str:
        args = ", ".join(f"%{a.name}: {a.type}" for a in self.args)
        header = f"func @{self.name}({args}) -> {self.return_type} {{"
        body = "\n".join(b.dump() for b in self.blocks)
        return f"{header}\n{body}\n}}"


class Module:
    """A whole program: globals + functions; ``main`` is the entry."""

    def __init__(self, name: str = "module"):
        self.name = name
        #: Path of the MiniC source this module was lowered from
        #: ("" for builder-constructed modules); provenance root.
        self.source_file: str = ""
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalArray] = {}

    def add_function(self, function: Function) -> Function:
        if function.name in self.functions:
            raise IRError(f"duplicate function @{function.name}")
        function.module = self
        self.functions[function.name] = function
        return function

    def add_global(self, name: str, elem: Type, size: int) -> GlobalArray:
        if name in self.globals:
            raise IRError(f"duplicate global @{name}")
        glob = GlobalArray(name, elem, size)
        self.globals[name] = glob
        return glob

    @property
    def main(self) -> Function:
        if "main" not in self.functions:
            raise IRError("module has no @main function")
        return self.functions["main"]

    def dump(self) -> str:
        lines = [f"; module {self.name}"]
        for g in self.globals.values():
            lines.append(f"@{g.name}: {g.elem}[{g.size}]")
        lines.extend(f.dump() for f in self.functions.values())
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Result-type computation and verification
# ---------------------------------------------------------------------------

def result_type(opcode: str, operands: Sequence[Value]) -> Type:
    """Infer the result type of ``opcode`` applied to ``operands``."""
    if opcode in INT_BINOPS:
        t = common_type(operands[0].type, operands[1].type)
        if not isinstance(t, (IntType, PointerType)):
            raise TypeMismatchError(f"{opcode} on {t}")
        return t
    if opcode in FLOAT_BINOPS:
        t = common_type(operands[0].type, operands[1].type)
        if not isinstance(t, FloatType):
            raise TypeMismatchError(f"{opcode} on {t}")
        return t
    if opcode in CMP_OPS:
        common_type(operands[0].type, operands[1].type)
        return BOOL
    if opcode == "select":
        return common_type(operands[1].type, operands[2].type)
    if opcode in {"neg", "not", "abs"}:
        return operands[0].type
    if opcode == "fneg":
        return operands[0].type
    if opcode in {"exp", "sqrt"}:
        return operands[0].type
    if opcode == "itof":
        return FloatType(32)
    if opcode == "ftoi":
        return IntType(32)
    if opcode == "gep":
        base_t = operands[0].type
        if not isinstance(base_t, PointerType):
            raise TypeMismatchError(f"gep base must be pointer, got {base_t}")
        return base_t
    if opcode == "load":
        ptr_t = operands[0].type
        if not isinstance(ptr_t, PointerType):
            raise TypeMismatchError(f"load from non-pointer {ptr_t}")
        return ptr_t.pointee
    if opcode == "tload":
        ptr_t = operands[0].type
        if not isinstance(ptr_t, PointerType) or \
                not isinstance(ptr_t.pointee, TensorType):
            raise TypeMismatchError(f"tload needs tensor pointer, {ptr_t}")
        return ptr_t.pointee
    if opcode in {"store", "tstore"}:
        return VOID
    if opcode in TENSOR_BINOPS:
        t = operands[0].type
        if not isinstance(t, TensorType):
            raise TypeMismatchError(f"{opcode} on non-tensor {t}")
        return t
    if opcode in TENSOR_UNOPS:
        return operands[0].type
    raise IRError(f"cannot infer result type for opcode {opcode!r}")


def verify_function(function: Function) -> List[str]:
    """Return a list of structural problems (empty = valid)."""
    problems: List[str] = []
    block_set = set(function.blocks)
    defined: set = set(function.args)
    for g in (function.module.globals.values() if function.module else ()):
        defined.add(g)
    for instr in function.instructions():
        defined.add(instr)
    for block in function.blocks:
        if not block.is_terminated:
            problems.append(f"block {block.name} lacks a terminator")
        for idx, instr in enumerate(block.instructions):
            if instr.is_terminator and idx != len(block.instructions) - 1:
                problems.append(
                    f"terminator mid-block in {block.name}: {instr!r}")
            for op in instr.operands:
                if isinstance(op, (Constant,)):
                    continue
                if op not in defined:
                    problems.append(
                        f"{block.name}: operand {op.short()} of "
                        f"{instr.opcode} is not defined in function")
            if isinstance(instr, Phi):
                for b, _v in instr.incomings:
                    if b not in block_set:
                        problems.append(
                            f"phi {instr.name} references foreign block "
                            f"{b.name}")
        for succ in block.successors():
            if succ not in block_set:
                problems.append(
                    f"{block.name} branches to foreign block {succ.name}")
    return problems


def verify_module(module: Module) -> List[str]:
    problems: List[str] = []
    for function in module.functions.values():
        problems.extend(
            f"@{function.name}: {p}" for p in verify_function(function))
    return problems


def users_of(function: Function) -> Dict[Value, List[Instruction]]:
    """Map each value to the instructions that consume it."""
    uses: Dict[Value, List[Instruction]] = {}
    for instr in function.instructions():
        for op in instr.operands:
            uses.setdefault(op, []).append(instr)
    return uses

"""Lowering from the MiniC AST to software IR with SSA construction.

Mutable local variables become SSA values using the on-the-fly
algorithm of Braun et al. (CC'13): per-block variable maps, incomplete
phis in unsealed blocks (loop headers), and a post-pass that removes
trivial phis.  Parallel loops lower to Tapir detach/reattach regions
and ``spawn`` calls to spawned ``call`` instructions, mirroring how the
paper ingests Cilk through LLVM/Tapir.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..errors import LoweringError
from ..types import (
    BOOL,
    F32,
    I32,
    VOID,
    FloatType,
    IntType,
    PointerType,
    TensorType,
    Type,
)
from . import ast
from .builder import IRBuilder
from .ir import (
    BasicBlock,
    Branch,
    Constant,
    CondBranch,
    Detach,
    Function,
    GlobalArray,
    Instruction,
    Module,
    Phi,
    Reattach,
    Return,
    Sync,
    Value,
)

_BINOP_INT = {"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
              "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "ashr",
              "&&": "and", "||": "or"}
_BINOP_FLOAT = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}
_BINOP_TENSOR = {"+": "tadd", "-": "tsub", "*": "tmul"}
_CMP = {"==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge"}
_BUILTINS = {"exp", "sqrt", "abs", "tmul", "tadd", "trelu"}


class SSABuilder:
    """Braun-style SSA variable numbering over a function under construction."""

    def __init__(self):
        self.defs: Dict[str, Dict[BasicBlock, Value]] = {}
        self.sealed: Set[BasicBlock] = set()
        self.incomplete: Dict[BasicBlock, Dict[str, Phi]] = {}
        self.preds: Dict[BasicBlock, List[BasicBlock]] = {}

    def add_edge(self, src: BasicBlock, dst: BasicBlock) -> None:
        self.preds.setdefault(dst, []).append(src)

    def write(self, var: str, block: BasicBlock, value: Value) -> None:
        self.defs.setdefault(var, {})[block] = value

    def read(self, var: str, block: BasicBlock,
             type_: Type = I32) -> Value:
        block_defs = self.defs.setdefault(var, {})
        if block in block_defs:
            return block_defs[block]
        return self._read_recursive(var, block, type_)

    def _read_recursive(self, var: str, block: BasicBlock,
                        type_: Type) -> Value:
        preds = self.preds.get(block, [])
        if block not in self.sealed:
            phi = Phi(type_, f"{var}.phi")
            self._insert_phi(block, phi)
            self.incomplete.setdefault(block, {})[var] = phi
            value: Value = phi
        elif len(preds) == 1:
            value = self.read(var, preds[0], type_)
        elif not preds:
            raise LoweringError(
                f"variable {var!r} read before assignment")
        else:
            phi = Phi(type_, f"{var}.phi")
            self._insert_phi(block, phi)
            self.write(var, block, phi)
            value = self._add_phi_operands(var, phi, block)
        self.write(var, block, value)
        return value

    @staticmethod
    def _insert_phi(block: BasicBlock, phi: Phi) -> None:
        n_phis = len([i for i in block.instructions if i.is_phi])
        block.instructions.insert(n_phis, phi)
        phi.block = block

    def _add_phi_operands(self, var: str, phi: Phi,
                          block: BasicBlock) -> Value:
        for pred in self.preds.get(block, []):
            value = self.read(var, pred)
            phi.add_incoming(pred, value)
        if phi.incomings:
            phi.type = phi.incomings[0][1].type
        return phi

    def seal(self, block: BasicBlock) -> None:
        for var, phi in self.incomplete.pop(block, {}).items():
            self._add_phi_operands(var, phi, block)
        self.sealed.add(block)


class FunctionLowering:
    """Lowers one MiniC function body."""

    def __init__(self, program_lowering: "ProgramLowering",
                 decl: ast.FuncDecl, function: Function):
        self.pl = program_lowering
        self.decl = decl
        self.function = function
        self.builder = program_lowering.builder
        self.ssa = SSABuilder()
        self.var_types: Dict[str, Type] = {}
        # Stack of variable-name snapshots; non-empty while lowering a
        # detached (parallel_for) body; outer scalars are read-only there.
        self._task_frames: List[Set[str]] = []

    # ------------------------------------------------------------------
    def lower(self) -> None:
        b = self.builder
        b.function = self.function
        entry = self.function.entry
        b.position(entry)
        self.ssa.seal(entry)
        for arg in self.function.args:
            self.ssa.write(arg.name, entry, arg)
            self.var_types[arg.name] = arg.type
        self.lower_block(self.decl.body)
        self._terminate_open_blocks()
        remove_trivial_phis(self.function)

    def _terminate_open_blocks(self) -> None:
        for block in self.function.blocks:
            if block.is_terminated:
                continue
            if self.function.return_type == VOID:
                block.instructions.append(Return())
                block.instructions[-1].block = block
            else:
                zero = Constant(0, self.function.return_type)
                block.instructions.append(Return(zero))
                block.instructions[-1].block = block

    # -- control-flow plumbing -------------------------------------------
    def _branch(self, target: BasicBlock) -> None:
        src = self.builder.current
        self.builder.branch(target)
        self.ssa.add_edge(src, target)

    def _cond_branch(self, cond: Value, then_b: BasicBlock,
                     else_b: BasicBlock) -> None:
        src = self.builder.current
        self.builder.cond_branch(cond, then_b, else_b)
        self.ssa.add_edge(src, then_b)
        self.ssa.add_edge(src, else_b)

    # ------------------------------------------------------------------
    def lower_block(self, block: ast.Block) -> None:
        for stmt in block.statements:
            if self.builder.current.is_terminated:
                # Unreachable code after return; skip it.
                return
            self.lower_stmt(stmt)

    def lower_stmt(self, stmt: ast.Stmt) -> None:
        if getattr(stmt, "line", 0):
            self.builder.line = stmt.line
        if isinstance(stmt, ast.VarDecl):
            self._lower_var_decl(stmt)
        elif isinstance(stmt, ast.Assign):
            self._lower_assign(stmt)
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.SpawnStmt):
            self._lower_spawn(stmt)
        elif isinstance(stmt, ast.SyncStmt):
            self.builder.sync()
        elif isinstance(stmt, ast.ReturnStmt):
            self._lower_return(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self.lower_expr(stmt.expr)
        else:
            raise LoweringError(f"unsupported statement {stmt!r}")

    def _lower_var_decl(self, stmt: ast.VarDecl) -> None:
        value = self.lower_expr(stmt.init)
        if stmt.declared_type is not None:
            value = self._coerce(value, stmt.declared_type, stmt.line)
        self.var_types[stmt.name] = value.type
        self.ssa.write(stmt.name, self.builder.current, value)

    def _lower_assign(self, stmt: ast.Assign) -> None:
        target = stmt.target
        if isinstance(target, ast.Name):
            if target.ident not in self.var_types:
                raise LoweringError(
                    f"line {stmt.line}: assignment to undeclared variable "
                    f"{target.ident!r} (use 'var')")
            if self._task_frames and target.ident in self._task_frames[-1]:
                raise LoweringError(
                    f"line {stmt.line}: parallel_for body may not assign "
                    f"outer scalar {target.ident!r}; use an array")
            value = self.lower_expr(stmt.value)
            value = self._coerce(value, self.var_types[target.ident],
                                 stmt.line)
            self.ssa.write(target.ident, self.builder.current, value)
            return
        if isinstance(target, ast.Index):
            glob = self._resolve_array(target.base, stmt.line)
            idx = self._coerce(self.lower_expr(target.index), I32, stmt.line)
            value = self.lower_expr(stmt.value)
            value = self._coerce(value, glob.elem, stmt.line)
            ptr = self.builder.gep(glob, idx)
            if isinstance(glob.elem, TensorType):
                self.builder.tstore(value, ptr)
            else:
                self.builder.store(value, ptr)
            return
        raise LoweringError(f"line {stmt.line}: bad assignment target")

    def _lower_if(self, stmt: ast.If) -> None:
        b = self.builder
        cond = self._as_bool(self.lower_expr(stmt.cond), stmt.line)
        then_b = b.block("if.then")
        else_b = b.block("if.else") if stmt.else_block else None
        merge = b.block("if.merge")
        self._cond_branch(cond, then_b, else_b or merge)
        self.ssa.seal(then_b)
        b.position(then_b)
        self.lower_block(stmt.then_block)
        if not b.current.is_terminated:
            self._branch(merge)
        if else_b is not None:
            self.ssa.seal(else_b)
            b.position(else_b)
            self.lower_block(stmt.else_block)
            if not b.current.is_terminated:
                self._branch(merge)
        self.ssa.seal(merge)
        b.position(merge)

    def _lower_for(self, stmt: ast.For) -> None:
        if stmt.parallel:
            self._lower_parallel_for(stmt)
        else:
            self._lower_serial_for(stmt)

    def _lower_serial_for(self, stmt: ast.For) -> None:
        b = self.builder
        init = self.lower_expr(stmt.init)
        self.var_types.setdefault(stmt.var, init.type)
        self.ssa.write(stmt.var, b.current, init)
        header = b.block(f"{stmt.var}.header")
        body = b.block(f"{stmt.var}.body")
        exit_b = b.block(f"{stmt.var}.exit")
        self._branch(header)
        b.position(header)
        cond = self._as_bool(self.lower_expr(stmt.cond), stmt.line)
        self._cond_branch(cond, body, exit_b)
        self.ssa.seal(body)
        b.position(body)
        self.lower_block(stmt.body)
        if not b.current.is_terminated:
            update = self.lower_expr(stmt.update)
            update = self._coerce(update, self.var_types[stmt.var],
                                  stmt.line)
            self.ssa.write(stmt.var, b.current, update)
            self._branch(header)
        self.ssa.seal(header)
        self.ssa.seal(exit_b)
        b.position(exit_b)

    def _lower_parallel_for(self, stmt: ast.For) -> None:
        b = self.builder
        init = self.lower_expr(stmt.init)
        self.var_types.setdefault(stmt.var, init.type)
        self.ssa.write(stmt.var, b.current, init)
        header = b.block(f"{stmt.var}.header")
        detach_b = b.block(f"{stmt.var}.detach")
        task_b = b.block(f"{stmt.var}.task")
        latch = b.block(f"{stmt.var}.latch")
        exit_b = b.block(f"{stmt.var}.exit")

        self._branch(header)
        b.position(header)
        cond = self._as_bool(self.lower_expr(stmt.cond), stmt.line)
        self._cond_branch(cond, detach_b, exit_b)

        self.ssa.seal(detach_b)
        b.position(detach_b)
        src = b.current
        b._append(Detach(task_b, latch))
        self.ssa.add_edge(src, task_b)
        self.ssa.add_edge(src, latch)

        self.ssa.seal(task_b)
        b.position(task_b)
        self._task_frames.append(set(self.var_types))
        self.lower_block(stmt.body)
        self._task_frames.pop()
        if not b.current.is_terminated:
            b._append(Reattach(latch))

        self.ssa.seal(latch)
        b.position(latch)
        update = self.lower_expr(stmt.update)
        update = self._coerce(update, self.var_types[stmt.var], stmt.line)
        self.ssa.write(stmt.var, b.current, update)
        self._branch(header)
        self.ssa.seal(header)
        self.ssa.seal(exit_b)
        b.position(exit_b)
        b.sync()

    def _lower_while(self, stmt: ast.While) -> None:
        b = self.builder
        header = b.block("while.header")
        body = b.block("while.body")
        exit_b = b.block("while.exit")
        self._branch(header)
        b.position(header)
        cond = self._as_bool(self.lower_expr(stmt.cond), stmt.line)
        self._cond_branch(cond, body, exit_b)
        self.ssa.seal(body)
        b.position(body)
        self.lower_block(stmt.body)
        if not b.current.is_terminated:
            self._branch(header)
        self.ssa.seal(header)
        self.ssa.seal(exit_b)
        b.position(exit_b)

    def _lower_spawn(self, stmt: ast.SpawnStmt) -> None:
        call = stmt.call
        callee = self.pl.functions.get(call.func)
        if callee is None:
            raise LoweringError(
                f"line {stmt.line}: spawn of unknown function {call.func!r}")
        args = self._lower_call_args(callee, call, stmt.line)
        self.builder.call(callee, args, spawned=True)

    def _lower_return(self, stmt: ast.ReturnStmt) -> None:
        if stmt.value is None:
            self.builder.ret()
            return
        value = self.lower_expr(stmt.value)
        value = self._coerce(value, self.function.return_type, stmt.line)
        self.builder.ret(value)

    # -- expressions -------------------------------------------------------
    def lower_expr(self, expr: ast.Expr) -> Value:
        b = self.builder
        if getattr(expr, "line", 0):
            b.line = expr.line
        if isinstance(expr, ast.IntLit):
            return b.const(expr.value, I32)
        if isinstance(expr, ast.FloatLit):
            return b.const(expr.value, F32)
        if isinstance(expr, ast.Name):
            if expr.ident in self.var_types:
                return self.ssa.read(expr.ident, b.current,
                                     self.var_types[expr.ident])
            if expr.ident in self.pl.module.globals:
                return self.pl.module.globals[expr.ident]
            raise LoweringError(
                f"line {expr.line}: unknown name {expr.ident!r}")
        if isinstance(expr, ast.Index):
            glob = self._resolve_array(expr.base, expr.line)
            idx = self._coerce(self.lower_expr(expr.index), I32, expr.line)
            ptr = b.gep(glob, idx)
            if isinstance(glob.elem, TensorType):
                return b.tload(ptr)
            return b.load(ptr)
        if isinstance(expr, ast.BinOp):
            return self._lower_binop(expr)
        if isinstance(expr, ast.UnOp):
            return self._lower_unop(expr)
        if isinstance(expr, ast.CastExpr):
            return self._lower_cast(expr)
        if isinstance(expr, ast.CallExpr):
            return self._lower_call(expr)
        raise LoweringError(f"unsupported expression {expr!r}")

    def _lower_binop(self, expr: ast.BinOp) -> Value:
        b = self.builder
        left = self.lower_expr(expr.left)
        right = self.lower_expr(expr.right)
        left, right = self._unify(left, right, expr.line)
        t = left.type
        if expr.op in _CMP:
            return b.cmp(_CMP[expr.op], left, right)
        if isinstance(t, TensorType):
            opcode = _BINOP_TENSOR.get(expr.op)
            if opcode is None:
                raise LoweringError(
                    f"line {expr.line}: operator {expr.op!r} on tensors")
            return b.emit(opcode, [left, right])
        if isinstance(t, FloatType):
            opcode = _BINOP_FLOAT.get(expr.op)
            if opcode is None:
                raise LoweringError(
                    f"line {expr.line}: operator {expr.op!r} on floats")
            return b.emit(opcode, [left, right])
        opcode = _BINOP_INT.get(expr.op)
        if opcode is None:
            raise LoweringError(
                f"line {expr.line}: unknown operator {expr.op!r}")
        return b.emit(opcode, [left, right])

    def _lower_unop(self, expr: ast.UnOp) -> Value:
        b = self.builder
        operand = self.lower_expr(expr.operand)
        if expr.op == "-":
            if isinstance(operand.type, FloatType):
                return b.emit("fneg", [operand])
            return b.emit("neg", [operand])
        if expr.op == "!":
            return b.cmp("eq", operand, b.const(0, operand.type))
        if expr.op == "~":
            return b.emit("not", [operand])
        raise LoweringError(f"line {expr.line}: bad unary op {expr.op!r}")

    def _lower_cast(self, expr: ast.CastExpr) -> Value:
        value = self.lower_expr(expr.operand)
        return self._coerce(value, expr.target, expr.line, explicit=True)

    def _lower_call(self, expr: ast.CallExpr) -> Value:
        b = self.builder
        if expr.func in _BUILTINS:
            args = [self.lower_expr(a) for a in expr.args]
            if expr.func in {"exp", "sqrt"}:
                args = [self._coerce(args[0], F32, expr.line)]
            return b.emit(expr.func, args)
        callee = self.pl.functions.get(expr.func)
        if callee is None:
            raise LoweringError(
                f"line {expr.line}: unknown function {expr.func!r}")
        args = self._lower_call_args(callee, expr, expr.line)
        return b.call(callee, args)

    def _lower_call_args(self, callee: Function, call: ast.CallExpr,
                         line: int) -> List[Value]:
        if len(call.args) != len(callee.args):
            raise LoweringError(
                f"line {line}: @{callee.name} expects "
                f"{len(callee.args)} args, got {len(call.args)}")
        return [self._coerce(self.lower_expr(a), p.type, line)
                for a, p in zip(call.args, callee.args)]

    # -- type plumbing ----------------------------------------------------
    def _resolve_array(self, name: str, line: int) -> GlobalArray:
        glob = self.pl.module.globals.get(name)
        if glob is None:
            raise LoweringError(f"line {line}: unknown array {name!r}")
        return glob

    def _unify(self, a: Value, b: Value,
               line: int) -> Tuple[Value, Value]:
        if a.type == b.type:
            return a, b
        if isinstance(a.type, FloatType) or isinstance(b.type, FloatType):
            target = a.type if isinstance(a.type, FloatType) else b.type
            return (self._coerce(a, target, line),
                    self._coerce(b, target, line))
        if isinstance(a.type, IntType) and isinstance(b.type, IntType):
            target = a.type if a.type.width >= b.type.width else b.type
            return (self._coerce(a, target, line),
                    self._coerce(b, target, line))
        # bool/int mixes widen to i32
        if a.type == BOOL or b.type == BOOL:
            return (self._coerce(a, I32, line), self._coerce(b, I32, line))
        raise LoweringError(
            f"line {line}: incompatible operand types {a.type} / {b.type}")

    def _coerce(self, value: Value, target: Type, line: int,
                explicit: bool = False) -> Value:
        if value.type == target:
            return value
        b = self.builder
        if isinstance(value, Constant):
            if isinstance(target, FloatType) and not isinstance(
                    value.type, (TensorType, PointerType)):
                return b.const(float(value.value), target)
            if isinstance(target, IntType) and isinstance(
                    value.type, (IntType,)):
                return b.const(int(value.value), target)
        if isinstance(target, FloatType) and isinstance(value.type, IntType):
            return b.itof(value)
        if isinstance(target, FloatType) and value.type == BOOL:
            return b.itof(value)
        if isinstance(target, IntType) and isinstance(value.type, FloatType):
            if not explicit:
                raise LoweringError(
                    f"line {line}: implicit float->int narrowing; "
                    f"use i32(...)")
            return b.ftoi(value)
        if isinstance(target, IntType) and isinstance(value.type,
                                                      (IntType, )):
            return value  # width changes are free in our word model
        if isinstance(target, IntType) and value.type == BOOL:
            return value
        if target == BOOL and isinstance(value.type, IntType):
            return b.cmp("ne", value, b.const(0, value.type))
        raise LoweringError(
            f"line {line}: cannot convert {value.type} to {target}")

    def _as_bool(self, value: Value, line: int) -> Value:
        if value.type == BOOL:
            return value
        if isinstance(value.type, IntType):
            return self.builder.cmp("ne", value,
                                    self.builder.const(0, value.type))
        raise LoweringError(f"line {line}: condition must be integer/bool")


class ProgramLowering:
    """Lowers a whole MiniC program to a software-IR module."""

    def __init__(self, program: ast.Program, name: str = "minic"):
        self.program = program
        self.module = Module(name)
        self.builder = IRBuilder(self.module)
        self.functions: Dict[str, Function] = {}

    def lower(self) -> Module:
        for arr in self.program.arrays:
            self.module.add_global(arr.name, arr.elem, arr.size)
        # Declare all signatures first so calls/spawns resolve.
        for decl in self.program.functions:
            function = Function(
                decl.name,
                [(p.name, p.type) for p in decl.params],
                decl.return_type or VOID)
            function.new_block("entry")
            self.module.add_function(function)
            self.functions[decl.name] = function
        for decl in self.program.functions:
            FunctionLowering(self, decl, self.functions[decl.name]).lower()
        return self.module


def remove_trivial_phis(function: Function) -> None:
    """Iteratively remove phis whose incomings are one value (or self)."""
    changed = True
    while changed:
        changed = False
        replacements: Dict[Value, Value] = {}
        for block in function.blocks:
            for phi in list(block.phis):
                values = {v for _b, v in phi.incomings if v is not phi}
                if len(values) == 1:
                    replacements[phi] = values.pop()
                    block.instructions.remove(phi)
                    changed = True
        if not replacements:
            break
        for block in function.blocks:
            for instr in block.instructions:
                instr.operands = [
                    _chase(replacements, op) for op in instr.operands]
                if isinstance(instr, Phi):
                    instr.incomings = [
                        (b, _chase(replacements, v))
                        for b, v in instr.incomings]


def _chase(replacements: Dict[Value, Value], value: Value) -> Value:
    while value in replacements:
        value = replacements[value]
    return value


def lower_program(program: ast.Program, name: str = "minic",
                  source_file: str = "") -> Module:
    """Lower a parsed MiniC program to a software-IR module.

    ``source_file`` (usually the ``.mc`` path) becomes the provenance
    root carried through the uIR translation.
    """
    module = ProgramLowering(program, name).lower()
    module.source_file = source_file or name
    return module

"""Per-node simulation models.

Each uIR node kind gets a small state machine honouring the
latency-insensitive protocol: fire when every required input channel
has a token (latched channels always do) and internal capacity allows,
retire results in order when the output channels have space.  Function
units are pipelined with the latency / initiation interval from
:mod:`repro.core.oplib`.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

from ..core import oplib
from ..core.lanes import (ctrl, lane_pack_words, lane_select,
                          lane_unpack_words)
from ..core.semantics import eval_compute, poison_value
from ..errors import SimulationError
from .memory import MemRequest


def _fu_fault_extra(node, instance) -> int:
    """Fault-injected extra pipeline depth for a function unit."""
    faults = instance.runtime.faults
    if faults is None:
        return 0
    return faults.fu_extra(instance.task.name, node.name)


class _ForkBuffer:
    """Eager fork: delivers one value independently to each consumer.

    A slow consumer (e.g. a store stalled on ordering) no longer
    blocks its siblings (e.g. a load's address), which would otherwise
    create circular backpressure through tight fanout — standard eager
    fork semantics in latency-insensitive design.
    """

    __slots__ = ("channels", "pending", "value")

    def __init__(self, channels):
        self.channels = channels
        self.pending: List = []
        self.value = None

    def can_accept(self) -> bool:
        return not self.pending

    def accept(self, value, instance) -> None:
        self.value = value
        still = None
        for ch in self.channels:
            if ch.can_push():
                ch.push(value)
                instance._act += 1
            else:
                if still is None:
                    still = []
                still.append(ch)
        self.pending = still if still is not None else []

    def drain(self, instance) -> None:
        if not self.pending:
            return
        still = None
        value = self.value
        for ch in self.pending:
            if ch.can_push():
                ch.push(value)
                instance._act += 1
            else:
                if still is None:
                    still = []
                still.append(ch)
        self.pending = still if still is not None else []


class NodeSim:
    """Base: channel helpers bound to one dataflow instance.

    Event-kernel contract: ``tick`` must be a strict no-op whenever
    its guards fail, so being woken spuriously is always safe.  In
    exchange, every ``now``-dependent guard a sim introduces must
    self-schedule a wakeup (``instance.schedule_node``) when it
    arms the timer — the kernel has no polling to fall back on.
    """

    # Slotted (here and in every subclass): tens of thousands of sims
    # are live in a big run and the per-tick hot paths are attribute
    # loads, so dropping the per-instance __dict__ pays in both memory
    # and lookup time.
    __slots__ = ("node", "instance", "sink_count", "idx",
                 "_forks", "_fork_list")

    is_iter_sink = False
    #: Sims that issue their own next-cycle wakes from ``tick`` opt out
    #: of the kernel's blanket acted-so-look-again rearm.  Opting out is
    #: only sound if every way the sim could act next cycle is covered
    #: by another wake source (channel commit, credit return, timer).
    precise_wakes = False

    def __init__(self, node, instance):
        self.node = node
        self.instance = instance
        self.sink_count = 0
        #: Position in the instance's node list (set at instance
        #: start); doubles as the sweep-order key for the wakeup heap.
        self.idx = -1
        self._forks = {}
        for port in node.outputs:
            if port.outgoing:
                self._forks[port.name] = _ForkBuffer(
                    [instance.channels[id(c)] for c in port.outgoing])
        self._fork_list = list(self._forks.values())

    def _in_chans(self, ports):
        """Input channels for ``ports``; None if any port is unwired
        (such a node can never fire — matches _inputs_ready)."""
        chans = []
        for p in ports:
            conn = p.incoming
            if conn is None:
                return None
            chans.append(self.instance.channels[id(conn)])
        return chans

    # -- channel helpers ---------------------------------------------------
    def _chan(self, conn):
        return self.instance.channels[id(conn)]

    def _in_ready(self, port) -> bool:
        conn = port.incoming
        return conn is not None and self._chan(conn).ready()

    def _in_pop(self, port):
        return self._chan(port.incoming).pop()

    def _out_can(self, port) -> bool:
        fork = self._forks.get(port.name)
        return fork is None or fork.can_accept()

    def _out_push(self, port, value) -> None:
        fork = self._forks.get(port.name)
        if fork is not None:
            fork.accept(value, self.instance)
        self.instance._act += 1

    def drain_forks(self) -> None:
        for fork in self._fork_list:
            if fork.pending:
                fork.drain(self.instance)

    def _inputs_ready(self, ports) -> bool:
        return all(self._in_ready(p) for p in ports)

    # -- protocol -----------------------------------------------------------
    def tick(self, now: int) -> None:
        raise NotImplementedError

    def busy(self) -> bool:
        return False

    def reset(self) -> None:
        """Return to the just-constructed state for instance recycling.

        Static wiring (channel lists, fork buffers, latencies) is
        invocation-invariant and survives; only dynamic state is
        cleared.  Subclasses extend this for their own state fields.
        The caller guarantees the instance is complete: no in-flight
        memory requests, timers or enqueue registrations point here.
        """
        self.sink_count = 0
        for fork in self._fork_list:
            fork.pending = []
            fork.value = None


class ConstSim(NodeSim):
    """Constant source.  In loop tasks its connections are latched (set
    at instance start); in func tasks it emits one token per consumer
    per invocation."""

    __slots__ = ("_pending",)

    def __init__(self, node, instance):
        super().__init__(node, instance)
        self._pending = [c for c in node.out.outgoing if not c.latched]

    def tick(self, now: int) -> None:
        if not self._pending:
            return
        remaining = []
        for conn in self._pending:
            ch = self._chan(conn)
            if ch.can_push():
                ch.push(self.node.value)
                self.instance._act += 1
            else:
                remaining.append(conn)
        self._pending = remaining

    def reset(self) -> None:
        super().reset()
        self._pending = [c for c in self.node.out.outgoing
                         if not c.latched]


class LiveInSim(NodeSim):
    """Invocation argument source (same emission rule as ConstSim)."""

    __slots__ = ("value", "_pending")

    def __init__(self, node, instance):
        super().__init__(node, instance)
        self.value = instance.args[node.index]
        self._pending = [c for c in node.out.outgoing if not c.latched]

    def reset(self) -> None:
        super().reset()
        self.value = self.instance.args[self.node.index]
        self._pending = [c for c in self.node.out.outgoing
                         if not c.latched]

    def tick(self, now: int) -> None:
        if not self._pending:
            return
        remaining = []
        for conn in self._pending:
            ch = self._chan(conn)
            if ch.can_push():
                ch.push(self.value)
                self.instance._act += 1
            else:
                remaining.append(conn)
        self._pending = remaining


class LiveOutSim(NodeSim):
    __slots__ = ()

    def tick(self, now: int) -> None:
        if self._in_ready(self.node.inp):
            value = self._in_pop(self.node.inp)
            self.instance.record_liveout(self.node.index, value)
            self.instance._act += 1


class ComputeSim(NodeSim):
    """Pipelined function unit for compute/tensor/gep ops.

    Opted out of the kernel's blanket rearm: after a fire the only
    un-signalled way to act next cycle is an immediate back-to-back
    fire (interval 1, pipe space, inputs still ready), which ``tick``
    wakes explicitly.  Everything else is covered — token arrivals by
    the commit wake, blocked retires/forks by the consumer's credit
    return, future retires and initiation gaps by per-fire timers.
    """

    __slots__ = ("latency", "interval", "pipe", "next_fire",
                 "capacity", "in_chans", "out_fork")

    precise_wakes = True

    def __init__(self, node, instance):
        super().__init__(node, instance)
        info = oplib.op_info(node.op, node.out.type)
        self.latency = max(1, info.latency) + _fu_fault_extra(
            node, instance)
        self.interval = max(1, info.initiation_interval)
        self.pipe: deque = deque()
        self.next_fire = 0
        self.capacity = max(1, self.latency)
        self.in_chans = self._in_chans(node.in_ports)
        self.out_fork = self._forks.get(node.out.name)

    def _retire(self, now: int) -> None:
        pipe = self.pipe
        fork = self.out_fork
        instance = self.instance
        while pipe and pipe[0][0] <= now:
            if fork is not None:
                if not fork.can_accept():
                    return
                fork.accept(pipe[0][1], instance)
            pipe.popleft()
            instance._act += 1

    def tick(self, now: int) -> None:
        if self.pipe:
            self._retire(now)
        if now < self.next_fire or len(self.pipe) >= self.capacity:
            return
        chans = self.in_chans
        if chans is None:
            return
        for ch in chans:
            if not ch.ready():
                return
        vals = [ch.pop() for ch in chans]
        if self.node.op == "gep":
            vals = vals + [self.node.gep_scale]
        result = eval_compute(self.node.op, vals, self.node.out.type)
        # The FU's final pipeline register doubles as the edge register:
        # retiring at now+latency-1 (visible after commit) makes the
        # value reach the consumer exactly ``latency`` cycles after the
        # fire.
        self.pipe.append((now + self.latency - 1, result))
        self.next_fire = now + self.interval
        if self.latency > 1:
            self.instance.schedule_node(self.idx, now + self.latency - 1)
        if self.interval > 1:
            self.instance.schedule_node(self.idx, self.next_fire)
        self.instance._act += 1
        self.instance.stats.node_fires[self.node.kind] += 1
        self._retire(now)
        if self.interval == 1 and len(self.pipe) < self.capacity:
            for ch in chans:
                if not ch.ready():
                    break
            else:
                self.instance.wake_node(self.idx)

    def busy(self) -> bool:
        return bool(self.pipe)

    def reset(self) -> None:
        super().reset()
        self.pipe.clear()
        self.next_fire = 0


class FusedSim(NodeSim):
    """One-stage evaluation of a fused expression DAG.

    Same precise-wake contract as :class:`ComputeSim` (implicit
    initiation interval of 1)."""

    __slots__ = ("latency", "pipe", "in_chans", "out_fork")

    precise_wakes = True

    def __init__(self, node, instance):
        super().__init__(node, instance)
        self.latency = max(1, node.latency) + _fu_fault_extra(
            node, instance)
        self.pipe: deque = deque()
        self.in_chans = self._in_chans(node.in_ports)
        self.out_fork = self._forks.get(node.out.name)

    def _retire(self, now: int) -> None:
        pipe = self.pipe
        fork = self.out_fork
        instance = self.instance
        while pipe and pipe[0][0] <= now:
            if fork is not None:
                if not fork.can_accept():
                    return
                fork.accept(pipe[0][1], instance)
            pipe.popleft()
            instance._act += 1

    def tick(self, now: int) -> None:
        if self.pipe:
            self._retire(now)
        if len(self.pipe) >= self.latency:
            return
        chans = self.in_chans
        if chans is None:
            return
        for ch in chans:
            if not ch.ready():
                return
        ins = [ch.pop() for ch in chans]
        results: List = []
        for op, refs, rtype, scale in self.node.exprs:
            vals = [ins[i] if kind == "in" else results[i]
                    for kind, i in refs]
            if op == "gep":
                vals = vals + [scale]
            results.append(eval_compute(op, vals, rtype))
        self.pipe.append((now + self.latency - 1, results[-1]))
        if self.latency > 1:
            self.instance.schedule_node(self.idx, now + self.latency - 1)
        self.instance._act += 1
        self.instance.stats.node_fires["fused"] += 1
        self._retire(now)
        if len(self.pipe) < self.latency:
            for ch in chans:
                if not ch.ready():
                    break
            else:
                self.instance.wake_node(self.idx)

    def busy(self) -> bool:
        return bool(self.pipe)

    def reset(self) -> None:
        super().reset()
        self.pipe.clear()


class SelectSim(NodeSim):
    __slots__ = ("pipe", "in_chans", "out_fork")

    def __init__(self, node, instance):
        super().__init__(node, instance)
        self.pipe: deque = deque()
        self.in_chans = self._in_chans([node.cond, node.a, node.b])
        self.out_fork = self._forks.get(node.out.name)

    def _retire(self, now: int) -> None:
        pipe = self.pipe
        fork = self.out_fork
        instance = self.instance
        while pipe and pipe[0][0] <= now:
            if fork is not None:
                if not fork.can_accept():
                    return
                fork.accept(pipe[0][1], instance)
            pipe.popleft()
            instance._act += 1

    def tick(self, now: int) -> None:
        if self.pipe:
            self._retire(now)
        chans = self.in_chans
        if self.pipe or chans is None:
            return
        for ch in chans:
            if not ch.ready():
                return
        cond = chans[0].pop()
        a = chans[1].pop()
        b = chans[2].pop()
        # A lane-divergent condition is data, not control: each lane
        # picks its own arm (lane_select's scalar fast path is the
        # plain conditional expression).
        self.pipe.append((now, lane_select(cond, a, b)))
        self.instance._act += 1
        self._retire(now)

    def busy(self) -> bool:
        return bool(self.pipe)

    def reset(self) -> None:
        super().reset()
        self.pipe.clear()


class PhiSim(NodeSim):
    """Loop-carried value sequencer (see core.nodes.PhiNode)."""

    __slots__ = ("inited", "init_val", "next_val", "have_next",
                 "emitted", "backs", "last_back", "last_emitted",
                 "final_pushed", "emit_history", "init_chan",
                 "back_chan", "out_fork")

    is_iter_sink = True

    def __init__(self, node, instance):
        super().__init__(node, instance)
        self.inited = False
        self.init_val = None
        self.next_val = None
        self.have_next = False
        self.emitted = 0
        self.backs = 0
        self.last_back = None
        self.last_emitted = None
        self.final_pushed = False
        # Conditional loops may speculatively emit past the failing
        # check; the live-out is the value at check #trips-1, so keep
        # the emission history (bounded by trips + channel slack).
        self.emit_history: List = []
        conn = node.init.incoming
        self.init_chan = instance.channels[id(conn)] if conn else None
        conn = node.back.incoming
        self.back_chan = instance.channels[id(conn)] if conn else None
        self.out_fork = self._forks.get(node.out.name)

    def tick(self, now: int) -> None:
        instance = self.instance
        if not self.inited:
            ch = self.init_chan
            if ch is None or not ch.ready():
                return
            self.init_val = ch.pop()
            self.next_val = self.init_val
            self.have_next = True
            self.inited = True
            instance._act += 1
        # Accept the back token before emitting so a value arriving
        # this cycle forwards without an extra stage (the phi mux is
        # combinational; only its state register is clocked).
        if not self.have_next:
            trips = instance.loop_trips
            ch = self.back_chan
            if ch is not None and ch.ready() and \
                    (trips is None or self.backs < trips):
                value = ch.pop()
                self.backs += 1
                self.last_back = value
                self.sink_count = self.backs
                self.next_val = value
                self.have_next = True
                instance._act += 1
                instance.on_sink_progress()
        if self.have_next:
            fork = self.out_fork
            if fork is None or fork.can_accept():
                if fork is not None:
                    fork.accept(self.next_val, instance)
                instance._act += 1
                self.last_emitted = self.next_val
                if instance.loop_conditional:
                    self.emit_history.append(self.next_val)
                self.emitted += 1
                self.have_next = False
        self._maybe_push_final(now)

    def _maybe_push_final(self, now: int) -> None:
        node = self.node
        if self.final_pushed or not node.final.outgoing:
            return
        if not self.instance.loop_finished:
            return
        trips = self.instance.loop_trips or 0
        if self.instance.loop_conditional:
            # Conditional loops always issue at least one check.
            if self.emitted < trips:
                return
            value = self.emit_history[trips - 1]
        else:
            if trips == 0:
                value = self.init_val
                if not self.inited:
                    return
            elif self.backs >= trips:
                value = self.last_back
            else:
                return
        if self._out_can(node.final):
            self._out_push(node.final, value)
            self.final_pushed = True

    def busy(self) -> bool:
        # A phi holding state is not "outstanding work"; completion is
        # gated by loop_finished + liveouts instead.
        return False

    def reset(self) -> None:
        super().reset()
        self.inited = False
        self.init_val = None
        self.next_val = None
        self.have_next = False
        self.emitted = 0
        self.backs = 0
        self.last_back = None
        self.last_emitted = None
        self.final_pushed = False
        self.emit_history = []


class LoopControlSim(NodeSim):
    """Iteration sequencer."""

    __slots__ = ("started", "finished", "issued", "trips",
                 "next_issue", "start_v", "step_v", "done_pushed",
                 "final_pushed", "start_chans", "cont_chan")

    def __init__(self, node, instance):
        super().__init__(node, instance)
        self.started = False
        self.finished = False
        self.issued = 0
        self.trips: Optional[int] = None
        self.next_issue = 0
        self.start_v = 0
        self.step_v = 1
        self.done_pushed = False
        self.final_pushed = False
        self.start_chans = self._in_chans([node.start, node.bound,
                                           node.step])
        cont = getattr(node, "cont", None)
        conn = cont.incoming if cont is not None else None
        self.cont_chan = instance.channels[id(conn)] if conn else None

    def tick(self, now: int) -> None:
        node = self.node
        if not self.started:
            chans = self.start_chans
            if chans is None:
                return
            for ch in chans:
                if not ch.ready():
                    return
            # Loop bounds are control: a batched run must see them
            # lane-uniform (ctrl unwraps or raises LaneDivergence;
            # scalar runs pass through untouched).
            self.start_v = ctrl(chans[0].pop())
            bound_v = ctrl(chans[1].pop())
            self.step_v = ctrl(chans[2].pop())
            self.started = True
            self.instance._act += 1
            if not node.conditional:
                self.trips = self._count_trips(self.start_v, bound_v,
                                               self.step_v)
                self.instance.loop_trips = self.trips
        if not self.started or self.finished:
            self._maybe_finish_outputs(now)
            return
        if node.conditional:
            self._tick_conditional(now)
        else:
            self._tick_counted(now)
        self._maybe_finish_outputs(now)

    @staticmethod
    def _count_trips(start: int, bound: int, step: int) -> int:
        if step <= 0:
            raise SimulationError(
                f"loop with non-positive step {step}")
        if start >= bound:
            return 0
        return (bound - start + step - 1) // step

    def _in_flight(self) -> int:
        return self.issued - self.instance.completed_iterations()

    def _tick_counted(self, now: int) -> None:
        node = self.node
        if self.issued >= self.trips:
            self._finish(now)
            return
        if now < self.next_issue:
            return
        if self._in_flight() >= node.max_in_flight:
            return
        if not (self._out_can(node.index) and self._out_can(node.active)):
            return
        index = self.start_v + self.issued * self.step_v
        self._out_push(node.index, index)
        self._out_push(node.active, True)
        self.issued += 1
        self.next_issue = now + max(1, node.pipeline_stages)
        self.instance.schedule_node(self.idx, self.next_issue)
        self.instance.stats.iterations[self.instance.task.name] += 1

    def _tick_conditional(self, now: int) -> None:
        node = self.node
        if self.issued == 0:
            if now >= self.next_issue and \
                    self._out_can(node.index) and \
                    self._out_can(node.active):
                self._out_push(node.index, self.start_v)
                self._out_push(node.active, True)
                self.issued = 1
                self.next_issue = now + max(1, node.pipeline_stages)
                self.instance.schedule_node(self.idx, self.next_issue)
                self.instance.stats.iterations[
                    self.instance.task.name] += 1
            return
        # Wait for the continue token of the previous iteration.
        ch = self.cont_chan
        if ch is None or not ch.ready():
            return
        if now < self.next_issue or \
                self._in_flight() >= node.max_in_flight:
            return
        if not (self._out_can(node.index) and self._out_can(node.active)):
            return
        cont = ch.pop()
        self.instance._act += 1
        if not cont:
            self.trips = self.issued
            self._finish(now)
            return
        index = self.start_v + self.issued * self.step_v
        self._out_push(node.index, index)
        self._out_push(node.active, True)
        self.issued += 1
        self.next_issue = now + max(1, node.pipeline_stages)
        self.instance.schedule_node(self.idx, self.next_issue)
        self.instance.stats.iterations[self.instance.task.name] += 1

    def _finish(self, now: int) -> None:
        if self.finished:
            return
        self.finished = True
        self.instance.loop_trips = self.issued if self.node.conditional \
            else self.trips
        self.instance.loop_finished = True
        self.instance._act += 1
        self.instance.on_loop_finished()

    def _maybe_finish_outputs(self, now: int) -> None:
        node = self.node
        if not self.finished:
            return
        if not self.done_pushed and node.done.outgoing and \
                self._out_can(node.done):
            self._out_push(node.done, True)
            self.done_pushed = True
        if not self.final_pushed and node.final.outgoing and \
                self._out_can(node.final):
            final = self.start_v + self.issued * self.step_v
            self._out_push(node.final, final)
            self.final_pushed = True

    def busy(self) -> bool:
        return self.started and not self.finished

    def reset(self) -> None:
        super().reset()
        self.started = False
        self.finished = False
        self.issued = 0
        self.trips = None
        self.next_issue = 0
        self.start_v = 0
        self.step_v = 1
        self.done_pushed = False
        self.final_pushed = False


class _MemRecord:
    __slots__ = ("remaining", "words", "poison", "value")

    def __init__(self, words: int, poison: bool = False):
        self.remaining = words
        self.words: List = [None] * words
        self.poison = poison
        self.value = None


class LoadSim(NodeSim):
    """Load transit node with databox widening."""

    __slots__ = ("records", "junction_sim", "words", "req_chans",
                 "has_pred", "has_order")

    is_iter_sink = True

    def __init__(self, node, instance):
        super().__init__(node, instance)
        self.records: deque = deque()
        self.junction_sim = instance.junction_sim_for(node)
        self.words = node.out.type.words
        ports = [node.addr]
        if node.pred is not None:
            ports.append(node.pred)
        if node.order_in is not None:
            ports.append(node.order_in)
        self.req_chans = self._in_chans(ports)
        self.has_pred = node.pred is not None
        self.has_order = node.order_in is not None

    def tick(self, now: int) -> None:
        node = self.node
        # Retire in order.
        while self.records and self.records[0].remaining == 0:
            if not (self._out_can(node.out) and self._out_can(node.done)):
                break
            rec = self.records.popleft()
            if rec.poison:
                value = poison_value(node.out.type)
            elif self.words == 1:
                value = rec.words[0]
            else:
                # Lane-indexed words lift the whole payload to one
                # tuple per lane; uniform words stay a plain tuple.
                value = lane_pack_words(rec.words)
            self._out_push(node.out, value)
            self._out_push(node.done, True)
            self.sink_count += 1
            self.instance.on_sink_progress()
        # Fire.
        if len(self.records) >= node.max_outstanding:
            return
        chans = self.req_chans
        if chans is None:
            return
        for ch in chans:
            if not ch.ready():
                return
        addr = chans[0].pop()
        enabled = True
        pos = 1
        if self.has_pred:
            enabled = bool(chans[1].pop())
            pos = 2
        if self.has_order:
            chans[pos].pop()
        self.instance._act += 1
        if not enabled:
            rec = _MemRecord(0, poison=True)
            self.records.append(rec)
            # Nothing outstanding: self-wake to retire next cycle.
            self.instance.wake_node(self.idx)
            return
        rec = _MemRecord(self.words)
        self.records.append(rec)
        self.instance.stats.memory_reads += self.words
        base = int(addr)
        for w in range(self.words):
            def on_done(req, r=rec, i=w, s=self):
                r.words[i] = req.value
                r.remaining -= 1
                if r.remaining == 0:
                    s.instance.wake_node(s.idx)
            self.junction_sim.submit(
                MemRequest(base + w, False, on_done=on_done))

    def busy(self) -> bool:
        return bool(self.records)

    def reset(self) -> None:
        super().reset()
        self.records.clear()


class StoreSim(NodeSim):
    __slots__ = ("records", "junction_sim", "words", "req_chans",
                 "has_pred", "has_order")

    is_iter_sink = True

    def __init__(self, node, instance):
        super().__init__(node, instance)
        self.records: deque = deque()
        self.junction_sim = instance.junction_sim_for(node)
        self.words = node.value_type.words
        ports = [node.addr, node.data]
        if node.pred is not None:
            ports.append(node.pred)
        if node.order_in is not None:
            ports.append(node.order_in)
        self.req_chans = self._in_chans(ports)
        self.has_pred = node.pred is not None
        self.has_order = node.order_in is not None

    def tick(self, now: int) -> None:
        node = self.node
        while self.records and self.records[0].remaining == 0:
            if not self._out_can(node.done):
                break
            self.records.popleft()
            self._out_push(node.done, True)
            self.sink_count += 1
            self.instance.on_sink_progress()
        if len(self.records) >= node.max_outstanding:
            return
        chans = self.req_chans
        if chans is None:
            return
        for ch in chans:
            if not ch.ready():
                return
        addr = chans[0].pop()
        data = chans[1].pop()
        enabled = True
        pos = 2
        if self.has_pred:
            enabled = bool(chans[2].pop())
            pos = 3
        if self.has_order:
            chans[pos].pop()
        self.instance._act += 1
        if not enabled:
            self.records.append(_MemRecord(0, poison=True))
            self.instance.wake_node(self.idx)
            return
        rec = _MemRecord(self.words)
        self.records.append(rec)
        self.instance.stats.memory_writes += self.words
        base = int(addr)
        values = (lane_unpack_words(data, self.words)
                  if self.words > 1 else [data])
        for w in range(self.words):
            def on_done(req, r=rec, s=self):
                r.remaining -= 1
                if r.remaining == 0:
                    s.instance.wake_node(s.idx)
            self.junction_sim.submit(
                MemRequest(base + w, True, value=values[w],
                           on_done=on_done))

    def busy(self) -> bool:
        return bool(self.records)

    def reset(self) -> None:
        super().reset()
        self.records.clear()


class _CallRecord:
    __slots__ = ("done", "results", "poison")

    def __init__(self, poison: bool = False):
        self.done = poison
        self.results: List = []
        self.poison = poison


class CallSim(NodeSim):
    __slots__ = ("records", "req_chans", "n_args", "has_pred",
                 "_eq_blocked", "_eq_registered")

    is_iter_sink = True

    def __init__(self, node, instance):
        super().__init__(node, instance)
        # Sticky enqueue-blocked state for the event kernel (see
        # DataflowInstance.note_enqueue_blocked).
        self._eq_blocked = False
        self._eq_registered = False
        self.records: deque = deque()
        ports = list(node.arg_ports)
        if node.pred is not None:
            ports.append(node.pred)
        if node.order_in is not None:
            ports.append(node.order_in)
        self.req_chans = self._in_chans(ports)
        self.n_args = len(node.arg_ports)
        self.has_pred = node.pred is not None

    def _max_outstanding(self) -> int:
        return 1 if self.node.serialize else self.node.max_outstanding

    def tick(self, now: int) -> None:
        node = self.node
        # Retire in order.
        while self.records and self.records[0].done:
            ret_ok = all(self._out_can(p) for p in node.ret_ports)
            if not (ret_ok and self._out_can(node.order_out)):
                break
            rec = self.records.popleft()
            for i, port in enumerate(node.ret_ports):
                if rec.poison or i >= len(rec.results):
                    self._out_push(port, poison_value(port.type))
                else:
                    self._out_push(port, rec.results[i])
            self._out_push(node.order_out, True)
            self.sink_count += 1
            self.instance.on_sink_progress()
            self.instance.calls_outstanding -= 1
        if len(self.records) >= self._max_outstanding():
            return
        chans = self.req_chans
        if chans is None:
            return
        for ch in chans:
            if not ch.ready():
                return
        # Peek the predicate before committing to an enqueue.
        enabled = True
        if self.has_pred:
            enabled = bool(chans[self.n_args].peek())
        if enabled:
            rec = _CallRecord()
            args = [chans[i].peek() for i in range(self.n_args)]
            ok = self.instance.runtime.try_enqueue(
                self.instance.task.name, node.callee, args,
                reply=rec, parent=self.instance)
            if not ok:
                self.instance.note_enqueue_blocked(self)
                return
        else:
            rec = _CallRecord(poison=True)
            # Poison completes instantly: self-wake to retire.
            self.instance.wake_node(self.idx)
        for ch in chans:
            ch.pop()
        self.records.append(rec)
        self.instance.note_enqueue_ok(self)
        self.instance.calls_outstanding += 1
        self.instance._act += 1

    def busy(self) -> bool:
        return bool(self.records)

    def reset(self) -> None:
        super().reset()
        self.records.clear()
        self._eq_blocked = False
        self._eq_registered = False


class SpawnSim(NodeSim):
    __slots__ = ("req_chans", "n_args", "has_pred",
                 "_eq_blocked", "_eq_registered")

    is_iter_sink = True

    def __init__(self, node, instance):
        super().__init__(node, instance)
        self._eq_blocked = False
        self._eq_registered = False
        ports = list(node.arg_ports)
        if node.pred is not None:
            ports.append(node.pred)
        if node.order_in is not None:
            ports.append(node.order_in)
        self.req_chans = self._in_chans(ports)
        self.n_args = len(node.arg_ports)
        self.has_pred = node.pred is not None

    def tick(self, now: int) -> None:
        node = self.node
        if not self._out_can(node.issued):
            return
        chans = self.req_chans
        if chans is None:
            return
        for ch in chans:
            if not ch.ready():
                return
        enabled = True
        if self.has_pred:
            enabled = bool(chans[self.n_args].peek())
        if enabled:
            args = [chans[i].peek() for i in range(self.n_args)]
            ok = self.instance.runtime.try_enqueue(
                self.instance.task.name, node.callee, args,
                reply=None, parent=self.instance)
            if not ok:
                self.instance.note_enqueue_blocked(self)
                return
            self.instance.pending_children += 1
        for ch in chans:
            ch.pop()
        self._out_push(node.issued, True)
        self.sink_count += 1
        self.instance.on_sink_progress()
        self.instance.note_enqueue_ok(self)
        self.instance._act += 1

    def reset(self) -> None:
        super().reset()
        self._eq_blocked = False
        self._eq_registered = False


class SyncSim(NodeSim):
    """Barrier: fires once all children spawned so far have completed."""

    __slots__ = ("fired",)

    is_iter_sink = True

    def __init__(self, node, instance):
        super().__init__(node, instance)
        self.fired = False

    def tick(self, now: int) -> None:
        node = self.node
        if self.fired:
            return
        if node.order_in is not None and not self._in_ready(node.order_in):
            return
        if self.instance.pending_children > 0:
            return
        if not self._out_can(node.done):
            return
        if node.order_in is not None:
            self._in_pop(node.order_in)
        self._out_push(node.done, True)
        self.fired = True
        self.sink_count = 1
        self.instance.on_sink_progress()

    def busy(self) -> bool:
        return False

    def reset(self) -> None:
        super().reset()
        self.fired = False


SIM_CLASSES = {
    "const": ConstSim,
    "livein": LiveInSim,
    "liveout": LiveOutSim,
    "compute": ComputeSim,
    "tensor": ComputeSim,
    "fused": FusedSim,
    "select": SelectSim,
    "phi": PhiSim,
    "loopctl": LoopControlSim,
    "load": LoadSim,
    "store": StoreSim,
    "call": CallSim,
    "spawn": SpawnSim,
    "sync": SyncSim,
}


def make_node_sim(node, instance) -> NodeSim:
    try:
        cls = SIM_CLASSES[node.kind]
    except KeyError:
        raise SimulationError(f"no simulator for node kind {node.kind!r}")
    return cls(node, instance)

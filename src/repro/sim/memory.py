"""Memory-system models: junctions, scratchpads, caches, DRAM.

All structures are timing models over one shared word-addressed memory
image (see :mod:`repro.core.structures` for why this preserves
behavior).  Reads and writes are *performed* when the structure
processes them, so memory-ordering behavior is observable and the
translator's ordering edges are genuinely exercised.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Dict, List, Optional

from ..core.structures import Cache, DRAMModel, Junction, Scratchpad
from ..errors import SimulationError
from .stats import SimStats


class MemRequest:
    """A single word transaction issued by a load/store databox."""

    __slots__ = ("addr", "is_write", "value", "done", "on_done")

    def __init__(self, addr: int, is_write: bool, value=None,
                 on_done: Optional[Callable] = None):
        self.addr = addr
        self.is_write = is_write
        self.value = value      # write data / read result
        self.done = False
        self.on_done = on_done

    def complete(self, value=None) -> None:
        if not self.is_write:
            self.value = value
        self.done = True
        if self.on_done is not None:
            self.on_done(self)


class DRAMSim:
    """Fixed-latency, bandwidth-limited off-chip memory."""

    def __init__(self, model: DRAMModel, image: List, stats: SimStats,
                 faults=None):
        self.model = model
        self.image = image
        self.stats = stats
        self.latency = model.latency + (
            faults.memory_extra(model.name) if faults is not None else 0)
        self.queue: deque = deque()
        self._staged: List = []
        self.pending: List = []      # heap of (ready_cycle, seq, request)
        self._seq = 0

    def submit(self, request: MemRequest) -> None:
        self._staged.append(request)

    def tick(self, now: int) -> None:
        if self.pending:
            self.stats.dram_busy_cycles += 1
        for _ in range(self.model.requests_per_cycle):
            if not self.queue:
                break
            req = self.queue.popleft()
            self.stats.dram_requests += 1
            self._perform(req)
            self._seq += 1
            heapq.heappush(self.pending,
                           (now + self.latency, self._seq, req))
        while self.pending and self.pending[0][0] <= now:
            _rc, _s, req = heapq.heappop(self.pending)
            req.complete(req.value)

    def _perform(self, req: MemRequest) -> None:
        if req.is_write:
            self.image[req.addr] = req.value
        else:
            req.value = self.image[req.addr]

    def commit(self) -> bool:
        moved = bool(self._staged)
        self.queue.extend(self._staged)
        self._staged.clear()
        return moved or bool(self.queue) or bool(self.pending)


class StructureSim:
    """Base class for scratchpad/cache simulators."""

    def __init__(self, image: List, stats: SimStats):
        self.image = image
        self.stats = stats
        self._staged: List[MemRequest] = []

    def submit(self, request: MemRequest) -> None:
        self._staged.append(request)

    def tick(self, now: int) -> None:
        raise NotImplementedError

    def commit(self) -> bool:
        raise NotImplementedError

    def busy(self) -> bool:
        raise NotImplementedError


class ScratchpadSim(StructureSim):
    """Banked local RAM built from dual-port (1R1W) SRAM blocks:
    ``ports_per_bank`` *read* accesses plus ``ports_per_bank`` *write*
    accesses per bank per cycle, fixed ``latency`` to completion (the
    paper's Pass-4 discussion is explicitly in terms of dual-port
    SRABs).  Data is preloaded (DMA happens before kernel start, as in
    the paper's evaluation loops)."""

    def __init__(self, spad: Scratchpad, image: List, stats: SimStats,
                 faults=None):
        super().__init__(image, stats)
        self.spad = spad
        self.latency = spad.latency + (
            faults.memory_extra(spad.name) if faults is not None else 0)
        self.read_queues: List[deque] = [deque()
                                         for _ in range(spad.banks)]
        self.write_queues: List[deque] = [deque()
                                          for _ in range(spad.banks)]
        self.pending: List = []
        self._seq = 0
        # Writeback buffer: (addr, value) in program-arrival order.
        self.write_buffer: deque = deque()
        self._wb_index: Dict[int, object] = {}

    def _bank_of(self, addr: int) -> int:
        return addr % self.spad.banks

    def tick(self, now: int) -> None:
        # Drain the writeback buffer through the write ports.
        drained = 0
        drain_bw = self.spad.banks * self.spad.ports_per_bank
        while self.write_buffer and drained < drain_bw:
            addr, value, seq = self.write_buffer.popleft()
            self.image[addr] = value
            entry = self._wb_index.get(addr)
            if entry is not None and entry[1] == seq:
                del self._wb_index[addr]
            drained += 1
        for queues in (self.read_queues, self.write_queues):
            for queue in queues:
                served = 0
                while queue and served < self.spad.ports_per_bank:
                    req = queue.popleft()
                    served += 1
                    if req.is_write:
                        self.image[req.addr] = req.value
                    else:
                        forwarded = self._wb_index.get(req.addr)
                        if forwarded is not None:
                            req.value = forwarded[0]
                        else:
                            req.value = self.image[req.addr]
                    self._seq += 1
                    heapq.heappush(
                        self.pending,
                        (now + self.latency, self._seq, req))
                if queue:
                    self.stats.bank_conflict_stalls += len(queue)
                    self.stats.site_stalls[
                        f"structure:{self.spad.name}"] += len(queue)
        while self.pending and self.pending[0][0] <= now:
            _rc, _s, req = heapq.heappop(self.pending)
            req.complete(req.value)

    def commit(self) -> bool:
        moved = bool(self._staged)
        for req in self._staged:
            if req.is_write and self.spad.write_buffer_entries and \
                    len(self.write_buffer) < \
                    self.spad.write_buffer_entries:
                # Complete immediately; drain in the background.
                self._seq += 1
                self.write_buffer.append((req.addr, req.value,
                                          self._seq))
                self._wb_index[req.addr] = (req.value, self._seq)
                req.complete(req.value)
                continue
            target = self.write_queues if req.is_write \
                else self.read_queues
            target[self._bank_of(req.addr)].append(req)
        self._staged.clear()
        return moved or bool(self.pending) or \
            any(self.read_queues) or any(self.write_queues) or \
            bool(self.write_buffer)

    def busy(self) -> bool:
        return bool(self.pending) or bool(self._staged) or \
            any(self.read_queues) or any(self.write_queues) or \
            bool(self.write_buffer)


class CacheSim(StructureSim):
    """Set-associative (LRU), write-through, banked cache backed by
    DRAM (``ways=1`` gives the classic direct-mapped behavior)."""

    def __init__(self, cache: Cache, image: List, stats: SimStats,
                 dram: DRAMSim, faults=None):
        super().__init__(image, stats)
        self.cache = cache
        self.dram = dram
        self.hit_latency = cache.hit_latency + (
            faults.memory_extra(cache.name) if faults is not None else 0)
        self.bank_queues: List[deque] = [deque()
                                         for _ in range(cache.banks)]
        lines = max(1, cache.size_words
                    // (cache.line_words * cache.banks))
        self.ways = max(1, cache.ways)
        self.sets = max(1, lines // self.ways)
        # tags[bank][set] = LRU-ordered deque of resident line ids
        # (most recent at the right).
        self.tags: List[List[deque]] = [
            [deque() for _ in range(self.sets)]
            for _ in range(cache.banks)]
        self.pending: List = []
        self._seq = 0
        # line id -> list of requests waiting on the fill (MSHR).
        self.mshr: Dict[int, List[MemRequest]] = {}

    def _line_of(self, addr: int) -> int:
        return addr // self.cache.line_words

    def _bank_of(self, line: int) -> int:
        return line % self.cache.banks

    def _set_of(self, line: int) -> int:
        return (line // self.cache.banks) % self.sets

    def tick(self, now: int) -> None:
        for bank, queue in enumerate(self.bank_queues):
            served = 0
            while queue and served < self.cache.ports_per_bank:
                req = queue.popleft()
                served += 1
                self._access(req, bank, now)
            if queue:
                self.stats.bank_conflict_stalls += len(queue)
                self.stats.site_stalls[
                    f"structure:{self.cache.name}"] += len(queue)
        while self.pending and self.pending[0][0] <= now:
            _rc, _s, req = heapq.heappop(self.pending)
            req.complete(req.value)

    def _access(self, req: MemRequest, bank: int, now: int) -> None:
        line = self._line_of(req.addr)
        set_idx = self._set_of(line)
        resident = self.tags[bank][set_idx]
        if line in resident:
            resident.remove(line)
            resident.append(line)  # LRU touch
            self.stats.cache_hits += 1
            self._perform(req)
            self._seq += 1
            heapq.heappush(self.pending,
                           (now + self.hit_latency, self._seq, req))
            if req.is_write:
                # Write-through traffic occupies DRAM bandwidth but the
                # requester does not wait for it.
                self.dram.submit(MemRequest(req.addr, True, req.value))
            return
        self.stats.cache_misses += 1
        if line in self.mshr:
            self.mshr[line].append(req)
            return
        self.mshr[line] = [req]
        fill = MemRequest(req.addr, False,
                          on_done=lambda _r, l=line, b=bank,
                          s=set_idx: self._fill(l, b, s))
        self.dram.submit(fill)

    def _fill(self, line: int, bank: int, set_idx: int) -> None:
        resident = self.tags[bank][set_idx]
        if line not in resident:
            if len(resident) >= self.ways:
                resident.popleft()  # evict LRU (write-through: clean)
            resident.append(line)
        waiting = self.mshr.pop(line, [])
        for req in waiting:
            self._perform(req)
            if req.is_write:
                self.dram.submit(MemRequest(req.addr, True, req.value))
            # Hit latency applies after the fill; complete directly to
            # keep the MSHR model simple (fill already paid the miss).
            req.complete(req.value)

    def _perform(self, req: MemRequest) -> None:
        if req.is_write:
            self.image[req.addr] = req.value
        else:
            req.value = self.image[req.addr]

    def commit(self) -> bool:
        moved = bool(self._staged)
        for req in self._staged:
            line = self._line_of(req.addr)
            self.bank_queues[self._bank_of(line)].append(req)
        self._staged.clear()
        return moved or bool(self.pending) or bool(self.mshr) or \
            any(self.bank_queues)

    def busy(self) -> bool:
        return bool(self.pending) or bool(self._staged) or \
            bool(self.mshr) or any(self.bank_queues)


class JunctionSim:
    """Arbitrates a task's memory nodes onto one structure."""

    def __init__(self, junction: Junction, structure_sim: StructureSim,
                 stats: SimStats, faults=None):
        self.junction = junction
        self.structure_sim = structure_sim
        self.stats = stats
        self.faults = faults
        self.queue: deque = deque()
        self._staged: List[MemRequest] = []

    def submit(self, request: MemRequest) -> None:
        self._staged.append(request)

    def tick(self, now: int) -> None:
        if self.faults is not None:
            self.faults.shuffle_grants(self.junction.name, self.queue)
        width = self.junction.issue_width
        served = 0
        for _ in range(width):
            if not self.queue:
                break
            self.structure_sim.submit(self.queue.popleft())
            served += 1
        if served:
            self.stats.junction_grants[self.junction.name] += served
        if self.queue:
            self.stats.junction_stalls += len(self.queue)
            self.stats.site_stalls[
                f"junction:{self.junction.name}"] += len(self.queue)

    def commit(self) -> bool:
        moved = bool(self._staged)
        self.queue.extend(self._staged)
        self._staged.clear()
        return moved or bool(self.queue)

    def busy(self) -> bool:
        return bool(self.queue) or bool(self._staged)


class MemorySystem:
    """All structure/junction simulators for one circuit."""

    def __init__(self, circuit, image: List, stats: SimStats,
                 faults=None):
        self.image = image
        self.stats = stats
        self.faults = faults
        self.dram = DRAMSim(circuit.dram, image, stats, faults)
        self.structure_sims: Dict[int, StructureSim] = {}
        for structure in circuit.structures:
            if isinstance(structure, Scratchpad):
                sim = ScratchpadSim(structure, image, stats, faults)
            elif isinstance(structure, Cache):
                sim = CacheSim(structure, image, stats, self.dram,
                               faults)
            else:
                continue
            self.structure_sims[id(structure)] = sim
        self.junction_sims: Dict[int, JunctionSim] = {}
        for task in circuit.tasks.values():
            for junction in task.junctions:
                target = self.structure_sims.get(id(junction.structure))
                if target is None:
                    raise SimulationError(
                        f"junction {junction.name} targets structure "
                        f"with no simulator")
                self.junction_sims[id(junction)] = JunctionSim(
                    junction, target, stats, faults)
        self._jsims = list(self.junction_sims.values())
        self._ssims = list(self.structure_sims.values())

    def junction_sim(self, junction: Junction) -> JunctionSim:
        return self.junction_sims[id(junction)]

    def tick(self, now: int) -> None:
        for jsim in self.junction_sims.values():
            jsim.tick(now)
        for ssim in self.structure_sims.values():
            ssim.tick(now)
        self.dram.tick(now)

    def commit(self) -> bool:
        active = False
        for jsim in self.junction_sims.values():
            active |= jsim.commit()
        for ssim in self.structure_sims.values():
            active |= ssim.commit()
        active |= self.dram.commit()
        return active

    def busy(self) -> bool:
        return any(j.busy() for j in self.junction_sims.values()) or \
            any(s.busy() for s in self.structure_sims.values()) or \
            bool(self.dram.queue) or bool(self.dram.pending) or \
            bool(self.dram._staged)

    def tick_active(self, now: int) -> bool:
        """One-pass tick + commit that skips idle components.

        Equivalent to ``tick(now)`` followed by ``commit()``: an idle
        component's tick and commit are both no-ops, and the staged
        buffers between junction -> structure -> DRAM decouple the
        component pairs, so per-component tick+commit in the dense
        visit order is indistinguishable from the two-phase sweep.
        Returns the combined commit activity (the event kernel's
        progress signal).
        """
        active = False
        for jsim in self._jsims:
            if jsim.queue or jsim._staged:
                jsim.tick(now)
                active |= jsim.commit()
        for ssim in self._ssims:
            if ssim.busy():
                ssim.tick(now)
                active |= ssim.commit()
        dram = self.dram
        if dram.queue or dram.pending or dram._staged:
            dram.tick(now)
            active |= dram.commit()
        return active

"""Cycle-level simulator for uIR circuits.

The simulator executes the uIR graph directly — tokens over registered
ready/valid channels, pipelined function units, banked memory
structures with port arbitration, and a task-queue runtime with
execution tiles — so the cycle counts it reports are the cycle counts
the paper's generated RTL would exhibit (see DESIGN.md, substitution
table).  It is also a *functional* executor: results are checked
against the reference interpreter in the test suite.
"""

from .compile import compiled_for, precompile  # noqa: F401
from .engine import (BatchResult, SimParams, SimResult,  # noqa: F401
                     Simulator, simulate, simulate_batch)
from .faults import FaultInjector, FaultPlan  # noqa: F401
from .stats import SimStats  # noqa: F401

"""Top-level simulation driver."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..core.circuit import AcceleratorCircuit
from ..core.validate import validate_circuit
from ..errors import DeadlockError, SimulationError
from .memory import MemorySystem
from .stats import SimStats
from .task import SimRuntime


@dataclass
class SimParams:
    """Knobs of the simulation environment (not of the circuit)."""

    max_cycles: int = 5_000_000
    deadlock_window: int = 4_000
    #: Concurrent invocations a loop task pipelines per tile (the
    #: paper's "multiple concurrent invocations outstanding").
    loop_invocation_window: int = 2
    #: Queue depth used for decoupled (<||deep>) task edges.
    decoupled_queue_depth: int = 64
    validate: bool = True


@dataclass
class SimResult:
    cycles: int
    results: List
    stats: SimStats

    def __repr__(self) -> str:
        return f"SimResult(cycles={self.cycles}, results={self.results})"


class Simulator:
    """Cycle-level simulation of a uIR circuit against a memory image.

    ``memory`` is a :class:`repro.frontend.interp.Memory` (or any object
    with a mutable ``words`` list laid out like ``circuit.array_layout``).
    The simulation mutates it in place, so callers can diff against the
    reference interpreter afterwards.
    """

    def __init__(self, circuit: AcceleratorCircuit, memory,
                 params: Optional[SimParams] = None):
        self.circuit = circuit
        self.memory_obj = memory
        self.params = params or SimParams()
        if self.params.validate:
            validate_circuit(circuit)

    def run(self, args: Sequence = ()) -> SimResult:
        stats = SimStats()
        memsys = MemorySystem(self.circuit, self.memory_obj.words, stats)
        runtime = SimRuntime(self.circuit, memsys, stats, self.params)
        runtime.start_root(list(args))

        now = 0
        idle_cycles = 0
        while not runtime.root_done:
            active = runtime.tick(now)
            memsys.tick(now)
            active |= memsys.commit()
            now += 1
            if active:
                idle_cycles = 0
            else:
                idle_cycles += 1
                if idle_cycles > self.params.deadlock_window:
                    detail = self._deadlock_report(runtime)
                    raise DeadlockError(now, detail)
            if now > self.params.max_cycles:
                raise SimulationError(
                    f"exceeded max_cycles={self.params.max_cycles}")
        stats.cycles = now
        return SimResult(now, runtime.root_results or [], stats)

    @staticmethod
    def _deadlock_report(runtime: SimRuntime) -> str:
        lines = []
        for name, block in runtime.blocks.items():
            if block.busy():
                lines.append(
                    f"{name}: ready={len(block.ready)} "
                    f"active={len(block.active)} "
                    f"parked={len(block.parked)}")
                for inst in block.active:
                    busy_nodes = [s.node.name for s in inst.node_sims
                                  if s.busy()]
                    lines.append(
                        f"  active inst liveouts="
                        f"{len(inst.liveouts)}/"
                        f"{len(inst.task.live_out_types)} "
                        f"children={inst.pending_children} "
                        f"busy={busy_nodes[:6]}")
        return "; ".join(lines) if lines else "all queues empty"


def simulate(circuit: AcceleratorCircuit, memory, args: Sequence = (),
             params: Optional[SimParams] = None) -> SimResult:
    """One-shot helper: run the circuit to completion."""
    return Simulator(circuit, memory, params).run(args)

"""Top-level simulation driver.

Three kernels produce bit-identical results (same ``SimResult.cycles``,
same memory image, same outputs):

* ``kernel="event"`` (default) — wakeup-driven: only components with a
  pending wake are touched each cycle (see :mod:`repro.sim.events` and
  the instance-level machinery in :mod:`repro.sim.task`), and the
  memory system is skipped entirely while idle.  Typically several
  times faster than the dense sweep on memory-bound circuits.
* ``kernel="dense"`` — the original reference loop that sweeps every
  node of every active instance every cycle.  Kept as the equivalence
  oracle and for debugging the event kernel itself.
* ``kernel="compiled"`` — the event kernel's scheduler driving
  per-node step closures specialized once per circuit
  (:mod:`repro.sim.compile`): no per-tick ``isinstance``/attribute
  dispatch on the hot path.  Compiled artifacts are cached per
  canonical circuit fingerprint, so DSE workers and the fuzzer pay
  compilation once per design point.  If a circuit cannot be
  specialized, ``SimParams.compile_fallback`` selects between a
  warning + event-kernel run (default) and raising
  :class:`repro.errors.KernelCompileError`.
* ``kernel="trace"`` — the compiled kernel plus a runtime trace tier
  (:mod:`repro.sim.trace`): instances that sustain a steady firing
  streak switch to superblock stepping (full sweeps with no ready-heap
  or wheel traffic), whole pipeline regions are ticked without the
  scheduler's phase machinery, and provably quiescent spans are
  jumped over arithmetically.  Guard failures deoptimize back to the
  compiled path mid-run with no state reconstruction; fault plans
  disable the tier entirely.  ``SimResult.trace`` reports formation /
  deopt / coverage for the run.

The event kernel also powers the observability layer
(:mod:`repro.sim.observe`): stall attribution per node/cause and an
optional ring-buffer trace, surfaced through ``SimResult.observer``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence

from .. import telemetry
from ..core.circuit import AcceleratorCircuit
from ..core.lanes import (BatchContext, LaneImage, LaneValues, _same,
                          lane_fingerprint, lane_row)
from ..core.validate import validate_circuit
from ..errors import (DeadlockError, KernelCompileError, ReproError,
                      SimulationError, SimulationTimeout,
                      WatchdogTimeout, error_document)
from .events import EventScheduler
from .faults import FaultInjector, FaultPlan
from .memory import MemorySystem
from .observe import Observability, classify_node, _node_loc
from .stats import SimStats
from .task import SimRuntime

#: The watchdog samples the wall clock every this many cycles — cheap
#: enough to leave on unconditionally when a timeout is configured.
WATCHDOG_STRIDE = 2048


@dataclass
class SimParams:
    """Knobs of the simulation environment (not of the circuit)."""

    max_cycles: int = 5_000_000
    deadlock_window: int = 4_000
    #: Concurrent invocations a loop task pipelines per tile (the
    #: paper's "multiple concurrent invocations outstanding").
    loop_invocation_window: int = 2
    #: Queue depth used for decoupled (<||deep>) task edges.
    decoupled_queue_depth: int = 64
    validate: bool = True
    #: "event" (wakeup-driven, default), "dense" (reference sweep),
    #: "compiled" (event scheduler + specialized step closures) or
    #: "trace" (compiled + steady-state superblock tier).
    kernel: str = "event"
    #: kernel="compiled" only: when the circuit cannot be specialized,
    #: True (default) downgrades to a warning + event-kernel run;
    #: False raises :class:`repro.errors.KernelCompileError`.
    compile_fallback: bool = True
    #: Observability level: "off", "counters" (default) or "trace".
    observe: str = "counters"
    #: Ring-buffer capacity for observe="trace".
    trace_capacity: int = 65536
    #: Fault plan injected at the kernel's wake-source seams
    #: (:mod:`repro.sim.faults`); None = fault-free run.
    faults: Optional[FaultPlan] = None
    #: Wall-clock watchdog: abort with :class:`WatchdogTimeout` after
    #: this many seconds of real time (None = no wall-clock bound).
    wallclock_timeout: Optional[float] = None
    #: Progress heartbeat: call ``heartbeat(now, stats)`` every this
    #: many cycles (0 = off).  Lets long fuzz cases show liveness.
    heartbeat_cycles: int = 0
    heartbeat: Optional[Callable[[int, SimStats], None]] = None
    #: Batched simulation: step this many independent workload lanes
    #: through one run (:func:`simulate_batch`).  None = scalar run.
    #: Not part of the DSE cache key (see ``dse.cache.SIM_KEY_FIELDS``)
    #: because batching cannot change per-lane results.
    batch: Optional[int] = None


@dataclass
class SimResult:
    cycles: int
    results: List
    stats: SimStats
    #: Observability layer of the run (None under the dense kernel).
    observer: Optional[Observability] = None
    #: kernel="compiled" with compile_fallback: the error document of
    #: the specialization failure that forced the event-kernel run
    #: (None = no fallback happened).
    compile_error: Optional[dict] = None
    #: kernel="trace": formation / deopt / coverage report of the
    #: trace tier (:func:`repro.sim.trace.trace_report`); None under
    #: every other kernel.
    trace: Optional[dict] = None

    def __repr__(self) -> str:
        return f"SimResult(cycles={self.cycles}, results={self.results})"


class Simulator:
    """Cycle-level simulation of a uIR circuit against a memory image.

    ``memory`` is a :class:`repro.frontend.interp.Memory` (or any object
    with a mutable ``words`` list laid out like ``circuit.array_layout``).
    The simulation mutates it in place, so callers can diff against the
    reference interpreter afterwards.
    """

    def __init__(self, circuit: AcceleratorCircuit, memory,
                 params: Optional[SimParams] = None):
        self.circuit = circuit
        self.memory_obj = memory
        self.params = params or SimParams()
        if self.params.kernel not in ("event", "dense", "compiled",
                                      "trace"):
            raise SimulationError(
                f"unknown simulation kernel {self.params.kernel!r}")
        if self.params.validate:
            validate_circuit(circuit)

    def run(self, args: Sequence = ()) -> SimResult:
        if self.params.kernel == "dense":
            return self._run_dense(args)
        if self.params.kernel in ("compiled", "trace"):
            from .compile import compiled_for
            try:
                compiled = compiled_for(self.circuit)
            except KernelCompileError as exc:
                if not self.params.compile_fallback:
                    raise
                import warnings
                warnings.warn(
                    f"compiled kernel unavailable, falling back to "
                    f"event kernel: {exc}", RuntimeWarning,
                    stacklevel=2)
                result = self._run_event(args)
                result.compile_error = error_document(exc)
                return result
            return self._run_event(args, compiled=compiled)
        return self._run_event(args)

    def _make_injector(self) -> Optional[FaultInjector]:
        plan = self.params.faults
        return FaultInjector(plan) if plan is not None else None

    @staticmethod
    def _attach(err: SimulationError, stats: SimStats,
                now: int) -> SimulationError:
        """Stamp partial run state onto a failure so repro bundles can
        ship the SimStats of the doomed run, not just the message."""
        stats.cycles = now
        err.stats = stats
        return err

    # -- watchdog ----------------------------------------------------------
    # Both kernels share the same guard ordering, checked after each
    # simulated cycle: deadlock (no progress) wins over the max-cycles
    # bound (still progressing, just too long), which wins over the
    # wall-clock watchdog.  ``now >= max_cycles`` bounds the run at
    # *exactly* max_cycles simulated cycles in both kernels (the old
    # ``>`` allowed one extra cycle).
    class _Watchdog:
        __slots__ = ("limit", "start", "hb_every", "hb")

        def __init__(self, params):
            self.limit = params.wallclock_timeout
            self.start = time.perf_counter() if self.limit is not None \
                else 0.0
            self.hb = params.heartbeat
            self.hb_every = params.heartbeat_cycles \
                if self.hb is not None else 0

        def check(self, now: int, stats: SimStats) -> None:
            if self.limit is not None and \
                    not (now & (WATCHDOG_STRIDE - 1)):
                elapsed = time.perf_counter() - self.start
                if elapsed > self.limit:
                    raise Simulator._attach(
                        WatchdogTimeout(now, elapsed, self.limit),
                        stats, now)
            if self.hb_every and now % self.hb_every == 0:
                self.hb(now, stats)

    # -- batched run (vectorized attempt) ----------------------------------
    def _run_batch_attempt(self, args: Sequence, image: LaneImage,
                           batch: BatchContext) -> SimResult:
        """One lane-vectorized run over ``image`` — kernel selection
        mirrors :meth:`run` minus the dense kernel (the caller routes
        dense requests to sequential per-lane runs)."""
        if self.params.kernel in ("compiled", "trace"):
            from .compile import compiled_for
            try:
                compiled = compiled_for(self.circuit)
            except KernelCompileError as exc:
                if not self.params.compile_fallback:
                    raise
                import warnings
                warnings.warn(
                    f"compiled kernel unavailable, falling back to "
                    f"event kernel: {exc}", RuntimeWarning,
                    stacklevel=2)
                result = self._run_event(args, image=image, batch=batch)
                result.compile_error = error_document(exc)
                return result
            return self._run_event(args, compiled=compiled,
                                   image=image, batch=batch)
        return self._run_event(args, image=image, batch=batch)

    # -- event kernel (also hosts the compiled kernel) ---------------------
    def _run_event(self, args: Sequence, compiled=None, image=None,
                   batch=None) -> SimResult:
        params = self.params
        stats = SimStats()
        stats.kernel = params.kernel if compiled is not None else "event"
        sched = EventScheduler()
        observer = Observability(stats, params.observe,
                                 params.trace_capacity)
        faults = self._make_injector()
        memsys = MemorySystem(
            self.circuit,
            self.memory_obj.words if image is None else image,
            stats, faults)
        runtime = SimRuntime(self.circuit, memsys, stats, params,
                             sched=sched, observer=observer,
                             faults=faults, compiled=compiled,
                             batch=batch)
        runtime.start_root(list(args))

        now = 0
        idle_cycles = 0
        deadlock_window = params.deadlock_window
        max_cycles = params.max_cycles
        watchdog = self._Watchdog(params)
        wheel = sched.wheel
        trace_on = runtime.trace_enabled
        if trace_on:
            from .trace import steady_loop, trace_report

            def _fail_deadlock(at: int) -> None:
                raise self._attach(DeadlockError(
                    at, self._deadlock_report(runtime),
                    self._deadlock_diagnostics(runtime)), stats, at)

            def _fail_timeout(at: int) -> None:
                raise self._attach(
                    SimulationTimeout(at, max_cycles), stats, at)
        # The steady loop is only worth probing when a trace is live
        # or the instance layer went idle last cycle (a quiescent-span
        # jump may apply); ``probe`` tracks the latter.
        probe = trace_on
        while not runtime.root_done:
            if probe or (trace_on and runtime.trace_live):
                now, idle_cycles = steady_loop(
                    runtime, memsys, sched, stats, watchdog, now,
                    idle_cycles, _fail_deadlock, _fail_timeout)
                if runtime.root_done:
                    break
            sched.now = now
            if faults is not None:
                faults.now = now
            if wheel:
                sched.dispatch(now)
            active = runtime.tick_event(now)
            if trace_on:
                probe = not active
            active |= memsys.tick_active(now)
            now += 1
            if runtime.root_done:
                break   # completed this very cycle: no limit applies
            if active:
                idle_cycles = 0
            else:
                idle_cycles += 1
                stats.idle_engine_cycles += 1
                if idle_cycles > deadlock_window:
                    raise self._attach(DeadlockError(
                        now, self._deadlock_report(runtime),
                        self._deadlock_diagnostics(runtime)), stats, now)
            if now >= max_cycles:
                raise self._attach(
                    SimulationTimeout(now, max_cycles), stats, now)
            watchdog.check(now, stats)
        stats.cycles = now
        result = SimResult(now, runtime.root_results or [], stats,
                           observer=observer)
        if trace_on:
            result.trace = trace_report(runtime, stats)
            _count_trace(result.trace)
        return result

    # -- dense kernel (reference) -----------------------------------------
    def _run_dense(self, args: Sequence) -> SimResult:
        params = self.params
        stats = SimStats()
        stats.kernel = "dense"
        faults = self._make_injector()
        memsys = MemorySystem(self.circuit, self.memory_obj.words,
                              stats, faults)
        runtime = SimRuntime(self.circuit, memsys, stats, params,
                             faults=faults)
        runtime.start_root(list(args))

        now = 0
        idle_cycles = 0
        deadlock_window = params.deadlock_window
        max_cycles = params.max_cycles
        watchdog = self._Watchdog(params)
        while not runtime.root_done:
            if faults is not None:
                faults.now = now
            active = runtime.tick(now)
            memsys.tick(now)
            active |= memsys.commit()
            now += 1
            if runtime.root_done:
                break   # completed this very cycle: no limit applies
            if active:
                idle_cycles = 0
            else:
                idle_cycles += 1
                stats.idle_engine_cycles += 1
                if idle_cycles > deadlock_window:
                    raise self._attach(DeadlockError(
                        now, self._deadlock_report(runtime),
                        self._deadlock_diagnostics(runtime)), stats, now)
            if now >= max_cycles:
                raise self._attach(
                    SimulationTimeout(now, max_cycles), stats, now)
            watchdog.check(now, stats)
        stats.cycles = now
        return SimResult(now, runtime.root_results or [], stats)

    # -- deadlock diagnostics ----------------------------------------------
    @staticmethod
    def _deadlock_diagnostics(runtime: SimRuntime) -> List[dict]:
        """Stall-attributed snapshot of every live task block."""
        report = []
        for name, block in runtime.blocks.items():
            if not block.busy():
                continue
            entry = {
                "task": name,
                "ready": len(block.ready),
                "active": len(block.active),
                "parked": len(block.parked),
                "instances": [],
            }
            for inst in block.active:
                nodes = []
                for sim in inst.node_sims:
                    cause = classify_node(sim)
                    if cause is not None:
                        nodes.append({"node": sim.node.name,
                                      "kind": sim.node.kind,
                                      "cause": cause,
                                      "loc": _node_loc(sim.node)})
                entry["instances"].append({
                    "liveouts": f"{len(inst.liveouts)}"
                                f"/{len(inst.task.live_out_types)}",
                    "pending_children": inst.pending_children,
                    "calls_outstanding": inst.calls_outstanding,
                    "enqueue_blocked": inst.enqueue_blocked,
                    "blocked_nodes": nodes,
                })
            report.append(entry)
        return report

    @classmethod
    def _deadlock_report(cls, runtime: SimRuntime) -> str:
        lines = []
        for entry in cls._deadlock_diagnostics(runtime):
            lines.append(
                f"{entry['task']}: ready={entry['ready']} "
                f"active={entry['active']} parked={entry['parked']}")
            for inst in entry["instances"]:
                blocked = ", ".join(
                    f"{n['node']}[{n['cause']}]"
                    + (f" at {n['loc']}" if n.get("loc") else "")
                    for n in inst["blocked_nodes"][:6])
                lines.append(
                    f"  inst liveouts={inst['liveouts']} "
                    f"children={inst['pending_children']} "
                    f"blocked: {blocked or '(none)'}")
        return "; ".join(lines) if lines else "all queues empty"


def simulate(circuit: AcceleratorCircuit, memory, args: Sequence = (),
             params: Optional[SimParams] = None) -> SimResult:
    """One-shot helper: run the circuit to completion."""
    if not telemetry.enabled():
        return Simulator(circuit, memory, params).run(args)
    with telemetry.tracer().span(
            "sim.run", category="sim", circuit=circuit.name,
            kernel=(params.kernel if params else "event")) as sp:
        result = Simulator(circuit, memory, params).run(args)
        sp.set(cycles=result.cycles)
        from ..core.serialize import circuit_fingerprint
        telemetry.note_fingerprint(circuit_fingerprint(circuit))
        if result.observer is not None and result.observer.tracing:
            # Register the cycle-level trace for the unified Perfetto
            # export; this span anchors its wall-clock window.
            telemetry.attach_sim_trace(circuit.name, result.observer,
                                       sp, result.cycles)
    return result


# ---------------------------------------------------------------------------
# Batched simulation
# ---------------------------------------------------------------------------

@dataclass
class BatchResult:
    """Outcome of :func:`simulate_batch` over N independent lanes.

    ``mode`` records how the lanes actually ran:

    * ``"vectorized"`` — one lane-vectorized run stepped every lane
      (uniform control held throughout).
    * ``"deopt"`` — the vectorized attempt hit lane-divergent control
      (or any other failure) and the lanes re-ran sequentially;
      ``deopt`` carries the error document of the abandoned attempt.
    * ``"sequential"`` — a policy gate (batch of 1, active fault plan,
      dense kernel) routed straight to per-lane runs.

    ``results[i]`` / ``errors[i]`` are exclusive per lane: a failed
    lane has ``results[i] is None`` and a PR-3 style error document
    (with ``lane`` and ``input_fingerprint`` keys) in ``errors[i]``;
    sibling lanes complete regardless.
    """

    lanes: int
    mode: str
    results: List[Optional[SimResult]]
    errors: List[Optional[dict]]
    stats: SimStats
    #: Error document of the abandoned vectorized attempt (mode
    #: "deopt" only).
    deopt: Optional[dict] = None
    #: Per-lane golden-check outcomes, filled by callers that verify
    #: (``Pipeline.evaluate_many``); None = not verified.
    verified: Optional[List[bool]] = None

    @property
    def ok(self) -> bool:
        return all(e is None for e in self.errors)


def _count_trace(rep: dict) -> None:
    """Tally one trace-kernel run's tier behavior in the metrics
    registry (counters surface in telemetry snapshots and the serve
    daemon's stats endpoint)."""
    if not telemetry.enabled():
        return
    met = telemetry.metrics()
    if rep["formed"]:
        met.counter("sim.trace.formed").inc(rep["formed"])
    if rep["warm"]:
        met.counter("sim.trace.warm").inc(rep["warm"])
    covered = rep["trace_cycles"] + rep["jumped_cycles"]
    if covered:
        met.counter("sim.trace.cycles").inc(covered)
    for cause, n in rep["deopts"].items():
        met.counter("sim.trace.deopts").inc(n, cause=cause)


def _count_batch(mode: str, lanes: int, deopt=None) -> None:
    """Tally one simulate_batch outcome in the metrics registry."""
    if not telemetry.enabled():
        return
    met = telemetry.metrics()
    met.counter("sim.batch.runs").inc(mode=mode)
    met.counter("sim.batch.lanes").inc(lanes, mode=mode)
    if deopt is not None:
        met.counter("sim.batch.deopts").inc(
            cause=deopt.get("error", "?"))


def simulate_batch(circuit: AcceleratorCircuit, memories: Sequence,
                   args_lanes: Optional[Sequence[Sequence]] = None,
                   params: Optional[SimParams] = None) -> BatchResult:
    """Run ``circuit`` over N independent workload lanes at once.

    ``memories[i]`` is lane *i*'s memory image (mutated in place, like
    :func:`simulate`); ``args_lanes[i]`` its root arguments (default:
    no arguments for every lane).  The vectorized attempt runs on
    *copies* of the images, so a deopt re-runs each lane sequentially
    against its untouched original — per-lane results and memory are
    bit-identical to N independent runs in every mode.
    """
    memories = list(memories)
    n = len(memories)
    if n == 0:
        raise SimulationError("simulate_batch needs at least one lane")
    if args_lanes is None:
        args_lanes = [() for _ in range(n)]
    else:
        args_lanes = [list(a) for a in args_lanes]
        if len(args_lanes) != n:
            raise SimulationError(
                f"args_lanes has {len(args_lanes)} entries for "
                f"{n} memory lanes")
    params = params or SimParams()
    sim = Simulator(circuit, memories[0], params)  # validates once
    scalar = replace(params, batch=None, validate=False)

    # Policy gates: nothing to amortize (one lane), fault plans
    # (enforced scalar fallback — see DESIGN.md section 9), and the
    # dense reference kernel all run per lane.
    if n == 1 or params.faults is not None or params.kernel == "dense":
        _count_batch("sequential", n)
        return _run_lanes_sequential(circuit, memories, args_lanes,
                                     scalar, "sequential")

    image = LaneImage([list(m.words) for m in memories])
    args = _pack_args(args_lanes, n)
    sim.params = replace(params, validate=False, batch=n)
    try:
        result = sim._run_batch_attempt(args, image, BatchContext(n))
    except Exception as exc:   # noqa: BLE001 — deopt on *anything*:
        # LaneDivergence is the designed trigger, but a lane-vector
        # reaching an unprepared scalar site surfaces as TypeError,
        # and a divergence-induced stall as DeadlockError; sequential
        # re-runs on the untouched originals answer all of them.
        doc = error_document(exc)
        _count_batch("deopt", n, deopt=doc)
        return _run_lanes_sequential(circuit, memories, args_lanes,
                                     scalar, "deopt", deopt=doc)

    for i, mem in enumerate(memories):
        mem.words[:] = image.lanes[i]
    stats = result.stats
    stats.batch_lanes = n
    stats.batch_mode = "vectorized"
    stats.lane_cycles = [result.cycles] * n
    results: List[Optional[SimResult]] = [
        SimResult(result.cycles, lane_row(result.results, i), stats,
                  observer=result.observer,
                  compile_error=result.compile_error)
        for i in range(n)]
    _count_batch("vectorized", n)
    return BatchResult(n, "vectorized", results, [None] * n, stats)


def _pack_args(args_lanes: Sequence[Sequence], n: int) -> List:
    """Per-position packing: a root argument that is identical (in the
    strict ``_same`` sense) across lanes stays scalar; a divergent one
    becomes a lane vector."""
    width = len(args_lanes[0])
    for a in args_lanes:
        if len(a) != width:
            raise SimulationError(
                "all lanes must pass the same number of root arguments")
    packed = []
    for j in range(width):
        first = args_lanes[0][j]
        if all(_same(first, a[j]) for a in args_lanes[1:]):
            packed.append(first)
        else:
            packed.append(LaneValues([a[j] for a in args_lanes]))
    return packed


def _run_lanes_sequential(circuit, memories, args_lanes, scalar_params,
                          mode: str, deopt=None) -> BatchResult:
    """Reference path: N independent scalar runs, one per lane, each
    against its own memory image.  A failing lane yields a batch-aware
    error document (lane index + input fingerprint) and does not stop
    its siblings."""
    n = len(memories)
    results: List[Optional[SimResult]] = [None] * n
    errors: List[Optional[dict]] = [None] * n
    for i, (mem, a) in enumerate(zip(memories, args_lanes)):
        before = list(mem.words)
        try:
            results[i] = simulate(circuit, mem, a, scalar_params)
        except ReproError as exc:
            doc = error_document(exc)
            doc["lane"] = i
            doc["input_fingerprint"] = lane_fingerprint(a, before)
            errors[i] = doc
    stats = SimStats.merged([r.stats for r in results
                             if r is not None])
    stats.batch_lanes = n
    stats.batch_mode = mode
    stats.lane_cycles = [r.cycles if r is not None else None
                        for r in results]
    return BatchResult(n, mode, results, errors, stats, deopt=deopt)

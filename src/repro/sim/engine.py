"""Top-level simulation driver.

Three kernels produce bit-identical results (same ``SimResult.cycles``,
same memory image, same outputs):

* ``kernel="event"`` (default) — wakeup-driven: only components with a
  pending wake are touched each cycle (see :mod:`repro.sim.events` and
  the instance-level machinery in :mod:`repro.sim.task`), and the
  memory system is skipped entirely while idle.  Typically several
  times faster than the dense sweep on memory-bound circuits.
* ``kernel="dense"`` — the original reference loop that sweeps every
  node of every active instance every cycle.  Kept as the equivalence
  oracle and for debugging the event kernel itself.
* ``kernel="compiled"`` — the event kernel's scheduler driving
  per-node step closures specialized once per circuit
  (:mod:`repro.sim.compile`): no per-tick ``isinstance``/attribute
  dispatch on the hot path.  Compiled artifacts are cached per
  canonical circuit fingerprint, so DSE workers and the fuzzer pay
  compilation once per design point.  If a circuit cannot be
  specialized, ``SimParams.compile_fallback`` selects between a
  warning + event-kernel run (default) and raising
  :class:`repro.errors.KernelCompileError`.

The event kernel also powers the observability layer
(:mod:`repro.sim.observe`): stall attribution per node/cause and an
optional ring-buffer trace, surfaced through ``SimResult.observer``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..core.circuit import AcceleratorCircuit
from ..core.validate import validate_circuit
from ..errors import (DeadlockError, KernelCompileError, SimulationError,
                      SimulationTimeout, WatchdogTimeout, error_document)
from .events import EventScheduler
from .faults import FaultInjector, FaultPlan
from .memory import MemorySystem
from .observe import Observability, classify_node, _node_loc
from .stats import SimStats
from .task import SimRuntime

#: The watchdog samples the wall clock every this many cycles — cheap
#: enough to leave on unconditionally when a timeout is configured.
WATCHDOG_STRIDE = 2048


@dataclass
class SimParams:
    """Knobs of the simulation environment (not of the circuit)."""

    max_cycles: int = 5_000_000
    deadlock_window: int = 4_000
    #: Concurrent invocations a loop task pipelines per tile (the
    #: paper's "multiple concurrent invocations outstanding").
    loop_invocation_window: int = 2
    #: Queue depth used for decoupled (<||deep>) task edges.
    decoupled_queue_depth: int = 64
    validate: bool = True
    #: "event" (wakeup-driven, default), "dense" (reference sweep) or
    #: "compiled" (event scheduler + specialized step closures).
    kernel: str = "event"
    #: kernel="compiled" only: when the circuit cannot be specialized,
    #: True (default) downgrades to a warning + event-kernel run;
    #: False raises :class:`repro.errors.KernelCompileError`.
    compile_fallback: bool = True
    #: Observability level: "off", "counters" (default) or "trace".
    observe: str = "counters"
    #: Ring-buffer capacity for observe="trace".
    trace_capacity: int = 65536
    #: Fault plan injected at the kernel's wake-source seams
    #: (:mod:`repro.sim.faults`); None = fault-free run.
    faults: Optional[FaultPlan] = None
    #: Wall-clock watchdog: abort with :class:`WatchdogTimeout` after
    #: this many seconds of real time (None = no wall-clock bound).
    wallclock_timeout: Optional[float] = None
    #: Progress heartbeat: call ``heartbeat(now, stats)`` every this
    #: many cycles (0 = off).  Lets long fuzz cases show liveness.
    heartbeat_cycles: int = 0
    heartbeat: Optional[Callable[[int, SimStats], None]] = None


@dataclass
class SimResult:
    cycles: int
    results: List
    stats: SimStats
    #: Observability layer of the run (None under the dense kernel).
    observer: Optional[Observability] = None
    #: kernel="compiled" with compile_fallback: the error document of
    #: the specialization failure that forced the event-kernel run
    #: (None = no fallback happened).
    compile_error: Optional[dict] = None

    def __repr__(self) -> str:
        return f"SimResult(cycles={self.cycles}, results={self.results})"


class Simulator:
    """Cycle-level simulation of a uIR circuit against a memory image.

    ``memory`` is a :class:`repro.frontend.interp.Memory` (or any object
    with a mutable ``words`` list laid out like ``circuit.array_layout``).
    The simulation mutates it in place, so callers can diff against the
    reference interpreter afterwards.
    """

    def __init__(self, circuit: AcceleratorCircuit, memory,
                 params: Optional[SimParams] = None):
        self.circuit = circuit
        self.memory_obj = memory
        self.params = params or SimParams()
        if self.params.kernel not in ("event", "dense", "compiled"):
            raise SimulationError(
                f"unknown simulation kernel {self.params.kernel!r}")
        if self.params.validate:
            validate_circuit(circuit)

    def run(self, args: Sequence = ()) -> SimResult:
        if self.params.kernel == "dense":
            return self._run_dense(args)
        if self.params.kernel == "compiled":
            from .compile import compiled_for
            try:
                compiled = compiled_for(self.circuit)
            except KernelCompileError as exc:
                if not self.params.compile_fallback:
                    raise
                import warnings
                warnings.warn(
                    f"compiled kernel unavailable, falling back to "
                    f"event kernel: {exc}", RuntimeWarning,
                    stacklevel=2)
                result = self._run_event(args)
                result.compile_error = error_document(exc)
                return result
            return self._run_event(args, compiled=compiled)
        return self._run_event(args)

    def _make_injector(self) -> Optional[FaultInjector]:
        plan = self.params.faults
        return FaultInjector(plan) if plan is not None else None

    @staticmethod
    def _attach(err: SimulationError, stats: SimStats,
                now: int) -> SimulationError:
        """Stamp partial run state onto a failure so repro bundles can
        ship the SimStats of the doomed run, not just the message."""
        stats.cycles = now
        err.stats = stats
        return err

    # -- watchdog ----------------------------------------------------------
    # Both kernels share the same guard ordering, checked after each
    # simulated cycle: deadlock (no progress) wins over the max-cycles
    # bound (still progressing, just too long), which wins over the
    # wall-clock watchdog.  ``now >= max_cycles`` bounds the run at
    # *exactly* max_cycles simulated cycles in both kernels (the old
    # ``>`` allowed one extra cycle).
    class _Watchdog:
        __slots__ = ("limit", "start", "hb_every", "hb")

        def __init__(self, params):
            self.limit = params.wallclock_timeout
            self.start = time.perf_counter() if self.limit is not None \
                else 0.0
            self.hb = params.heartbeat
            self.hb_every = params.heartbeat_cycles \
                if self.hb is not None else 0

        def check(self, now: int, stats: SimStats) -> None:
            if self.limit is not None and \
                    not (now & (WATCHDOG_STRIDE - 1)):
                elapsed = time.perf_counter() - self.start
                if elapsed > self.limit:
                    raise Simulator._attach(
                        WatchdogTimeout(now, elapsed, self.limit),
                        stats, now)
            if self.hb_every and now % self.hb_every == 0:
                self.hb(now, stats)

    # -- event kernel (also hosts the compiled kernel) ---------------------
    def _run_event(self, args: Sequence, compiled=None) -> SimResult:
        params = self.params
        stats = SimStats()
        stats.kernel = "compiled" if compiled is not None else "event"
        sched = EventScheduler()
        observer = Observability(stats, params.observe,
                                 params.trace_capacity)
        faults = self._make_injector()
        memsys = MemorySystem(self.circuit, self.memory_obj.words,
                              stats, faults)
        runtime = SimRuntime(self.circuit, memsys, stats, params,
                             sched=sched, observer=observer,
                             faults=faults, compiled=compiled)
        runtime.start_root(list(args))

        now = 0
        idle_cycles = 0
        deadlock_window = params.deadlock_window
        max_cycles = params.max_cycles
        watchdog = self._Watchdog(params)
        wheel = sched.wheel
        while not runtime.root_done:
            sched.now = now
            if faults is not None:
                faults.now = now
            if wheel:
                sched.dispatch(now)
            active = runtime.tick_event(now)
            active |= memsys.tick_active(now)
            now += 1
            if runtime.root_done:
                break   # completed this very cycle: no limit applies
            if active:
                idle_cycles = 0
            else:
                idle_cycles += 1
                stats.idle_engine_cycles += 1
                if idle_cycles > deadlock_window:
                    raise self._attach(DeadlockError(
                        now, self._deadlock_report(runtime),
                        self._deadlock_diagnostics(runtime)), stats, now)
            if now >= max_cycles:
                raise self._attach(
                    SimulationTimeout(now, max_cycles), stats, now)
            watchdog.check(now, stats)
        stats.cycles = now
        return SimResult(now, runtime.root_results or [], stats,
                         observer=observer)

    # -- dense kernel (reference) -----------------------------------------
    def _run_dense(self, args: Sequence) -> SimResult:
        params = self.params
        stats = SimStats()
        stats.kernel = "dense"
        faults = self._make_injector()
        memsys = MemorySystem(self.circuit, self.memory_obj.words,
                              stats, faults)
        runtime = SimRuntime(self.circuit, memsys, stats, params,
                             faults=faults)
        runtime.start_root(list(args))

        now = 0
        idle_cycles = 0
        deadlock_window = params.deadlock_window
        max_cycles = params.max_cycles
        watchdog = self._Watchdog(params)
        while not runtime.root_done:
            if faults is not None:
                faults.now = now
            active = runtime.tick(now)
            memsys.tick(now)
            active |= memsys.commit()
            now += 1
            if runtime.root_done:
                break   # completed this very cycle: no limit applies
            if active:
                idle_cycles = 0
            else:
                idle_cycles += 1
                stats.idle_engine_cycles += 1
                if idle_cycles > deadlock_window:
                    raise self._attach(DeadlockError(
                        now, self._deadlock_report(runtime),
                        self._deadlock_diagnostics(runtime)), stats, now)
            if now >= max_cycles:
                raise self._attach(
                    SimulationTimeout(now, max_cycles), stats, now)
            watchdog.check(now, stats)
        stats.cycles = now
        return SimResult(now, runtime.root_results or [], stats)

    # -- deadlock diagnostics ----------------------------------------------
    @staticmethod
    def _deadlock_diagnostics(runtime: SimRuntime) -> List[dict]:
        """Stall-attributed snapshot of every live task block."""
        report = []
        for name, block in runtime.blocks.items():
            if not block.busy():
                continue
            entry = {
                "task": name,
                "ready": len(block.ready),
                "active": len(block.active),
                "parked": len(block.parked),
                "instances": [],
            }
            for inst in block.active:
                nodes = []
                for sim in inst.node_sims:
                    cause = classify_node(sim)
                    if cause is not None:
                        nodes.append({"node": sim.node.name,
                                      "kind": sim.node.kind,
                                      "cause": cause,
                                      "loc": _node_loc(sim.node)})
                entry["instances"].append({
                    "liveouts": f"{len(inst.liveouts)}"
                                f"/{len(inst.task.live_out_types)}",
                    "pending_children": inst.pending_children,
                    "calls_outstanding": inst.calls_outstanding,
                    "enqueue_blocked": inst.enqueue_blocked,
                    "blocked_nodes": nodes,
                })
            report.append(entry)
        return report

    @classmethod
    def _deadlock_report(cls, runtime: SimRuntime) -> str:
        lines = []
        for entry in cls._deadlock_diagnostics(runtime):
            lines.append(
                f"{entry['task']}: ready={entry['ready']} "
                f"active={entry['active']} parked={entry['parked']}")
            for inst in entry["instances"]:
                blocked = ", ".join(
                    f"{n['node']}[{n['cause']}]"
                    + (f" at {n['loc']}" if n.get("loc") else "")
                    for n in inst["blocked_nodes"][:6])
                lines.append(
                    f"  inst liveouts={inst['liveouts']} "
                    f"children={inst['pending_children']} "
                    f"blocked: {blocked or '(none)'}")
        return "; ".join(lines) if lines else "all queues empty"


def simulate(circuit: AcceleratorCircuit, memory, args: Sequence = (),
             params: Optional[SimParams] = None) -> SimResult:
    """One-shot helper: run the circuit to completion."""
    return Simulator(circuit, memory, params).run(args)

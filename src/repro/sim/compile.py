"""Compiled simulation kernel: circuit -> dispatch-free step closures.

The event kernel (PR 1) fixed *which* components tick each cycle; this
module fixes *how much one tick costs*.  ``kernel="compiled"`` keeps
the event kernel's scheduler, wake plumbing, and channel commit
machinery unchanged (that is the correctness-critical part) and
replaces only the per-node dispatch: instead of a polymorphic
``sim.tick(now)`` — two attribute loads, a method-wrapper call, and a
body full of ``self.x.y`` chains — every node instance gets a
**specialized step closure** generated once at instance start, with
everything the body touches bound as closure locals:

* channel endpoints (*ready tokens*: the channel's ``queue`` deque for
  FIFO edges, truthy exactly when a token is visible; the latched
  channel itself for invariant edges — see ``LatchedChannel.__bool__``),
* interned ``pop``/``peek`` bound methods per input edge (producer-side
  ``can_push``/``push`` stay dynamic calls: fault channels override
  them, and the fork buffers route through them),
* the FU's fault-adjusted latency / initiation interval as plain ints,
* the node's fork buffers, with the sweep-loop fork pre-drain folded
  into the step prologue,
* a pre-resolved operation evaluator
  (:func:`repro.core.semantics.specialize_compute`) that skips the op
  string-compare chain and the per-fire type dispatch.

Each closure replicates the matching ``NodeSim.tick`` *exactly* —
guard order, ``instance._act`` increments, wake/self-schedule calls,
stats counters — so the compiled kernel is bit-identical to the event
kernel by the same superset-sweep argument (tick is a strict no-op
when its guards fail).  State that outside observers read (stall
classification, deadlock diagnostics, completion gating) stays on the
sim object: ``records``, ``sink_count``, ``started``/``finished``/
``issued``, ``_eq_blocked``; only node-private scalars (a compute
unit's ``next_fire``, a source's pending list) move into the closure.

Compilation is two-phase so its cost is paid once per *design point*,
not once per invocation:

* **compile** (:func:`compile_circuit`) — per task, select a binder
  per node position and precompute node-content data (specialized
  evaluators, poison values, trip arithmetic constants).  Cached per
  canonical circuit fingerprint (:func:`repro.core.serialize.
  circuit_fingerprint`), with an identity memo so repeat simulations
  of the same circuit object (a fuzzer running N fault plans, a DSE
  worker sweeping sim-axes) skip even the fingerprint hash.
* **bind** (:meth:`CompiledTask.bind`) — per instance, close each
  binder over that instance's freshly constructed channels, forks and
  fault-adjusted latencies.  Spawn-heavy workloads create thousands
  of instances, so binders only do O(ports) work.

Fingerprints are computed on the *canonical content form* (node order
sorted away), so two equal-fingerprint circuit objects can in
principle order their node lists differently; a cached plan indexes
by node position, so every cache hit is verified against a cheap
structural signature and recompiled on mismatch (never observed for
canonical circuits, which rebuild deterministically — belt and
braces for hand-built duplicates).

A circuit containing a node kind with no registered step compiler
raises :class:`repro.errors.KernelCompileError`; the engine either
falls back to the event kernel with a warning or surfaces the error,
per ``SimParams.compile_fallback``.
"""

from __future__ import annotations

import weakref
from typing import Callable, Dict, List, Optional, Tuple

from ..core.lanes import (ctrl, lane_lift_list, lane_lift_pos,
                          lane_pack_words, lane_select,
                          lane_unpack_words, vector_key)
from ..core.semantics import (poison_value, specialize_compute,
                              specialize_compute_pos)
from ..core.serialize import circuit_fingerprint
from ..errors import KernelCompileError
from .channel import Channel
from .nodesim import _CallRecord, _MemRecord, LoopControlSim
from .memory import MemRequest


def _nop(now: int) -> None:
    """Step for nodes that can never act (unwired inputs, no work)."""


def _ready_token(ch):
    """Truthy-iff-ready proxy for a channel's consumer side."""
    return ch.queue if isinstance(ch, Channel) else ch


def _tokens_pops(chans):
    return (tuple(_ready_token(ch) for ch in chans),
            tuple(ch.pop for ch in chans))


def _fork_accept(fork):
    """Per-fork accept, specialized for single-consumer forks.

    ``_ForkBuffer.accept`` loops over the fork's channels and
    allocates a fresh pending list per call; the overwhelmingly common
    single-consumer fork needs neither.  Every call site in this
    module guards on ``fork.pending`` first (accept is only reached
    when the fork is drained), so the specialized form keeps the
    existing empty pending list instead of allocating a new one."""
    chans = fork.channels
    if len(chans) != 1:
        return fork.accept
    ch, = chans
    can_push = ch.can_push
    push = ch.push

    def accept(value, instance):
        fork.value = value
        if can_push():
            push(value)
            instance._act += 1
            if fork.pending:
                fork.pending = []
        else:
            fork.pending = [ch]

    return accept


def _rearm_locals(sim, inst):
    """(idx, in_defer, defer_append) for a binder's self-rearm tail.

    The event kernel's sweep does, around every tick: set the sweep
    cursor, snapshot ``_act``, and — if the node acted and is not a
    precise-wake kind — push a look-again wake for next cycle.  The
    compiled sweep is a bare ``step(now)`` call per node, so every
    binder folds that bookkeeping into the step body itself: cursor
    first, then on any path that acted (``_act`` changed),

        if not in_defer[idx]:
            in_defer[idx] = 1
            defer_append(idx)

    Multi-exit bodies do it in a ``try/finally`` guarded by an ``_act``
    snapshot (zero-cost on the non-exception path under CPython 3.11's
    exception tables); single-act bodies test directly.  The captured
    objects are stable for the instance's lifetime: ``_defer`` is only
    ever ``clear()``-ed (never reassigned) and ``_in_defer`` is mutated
    in place.  Precise kinds (compute/tensor/fused) never self-rearm —
    their steps only set the cursor."""
    return sim.idx, inst._in_defer, inst._defer.append


# ---------------------------------------------------------------------------
# Per-kind binders.  Each ``_bind_<kind>(sim, inst, data)`` returns a
# ``step(now)`` closure replicating ``<Kind>Sim.tick`` with the sweep
# loop's fork pre-drain folded in as the prologue.
# ---------------------------------------------------------------------------

def _bind_source(sim, inst, data):
    """const / livein: one token per (non-latched) consumer edge."""
    value = sim.node.value if sim.node.kind == "const" else sim.value
    pending = [inst.channels[id(c)] for c in sim._pending]
    if not pending:
        return _nop
    idx, in_defer, defer_append = _rearm_locals(sim, inst)

    def step(now):
        nonlocal pending
        inst._cursor = idx
        if not pending:
            return
        remaining = []
        acted = False
        for ch in pending:
            if ch.can_push():
                ch.push(value)
                inst._act += 1
                acted = True
            else:
                remaining.append(ch)
        pending = remaining
        if acted and not in_defer[idx]:
            in_defer[idx] = 1
            defer_append(idx)

    return step


def _bind_liveout(sim, inst, data):
    conn = sim.node.inp.incoming
    if conn is None:
        return _nop
    ch = inst.channels[id(conn)]
    token = _ready_token(ch)
    pop = ch.pop
    index = sim.node.index
    record = inst.record_liveout
    idx, in_defer, defer_append = _rearm_locals(sim, inst)

    def step(now):
        inst._cursor = idx
        if token:
            record(index, pop())
            inst._act += 1
            if not in_defer[idx]:
                in_defer[idx] = 1
                defer_append(idx)

    return step


def _bind_compute(sim, inst, data):
    """compute/tensor FU step, arity-specialized.

    The common shapes (wired output fork, 1/2/3 inputs) get fully
    unrolled variants: per-input ready-token truth tests, positional
    pops feeding a positional evaluator (no operand-list allocation),
    and both in-order retire loops inlined.  Anything else (unwired
    output, operand-count mismatch) falls back to the generic
    loop-based twin of ``ComputeSim.tick``.

    In a batched runtime the evaluators are swapped for lane-lifted
    twins at bind time; the scalar closures below are byte-identical
    either way, so the single-instance compiled kernel pays nothing."""
    arity, fpos, flist, vkey = data
    if inst.runtime.batch is not None:
        fpos = lane_lift_pos(arity, fpos, vkey)
        flist = lane_lift_list(flist)
    chans = sim.in_chans
    if chans is None:
        return _nop
    fork = sim.out_fork
    pipe = sim.pipe
    latency = sim.latency
    interval = sim.interval
    capacity = sim.capacity
    idx = sim.idx
    kind = sim.node.kind
    sched = inst.schedule_node
    wake = inst.wake_node
    fires = inst.stats.node_fires
    popleft = pipe.popleft
    append = pipe.append
    next_fire = 0
    if fork is not None and len(chans) == arity and arity <= 3:
        accept = _fork_accept(fork)
        drain = fork.drain
        if latency == 1 and interval == 1:
            # Combinational FU: capacity == max(1, latency) == 1, so
            # the pipe holds at most the single output of a fire whose
            # fork was blocked, and ``now < next_fire`` can never hold
            # (a node steps at most once per cycle).  The result
            # usually goes straight to the fork without touching the
            # pipe deque at all.
            if arity == 1:
                ca, = chans
                qa = _ready_token(ca)
                pa = ca.pop

                def step(now):
                    inst._cursor = idx
                    if fork.pending:
                        drain(inst)
                    if pipe:
                        if fork.pending:
                            return
                        accept(pipe[0][1], inst)
                        popleft()
                        inst._act += 1
                    if not qa:
                        return
                    result = fpos(pa())
                    inst._act += 1
                    fires[kind] += 1
                    if fork.pending:
                        append((now, result))
                        return
                    accept(result, inst)
                    inst._act += 1
                    if qa:
                        wake(idx)

                return step
            if arity == 2:
                ca, cb = chans
                qa = _ready_token(ca)
                qb = _ready_token(cb)
                pa = ca.pop
                pb = cb.pop

                def step(now):
                    inst._cursor = idx
                    if fork.pending:
                        drain(inst)
                    if pipe:
                        if fork.pending:
                            return
                        accept(pipe[0][1], inst)
                        popleft()
                        inst._act += 1
                    if not qa or not qb:
                        return
                    result = fpos(pa(), pb())
                    inst._act += 1
                    fires[kind] += 1
                    if fork.pending:
                        append((now, result))
                        return
                    accept(result, inst)
                    inst._act += 1
                    if qa and qb:
                        wake(idx)

                return step
            ca, cb, cc = chans
            qa = _ready_token(ca)
            qb = _ready_token(cb)
            qc = _ready_token(cc)
            pa = ca.pop
            pb = cb.pop
            pc = cc.pop

            def step(now):
                inst._cursor = idx
                if fork.pending:
                    drain(inst)
                if pipe:
                    if fork.pending:
                        return
                    accept(pipe[0][1], inst)
                    popleft()
                    inst._act += 1
                if not qa or not qb or not qc:
                    return
                result = fpos(pa(), pb(), pc())
                inst._act += 1
                fires[kind] += 1
                if fork.pending:
                    append((now, result))
                    return
                accept(result, inst)
                inst._act += 1
                if qa and qb and qc:
                    wake(idx)

            return step
        if arity == 1:
            ca, = chans
            qa = _ready_token(ca)
            pa = ca.pop
            if interval == 1:
                # Fully pipelined FU (II == 1): ``now < next_fire``
                # can never hold (a node steps at most once per
                # cycle), so the issue-throttle machinery vanishes.
                def step(now):
                    inst._cursor = idx
                    if fork.pending:
                        drain(inst)
                    while pipe and pipe[0][0] <= now:
                        if fork.pending:
                            break
                        accept(pipe[0][1], inst)
                        popleft()
                        inst._act += 1
                    if len(pipe) >= capacity or not qa:
                        return
                    append((now + latency - 1, fpos(pa())))
                    sched(idx, now + latency - 1)
                    inst._act += 1
                    fires[kind] += 1
                    if len(pipe) < capacity and qa:
                        wake(idx)

                return step

            def step(now):
                nonlocal next_fire
                inst._cursor = idx
                if fork.pending:
                    drain(inst)
                while pipe and pipe[0][0] <= now:
                    if fork.pending:
                        break
                    accept(pipe[0][1], inst)
                    popleft()
                    inst._act += 1
                if now < next_fire or len(pipe) >= capacity \
                        or not qa:
                    return
                append((now + latency - 1, fpos(pa())))
                next_fire = now + interval
                if latency > 1:
                    sched(idx, now + latency - 1)
                if interval > 1:
                    sched(idx, next_fire)
                inst._act += 1
                fires[kind] += 1
                while pipe and pipe[0][0] <= now:
                    if fork.pending:
                        break
                    accept(pipe[0][1], inst)
                    popleft()
                    inst._act += 1
                if interval == 1 and len(pipe) < capacity and qa:
                    wake(idx)

            return step
        if arity == 2:
            ca, cb = chans
            qa = _ready_token(ca)
            qb = _ready_token(cb)
            pa = ca.pop
            pb = cb.pop
            if interval == 1:
                def step(now):
                    inst._cursor = idx
                    if fork.pending:
                        drain(inst)
                    while pipe and pipe[0][0] <= now:
                        if fork.pending:
                            break
                        accept(pipe[0][1], inst)
                        popleft()
                        inst._act += 1
                    if len(pipe) >= capacity or not qa or not qb:
                        return
                    append((now + latency - 1, fpos(pa(), pb())))
                    sched(idx, now + latency - 1)
                    inst._act += 1
                    fires[kind] += 1
                    if len(pipe) < capacity and qa and qb:
                        wake(idx)

                return step

            def step(now):
                nonlocal next_fire
                inst._cursor = idx
                if fork.pending:
                    drain(inst)
                while pipe and pipe[0][0] <= now:
                    if fork.pending:
                        break
                    accept(pipe[0][1], inst)
                    popleft()
                    inst._act += 1
                if now < next_fire or len(pipe) >= capacity \
                        or not qa or not qb:
                    return
                append((now + latency - 1, fpos(pa(), pb())))
                next_fire = now + interval
                if latency > 1:
                    sched(idx, now + latency - 1)
                if interval > 1:
                    sched(idx, next_fire)
                inst._act += 1
                fires[kind] += 1
                while pipe and pipe[0][0] <= now:
                    if fork.pending:
                        break
                    accept(pipe[0][1], inst)
                    popleft()
                    inst._act += 1
                if interval == 1 and len(pipe) < capacity \
                        and qa and qb:
                    wake(idx)

            return step
        ca, cb, cc = chans
        qa = _ready_token(ca)
        qb = _ready_token(cb)
        qc = _ready_token(cc)
        pa = ca.pop
        pb = cb.pop
        pc = cc.pop

        def step(now):
            nonlocal next_fire
            inst._cursor = idx
            if fork.pending:
                drain(inst)
            while pipe and pipe[0][0] <= now:
                if fork.pending:
                    break
                accept(pipe[0][1], inst)
                popleft()
                inst._act += 1
            if now < next_fire or len(pipe) >= capacity \
                    or not qa or not qb or not qc:
                return
            append((now + latency - 1, fpos(pa(), pb(), pc())))
            next_fire = now + interval
            if latency > 1:
                sched(idx, now + latency - 1)
            if interval > 1:
                sched(idx, next_fire)
            inst._act += 1
            fires[kind] += 1
            while pipe and pipe[0][0] <= now:
                if fork.pending:
                    break
                accept(pipe[0][1], inst)
                popleft()
                inst._act += 1
            if interval == 1 and len(pipe) < capacity \
                    and qa and qb and qc:
                wake(idx)

        return step

    # Generic fallback: unwired output or operand-count mismatch.
    tokens, pops = _tokens_pops(chans)

    def step(now):
        nonlocal next_fire
        inst._cursor = idx
        if fork is not None and fork.pending:
            fork.drain(inst)
        while pipe and pipe[0][0] <= now:
            if fork is not None:
                if fork.pending:
                    break
                fork.accept(pipe[0][1], inst)
            popleft()
            inst._act += 1
        if now < next_fire or len(pipe) >= capacity:
            return
        for tok in tokens:
            if not tok:
                return
        vals = [pop() for pop in pops]
        append((now + latency - 1, flist(vals)))
        next_fire = now + interval
        if latency > 1:
            sched(idx, now + latency - 1)
        if interval > 1:
            sched(idx, next_fire)
        inst._act += 1
        fires[kind] += 1
        while pipe and pipe[0][0] <= now:
            if fork is not None:
                if fork.pending:
                    break
                fork.accept(pipe[0][1], inst)
            popleft()
            inst._act += 1
        if interval == 1 and len(pipe) < capacity:
            for tok in tokens:
                if not tok:
                    break
            else:
                wake(idx)

    return step


def _bind_fused(sim, inst, evalf):
    chans = sim.in_chans
    if chans is None:
        return _nop
    if inst.runtime.batch is not None:
        evalf = lane_lift_list(evalf)
    tokens, pops = _tokens_pops(chans)
    fork = sim.out_fork
    pipe = sim.pipe
    latency = sim.latency
    idx = sim.idx
    sched = inst.schedule_node
    wake = inst.wake_node
    fires = inst.stats.node_fires
    popleft = pipe.popleft
    append = pipe.append
    if fork is not None:
        accept = _fork_accept(fork)
        drain = fork.drain
        if latency == 1:
            # Combinational fused region (same argument as the
            # compute comb path: capacity 1, one step per cycle).
            def step(now):
                inst._cursor = idx
                if fork.pending:
                    drain(inst)
                if pipe:
                    if fork.pending:
                        return
                    accept(pipe[0][1], inst)
                    popleft()
                    inst._act += 1
                for tok in tokens:
                    if not tok:
                        return
                ins = [pop() for pop in pops]
                result = evalf(ins)
                inst._act += 1
                fires["fused"] += 1
                if fork.pending:
                    append((now, result))
                    return
                accept(result, inst)
                inst._act += 1
                for tok in tokens:
                    if not tok:
                        break
                else:
                    wake(idx)

            return step

        def step(now):
            inst._cursor = idx
            if fork.pending:
                drain(inst)
            while pipe and pipe[0][0] <= now:
                if fork.pending:
                    break
                accept(pipe[0][1], inst)
                popleft()
                inst._act += 1
            if len(pipe) >= latency:
                return
            for tok in tokens:
                if not tok:
                    return
            ins = [pop() for pop in pops]
            append((now + latency - 1, evalf(ins)))
            if latency > 1:
                sched(idx, now + latency - 1)
            inst._act += 1
            fires["fused"] += 1
            while pipe and pipe[0][0] <= now:
                if fork.pending:
                    break
                accept(pipe[0][1], inst)
                popleft()
                inst._act += 1
            if len(pipe) < latency:
                for tok in tokens:
                    if not tok:
                        break
                else:
                    wake(idx)

        return step

    def step(now):
        inst._cursor = idx
        while pipe and pipe[0][0] <= now:
            popleft()
            inst._act += 1
        if len(pipe) >= latency:
            return
        for tok in tokens:
            if not tok:
                return
        ins = [pop() for pop in pops]
        append((now + latency - 1, evalf(ins)))
        if latency > 1:
            sched(idx, now + latency - 1)
        inst._act += 1
        fires["fused"] += 1
        while pipe and pipe[0][0] <= now:
            popleft()
            inst._act += 1
        if len(pipe) < latency:
            for tok in tokens:
                if not tok:
                    break
            else:
                wake(idx)

    return step


def _bind_select(sim, inst, data):
    chans = sim.in_chans
    if chans is None:
        return _nop
    (tc, ta, tb), (pc, pa, pb) = _tokens_pops(chans)
    fork = sim.out_fork
    pipe = sim.pipe
    popleft = pipe.popleft
    append = pipe.append
    # A lane-divergent select condition is data, not control: pick
    # per lane instead of truth-testing (batched runtimes only; the
    # scalar path keeps the raw conditional).
    batch = inst.runtime.batch is not None
    idx, in_defer, defer_append = _rearm_locals(sim, inst)
    if fork is not None:
        accept = _fork_accept(fork)
        drain = fork.drain

        def step(now):
            inst._cursor = idx
            a0 = inst._act
            try:
                if fork.pending:
                    drain(inst)
                if pipe:
                    if fork.pending:
                        return
                    accept(pipe[0][1], inst)
                    popleft()
                    inst._act += 1
                if not tc or not ta or not tb:
                    return
                cond = pc()
                a = pa()
                b = pb()
                result = (lane_select(cond, a, b) if batch
                          else (a if cond else b))
                inst._act += 1
                if fork.pending:
                    append((now, result))
                    return
                accept(result, inst)
                inst._act += 1
            finally:
                if inst._act != a0 and not in_defer[idx]:
                    in_defer[idx] = 1
                    defer_append(idx)

        return step

    def step(now):
        inst._cursor = idx
        a0 = inst._act
        try:
            while pipe and pipe[0][0] <= now:
                popleft()
                inst._act += 1
            if pipe:
                return
            if not tc or not ta or not tb:
                return
            cond = pc()
            a = pa()
            b = pb()
            append((now, lane_select(cond, a, b) if batch
                    else (a if cond else b)))
            inst._act += 1
            while pipe and pipe[0][0] <= now:
                popleft()
                inst._act += 1
        finally:
            if inst._act != a0 and not in_defer[idx]:
                in_defer[idx] = 1
                defer_append(idx)

    return step


def _bind_phi(sim, inst, data):
    node = sim.node
    init_ch = sim.init_chan
    init_tok = _ready_token(init_ch) if init_ch is not None else None
    init_pop = init_ch.pop if init_ch is not None else None
    back_ch = sim.back_chan
    back_tok = _ready_token(back_ch) if back_ch is not None else None
    back_pop = back_ch.pop if back_ch is not None else None
    fork = sim.out_fork
    final_fork = sim._forks.get(node.final.name)
    has_final = bool(node.final.outgoing)
    conditional = inst.loop_conditional
    emit_history = sim.emit_history
    forks = sim._fork_list
    on_sink = inst.on_sink_progress
    idx, in_defer, defer_append = _rearm_locals(sim, inst)
    fork_accept = _fork_accept(fork) if fork is not None else None
    final_accept = _fork_accept(final_fork) \
        if final_fork is not None else None

    def push_final(value):
        # _out_can + _out_push on node.final, mirrored.
        if final_fork is not None:
            if final_fork.pending:
                return
            final_accept(value, inst)
        inst._act += 1
        sim.final_pushed = True

    def step(now):
        inst._cursor = idx
        a0 = inst._act
        try:
            for f in forks:
                if f.pending:
                    f.drain(inst)
            if not sim.inited:
                if init_ch is None or not init_tok:
                    return
                value = init_pop()
                sim.init_val = value
                sim.next_val = value
                sim.have_next = True
                sim.inited = True
                inst._act += 1
            if not sim.have_next:
                trips = inst.loop_trips
                if back_ch is not None and back_tok and \
                        (trips is None or sim.backs < trips):
                    value = back_pop()
                    sim.backs += 1
                    sim.last_back = value
                    sim.sink_count = sim.backs
                    sim.next_val = value
                    sim.have_next = True
                    inst._act += 1
                    on_sink()
            if sim.have_next:
                if fork is None or not fork.pending:
                    if fork is not None:
                        fork_accept(sim.next_val, inst)
                    inst._act += 1
                    sim.last_emitted = sim.next_val
                    if conditional:
                        emit_history.append(sim.next_val)
                    sim.emitted += 1
                    sim.have_next = False
            # _maybe_push_final, mirrored.
            if sim.final_pushed or not has_final:
                return
            if not inst.loop_finished:
                return
            trips = inst.loop_trips or 0
            if conditional:
                if sim.emitted < trips:
                    return
                push_final(emit_history[trips - 1])
            else:
                if trips == 0:
                    if sim.inited:
                        push_final(sim.init_val)
                elif sim.backs >= trips:
                    push_final(sim.last_back)
        finally:
            if inst._act != a0 and not in_defer[idx]:
                in_defer[idx] = 1
                defer_append(idx)

    return step


def _bind_loopctl(sim, inst, data):
    node = sim.node
    conditional = node.conditional
    start_chans = sim.start_chans
    stoks, spops = _tokens_pops(start_chans) \
        if start_chans is not None else (None, None)
    cont_ch = sim.cont_chan
    cont_tok = _ready_token(cont_ch) if cont_ch is not None else None
    cont_pop = cont_ch.pop if cont_ch is not None else None
    index_fork = sim._forks.get(node.index.name)
    active_fork = sim._forks.get(node.active.name)
    done_fork = sim._forks.get(node.done.name)
    final_fork = sim._forks.get(node.final.name)
    done_wired = bool(node.done.outgoing)
    final_wired = bool(node.final.outgoing)
    forks = sim._fork_list
    max_in_flight = node.max_in_flight
    ps = max(1, node.pipeline_stages)
    idx = sim.idx
    sched = inst.schedule_node
    completed = inst.completed_iterations
    iters = inst.stats.iterations
    tname = inst.task.name
    count_trips = LoopControlSim._count_trips
    on_loop_finished = inst.on_loop_finished
    idx_r, in_defer, defer_append = _rearm_locals(sim, inst)
    index_acc = _fork_accept(index_fork) \
        if index_fork is not None else None
    active_acc = _fork_accept(active_fork) \
        if active_fork is not None else None
    done_acc = _fork_accept(done_fork) \
        if done_fork is not None else None
    final_acc = _fork_accept(final_fork) \
        if final_fork is not None else None

    def out_can(fork):
        return fork is None or not fork.pending

    def out_push(acc, value):
        if acc is not None:
            acc(value, inst)
        inst._act += 1

    def finish(now):
        if sim.finished:
            return
        sim.finished = True
        inst.loop_trips = sim.issued if conditional else sim.trips
        inst.loop_finished = True
        inst._act += 1
        on_loop_finished()

    def finish_outputs(now):
        if not sim.finished:
            return
        if not sim.done_pushed and done_wired and out_can(done_fork):
            out_push(done_acc, True)
            sim.done_pushed = True
        if not sim.final_pushed and final_wired and out_can(final_fork):
            out_push(final_acc, sim.start_v + sim.issued * sim.step_v)
            sim.final_pushed = True

    def tick_counted(now):
        if sim.issued >= sim.trips:
            finish(now)
            return
        if now < sim.next_issue:
            return
        if sim.issued - completed() >= max_in_flight:
            return
        if not (out_can(index_fork) and out_can(active_fork)):
            return
        out_push(index_acc, sim.start_v + sim.issued * sim.step_v)
        out_push(active_acc, True)
        sim.issued += 1
        sim.next_issue = now + ps
        sched(idx, sim.next_issue)
        iters[tname] += 1

    def tick_conditional(now):
        if sim.issued == 0:
            if now >= sim.next_issue and out_can(index_fork) \
                    and out_can(active_fork):
                out_push(index_acc, sim.start_v)
                out_push(active_acc, True)
                sim.issued = 1
                sim.next_issue = now + ps
                sched(idx, sim.next_issue)
                iters[tname] += 1
            return
        if cont_ch is None or not cont_tok:
            return
        if now < sim.next_issue or \
                sim.issued - completed() >= max_in_flight:
            return
        if not (out_can(index_fork) and out_can(active_fork)):
            return
        cont = cont_pop()
        inst._act += 1
        if not cont:
            sim.trips = sim.issued
            finish(now)
            return
        out_push(index_acc, sim.start_v + sim.issued * sim.step_v)
        out_push(active_acc, True)
        sim.issued += 1
        sim.next_issue = now + ps
        sched(idx, sim.next_issue)
        iters[tname] += 1

    def step(now):
        inst._cursor = idx_r
        a0 = inst._act
        try:
            for f in forks:
                if f.pending:
                    f.drain(inst)
            if not sim.started:
                if start_chans is None:
                    return
                for tok in stoks:
                    if not tok:
                        return
                # Loop bounds are control: demand lane uniformity
                # (no-op on scalars, once per invocation).
                sim.start_v = ctrl(spops[0]())
                bound_v = ctrl(spops[1]())
                sim.step_v = ctrl(spops[2]())
                sim.started = True
                inst._act += 1
                if not conditional:
                    sim.trips = count_trips(sim.start_v, bound_v,
                                            sim.step_v)
                    inst.loop_trips = sim.trips
            if sim.finished:
                finish_outputs(now)
                return
            if conditional:
                tick_conditional(now)
            else:
                tick_counted(now)
            finish_outputs(now)
        finally:
            if inst._act != a0 and not in_defer[idx_r]:
                in_defer[idx_r] = 1
                defer_append(idx_r)

    return step


def _bind_load(sim, inst, data):
    node = sim.node
    chans = sim.req_chans
    if chans is None:
        return _nop
    records = sim.records
    rec_popleft = records.popleft
    rec_append = records.append
    out_fork = sim._forks.get(node.out.name)
    done_fork = sim._forks.get(node.done.name)
    words = sim.words
    max_outstanding = node.max_outstanding
    has_pred = sim.has_pred
    has_order = sim.has_order
    poison = poison_value(node.out.type)
    submit = sim.junction_sim.submit
    wake = inst.wake_node
    idx = sim.idx
    stats = inst.stats
    on_sink = inst.on_sink_progress
    # Request operands, flattened: addr, [pred], [order].
    qa = _ready_token(chans[0])
    pa = chans[0].pop
    qp = pp = qo = po = None
    pos = 1
    if has_pred:
        qp = _ready_token(chans[1])
        pp = chans[1].pop
        pos = 2
    if has_order:
        qo = _ready_token(chans[pos])
        po = chans[pos].pop
    in_defer = inst._in_defer
    defer_append = inst._defer.append
    out_accept = _fork_accept(out_fork) if out_fork is not None else None
    done_accept = _fork_accept(done_fork) \
        if done_fork is not None else None

    def step(now):
        inst._cursor = idx
        a0 = inst._act
        try:
            if out_fork is not None and out_fork.pending:
                out_fork.drain(inst)
            if done_fork is not None and done_fork.pending:
                done_fork.drain(inst)
            while records and records[0].remaining == 0:
                if (out_fork is not None and out_fork.pending) or \
                        (done_fork is not None and done_fork.pending):
                    break
                rec = rec_popleft()
                if rec.poison:
                    value = poison
                elif words == 1:
                    value = rec.words[0]
                else:
                    value = lane_pack_words(rec.words)
                if out_fork is not None:
                    out_accept(value, inst)
                inst._act += 1
                if done_fork is not None:
                    done_accept(True, inst)
                inst._act += 1
                sim.sink_count += 1
                on_sink()
            if len(records) >= max_outstanding:
                return
            if not qa or (has_pred and not qp) or \
                    (has_order and not qo):
                return
            addr = pa()
            enabled = bool(pp()) if has_pred else True
            if has_order:
                po()
            inst._act += 1
            if not enabled:
                rec_append(_MemRecord(0, poison=True))
                wake(idx)
                return
            rec = _MemRecord(words)
            rec_append(rec)
            stats.memory_reads += words
            base = int(addr)
            for w in range(words):
                def on_done(req, r=rec, i=w):
                    r.words[i] = req.value
                    r.remaining -= 1
                    if r.remaining == 0:
                        wake(idx)
                submit(MemRequest(base + w, False, on_done=on_done))
        finally:
            if inst._act != a0 and not in_defer[idx]:
                in_defer[idx] = 1
                defer_append(idx)

    return step


def _bind_store(sim, inst, data):
    node = sim.node
    chans = sim.req_chans
    if chans is None:
        return _nop
    records = sim.records
    rec_popleft = records.popleft
    rec_append = records.append
    done_fork = sim._forks.get(node.done.name)
    words = sim.words
    max_outstanding = node.max_outstanding
    has_pred = sim.has_pred
    has_order = sim.has_order
    submit = sim.junction_sim.submit
    wake = inst.wake_node
    idx = sim.idx
    stats = inst.stats
    on_sink = inst.on_sink_progress
    # Request operands, flattened: addr, data, [pred], [order].
    qa = _ready_token(chans[0])
    pa = chans[0].pop
    qd = _ready_token(chans[1])
    pd = chans[1].pop
    qp = pp = qo = po = None
    pos = 2
    if has_pred:
        qp = _ready_token(chans[2])
        pp = chans[2].pop
        pos = 3
    if has_order:
        qo = _ready_token(chans[pos])
        po = chans[pos].pop
    in_defer = inst._in_defer
    defer_append = inst._defer.append
    done_accept = _fork_accept(done_fork) \
        if done_fork is not None else None

    def step(now):
        inst._cursor = idx
        a0 = inst._act
        try:
            if done_fork is not None and done_fork.pending:
                done_fork.drain(inst)
            while records and records[0].remaining == 0:
                if done_fork is not None and done_fork.pending:
                    break
                rec_popleft()
                if done_fork is not None:
                    done_accept(True, inst)
                inst._act += 1
                sim.sink_count += 1
                on_sink()
            if len(records) >= max_outstanding:
                return
            if not qa or not qd or (has_pred and not qp) or \
                    (has_order and not qo):
                return
            addr = pa()
            data_v = pd()
            enabled = bool(pp()) if has_pred else True
            if has_order:
                po()
            inst._act += 1
            if not enabled:
                rec_append(_MemRecord(0, poison=True))
                wake(idx)
                return
            rec = _MemRecord(words)
            rec_append(rec)
            stats.memory_writes += words
            base = int(addr)
            values = (lane_unpack_words(data_v, words)
                      if words > 1 else [data_v])
            for w in range(words):
                def on_done(req, r=rec):
                    r.remaining -= 1
                    if r.remaining == 0:
                        wake(idx)
                submit(MemRequest(base + w, True, value=values[w],
                                  on_done=on_done))
        finally:
            if inst._act != a0 and not in_defer[idx]:
                in_defer[idx] = 1
                defer_append(idx)

    return step


def _bind_call(sim, inst, data):
    node = sim.node
    chans = sim.req_chans
    if chans is None:
        return _nop
    tokens, pops = _tokens_pops(chans)
    peeks = tuple(ch.peek for ch in chans)
    records = sim.records
    n_args = sim.n_args
    has_pred = sim.has_pred
    ret_forks = [sim._forks.get(p.name) for p in node.ret_ports]
    ret_poisons = [poison_value(p.type) for p in node.ret_ports]
    n_rets = len(ret_forks)
    order_fork = sim._forks.get(node.order_out.name)
    forks = sim._fork_list
    max_outstanding = 1 if node.serialize else node.max_outstanding
    try_enqueue = inst.runtime.try_enqueue
    tname = inst.task.name
    callee = node.callee
    note_blocked = inst.note_enqueue_blocked
    note_ok = inst.note_enqueue_ok
    wake = inst.wake_node
    idx = sim.idx
    on_sink = inst.on_sink_progress
    in_defer = inst._in_defer
    defer_append = inst._defer.append

    def step(now):
        inst._cursor = idx
        a0 = inst._act
        try:
            for f in forks:
                if f.pending:
                    f.drain(inst)
            while records and records[0].done:
                ret_ok = True
                for f in ret_forks:
                    if f is not None and f.pending:
                        ret_ok = False
                        break
                if not ret_ok or \
                        (order_fork is not None and order_fork.pending):
                    break
                rec = records.popleft()
                results = rec.results
                poisoned = rec.poison
                for i in range(n_rets):
                    if poisoned or i >= len(results):
                        value = ret_poisons[i]
                    else:
                        value = results[i]
                    f = ret_forks[i]
                    if f is not None:
                        f.accept(value, inst)
                    inst._act += 1
                if order_fork is not None:
                    order_fork.accept(True, inst)
                inst._act += 1
                sim.sink_count += 1
                on_sink()
                inst.calls_outstanding -= 1
            if len(records) >= max_outstanding:
                return
            for tok in tokens:
                if not tok:
                    return
            enabled = True
            if has_pred:
                enabled = bool(peeks[n_args]())
            if enabled:
                rec = _CallRecord()
                args = [peeks[i]() for i in range(n_args)]
                if not try_enqueue(tname, callee, args, reply=rec,
                                   parent=inst):
                    note_blocked(sim)
                    return
            else:
                rec = _CallRecord(poison=True)
                wake(idx)
            for pop in pops:
                pop()
            records.append(rec)
            note_ok(sim)
            inst.calls_outstanding += 1
            inst._act += 1
        finally:
            if inst._act != a0 and not in_defer[idx]:
                in_defer[idx] = 1
                defer_append(idx)

    return step


def _bind_spawn(sim, inst, data):
    node = sim.node
    chans = sim.req_chans
    if chans is None:
        return _nop
    tokens, pops = _tokens_pops(chans)
    peeks = tuple(ch.peek for ch in chans)
    n_args = sim.n_args
    has_pred = sim.has_pred
    issued_fork = sim._forks.get(node.issued.name)
    forks = sim._fork_list
    try_enqueue = inst.runtime.try_enqueue
    tname = inst.task.name
    callee = node.callee
    note_blocked = inst.note_enqueue_blocked
    note_ok = inst.note_enqueue_ok
    on_sink = inst.on_sink_progress
    idx, in_defer, defer_append = _rearm_locals(sim, inst)

    def step(now):
        inst._cursor = idx
        a0 = inst._act
        try:
            for f in forks:
                if f.pending:
                    f.drain(inst)
            if issued_fork is not None and issued_fork.pending:
                return
            for tok in tokens:
                if not tok:
                    return
            enabled = True
            if has_pred:
                enabled = bool(peeks[n_args]())
            if enabled:
                args = [peeks[i]() for i in range(n_args)]
                if not try_enqueue(tname, callee, args, reply=None,
                                   parent=inst):
                    note_blocked(sim)
                    return
                inst.pending_children += 1
            for pop in pops:
                pop()
            if issued_fork is not None:
                issued_fork.accept(True, inst)
            inst._act += 1
            sim.sink_count += 1
            on_sink()
            note_ok(sim)
            inst._act += 1
        finally:
            if inst._act != a0 and not in_defer[idx]:
                in_defer[idx] = 1
                defer_append(idx)

    return step


def _bind_sync(sim, inst, data):
    node = sim.node
    has_order = node.order_in is not None
    if has_order and node.order_in.incoming is None:
        return _nop
    if has_order:
        order_ch = inst.channels[id(node.order_in.incoming)]
        order_tok = _ready_token(order_ch)
        order_pop = order_ch.pop
    done_fork = sim._forks.get(node.done.name)
    forks = sim._fork_list
    on_sink = inst.on_sink_progress
    idx, in_defer, defer_append = _rearm_locals(sim, inst)

    def step(now):
        inst._cursor = idx
        a0 = inst._act
        try:
            for f in forks:
                if f.pending:
                    f.drain(inst)
            if sim.fired:
                return
            if has_order and not order_tok:
                return
            if inst.pending_children > 0:
                return
            if done_fork is not None and done_fork.pending:
                return
            if has_order:
                order_pop()
            if done_fork is not None:
                done_fork.accept(True, inst)
            inst._act += 1
            sim.fired = True
            sim.sink_count = 1
            on_sink()
        finally:
            if inst._act != a0 and not in_defer[idx]:
                in_defer[idx] = 1
                defer_append(idx)

    return step


# ---------------------------------------------------------------------------
# Compile phase: per-node binder selection + content-derived data.
# ---------------------------------------------------------------------------

def _compile_compute(node):
    """(arity, positional evaluator, list evaluator, vector key) for
    one FU.  The vector key is compile-time data: it names the numpy
    fast path a batched bind may use for this (op, type) pair, or
    ``None`` when only the per-lane scalar loop is exact."""
    scale = node.gep_scale if node.op == "gep" else 1
    arity, fpos = specialize_compute_pos(node.op, node.out.type, scale)
    return (arity, fpos,
            specialize_compute(node.op, node.out.type, scale),
            vector_key(node.op, node.out.type))


def _compile_fused(node):
    """Fused-region evaluator: one pre-specialized closure per inner
    expression, each gathering its operands by direct index (no
    per-expression operand-list build for the 1/2-ref shapes the
    fusion pass emits)."""
    exprs = []
    for op, refs, rtype, scale in node.exprs:
        arity, f = specialize_compute_pos(op, rtype, scale)
        refs = tuple(refs)
        if arity == 2 and len(refs) == 2:
            (ka, ia), (kb, ib) = refs
            if ka == "in" and kb == "in":
                exprs.append(lambda ins, res, f=f, ia=ia, ib=ib:
                             f(ins[ia], ins[ib]))
            elif ka == "in":
                exprs.append(lambda ins, res, f=f, ia=ia, ib=ib:
                             f(ins[ia], res[ib]))
            elif kb == "in":
                exprs.append(lambda ins, res, f=f, ia=ia, ib=ib:
                             f(res[ia], ins[ib]))
            else:
                exprs.append(lambda ins, res, f=f, ia=ia, ib=ib:
                             f(res[ia], res[ib]))
        elif arity == 1 and len(refs) == 1:
            (ka, ia), = refs
            if ka == "in":
                exprs.append(lambda ins, res, f=f, ia=ia: f(ins[ia]))
            else:
                exprs.append(lambda ins, res, f=f, ia=ia: f(res[ia]))
        else:
            flist = specialize_compute(op, rtype, scale)
            exprs.append(lambda ins, res, f=flist, refs=refs:
                         f([ins[i] if k == "in" else res[i]
                            for k, i in refs]))
    exprs = tuple(exprs)
    if len(exprs) == 1:
        e0 = exprs[0]
        empty = ()

        def evalf(ins):
            return e0(ins, empty)

        return evalf

    def evalf(ins):
        results: List = []
        rappend = results.append
        for e in exprs:
            rappend(e(ins, results))
        return results[-1]

    return evalf


#: kind -> (binder, compile-time data factory or None).
_STEP_COMPILERS: Dict[str, Tuple[Callable, Optional[Callable]]] = {
    "const": (_bind_source, None),
    "livein": (_bind_source, None),
    "liveout": (_bind_liveout, None),
    "compute": (_bind_compute, _compile_compute),
    "tensor": (_bind_compute, _compile_compute),
    "fused": (_bind_fused, _compile_fused),
    "select": (_bind_select, None),
    "phi": (_bind_phi, None),
    "loopctl": (_bind_loopctl, None),
    "load": (_bind_load, None),
    "store": (_bind_store, None),
    "call": (_bind_call, None),
    "spawn": (_bind_spawn, None),
    "sync": (_bind_sync, None),
}

def _node_signature(node) -> tuple:
    """Content the compile-time data depends on, per node position."""
    sig = (node.kind, getattr(node, "op", None))
    if node.kind in ("compute", "tensor"):
        sig += (str(node.out.type), node.gep_scale)
    elif node.kind == "fused":
        sig += (tuple((op, tuple(refs), str(rtype), scale)
                      for op, refs, rtype, scale in node.exprs),)
    elif node.kind in ("call", "spawn"):
        sig += (tuple(str(p.type) for p in node.ret_ports)
                if node.kind == "call" else (), node.callee)
    elif node.kind == "load":
        sig += (str(node.out.type),)
    return sig


class CompiledTask:
    """Compile-time plan for one task block: a binder + data per node
    position, shared by every instance of the task.

    ``interpreted`` marks tasks where specialization cannot pay for
    itself: a task with no loop controller runs straight through and
    dies (a ``parallel_for`` body, a recursive leaf), so an instance
    lives for a few sweeps only — binding per-node closures at start
    costs more than the dispatch it saves.  Those instances keep the
    event kernel's reference ``process`` (bit-identical by
    definition); loop-carrying tasks, where instances sweep thousands
    of times, get the compiled steps.

    ``traceable`` marks tasks eligible for the steady-state trace tier
    (``kernel="trace"``, see :mod:`repro.sim.trace`): no
    call/spawn/sync nodes means an instance never parks, never arms a
    park-check timer and never waits on children — its only wake
    sources are channel traffic, memory completions and its own
    compute/loop timers, all of which the trace sweep subsumes.
    ``trace_proven`` is a warm-start hint that lives with the artifact
    in the fingerprint-keyed cache (and therefore in the serve
    daemon's hot-circuit LRU): once any instance of this task has
    formed a trace, later runs of the same artifact arm at the reduced
    warm threshold instead of re-detecting steady state from
    scratch.  ``steady_idxs`` is the recorded superblock itself — the
    node indices observed firing during a trace's recording window.
    It is a performance hint, not a correctness boundary (wakes aimed
    outside the set stay live and are stepped exactly, in dense
    order), so reusing it across instances and warm runs is always
    sound; a stale set merely costs straggler heap traffic until the
    divergence guard re-records."""

    __slots__ = ("plan", "interpreted", "traceable", "trace_proven",
                 "steady_idxs", "warm_after")

    def __init__(self, task):
        self.interpreted = not any(
            n.kind == "loopctl" for n in task.dataflow.nodes)
        self.traceable = not any(
            n.kind in ("call", "spawn", "sync")
            for n in task.dataflow.nodes)
        self.trace_proven = False
        self.steady_idxs = None
        #: Adaptive re-arm threshold (0 = the default warm streak).
        #: Backed off exponentially by short trace episodes, reset by
        #: long ones — tasks whose traces never pay stop re-arming.
        self.warm_after = 0
        plan = []
        for node in task.dataflow.nodes:
            entry = _STEP_COMPILERS.get(node.kind)
            if entry is None:
                raise KernelCompileError(
                    f"compiled kernel cannot specialize node kind "
                    f"{node.kind!r} (task {task.name!r}, node "
                    f"{node.name!r})", task=task.name, node=node.name)
            binder, data_factory = entry
            data = data_factory(node) if data_factory is not None \
                else None
            plan.append((binder, data))
        self.plan = plan

    def bind(self, instance) -> List[Callable]:
        sims = instance.node_sims
        steps = []
        append = steps.append
        for i, (binder, data) in enumerate(self.plan):
            append(binder(sims[i], instance, data))
        return steps


class CompiledCircuit:
    """All of a circuit's tasks, compiled; cache value of one
    fingerprint."""

    __slots__ = ("fingerprint", "tasks", "signature", "__weakref__")

    def __init__(self, circuit, fingerprint: str = ""):
        self.fingerprint = fingerprint
        self.tasks = {name: CompiledTask(task)
                      for name, task in circuit.tasks.items()}
        self.signature = circuit_signature(circuit)


def circuit_signature(circuit) -> tuple:
    """Cheap structural identity: node-position-sensitive, unlike the
    canonical fingerprint (which sorts node order away)."""
    return tuple(
        (name, tuple(_node_signature(n) for n in task.dataflow.nodes))
        for name, task in sorted(circuit.tasks.items()))


# -- compile cache ----------------------------------------------------------
#: fingerprint -> CompiledCircuit (bounded FIFO).
_CACHE: "Dict[str, CompiledCircuit]" = {}
_CACHE_LIMIT = 128
#: circuit object -> CompiledCircuit identity memo: repeat simulations
#: of the same object (fuzzer plans, DSE sim-axis sweeps) skip even
#: the fingerprint hash.
_BY_OBJECT: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def clear_cache() -> None:
    _CACHE.clear()
    _BY_OBJECT.clear()


def cache_stats() -> Dict[str, int]:
    return {"entries": len(_CACHE), "memoized_objects": len(_BY_OBJECT)}


def compiled_for(circuit,
                 fingerprint: Optional[str] = None) -> CompiledCircuit:
    """Compile ``circuit`` (or fetch the cached artifact).

    Warm paths, fastest first: the object identity memo (no hashing at
    all), then the fingerprint cache (one canonical-form hash, no
    compilation) — each hit verified against the structural signature.
    """
    from .. import telemetry
    met = telemetry.metrics()
    try:
        compiled = _BY_OBJECT[circuit]
    except (KeyError, TypeError):
        pass
    else:
        met.counter("sim.compile.memo_hits").inc()
        return compiled
    if fingerprint is None:
        fingerprint = circuit_fingerprint(circuit)
    compiled = _CACHE.get(fingerprint)
    if compiled is not None and \
            compiled.signature != circuit_signature(circuit):
        compiled = None         # equal fingerprint, different node order
        met.counter("sim.compile.signature_mismatches").inc()
    if compiled is None:
        met.counter("sim.compile.compiles").inc()
        compiled = CompiledCircuit(circuit, fingerprint)
        if len(_CACHE) >= _CACHE_LIMIT:
            _CACHE.pop(next(iter(_CACHE)))
        _CACHE[fingerprint] = compiled
    else:
        met.counter("sim.compile.cache_hits").inc()
    try:
        _BY_OBJECT[circuit] = compiled
    except TypeError:
        pass
    return compiled


def precompile(circuit, fingerprint: Optional[str] = None
               ) -> CompiledCircuit:
    """Seed the compile cache (DSE workers pass the fingerprint they
    already computed for the content-addressed result cache, so the
    later ``simulate`` call is a pure cache hit)."""
    return compiled_for(circuit, fingerprint)

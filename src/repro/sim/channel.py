"""Token channels implementing latency-insensitive connections.

A :class:`Channel` is a registered ready/valid FIFO: a value pushed in
cycle *t* becomes visible to the consumer in cycle *t+1* (the commit
step).  This charges the baseline uIR graph one pipeline stage per
edge, which is exactly the paper's "handshaking on all dataflow edges"
cost that OpFusion removes.

A :class:`LatchedChannel` is a live-in buffer: once set it can be read
any number of times without being consumed (loop-invariant values
feeding a loop body).
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional


class Channel:
    """Bounded registered FIFO.

    ``stages`` is the number of register stages a token crosses before
    the consumer sees it: 2 for the baseline's full ready/valid
    handshake buffer (the producer's output register plus the edge's
    skid register), 1 after the auto-pipelining pass balances the edge
    away.  Throughput is one token per cycle either way; only latency
    differs — exactly the paper's fusion effect.
    """

    __slots__ = ("capacity", "queue", "staged", "pre", "stages", "occ")

    def __init__(self, capacity: int = 2, stages: int = 1):
        self.capacity = max(capacity, stages)
        self.stages = stages
        self.queue: deque = deque()
        self.pre: List = []      # in-flight register (stages == 2)
        self.staged: List = []
        self.occ = 0             # len(queue) + len(pre) + len(staged)

    # -- producer side ----------------------------------------------------
    def can_push(self) -> bool:
        return self.occ < self.capacity

    def push(self, value) -> None:
        self.staged.append(value)
        self.occ += 1

    # -- consumer side ----------------------------------------------------
    def ready(self) -> bool:
        return bool(self.queue)

    def peek(self):
        return self.queue[0]

    def pop(self):
        self.occ -= 1
        return self.queue.popleft()

    # -- cycle boundary -----------------------------------------------------
    def commit(self) -> bool:
        """Advance register stages; returns True if anything moved."""
        moved = False
        if self.pre:
            self.queue.extend(self.pre)
            self.pre.clear()
            moved = True
        if self.staged:
            if self.stages >= 2:
                self.pre.extend(self.staged)
            else:
                self.queue.extend(self.staged)
            self.staged.clear()
            moved = True
        return moved

    def clear(self) -> None:
        self.queue.clear()
        self.pre.clear()
        self.staged.clear()
        self.occ = 0

    @property
    def occupancy(self) -> int:
        return self.occ

    def __repr__(self) -> str:
        return (f"Channel({list(self.queue)!r}+{self.pre!r}"
                f"+{self.staged!r})")


class EventChannel(Channel):
    """A :class:`Channel` that reports events to the wakeup kernel.

    Two hooks implement the latency-insensitive protocol's wake
    conditions without any polling:

    * ``push`` marks the channel *dirty* on its owning instance so
      the end-of-cycle commit only walks channels that can move
      (token-arrival wakes for the consumer are issued by the
      instance when the commit actually lands tokens in ``queue``);
    * ``pop`` is a credit return — the producer node may now have
      space, so it is woken under the dense engine's visibility rule
      (same cycle if its sweep slot is still ahead, else next cycle).

    ``owner``/``producer_idx``/``consumer_idx`` are wired by
    :class:`repro.sim.task.DataflowInstance` at instance start.
    """

    __slots__ = ("owner", "producer_idx", "consumer_idx", "dirty")

    def __init__(self, capacity: int = 2, stages: int = 1):
        super().__init__(capacity, stages)
        self.owner = None
        self.producer_idx = -1
        self.consumer_idx = -1
        self.dirty = False

    def push(self, value) -> None:
        self.staged.append(value)
        self.occ += 1
        if not self.dirty:
            self.dirty = True
            self.owner._dirty.append(self)

    def pop(self):
        self.occ -= 1
        self.owner.wake_node(self.producer_idx)
        return self.queue.popleft()

    def clear(self) -> None:
        # Instance recycling resets channels in place (step closures
        # capture the deques); a stale dirty flag would make the next
        # owner skip re-registering the channel for commit.
        super().clear()
        self.dirty = False


class LatchedChannel:
    """A set-once value register readable without consumption."""

    __slots__ = ("value", "is_set")

    def __init__(self):
        self.value = None
        self.is_set = False

    def latch(self, value) -> None:
        self.value = value
        self.is_set = True

    # Consumer-side protocol mirrors Channel (pop does not consume).
    def ready(self) -> bool:
        return self.is_set

    # Truthiness == readiness, mirroring how a FIFO channel's ``queue``
    # deque is truthy exactly when a token is visible.  The compiled
    # kernel leans on this: a step closure's input guard is a plain
    # truth test over captured "ready tokens" (deques for FIFO edges,
    # the latched channel itself for invariant edges) with no method
    # dispatch at all.
    def __bool__(self) -> bool:
        return self.is_set

    def peek(self):
        return self.value

    def pop(self):
        return self.value

    # Producer side: latched channels are filled at instance start.
    def can_push(self) -> bool:
        return True

    def push(self, value) -> None:
        self.latch(value)

    def commit(self) -> bool:
        return False

    def clear(self) -> None:
        self.value = None
        self.is_set = False

    @property
    def occupancy(self) -> int:
        return 0

    def __repr__(self) -> str:
        return f"LatchedChannel({self.value!r}, set={self.is_set})"

"""Seeded fault injection for the latency-insensitive protocol.

The paper's central correctness claim is that every uopt transform is
behavior-preserving *because* the circuit obeys a latency-insensitive
bundled-data protocol: results must be bit-identical under **any**
latency assignment.  This module turns that claim into an executable
invariant by perturbing exactly the quantities the protocol promises
not to care about:

* ``channel jitter``   — extra register stages on dataflow edges
* ``transient stalls`` — credit withheld on an edge for a window of
  cycles, then restored (a misbehaving downstream consumer)
* ``memory latency``   — scratchpad / cache / DRAM latency deltas
* ``FU latency``       — per-function-unit pipeline depth deltas
* ``arbiter shuffle``  — junction grant order randomized per cycle
* ``queue slowdown``   — task invocations sit in the queue extra
  cycles before a tile may start them
* ``channel freeze``   — credit withheld *permanently* from a given
  cycle on (a genuine protocol violation: the forced-deadlock fault
  used to exercise the failure path end-to-end)

Everything is deterministic from one seed: a :class:`FaultPlan` holds
only knobs + the seed, and the runtime :class:`FaultInjector` derives
every per-site decision by stable hashing (``repro.util.rng``), so a
plan replays identically regardless of circuit traversal order and
serializes to a few lines of JSON inside a repro bundle.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields, replace
from typing import List, Optional, Tuple

from ..util.rng import derive_seed, rng_for, site_fraction, site_int
from .channel import Channel, EventChannel

FAULT_SCHEMA = "repro.faultplan/v1"

#: Fault dimensions a plan can enable; also the minimizer's grid.
FAULT_CATEGORIES = ("jitter", "stall", "memory", "fu", "arbiter",
                    "queue", "freeze")


@dataclass
class FaultPlan:
    """Knobs + seed; per-site decisions derive from stable hashes."""

    seed: int = 0
    #: Fraction of dataflow edges that get extra register stages.
    jitter_rate: float = 0.0
    #: Maximum extra stages per jittered edge.
    jitter_max: int = 0
    #: Fraction of edges with one transient credit-withhold window.
    stall_rate: float = 0.0
    #: Maximum window duration in cycles (kept well under the
    #: deadlock window so a transient stall is never misdiagnosed).
    stall_max: int = 0
    #: Windows start uniformly in [0, stall_horizon).
    stall_horizon: int = 4000
    #: Maximum extra latency per memory structure (incl. DRAM).
    memory_latency_max: int = 0
    #: Fraction of function units with perturbed latency.
    fu_rate: float = 0.0
    #: Maximum extra pipeline stages per perturbed function unit.
    fu_latency_max: int = 0
    #: Randomize junction grant order every cycle.
    arbiter_shuffle: bool = False
    #: Fraction of task-queue enqueues that are delayed.
    queue_rate: float = 0.0
    #: Maximum start delay (cycles) per delayed enqueue.
    queue_delay_max: int = 0
    #: Withhold credit on every dataflow edge from this cycle on,
    #: permanently — the forced-deadlock fault (None = disabled).
    freeze_at: Optional[int] = None

    # -- construction -------------------------------------------------------
    @classmethod
    def generate(cls, seed: int, intensity: float = 1.0) -> "FaultPlan":
        """A random plan, deterministic from ``seed``.

        ``intensity`` scales rates and magnitudes; 1.0 gives a plan
        that visibly perturbs schedules on every workload while
        staying far from the deadlock window.
        """
        rng = rng_for(seed, "fault-plan")
        s = max(0.0, intensity)
        return cls(
            seed=seed,
            jitter_rate=min(1.0, rng.uniform(0.2, 0.6) * s),
            jitter_max=max(1, round(rng.randint(1, 4) * s)),
            stall_rate=min(1.0, rng.uniform(0.05, 0.3) * s),
            stall_max=max(1, round(rng.randint(8, 96) * s)),
            stall_horizon=rng.randint(500, 4000),
            memory_latency_max=max(1, round(rng.randint(1, 12) * s)),
            fu_rate=min(1.0, rng.uniform(0.2, 0.6) * s),
            fu_latency_max=max(1, round(rng.randint(1, 6) * s)),
            arbiter_shuffle=rng.random() < 0.75,
            queue_rate=min(1.0, rng.uniform(0.1, 0.5) * s),
            queue_delay_max=max(1, round(rng.randint(1, 16) * s)),
        )

    # -- serialization ------------------------------------------------------
    def to_json(self) -> dict:
        doc = {"schema": FAULT_SCHEMA}
        doc.update(asdict(self))
        return doc

    @classmethod
    def from_json(cls, doc: dict) -> "FaultPlan":
        schema = doc.get("schema", FAULT_SCHEMA)
        if schema != FAULT_SCHEMA:
            raise ValueError(f"unsupported fault plan schema {schema!r}")
        names = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in doc.items() if k in names})

    # -- category algebra (used by the bundle minimizer) --------------------
    def active_categories(self) -> List[str]:
        out = []
        if self.jitter_rate > 0 and self.jitter_max > 0:
            out.append("jitter")
        if self.stall_rate > 0 and self.stall_max > 0:
            out.append("stall")
        if self.memory_latency_max > 0:
            out.append("memory")
        if self.fu_rate > 0 and self.fu_latency_max > 0:
            out.append("fu")
        if self.arbiter_shuffle:
            out.append("arbiter")
        if self.queue_rate > 0 and self.queue_delay_max > 0:
            out.append("queue")
        if self.freeze_at is not None:
            out.append("freeze")
        return out

    def without(self, category: str) -> "FaultPlan":
        """Copy of the plan with one fault dimension disabled."""
        zeroed = {
            "jitter": {"jitter_rate": 0.0, "jitter_max": 0},
            "stall": {"stall_rate": 0.0, "stall_max": 0},
            "memory": {"memory_latency_max": 0},
            "fu": {"fu_rate": 0.0, "fu_latency_max": 0},
            "arbiter": {"arbiter_shuffle": False},
            "queue": {"queue_rate": 0.0, "queue_delay_max": 0},
            "freeze": {"freeze_at": None},
        }
        if category not in zeroed:
            raise ValueError(f"unknown fault category {category!r}")
        return replace(self, **zeroed[category])

    def describe(self) -> str:
        cats = self.active_categories()
        return (f"FaultPlan(seed={self.seed}, "
                f"categories={'+'.join(cats) if cats else 'none'})")


class FaultInjector:
    """Runtime oracle answering per-site fault questions for one run.

    Stateless apart from ``now`` (the engine updates it at the top of
    every cycle so fault windows and grant shuffles see the clock
    without threading ``now`` through every channel call).  All
    decisions are pure functions of ``(plan.seed, site key)``, so two
    runs of the same plan — and replays from a repro bundle — make
    identical choices.
    """

    __slots__ = ("plan", "now")

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.now = 0

    # -- channels -----------------------------------------------------------
    def channel_extra(self, task: str, conn_ord: int) -> int:
        p = self.plan
        if p.jitter_rate <= 0 or p.jitter_max <= 0:
            return 0
        if site_fraction(p.seed, "jit?", task, conn_ord) >= p.jitter_rate:
            return 0
        return site_int(p.seed, 1, p.jitter_max, "jit", task, conn_ord)

    def stall_window(self, task: str,
                     conn_ord: int) -> Optional[Tuple[int, Optional[int]]]:
        """``(start, end)`` credit-withhold window, ``end=None`` for a
        permanent freeze, or None when the edge is unaffected."""
        p = self.plan
        window = None
        if p.stall_rate > 0 and p.stall_max > 0 and \
                site_fraction(p.seed, "stall?", task,
                              conn_ord) < p.stall_rate:
            start = site_int(p.seed, 0, max(0, p.stall_horizon - 1),
                             "stall-at", task, conn_ord)
            dur = site_int(p.seed, 1, p.stall_max,
                           "stall-dur", task, conn_ord)
            window = (start, start + dur)
        if p.freeze_at is not None:
            # The permanent freeze dominates any transient window.
            window = (p.freeze_at, None)
        return window

    # -- function units -----------------------------------------------------
    def fu_extra(self, task: str, node_name: str) -> int:
        p = self.plan
        if p.fu_rate <= 0 or p.fu_latency_max <= 0:
            return 0
        if site_fraction(p.seed, "fu?", task, node_name) >= p.fu_rate:
            return 0
        return site_int(p.seed, 1, p.fu_latency_max, "fu", task,
                        node_name)

    # -- memory structures --------------------------------------------------
    def memory_extra(self, structure_name: str) -> int:
        p = self.plan
        if p.memory_latency_max <= 0:
            return 0
        return site_int(p.seed, 0, p.memory_latency_max, "mem",
                        structure_name)

    # -- junction arbiters --------------------------------------------------
    def shuffle_grants(self, junction_name: str, queue) -> None:
        """Permute a junction's request queue in place (this cycle's
        grant order).  Safe by construction: requests concurrently
        outstanding at a junction are independent — the translator's
        ordering edges serialize dependent accesses upstream."""
        if not self.plan.arbiter_shuffle or len(queue) < 2:
            return
        rng = rng_for(derive_seed(
            "arb", self.plan.seed, junction_name, self.now))
        order = list(queue)
        rng.shuffle(order)
        queue.clear()
        queue.extend(order)

    # -- task queues --------------------------------------------------------
    def queue_delay(self, parent: str, callee: str, seq: int) -> int:
        p = self.plan
        if p.queue_rate <= 0 or p.queue_delay_max <= 0:
            return 0
        if site_fraction(p.seed, "q?", parent, callee,
                         seq) >= p.queue_rate:
            return 0
        return site_int(p.seed, 1, p.queue_delay_max, "q", parent,
                        callee, seq)


# ---------------------------------------------------------------------------
# Fault channels
# ---------------------------------------------------------------------------
# Latency jitter generalizes Channel's register pipeline: a token
# pushed at cycle t becomes visible at t + stages + extra.  In-flight
# tokens live in ``pre`` as [commits_left, value] pairs so the event
# kernel's carry machinery ("ch.pre is truthy => keep committing")
# works unchanged.  Capacity grows by ``extra`` — each injected
# register stage is also a buffer slot, exactly as in hardware.


def _fault_commit(ch) -> bool:
    moved = False
    if ch.pre:
        keep = []
        for entry in ch.pre:
            entry[0] -= 1
            if entry[0] <= 0:
                ch.queue.append(entry[1])
            else:
                keep.append(entry)
        ch.pre[:] = keep
        moved = True
    if ch.staged:
        delay = ch.stages - 1 + ch.extra
        for value in ch.staged:
            if delay <= 0:
                ch.queue.append(value)
            else:
                ch.pre.append([delay, value])
        ch.staged.clear()
        moved = True
    return moved


def _stalled(ch) -> bool:
    window = ch.window
    if window is None:
        return False
    start, end = window
    now = ch.injector.now
    return now >= start and (end is None or now < end)


class FaultChannel(Channel):
    """Dense-kernel channel with latency jitter + stall windows."""

    __slots__ = ("extra", "window", "injector")

    def __init__(self, capacity: int, stages: int, extra: int,
                 window, injector: FaultInjector):
        super().__init__(capacity + extra, stages)
        self.extra = extra
        self.window = window
        self.injector = injector

    def can_push(self) -> bool:
        if _stalled(self):
            return False
        return self.occ < self.capacity

    def commit(self) -> bool:
        return _fault_commit(self)


class FaultEventChannel(EventChannel):
    """Event-kernel channel with latency jitter + stall windows.

    Wake contract: the creator schedules a producer wake at each stall
    window's end (the credit-restore edge), so a producer asleep on a
    withheld edge is never lost.  Jitter needs no extra wakes — the
    carry flag keeps the owning instance committing while tokens are
    in flight, and token arrival wakes the consumer as usual.
    """

    __slots__ = ("extra", "window", "injector")

    def __init__(self, capacity: int, stages: int, extra: int,
                 window, injector: FaultInjector):
        super().__init__(capacity + extra, stages)
        self.extra = extra
        self.window = window
        self.injector = injector

    def can_push(self) -> bool:
        if _stalled(self):
            return False
        return self.occ < self.capacity

    def commit(self) -> bool:
        return _fault_commit(self)

"""Simulation statistics."""

from __future__ import annotations

from collections import Counter
from typing import Dict


class SimStats:
    """Counters accumulated over one simulation run."""

    def __init__(self):
        self.cycles = 0
        self.invocations: Counter = Counter()      # per task name
        self.node_fires: Counter = Counter()       # per node kind
        self.memory_reads = 0
        self.memory_writes = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.dram_requests = 0
        self.bank_conflict_stalls = 0
        self.junction_stalls = 0
        self.iterations: Counter = Counter()       # loop iterations/task
        self.parked = 0

    @property
    def memory_accesses(self) -> int:
        return self.memory_reads + self.memory_writes

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def summary(self) -> Dict[str, object]:
        return {
            "cycles": self.cycles,
            "invocations": dict(self.invocations),
            "iterations": dict(self.iterations),
            "memory_reads": self.memory_reads,
            "memory_writes": self.memory_writes,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "dram_requests": self.dram_requests,
            "bank_conflict_stalls": self.bank_conflict_stalls,
            "junction_stalls": self.junction_stalls,
            "parked": self.parked,
        }

    def __repr__(self) -> str:
        return (f"SimStats(cycles={self.cycles}, "
                f"mem={self.memory_accesses}, "
                f"hit_rate={self.cache_hit_rate:.2f})")

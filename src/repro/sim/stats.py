"""Simulation statistics.

Extended by the observability layer with attributed stall counters:
``stall_cycles`` aggregates slept cycles by cause (see
:mod:`repro.sim.observe` for the taxonomy), ``node_stalls`` breaks
the same cycles down per node label (``task.node``), and
``source_stalls`` rolls them up by *source location* (the provenance
label ``file:line (task)`` carried on every uIR node) so reports can
rank MiniC lines instead of anonymous node ids.  ``site_stalls``
carries the memory-side view (per junction / structure).  The whole
object serializes to a versioned JSON document via :meth:`to_json`
for the CLI's ``--stats-json`` and the benchmark harness, and loads
back with :meth:`from_json` for offline analysis.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List, Tuple

#: Version tag of the JSON stats document; bump on breaking changes.
#: v3 adds provenance-keyed ``source_stalls`` and the loader.
STATS_SCHEMA = "repro.simstats/v3"


class SimStats:
    """Counters accumulated over one simulation run."""

    def __init__(self):
        self.cycles = 0
        self.invocations: Counter = Counter()      # per task name
        self.node_fires: Counter = Counter()       # per node kind
        self.memory_reads = 0
        self.memory_writes = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.dram_requests = 0
        self.bank_conflict_stalls = 0
        self.junction_stalls = 0
        self.iterations: Counter = Counter()       # loop iterations/task
        self.parked = 0
        # -- observability extensions (event kernel) ----------------------
        #: Cycles a DRAM transaction was in flight (tick granularity).
        self.dram_busy_cycles = 0
        #: Attributed stall cycles by cause (taxonomy in sim.observe).
        self.stall_cycles: Counter = Counter()
        #: Per-node stall breakdown: ``{"task.node": {cause: cycles}}``.
        self.node_stalls: Dict[str, Dict[str, int]] = \
            _CounterDict()
        #: Per-source-location stall breakdown:
        #: ``{"gemm.mc:14 (loop)": {cause: cycles}}``.
        self.source_stalls: Dict[str, Dict[str, int]] = \
            _CounterDict()
        #: Memory-side arbitration stalls per site
        #: (``junction:<name>`` / ``structure:<name>``).
        self.site_stalls: Counter = Counter()
        #: Requests granted (issued) per junction arbiter — the PMU's
        #: ``arbiter_grant`` counters read these back.
        self.junction_grants: Counter = Counter()
        #: Engine-level accounting: cycles with no activity anywhere.
        self.idle_engine_cycles = 0
        #: Kernel that produced this run ("event", "dense", or
        #: "compiled"); aside from this label, event and compiled runs
        #: produce identical documents.
        self.kernel = "event"
        # -- batched simulation (sim.engine.simulate_batch) ----------------
        #: Number of workload lanes this document aggregates (0 = a
        #: plain scalar run; the JSON document is unchanged then, so
        #: the v3 round-trip is preserved).
        self.batch_lanes = 0
        #: "vectorized", "sequential" or "deopt" (batched runs only).
        self.batch_mode = ""
        #: Per-lane cycle counts (None marks a failed lane).
        self.lane_cycles: List = []

    @property
    def memory_accesses(self) -> int:
        return self.memory_reads + self.memory_writes

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def total_stall_cycles(self) -> int:
        return sum(self.stall_cycles.values())

    def summary(self) -> Dict[str, object]:
        return {
            "cycles": self.cycles,
            "invocations": dict(self.invocations),
            "iterations": dict(self.iterations),
            "memory_reads": self.memory_reads,
            "memory_writes": self.memory_writes,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "dram_requests": self.dram_requests,
            "bank_conflict_stalls": self.bank_conflict_stalls,
            "junction_stalls": self.junction_stalls,
            "parked": self.parked,
        }

    def to_json(self) -> Dict[str, object]:
        """Full versioned stats document (superset of summary())."""
        doc = {"schema": STATS_SCHEMA, "kernel": self.kernel}
        doc.update(self.summary())
        doc["node_fires"] = dict(self.node_fires)
        doc["dram_busy_cycles"] = self.dram_busy_cycles
        doc["idle_engine_cycles"] = self.idle_engine_cycles
        doc["stall_cycles"] = dict(self.stall_cycles)
        doc["node_stalls"] = {k: dict(v)
                              for k, v in self.node_stalls.items()}
        doc["source_stalls"] = {k: dict(v)
                                for k, v in self.source_stalls.items()}
        doc["site_stalls"] = dict(self.site_stalls)
        doc["junction_grants"] = dict(self.junction_grants)
        if self.batch_lanes:
            doc["batch"] = {"lanes": self.batch_lanes,
                            "mode": self.batch_mode,
                            "lane_cycles": list(self.lane_cycles)}
        return doc

    @classmethod
    def from_json(cls, doc: Dict) -> "SimStats":
        """Rebuild a SimStats from a :meth:`to_json` document.

        Accepts v2 documents too (they simply lack ``source_stalls``);
        anything else raises ``ValueError``.
        """
        schema = doc.get("schema", "")
        if schema not in ("repro.simstats/v2", STATS_SCHEMA):
            raise ValueError(f"unsupported stats schema {schema!r}")
        stats = cls()
        stats.kernel = doc.get("kernel", "event")
        stats.cycles = doc.get("cycles", 0)
        stats.invocations = Counter(doc.get("invocations", {}))
        stats.iterations = Counter(doc.get("iterations", {}))
        stats.memory_reads = doc.get("memory_reads", 0)
        stats.memory_writes = doc.get("memory_writes", 0)
        stats.cache_hits = doc.get("cache_hits", 0)
        stats.cache_misses = doc.get("cache_misses", 0)
        stats.dram_requests = doc.get("dram_requests", 0)
        stats.bank_conflict_stalls = doc.get("bank_conflict_stalls", 0)
        stats.junction_stalls = doc.get("junction_stalls", 0)
        stats.parked = doc.get("parked", 0)
        stats.node_fires = Counter(doc.get("node_fires", {}))
        stats.dram_busy_cycles = doc.get("dram_busy_cycles", 0)
        stats.idle_engine_cycles = doc.get("idle_engine_cycles", 0)
        stats.stall_cycles = Counter(doc.get("stall_cycles", {}))
        for label, causes in doc.get("node_stalls", {}).items():
            stats.node_stalls[label] = Counter(causes)
        for label, causes in doc.get("source_stalls", {}).items():
            stats.source_stalls[label] = Counter(causes)
        stats.site_stalls = Counter(doc.get("site_stalls", {}))
        stats.junction_grants = Counter(doc.get("junction_grants", {}))
        batch = doc.get("batch")
        if batch:
            stats.batch_lanes = batch.get("lanes", 0)
            stats.batch_mode = batch.get("mode", "")
            stats.lane_cycles = list(batch.get("lane_cycles", []))
        return stats

    @classmethod
    def merged(cls, stats_list: List["SimStats"]) -> "SimStats":
        """Aggregate per-lane stats of a sequential batched run: the
        counters sum across lanes, ``cycles`` is the slowest lane, and
        the kernel label comes from the first lane."""
        out = cls()
        if not stats_list:
            return out
        out.kernel = stats_list[0].kernel
        for s in stats_list:
            out.cycles = max(out.cycles, s.cycles)
            out.invocations.update(s.invocations)
            out.node_fires.update(s.node_fires)
            out.iterations.update(s.iterations)
            out.memory_reads += s.memory_reads
            out.memory_writes += s.memory_writes
            out.cache_hits += s.cache_hits
            out.cache_misses += s.cache_misses
            out.dram_requests += s.dram_requests
            out.bank_conflict_stalls += s.bank_conflict_stalls
            out.junction_stalls += s.junction_stalls
            out.parked += s.parked
            out.dram_busy_cycles += s.dram_busy_cycles
            out.idle_engine_cycles += s.idle_engine_cycles
            out.stall_cycles.update(s.stall_cycles)
            for label, causes in s.node_stalls.items():
                out.node_stalls[label].update(causes)
            for label, causes in s.source_stalls.items():
                out.source_stalls[label].update(causes)
            out.site_stalls.update(s.site_stalls)
            out.junction_grants.update(s.junction_grants)
        return out

    def dump_json(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_json(), fh, indent=1, sort_keys=True)

    @classmethod
    def load_json(cls, path: str) -> "SimStats":
        with open(path) as fh:
            return cls.from_json(json.load(fh))

    def top_stalled_nodes(self, n: int = 10):
        """``[(label, cause, cycles)]`` ranked by stalled cycles."""
        rows = [(label, cause, cyc)
                for label, causes in self.node_stalls.items()
                for cause, cyc in causes.items()]
        rows.sort(key=lambda r: r[2], reverse=True)
        return rows[:n]

    def top_stalled_sources(self, n: int = 10) \
            -> List[Tuple[str, str, int]]:
        """``[(source_label, cause, cycles)]`` ranked by stalled
        cycles — the source-level view of :meth:`top_stalled_nodes`."""
        rows = [(label, cause, cyc)
                for label, causes in self.source_stalls.items()
                for cause, cyc in causes.items()]
        rows.sort(key=lambda r: r[2], reverse=True)
        return rows[:n]

    def __repr__(self) -> str:
        return (f"SimStats(cycles={self.cycles}, "
                f"mem={self.memory_accesses}, "
                f"hit_rate={self.cache_hit_rate:.2f})")


class _CounterDict(dict):
    """dict that materializes an inner Counter on first access."""

    def __missing__(self, key):
        value = Counter()
        self[key] = value
        return value

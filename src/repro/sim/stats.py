"""Simulation statistics.

Extended by the observability layer with attributed stall counters:
``stall_cycles`` aggregates slept cycles by cause (see
:mod:`repro.sim.observe` for the taxonomy) and ``node_stalls`` breaks
the same cycles down per node label (``task.node``).  ``site_stalls``
carries the memory-side view (per junction / structure).  The whole
object serializes to a versioned JSON document via :meth:`to_json`
for the CLI's ``--stats-json`` and the benchmark harness.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict

#: Version tag of the JSON stats document; bump on breaking changes.
STATS_SCHEMA = "repro.simstats/v2"


class SimStats:
    """Counters accumulated over one simulation run."""

    def __init__(self):
        self.cycles = 0
        self.invocations: Counter = Counter()      # per task name
        self.node_fires: Counter = Counter()       # per node kind
        self.memory_reads = 0
        self.memory_writes = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.dram_requests = 0
        self.bank_conflict_stalls = 0
        self.junction_stalls = 0
        self.iterations: Counter = Counter()       # loop iterations/task
        self.parked = 0
        # -- observability extensions (event kernel) ----------------------
        #: Cycles a DRAM transaction was in flight (tick granularity).
        self.dram_busy_cycles = 0
        #: Attributed stall cycles by cause (taxonomy in sim.observe).
        self.stall_cycles: Counter = Counter()
        #: Per-node stall breakdown: ``{"task.node": {cause: cycles}}``.
        self.node_stalls: Dict[str, Dict[str, int]] = \
            _CounterDict()
        #: Memory-side arbitration stalls per site
        #: (``junction:<name>`` / ``structure:<name>``).
        self.site_stalls: Counter = Counter()
        #: Engine-level accounting: cycles with no activity anywhere.
        self.idle_engine_cycles = 0
        #: Kernel that produced this run ("event" or "dense").
        self.kernel = "event"

    @property
    def memory_accesses(self) -> int:
        return self.memory_reads + self.memory_writes

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def total_stall_cycles(self) -> int:
        return sum(self.stall_cycles.values())

    def summary(self) -> Dict[str, object]:
        return {
            "cycles": self.cycles,
            "invocations": dict(self.invocations),
            "iterations": dict(self.iterations),
            "memory_reads": self.memory_reads,
            "memory_writes": self.memory_writes,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "dram_requests": self.dram_requests,
            "bank_conflict_stalls": self.bank_conflict_stalls,
            "junction_stalls": self.junction_stalls,
            "parked": self.parked,
        }

    def to_json(self) -> Dict[str, object]:
        """Full versioned stats document (superset of summary())."""
        doc = {"schema": STATS_SCHEMA, "kernel": self.kernel}
        doc.update(self.summary())
        doc["node_fires"] = dict(self.node_fires)
        doc["dram_busy_cycles"] = self.dram_busy_cycles
        doc["idle_engine_cycles"] = self.idle_engine_cycles
        doc["stall_cycles"] = dict(self.stall_cycles)
        doc["node_stalls"] = {k: dict(v)
                              for k, v in self.node_stalls.items()}
        doc["site_stalls"] = dict(self.site_stalls)
        return doc

    def dump_json(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_json(), fh, indent=1, sort_keys=True)

    def top_stalled_nodes(self, n: int = 10):
        """``[(label, cause, cycles)]`` ranked by stalled cycles."""
        rows = [(label, cause, cyc)
                for label, causes in self.node_stalls.items()
                for cause, cyc in causes.items()]
        rows.sort(key=lambda r: r[2], reverse=True)
        return rows[:n]

    def __repr__(self) -> str:
        return (f"SimStats(cycles={self.cycles}, "
                f"mem={self.memory_accesses}, "
                f"hit_rate={self.cache_hit_rate:.2f})")


class _CounterDict(dict):
    """dict that materializes an inner Counter on first access."""

    def __missing__(self, key):
        value = Counter()
        self[key] = value
        return value

"""Steady-state trace tier for the compiled kernel (kernel="trace").

Pipelined loops replay the same firing pattern for thousands of
cycles, yet the event kernel still pays scheduler dispatch — heap
pushes, phase checks, wheel traffic — on every one of them.  This
module hosts the two engine-level pieces of the trace tier (the
per-instance piece lives on :class:`repro.sim.task.DataflowInstance`
as ``process_trace``):

**Superblock stepping** (:func:`steady_loop`): once any instance is
in trace mode, whole cycles are stepped through
:meth:`TaskBlockSim.tick_steady` — the instance phase alone, with the
unpark / start / retry phases proven no-ops by the entry guard
(:func:`_phases_quiet`) instead of re-checked per block per cycle.
Anything phase-relevant (an enqueue, a completion, a park) is handled
*exactly* by falling back to the full ``tick_event`` for the rest of
that cycle and returning control to the ordinary engine loop — the
deoptimization path is a plain function return, never a state fixup.

**Time jump** (:func:`_quiet_target`): when every instance is asleep
and the memory system holds only fixed-latency in-flight completions
(heaps of known ready cycles — no queued arbitration, which would
accrue per-cycle stall statistics), the next observable event is the
minimum of the timing-wheel horizon, the memory completion heads and
the park-retry deadlines.  The engine can advance straight to it,
applying the per-cycle accounting (``dram_busy_cycles``, engine idle
bookkeeping, deadlock/timeout bounds) arithmetically.  This is the
classic event-driven skip, admissible here because the event kernel's
own correctness argument already proves skipped components are strict
no-ops; it is gated to kernel="trace" so the reference kernels stay
byte-identical.

Both pieces preserve bit-identical results, memory images and
:class:`SimStats` against the event kernel; fault plans disable the
tier entirely (``SimRuntime.trace_enabled``), which is the forced
mid-run deopt policy — fault seams inject at wake sources the trace
tier would bypass.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .memory import ScratchpadSim
from .task import PARK_RETRY_CYCLES


def _phases_quiet(blocks) -> bool:
    """True when every block's unpark / start / retry phase is a
    provable no-op: no *startable* invocation and no park that could
    act while a tile is free.  A ready backlog behind full capacity is
    fine — so are parks that could not act — because capacity only
    frees through a completion or a park, both of which exit
    superblock mode before the next phase run."""
    for block in blocks:
        if block.ready and len(block.active) < block.capacity:
            return False
        if block.parked and len(block.active) < block.capacity:
            for inst in block.parked:
                if inst.response_arrived or inst.enqueue_blocked:
                    return False
    return True


def _quiet_target(runtime, memsys, wheel, now: int, idle_cycles: int,
                  deadlock_window: int,
                  max_cycles: int) -> Optional[Tuple[int, bool]]:
    """Earliest future cycle at which anything can happen, if the
    world is provably quiescent right now; else None.

    Quiescent means: no instance holds a pending wake, no block phase
    can act, and the memory system has nothing queued — only
    fixed-latency completions in flight (their per-cycle effect while
    waiting is ``dram_busy_cycles``, which the caller bulk-adds).
    Every future wake source is then time-known: the timing wheel,
    the completion heaps, and park-retry deadlines.

    Returns ``(target, mem_active)``; ``mem_active`` tells the caller
    whether the skipped cycles would have reported memory-commit
    activity (they all would, or none — nothing drains mid-span), for
    exact engine idle accounting.
    """
    cands: List[int] = []
    for block in runtime.block_list:
        cap_free = len(block.active) < block.capacity
        if block.ready and cap_free:
            return None             # a start happens next tick
        for inst in block.active:
            if (inst._ready or inst._defer or inst._full_next
                    or inst.full_wake or inst.force_check
                    or inst._carry):
                return None         # wakes next tick
        if block.parked:
            for inst in block.parked:
                if inst.response_arrived:
                    if cap_free:
                        return None
                elif inst.enqueue_blocked and cap_free and \
                        not block.ready:
                    t = inst.park_cycle + PARK_RETRY_CYCLES
                    if t <= now + 1:
                        return None
                    cands.append(t)
    for jsim in memsys._jsims:
        if jsim.queue or jsim._staged:
            return None             # arbitration accrues stalls/cycle
    mem_active = False
    for ssim in memsys._ssims:
        if ssim._staged:
            return None
        if isinstance(ssim, ScratchpadSim):
            if any(ssim.read_queues) or any(ssim.write_queues) or \
                    ssim.write_buffer:
                return None
        elif any(ssim.bank_queues):
            return None
        if ssim.busy():             # pending heap and/or MSHR fills
            mem_active = True
        pend = ssim.pending
        if pend:
            cands.append(pend[0][0])
    dram = memsys.dram
    if dram.queue or dram._staged:
        return None
    if dram.pending:
        mem_active = True
        cands.append(dram.pending[0][0])
    nxt = wheel.next_cycle()
    if nxt is not None:
        cands.append(nxt)
    if cands:
        target = min(cands)
    elif mem_active:
        return None                 # unreachable; refuse defensively
    else:
        # Nothing scheduled anywhere: idle straight toward the
        # deadlock bound (the clamp below) so the engine raises on
        # schedule without spinning the window cycle by cycle.
        target = max_cycles
    if not mem_active:
        # Skipped cycles count as engine-idle: stop at the cycle
        # whose processing would trip the deadlock detector so the
        # normal loop raises with bit-identical state.
        target = min(target, now + (deadlock_window - idle_cycles))
    target = min(target, max_cycles)
    if target <= now + 1:
        return None                 # nothing to skip
    return target, mem_active


def steady_loop(runtime, memsys, sched, stats, watchdog, now: int,
                idle_cycles: int, fail_deadlock,
                fail_timeout) -> Tuple[int, int]:
    """Run trace-tier cycles until the world needs the full engine.

    Called from the event-kernel loop each iteration (trace kernel
    only).  Alternates the two mechanisms — jump over provably
    quiescent spans, slim-step steady cycles — and returns
    ``(now, idle_cycles)`` the moment a cycle needs the full phase
    structure (or immediately, if neither mechanism applies).  All
    engine bookkeeping (idle window, deadlock, max-cycles, watchdog,
    heartbeat) is replicated per cycle; the jump is disabled when a
    heartbeat is configured so its cadence stays exact.
    """
    wheel = sched.wheel
    blocks = runtime.block_list
    dram = memsys.dram
    params = runtime.params
    deadlock_window = params.deadlock_window
    max_cycles = params.max_cycles
    jump_ok = watchdog.hb_every == 0
    verified = False
    try_jump = True
    while True:
        if jump_ok and try_jump:
            quiet = _quiet_target(runtime, memsys, wheel, now,
                                  idle_cycles, deadlock_window,
                                  max_cycles)
            if quiet is not None:
                target, mem_active = quiet
                k = target - now
                runtime.trace_jumped += k
                if dram.pending:
                    stats.dram_busy_cycles += k
                if mem_active:
                    idle_cycles = 0
                else:
                    idle_cycles += k
                    stats.idle_engine_cycles += k
                now = target
                if now >= max_cycles:
                    fail_timeout(now)
                verified = False
        if not runtime.trace_live:
            return now, idle_cycles
        if not verified:
            if not _phases_quiet(blocks):
                return now, idle_cycles
            verified = True
        sched.now = now
        if wheel:
            sched.dispatch(now)
        runtime.now = now
        active = False
        clean = True
        for i, block in enumerate(blocks):
            act, ok = block.tick_steady(now)
            active |= act
            if not ok:
                clean = False
                for later in blocks[i + 1:]:
                    active |= later.tick_event(now)
                break
        # An instance-active cycle leaves live wake state (the acting
        # instance's keepalive at minimum), so a jump attempt would
        # refuse — skip the world scan until instances go quiet.
        # Memory-only activity must NOT gate this: a pure DRAM drain
        # span is exactly what the jump skips.
        try_jump = not active
        active |= memsys.tick_active(now)
        now += 1
        if runtime.root_done:
            return now, idle_cycles
        if active:
            idle_cycles = 0
        else:
            idle_cycles += 1
            stats.idle_engine_cycles += 1
            if idle_cycles > deadlock_window:
                fail_deadlock(now)
        if now >= max_cycles:
            fail_timeout(now)
        watchdog.check(now, stats)
        if not clean:
            return now, idle_cycles
        for block in blocks:
            if block.ready and len(block.active) < block.capacity:
                # A processed instance enqueued a startable
                # invocation: the start phase must run next cycle.
                return now, idle_cycles


def trace_report(runtime, stats) -> dict:
    """Aggregate the run's trace-tier behavior for ``SimResult.trace``
    (the ``repro report`` "trace" subsection reads this).  Folds
    still-tracing instances first so coverage counts their cycles."""
    for block in runtime.block_list:
        for inst in block.active:
            if inst._tracing:
                inst._exit_trace("run_end")
        for inst in block.parked:
            if inst._tracing:
                inst._exit_trace("run_end")
    ts = runtime.trace_stats
    total = stats.cycles or 1
    covered = ts["cycles"] + runtime.trace_jumped
    return {
        "formed": ts["formed"],
        "warm": ts["warm"],
        "deopts": dict(ts["deopts"]),
        "trace_cycles": ts["cycles"],
        "jumped_cycles": runtime.trace_jumped,
        "coverage": round(min(1.0, covered / total), 4),
        "per_task": {name: dict(d)
                     for name, d in sorted(ts["per_task"].items())},
    }

"""Wakeup scheduling for the event-driven simulation kernel.

The kernel's contract with the dense reference engine is *order
preservation*: any superset of the nodes that would act in a cycle,
processed in the dense engine's sweep order (block order, then
active-list order, then node index order), produces bit-identical
behavior, because a node whose guards fail is a no-op in both engines.
Correctness therefore reduces to never *missing* a wakeup; spurious
wakeups only cost time.

Three structures implement that contract:

``TimingWheel``
    cycle -> list of ``(instance, idx)`` wakeups for timer expiries
    (function-unit retirement, initiation intervals, loop issue
    slots, park checks).  Popped at the top of every cycle, before
    any component runs, so a timer wake is visible to the whole
    sweep of its cycle — exactly when the dense engine would have
    noticed the ``now``-dependent condition.

``EventScheduler``
    Owns the wheel and the current cycle number.  Components consult
    ``sched.now`` to route a wakeup: an event produced at cycle *t*
    aimed at a component that the sweep has not reached yet must be
    delivered at *t* (the dense engine's later-ordered tick would
    observe it), while one aimed at an already-swept component is
    deferred to *t + 1* (the dense engine's earlier-ordered tick ran
    before the event existed).

Per-instance wake state (heap + pending list + dedup bytearrays)
lives on :class:`repro.sim.task.DataflowInstance`; this module only
defines the shared machinery and the sentinel wake indices.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: Sentinel wake index: re-sweep every node of the instance.
WAKE_FULL = -1
#: Sentinel wake index: process the instance with an empty sweep so
#: the block re-evaluates ``parkable``/``is_complete`` (idle catch-up).
WAKE_CHECK = -2


class TimingWheel:
    """Sparse cycle -> wakeup-list map.

    A dict keyed by absolute cycle is the right shape here: wakeups
    are bursty (a compute fire schedules its retirement, a loop issue
    schedules its next slot) and the simulated horizon is unbounded,
    so a ring of fixed size would need a spill path anyway.

    The wheel maintains ``instance._wheel_refs``, the count of
    not-yet-dispatched entries pointing at an instance: the block
    instance pool must not recycle a completed instance that a stale
    timer could still wake.
    """

    __slots__ = ("_slots",)

    def __init__(self):
        self._slots: Dict[int, List[Tuple[object, int]]] = {}

    def schedule(self, cycle: int, instance, idx: int) -> None:
        instance._wheel_refs += 1
        slot = self._slots.get(cycle)
        if slot is None:
            self._slots[cycle] = [(instance, idx)]
        else:
            slot.append((instance, idx))

    def pop(self, cycle: int):
        """Remove and return this cycle's wakeups (possibly empty)."""
        return self._slots.pop(cycle, ())

    def next_cycle(self):
        """Earliest cycle holding a wakeup, or None.  The slot dict is
        small (a handful of distinct retire/issue/park-check cycles),
        so a min over the keys beats maintaining an ordered index."""
        return min(self._slots) if self._slots else None

    def __bool__(self) -> bool:
        return bool(self._slots)

    def __len__(self) -> int:
        return sum(len(v) for v in self._slots.values())


class EventScheduler:
    """Shared clock + timing wheel for one simulation run."""

    __slots__ = ("now", "wheel")

    def __init__(self):
        self.now = 0
        self.wheel = TimingWheel()

    def dispatch(self, now: int) -> None:
        """Deliver every timer wake registered for ``now``."""
        for instance, idx in self.wheel.pop(now):
            instance._wheel_refs -= 1
            instance.timer_wake(idx)

"""Task-block runtime: dataflow instances, execution tiles, queues.

Implements the paper's whole-accelerator execution model (Figure 5):
task blocks run concurrently, each with a local queue of ready and
pending invocations and ``num_tiles`` execution tiles.  An invocation
that is blocked only on child-task responses *parks* — it stays in the
task queue as a pending task and releases its tile (this is how the
queue-based runtime expresses the paper's recursion-as-tasks pattern
without deadlock).

Two execution kernels share this state:

* the **dense** kernel (:meth:`DataflowInstance.tick`,
  :meth:`TaskBlockSim.tick`) sweeps every node of every instance every
  cycle — the original reference semantics;
* the **event** kernel (:meth:`DataflowInstance.process`,
  :meth:`TaskBlockSim.tick_event`) only touches components with a
  pending wakeup.  Its correctness argument: a node sim's ``tick`` is
  a strict no-op when its guards fail, so processing any *superset*
  of the acting nodes in dense sweep order is bit-identical; the wake
  plumbing below only has to guarantee no acting node is ever missed.

Event visibility rule (matches the dense sweep order): an event
produced at cycle *t* is delivered at *t* if its target would still be
swept later this cycle (block earlier in dict order not yet ticked,
node index ahead of the sweep cursor), else at *t + 1*.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Dict, List, Optional

from ..core.circuit import TaskBlock
from ..errors import SimulationError
from .channel import Channel, EventChannel, LatchedChannel
from .events import WAKE_CHECK, WAKE_FULL
from .faults import FaultChannel, FaultEventChannel
from .nodesim import make_node_sim
from .stats import SimStats

#: Dense parks an instance when its idle streak exceeds this.
PARK_IDLE_THRESHOLD = 8
#: Dense retries an enqueue-blocked park after this many cycles.
PARK_RETRY_CYCLES = 16

#: kernel="trace": consecutive active compiled sweeps before an
#: instance is promoted to the trace tier (steady-state detection).
TRACE_FORM_STREAK = 32
#: Same, when the compiled artifact already proved the task reaches
#: steady state (warm-start via the fingerprint-keyed compile cache
#: and the serve daemon's hot-circuit LRU).
TRACE_WARM_STREAK = 8
#: Cycles a freshly formed trace spends recording which steps fire
#: before switching to superblock sweeps over just that set.
TRACE_RECORD_CYCLES = 8
#: Consecutive superblock sweeps with out-of-set wake traffic before
#: the set is declared stale (channel divergence): drop it and deopt
#: so the next formation re-records.
TRACE_STRAY_LIMIT = 16
#: A trace episode shorter than this (cycles actually stepped while
#: armed) did not pay for its arm/deopt bookkeeping; the task's
#: re-arm threshold backs off exponentially (sticky on the compiled
#: artifact) until an episode runs long again.
TRACE_MIN_EPISODE = 16
#: Idle superblock sweeps tolerated before the "quiet" deopt: a short
#: pipeline bubble (a DRAM refill, an II>1 slot) costs a few no-op
#: sweeps but keeps the trace armed, avoiding the deopt / re-warm /
#: re-arm churn.  Exactness is unaffected — an idle sweep suppresses
#: no rearm, so the quiet-exit reconstruction proof holds at every
#: cycle of the grace window.
TRACE_IDLE_GRACE = 4


class TaskInvocation:
    """One dynamic activation of a task block."""

    __slots__ = ("args", "reply", "parent", "edge_key", "not_before")

    def __init__(self, args, reply, parent, edge_key):
        self.args = list(args)
        self.reply = reply          # _CallRecord to fill, or None (spawn)
        self.parent = parent        # parent DataflowInstance or None
        self.edge_key = edge_key
        #: Earliest cycle a tile may start this invocation (fault
        #: injection's task-queue slowdown; 0 = immediately).
        self.not_before = 0


class _TaskStatic:
    """Invocation-invariant wiring of one task block, computed once.

    Instance construction is on the hot path for spawn-heavy
    workloads (one instance per child task), so everything derivable
    from the static dataflow graph — channel parameters, latch sites,
    node-kind index lists — is precomputed here and shared by every
    instance of the task.
    """

    __slots__ = ("conns", "latched", "const_latches", "livein_latches",
                 "loop_conditional", "sink_idxs", "effect_sink_idxs",
                 "mem_idxs", "call_idxs", "loopctl_idxs")

    def __init__(self, task: TaskBlock):
        nodes = task.dataflow.nodes
        order = {id(n): i for i, n in enumerate(nodes)}
        self.conns = []
        self.latched = []
        for conn in task.dataflow.connections:
            if conn.latched:
                self.latched.append(id(conn))
            else:
                self.conns.append(
                    (id(conn), conn.depth, 2 if conn.buffered else 1,
                     order[id(conn.src.node)], order[id(conn.dst.node)]))
        self.const_latches = []
        self.livein_latches = []
        for node in nodes:
            if node.kind == "const":
                for conn in node.out.outgoing:
                    if conn.latched:
                        self.const_latches.append((id(conn), node.value))
            elif node.kind == "livein":
                for conn in node.out.outgoing:
                    if conn.latched:
                        self.livein_latches.append((id(conn), node.index))
        self.loop_conditional = any(
            n.kind == "loopctl" and n.conditional for n in nodes)
        from .nodesim import SIM_CLASSES
        sink_kinds = {k for k, cls in SIM_CLASSES.items()
                      if cls.is_iter_sink}
        self.sink_idxs = [i for i, n in enumerate(nodes)
                          if n.kind in sink_kinds]
        self.effect_sink_idxs = [i for i in self.sink_idxs
                                 if nodes[i].kind != "phi"]
        self.mem_idxs = [i for i, n in enumerate(nodes)
                         if n.kind in ("load", "store")]
        self.call_idxs = [i for i, n in enumerate(nodes)
                          if n.kind in ("call", "spawn")]
        self.loopctl_idxs = [i for i, n in enumerate(nodes)
                             if n.kind == "loopctl"]


class DataflowInstance:
    """Runtime state of one invocation: channels + node state machines."""

    def __init__(self, task: TaskBlock, runtime: "SimRuntime",
                 invocation: TaskInvocation):
        self.task = task
        self.runtime = runtime
        self.invocation = invocation
        self.args = invocation.args
        self.stats: SimStats = runtime.stats
        self._act = 0
        self.idle_cycles = 0
        self.pending_children = 0
        self.calls_outstanding = 0
        self.response_arrived = False
        self.enqueue_blocked = False
        self.park_cycle = -1
        self.loop_trips: Optional[int] = None
        self.loop_finished = task.kind != "loop"
        self.loop_conditional = False
        self.liveouts: Dict[int, object] = {}
        self.block: Optional["TaskBlockSim"] = None
        #: Not-yet-dispatched timing-wheel entries aimed here
        #: (maintained by TimingWheel/EventScheduler); the block pool
        #: refuses to recycle while a stale timer could still fire.
        self._wheel_refs = 0
        #: Live edge-waiter registrations (same pool-safety role).
        self._eq_regs = 0

        sched = runtime.sched
        self.sched = sched
        static = runtime.task_static(task)
        channels: Dict[int, object] = {}
        self.channels = channels
        faults = runtime.faults
        if faults is not None:
            self._make_fault_channels(static, faults)
        elif sched is not None:
            for cid, depth, stages, p_idx, c_idx in static.conns:
                ch = EventChannel(depth, stages)
                ch.owner = self
                ch.producer_idx = p_idx
                ch.consumer_idx = c_idx
                channels[cid] = ch
        else:
            for cid, depth, stages, _p, _c in static.conns:
                channels[cid] = Channel(depth, stages)
        # Pre-latch loop-invariant values (live-in buffers).
        for cid in static.latched:
            channels[cid] = LatchedChannel()
        for cid, value in static.const_latches:
            channels[cid].latch(value)
        for cid, arg_idx in static.livein_latches:
            channels[cid].latch(self.args[arg_idx])
        self.node_sims = sims = [make_node_sim(n, self)
                                 for n in task.dataflow.nodes]
        for i, sim in enumerate(sims):
            sim.idx = i
        self.loop_conditional = static.loop_conditional
        self.sinks = [sims[i] for i in static.sink_idxs]
        self._effect_sinks = [sims[i] for i in static.effect_sink_idxs]
        self._mem_sims = [sims[i] for i in static.mem_idxs]
        self._call_sims = [sims[i] for i in static.call_idxs]
        self._loopctl_idxs = static.loopctl_idxs

        # -- event-kernel wake state --------------------------------------
        n = len(self.node_sims)
        self._ready: List[int] = []       # heap of wakeable node indices
        self._in_ready = bytearray(n)
        self._defer: List[int] = []       # wakes targeted at next cycle
        self._in_defer = bytearray(n)
        self._defer_from = -1
        self.full_wake = True             # first sweep visits every node
        self._full_next = False
        self._full_from = -1
        self.force_check = False          # park-check / bookkeeping wake
        self._carry = False               # a channel still holds `pre`
        self._dirty: List[EventChannel] = []
        self._sweeping = False
        self._in_full = False
        self._cursor = -1
        self.checked_cycle = -1
        self.last_processed = -1
        self._eqb_count = 0               # sims stuck on try_enqueue
        self._check_at = -1               # pending park-check cycle
        self._sleep_attr = None           # stall causes of current sleep

        # -- trace tier (kernel="trace") ----------------------------------
        # The trace tier shares ALL of the wake state above — entering
        # or leaving it is a pure dispatch swap on ``process``, which
        # is what makes mid-run deoptimization trivially exact.
        self._tracing = False
        self._streak = 0                  # consecutive active sweeps
        self._trace_cycles = 0            # cycles stepped while tracing
        self._trace_after = 0             # arming threshold (0 = off)
        self._ctask = None                # CompiledTask (for rebinding)
        self._steady = None               # [(idx, step)] superblock
        self._steady_idxs = ()            # recorded firing set
        self._record_left = 0             # recording cycles remaining
        self._fired = None                # recording scratch bytearray
        self._tcarry = False              # real _carry while steady
        self._strays = 0                  # consecutive stray-wake sweeps
        self._tidle = 0                   # consecutive idle sweeps
        self._tgrace = 0                  # idle sweeps tolerated

        # -- compiled kernel ----------------------------------------------
        # Bind the task's precompiled step closures to this instance's
        # channels/forks/latencies and shadow ``process`` with the
        # dispatch-free sweep.  Must run after everything above: the
        # binders capture node sims, channels, and instance callbacks.
        compiled = runtime.compiled
        if compiled is not None:
            ctask = compiled.tasks[task.name]
            # Short-lived tasks (no loop controller) stay on the event
            # kernel's reference process — binding closures would cost
            # more than the dispatch they save (see CompiledTask).
            if not ctask.interpreted:
                self._steps = ctask.bind(self)
                # Fault-free instances hold only plain EventChannels,
                # whose commit the compiled sweep inlines; fault
                # channels override commit, so a faulted run keeps the
                # dynamic call.
                self._plain_commit = runtime.faults is None
                self.process = self.process_compiled
                self._ctask = ctask
                if runtime.trace_enabled and ctask.traceable:
                    self._trace_after = (
                        (ctask.warm_after or TRACE_WARM_STREAK)
                        if ctask.trace_proven else TRACE_FORM_STREAK)

    # ``activity`` counts sets so the event sweep can tell whether one
    # particular node acted (token moved / state advanced) during its
    # tick — the trigger for the self-rearm wake that keeps a node
    # firing back-to-back exactly like the dense sweep would.
    @property
    def activity(self) -> bool:
        return self._act != 0

    @activity.setter
    def activity(self, value: bool) -> None:
        if value:
            self._act += 1
        else:
            self._act = 0

    def _make_fault_channels(self, static, faults) -> None:
        """Channel construction under an active fault plan.

        Edges the plan leaves alone get ordinary channels; perturbed
        edges get fault channels carrying their extra stages and/or
        credit-withhold window.  Each transient window's end is armed
        as a producer wake on the timing wheel — the credit-restore
        edge the event kernel would otherwise never see (a permanent
        freeze arms nothing: it *should* end in a deadlock report).
        """
        sched = self.sched
        task_name = self.task.name
        now = sched.now if sched is not None else 0
        for ordinal, (cid, depth, stages, p_idx, c_idx) in \
                enumerate(static.conns):
            extra = faults.channel_extra(task_name, ordinal)
            window = faults.stall_window(task_name, ordinal)
            if window is not None and window[1] is not None \
                    and window[1] <= now:
                window = None       # already over before we started
            if sched is not None:
                if extra or window is not None:
                    ch = FaultEventChannel(depth, stages, extra,
                                           window, faults)
                    if window is not None and window[1] is not None:
                        sched.wheel.schedule(window[1], self, p_idx)
                else:
                    ch = EventChannel(depth, stages)
                ch.owner = self
                ch.producer_idx = p_idx
                ch.consumer_idx = c_idx
            elif extra or window is not None:
                ch = FaultChannel(depth, stages, extra, window, faults)
            else:
                ch = Channel(depth, stages)
            self.channels[cid] = ch

    # -- wiring ------------------------------------------------------------
    def junction_sim_for(self, node):
        junction = self.task.junctions[node.junction_index]
        return self.runtime.memory.junction_sim(junction)

    # -- instance recycling (block pool) -----------------------------------
    def recycle(self, invocation: TaskInvocation) -> None:
        """Reuse this completed instance for a fresh invocation.

        Construction is the dominant per-invocation cost for
        spawn-heavy workloads, so the block pool hands completed
        instances back through here instead of building new ones.
        Channels and fork buffers are captured by compiled step
        closures and must be cleared *in place*; the step closures
        themselves hold per-invocation nonlocals (source pending
        lists, FU issue cursors), so compiled instances rebind after
        the sims are reset.  The pool-release gate (``_wheel_refs``,
        ``_eq_regs``) guarantees no stale timer or edge-waiter entry
        can reach the recycled instance.
        """
        self.invocation = invocation
        self.args = invocation.args
        self._act = 0
        self.idle_cycles = 0
        self.pending_children = 0
        self.calls_outstanding = 0
        self.response_arrived = False
        self.enqueue_blocked = False
        self.park_cycle = -1
        self.loop_trips = None
        self.loop_finished = self.task.kind != "loop"
        self.liveouts.clear()
        static = self.runtime.task_static(self.task)
        channels = self.channels
        for ch in channels.values():
            ch.clear()
        for cid, value in static.const_latches:
            channels[cid].latch(value)
        for cid, arg_idx in static.livein_latches:
            channels[cid].latch(self.args[arg_idx])
        for sim in self.node_sims:
            sim.reset()
        # Wake state.  The dedup bitmaps mirror the live lists exactly
        # (strict invariant), so zeroing through the lists suffices.
        for idx in self._ready:
            self._in_ready[idx] = 0
        self._ready.clear()
        for idx in self._defer:
            self._in_defer[idx] = 0
        self._defer.clear()
        self._defer_from = -1
        self.full_wake = True
        self._full_next = False
        self._full_from = -1
        self.force_check = False
        self._carry = False
        self._dirty = []
        self._sweeping = False
        self._in_full = False
        self._cursor = -1
        self.checked_cycle = -1
        self.last_processed = -1
        self._eqb_count = 0
        self._check_at = -1
        self._sleep_attr = None
        self._streak = 0
        self._trace_cycles = 0
        self._steady = None
        self._steady_idxs = ()
        self._record_left = 0
        self._fired = None
        self._tcarry = False
        self._strays = 0
        self._tidle = 0
        ctask = self._ctask
        if ctask is not None:
            self._steps = ctask.bind(self)
            self.process = self.process_compiled
            if self._trace_after:
                # The proof may have landed since construction: later
                # invocations in the same run warm-start too.
                self._trace_after = (
                    (ctask.warm_after or TRACE_WARM_STREAK)
                    if ctask.trace_proven else TRACE_FORM_STREAK)

    # -- protocol callbacks --------------------------------------------------
    def record_liveout(self, index: int, value) -> None:
        self.liveouts[index] = value

    def completed_iterations(self) -> int:
        if not self.sinks:
            return 1 << 30
        return min(s.sink_count for s in self.sinks)

    # -- wakeup plumbing (event kernel; all no-ops under dense) -----------
    def _wake_now(self, idx: int) -> None:
        if not self._in_ready[idx]:
            self._in_ready[idx] = 1
            heapq.heappush(self._ready, idx)

    def _wake_next(self, idx: int) -> None:
        if self._defer and self._defer_from != self.sched.now:
            self._promote()
        if not self._in_defer[idx]:
            self._in_defer[idx] = 1
            self._defer.append(idx)
        self._defer_from = self.sched.now

    def _promote(self) -> None:
        """Move wakes deferred in an earlier cycle into the ready heap."""
        now = self.sched.now
        if self._defer and self._defer_from < now:
            for idx in self._defer:
                self._in_defer[idx] = 0
                self._wake_now(idx)
            self._defer.clear()
        if self._full_next and self._full_from < now:
            self._full_next = False
            self.full_wake = True

    def wake_node(self, idx: int) -> None:
        """Deliver a wake to one node under the visibility rule."""
        if self.sched is None:
            return
        if self._sweeping:
            if idx > self._cursor:
                if not self._in_full:
                    self._wake_now(idx)
            else:
                self._wake_next(idx)
        elif self.block.sweep_cycle == self.sched.now or \
                self.checked_cycle == self.sched.now:
            self._wake_next(idx)
        else:
            self._wake_now(idx)

    def wake_full(self) -> None:
        """Wake every node (child delivered, unpark, ...)."""
        if self.sched is None:
            return
        if self.block.sweep_cycle == self.sched.now:
            self._full_next = True
            self._full_from = self.sched.now
        else:
            self.full_wake = True

    def schedule_node(self, idx: int, cycle: int) -> None:
        """Timer: wake ``idx`` at the top of ``cycle``."""
        if self.sched is None:
            return
        self.sched.wheel.schedule(cycle, self, idx)

    def timer_wake(self, idx: int) -> None:
        """Wheel dispatch (top of cycle, before any sweep)."""
        if idx == WAKE_FULL:
            self.full_wake = True
        elif idx == WAKE_CHECK:
            self.force_check = True
        else:
            self._wake_now(idx)

    def on_sink_progress(self) -> None:
        """An iteration sink advanced: loop control's window may open."""
        if self.sched is None:
            return
        for idx in self._loopctl_idxs:
            self.wake_node(idx)

    def on_loop_finished(self) -> None:
        """Loop control finished: final-value pushes unblock everywhere."""
        if self.sched is None:
            return
        if self._sweeping and not self._in_full:
            for idx in range(self._cursor + 1, len(self.node_sims)):
                self._wake_now(idx)
        self._full_next = True
        self._full_from = self.sched.now

    def note_enqueue_blocked(self, sim) -> None:
        """A call/spawn failed try_enqueue (callee queue at depth)."""
        self.enqueue_blocked = True
        if self.sched is None:
            return
        if not sim._eq_blocked:
            sim._eq_blocked = True
            self._eqb_count += 1
        if not sim._eq_registered:
            sim._eq_registered = True
            self._eq_regs += 1
            self.runtime.register_edge_waiter(
                (self.task.name, sim.node.callee), self, sim)

    def note_enqueue_ok(self, sim) -> None:
        if sim._eq_blocked:
            sim._eq_blocked = False
            self._eqb_count -= 1

    def needs_tick(self) -> bool:
        if self._defer or self._full_next:
            self._promote()
        return bool(self._ready) or self.full_wake or \
            self.force_check or self._carry

    # -- execution (event kernel) -----------------------------------------
    def process(self, now: int) -> None:
        """Sweep the woken nodes in dense order; commit dirty channels."""
        self._promote()
        gap = now - self.last_processed - 1
        if gap > 0:
            # Asleep cycles are provably activity-free: account them
            # in one step and charge the recorded stall causes.
            self.idle_cycles += gap
            obs = self.runtime.observer
            if obs is not None and obs.enabled and self._sleep_attr:
                obs.charge(self._sleep_attr, gap,
                           self.last_processed + 1)
        self._sleep_attr = None
        self.last_processed = now
        self.checked_cycle = now
        self._act = 0
        self.force_check = False
        sims = self.node_sims
        self._sweeping = True
        # _promote() above emptied _defer (nothing can defer-wake this
        # instance earlier in its own cycle), so the self-rearm pushes
        # below can skip _wake_next's promote check.
        defer = self._defer
        in_defer = self._in_defer
        self._defer_from = now
        heappop = heapq.heappop
        # When most nodes are awake anyway, the indexed sweep only adds
        # heap overhead — fall back to the plain dense-order sweep
        # (processing a superset of the woken nodes is bit-identical).
        if self.full_wake or 2 * len(self._ready) >= len(sims):
            self.full_wake = False
            self._in_full = True
            for idx in self._ready:
                self._in_ready[idx] = 0
            self._ready.clear()
            for i, sim in enumerate(sims):
                self._cursor = i
                a0 = self._act
                for fork in sim._fork_list:
                    if fork.pending:
                        fork.drain(self)
                sim.tick(now)
                if self._act != a0 and not in_defer[i] \
                        and not sim.precise_wakes:
                    in_defer[i] = 1
                    defer.append(i)
            self._in_full = False
        else:
            heap = self._ready
            in_ready = self._in_ready
            while heap:
                idx = heappop(heap)
                in_ready[idx] = 0
                self._cursor = idx
                sim = sims[idx]
                a0 = self._act
                for fork in sim._fork_list:
                    if fork.pending:
                        fork.drain(self)
                sim.tick(now)
                if self._act != a0 and not in_defer[idx] \
                        and not sim.precise_wakes:
                    # The node acted; like the dense sweep it gets
                    # another look next cycle (it may act again).
                    in_defer[idx] = 1
                    defer.append(idx)
        self._sweeping = False
        self._cursor = -1
        if self._dirty:
            dirty = self._dirty
            self._dirty = []
            carry = False
            for ch in dirty:
                depth = len(ch.queue)
                if ch.commit():
                    self._act += 1
                if len(ch.queue) > depth:
                    idx = ch.consumer_idx
                    if not in_defer[idx]:
                        in_defer[idx] = 1
                        defer.append(idx)
                if ch.pre:
                    # Two-stage edge still holds an in-flight token:
                    # it must commit again next cycle.
                    self._dirty.append(ch)
                    carry = True
                else:
                    ch.dirty = False
            self._carry = carry
        else:
            self._carry = False
        self.enqueue_blocked = bool(self._eqb_count)
        if self._act:
            self.idle_cycles = 0
        else:
            self.idle_cycles += 1

    # -- execution (compiled kernel) ---------------------------------------
    def process_compiled(self, now: int) -> None:
        """Compiled-kernel twin of :meth:`process`.

        Same gap accounting, sweep order, visibility rule, self-rearm
        and dirty-channel commit — deliberately duplicated rather than
        shared so the event kernel stays byte-for-byte the reference
        it is validated against.  The difference is the per-node work:
        ``step(now)`` calls the specialized closure from
        :mod:`repro.sim.compile`, which folds in the fork pre-drain,
        the sweep-cursor update and (for non-precise kinds) the
        acted-so-look-again rearm — so the sweep itself is a bare
        dispatch loop.  Two further inlines on top: the ``_promote``
        call is guarded by its own precondition (a guarded no-op
        otherwise), and fault-free instances commit their dirty
        channels with :meth:`Channel.commit`'s body inlined (fault
        channels override ``commit``, so those keep the dynamic call).
        """
        if self._defer or self._full_next:
            self._promote()
        gap = now - self.last_processed - 1
        if gap > 0:
            self.idle_cycles += gap
            self._streak = 0    # a sleep breaks the steady-state run
            obs = self.runtime.observer
            if obs is not None and obs.enabled and self._sleep_attr:
                obs.charge(self._sleep_attr, gap,
                           self.last_processed + 1)
        self._sleep_attr = None
        self.last_processed = now
        self.checked_cycle = now
        self._act = 0
        self.force_check = False
        steps = self._steps
        self._sweeping = True
        defer = self._defer
        in_defer = self._in_defer
        self._defer_from = now
        if self.full_wake or 2 * len(self._ready) >= len(steps):
            self.full_wake = False
            self._in_full = True
            for idx in self._ready:
                self._in_ready[idx] = 0
            self._ready.clear()
            for step in steps:
                step(now)
            self._in_full = False
        else:
            heappop = heapq.heappop
            heap = self._ready
            in_ready = self._in_ready
            while heap:
                idx = heappop(heap)
                in_ready[idx] = 0
                steps[idx](now)
        self._sweeping = False
        self._cursor = -1
        if self._dirty:
            dirty = self._dirty
            self._dirty = []
            carry = False
            if self._plain_commit:
                act = self._act
                for ch in dirty:
                    queue = ch.queue
                    depth = len(queue)
                    pre = ch.pre
                    staged = ch.staged
                    if pre:
                        queue.extend(pre)
                        pre.clear()
                        act += 1
                        if staged:
                            if ch.stages >= 2:
                                pre.extend(staged)
                            else:
                                queue.extend(staged)
                            staged.clear()
                    elif staged:
                        if ch.stages >= 2:
                            pre.extend(staged)
                        else:
                            queue.extend(staged)
                        staged.clear()
                        act += 1
                    if len(queue) > depth:
                        idx = ch.consumer_idx
                        if not in_defer[idx]:
                            in_defer[idx] = 1
                            defer.append(idx)
                    if pre:
                        self._dirty.append(ch)
                        carry = True
                    else:
                        ch.dirty = False
                self._act = act
            else:
                for ch in dirty:
                    depth = len(ch.queue)
                    if ch.commit():
                        self._act += 1
                    if len(ch.queue) > depth:
                        idx = ch.consumer_idx
                        if not in_defer[idx]:
                            in_defer[idx] = 1
                            defer.append(idx)
                    if ch.pre:
                        self._dirty.append(ch)
                        carry = True
                    else:
                        ch.dirty = False
            self._carry = carry
        else:
            self._carry = False
        self.enqueue_blocked = bool(self._eqb_count)
        if self._act:
            self.idle_cycles = 0
            t = self._trace_after
            if t:
                s = self._streak + 1
                if s >= t:
                    self._enter_trace()
                else:
                    self._streak = s
        else:
            self.idle_cycles += 1
            self._streak = 0

    # -- execution (trace tier) --------------------------------------------
    def _enter_trace(self) -> None:
        """Promote to the trace tier: steady-state firing detected.

        The instance keeps every piece of live wake state (heap,
        defers, timers, dirty list) — only the ``process`` dispatch
        changes — so any guard failure deoptimizes with zero state
        reconstruction.  Marks the compiled artifact ``trace_proven``
        so warm runs (compile cache / serve LRU) re-arm faster.
        """
        self._tracing = True
        self._streak = 0
        rt = self.runtime
        ts = rt.trace_stats
        ts["formed"] += 1
        ctask = self._ctask
        if ctask.trace_proven:
            ts["warm"] += 1
        else:
            ctask.trace_proven = True
        per = ts["per_task"].setdefault(
            self.task.name, {"formed": 0, "cycles": 0})
        per["formed"] += 1
        rt.trace_live += 1
        obs = rt.observer
        if obs is not None and obs.tracing:
            obs.emit("trace_form", self.task.name, self.sched.now)
        idxs = ctask.steady_idxs
        if idxs is not None:
            # Warm start: the artifact already carries a recorded
            # firing set — arm the superblock immediately.
            self._arm_steady(idxs)
            self.process = self.process_trace
        else:
            self._fired = bytearray(len(self._steps))
            self._record_left = TRACE_RECORD_CYCLES
            self.process = self.process_record

    def _exit_trace(self, reason: str) -> None:
        """Deoptimize back to the compiled sweep.

        Wake state is live throughout the tier, so the only
        reconstruction is dropping the superblock premarks: the dedup
        bitmaps must mirror the live lists again, and since the heap
        and defer list can only ever hold out-of-set entries while
        steady, zeroing the set restores the strict invariant.
        ``_carry`` gets its real value back (the forced keepalive was
        only there to make ``needs_tick`` unconditionally true)."""
        self._tracing = False
        self._streak = 0
        self.process = self.process_compiled
        if self._steady is not None:
            in_ready = self._in_ready
            in_defer = self._in_defer
            for idx in self._steady_idxs:
                in_ready[idx] = 0
                in_defer[idx] = 0
            self._steady = None
            self._steady_idxs = ()
            self._carry = self._tcarry
        self._fired = None
        self._record_left = 0
        self._strays = 0
        self._tidle = 0
        # Steady state was reached once; later invocations re-arm at
        # the warm threshold — backed off exponentially (sticky on the
        # artifact, so sibling instances and warm runs inherit it)
        # while episodes stay too short to pay for the arm/deopt
        # bookkeeping.
        ctask = self._ctask
        if self._trace_cycles < TRACE_MIN_EPISODE:
            ctask.warm_after = min(
                (ctask.warm_after or TRACE_WARM_STREAK) * 2, 256)
        else:
            ctask.warm_after = 0
        self._trace_after = ctask.warm_after or TRACE_WARM_STREAK
        rt = self.runtime
        ts = rt.trace_stats
        ts["deopts"][reason] = ts["deopts"].get(reason, 0) + 1
        ts["cycles"] += self._trace_cycles
        per = ts["per_task"].setdefault(
            self.task.name, {"formed": 0, "cycles": 0})
        per["cycles"] += self._trace_cycles
        self._trace_cycles = 0
        rt.trace_live -= 1
        obs = rt.observer
        if obs is not None and obs.tracing:
            obs.emit("trace_deopt", f"{self.task.name}:{reason}",
                     self.sched.now if self.sched is not None else 0)

    def _arm_steady(self, idxs) -> None:
        """Premark the recorded firing set and build the superblock.

        With ``_in_ready[i] = _in_defer[i] = 1`` held for every set
        member, all wake traffic aimed at the set degenerates to a
        single bytearray test — no heap pushes, no defer appends —
        while wakes aimed *outside* the set stay fully live (that is
        the correctness boundary: the set is only a hint).  Any set
        member currently in the heap or defer list is dropped first
        (the superblock sweeps it every cycle, a strict superset), so
        the lists hold out-of-set entries only and the premarks can
        never be clobbered by a pop.  ``_carry`` is forced True as the
        keepalive that makes ``needs_tick`` unconditionally true; the
        real value lives in ``_tcarry`` until deopt.
        """
        steps = self._steps
        self._steady_idxs = idxs
        self._steady = [(i, steps[i]) for i in idxs]
        in_ready = self._in_ready
        in_defer = self._in_defer
        ready = self._ready
        defer = self._defer
        if ready or defer:
            in_set = set(idxs)
            if ready:
                keep = [j for j in ready if j not in in_set]
                for j in ready:
                    in_ready[j] = 0
                ready.clear()
                for j in keep:
                    in_ready[j] = 1
                ready.extend(keep)
                heapq.heapify(ready)
            if defer:
                keep = [j for j in defer if j not in in_set]
                for j in defer:
                    in_defer[j] = 0
                defer.clear()
                for j in keep:
                    in_defer[j] = 1
                defer.extend(keep)
        for i in idxs:
            in_ready[i] = 1
            in_defer[i] = 1
        self._tcarry = self._carry
        self._carry = True
        self._strays = 0
        self._tidle = 0
        # Bubble-riding is a pure-perf mode: a graced idle cycle keeps
        # the instance awake, so the observer would never see the
        # sleep episode it attributes stall causes to.  With
        # attribution on, deopt on the first idle sweep instead
        # (grace 0) — that path is bit-identical to the event kernel's
        # charge accounting.
        obs = self.runtime.observer
        self._tgrace = TRACE_IDLE_GRACE \
            if obs is None or not obs.enabled else 0

    def process_record(self, now: int) -> None:
        """Trace recording: compiled-identical cycles that observe the
        firing set.

        The sweep is byte-for-byte :meth:`process_compiled` (same heap
        pops, same density escape, same commit) — the only addition is
        a side bytearray marking every index that wakes or acts.
        After ``TRACE_RECORD_CYCLES`` active cycles the union becomes
        the superblock set and the instance switches to
        :meth:`process_trace`.
        """
        fired = self._fired
        if self._defer or self._full_next:
            self._promote()
        gap = now - self.last_processed - 1
        if gap > 0:
            self.idle_cycles += gap
            obs = self.runtime.observer
            if obs is not None and obs.enabled and self._sleep_attr:
                obs.charge(self._sleep_attr, gap,
                           self.last_processed + 1)
        self._sleep_attr = None
        self.last_processed = now
        self.checked_cycle = now
        self._act = 0
        self.force_check = False
        steps = self._steps
        self._sweeping = True
        defer = self._defer
        in_defer = self._in_defer
        self._defer_from = now
        if self.full_wake or 2 * len(self._ready) >= len(steps):
            self.full_wake = False
            self._in_full = True
            for idx in self._ready:
                self._in_ready[idx] = 0
                fired[idx] += 1
            self._ready.clear()
            a = 0
            for i, step in enumerate(steps):
                step(now)
                na = self._act
                if na != a:
                    a = na
                    fired[i] += 1
            self._in_full = False
        else:
            heappop = heapq.heappop
            heap = self._ready
            in_ready = self._in_ready
            while heap:
                idx = heappop(heap)
                in_ready[idx] = 0
                fired[idx] += 1
                steps[idx](now)
        self._sweeping = False
        self._cursor = -1
        if self._dirty:
            dirty = self._dirty
            self._dirty = []
            carry = False
            defer = self._defer
            act = self._act
            for ch in dirty:
                queue = ch.queue
                depth = len(queue)
                pre = ch.pre
                staged = ch.staged
                if pre:
                    queue.extend(pre)
                    pre.clear()
                    act += 1
                    if staged:
                        if ch.stages >= 2:
                            pre.extend(staged)
                        else:
                            queue.extend(staged)
                        staged.clear()
                elif staged:
                    if ch.stages >= 2:
                        pre.extend(staged)
                    else:
                        queue.extend(staged)
                    staged.clear()
                    act += 1
                if len(queue) > depth:
                    idx = ch.consumer_idx
                    if not in_defer[idx]:
                        in_defer[idx] = 1
                        defer.append(idx)
                if pre:
                    self._dirty.append(ch)
                    carry = True
                else:
                    ch.dirty = False
            self._act = act
            self._carry = carry
        else:
            self._carry = False
        self.enqueue_blocked = bool(self._eqb_count)
        if self._act:
            self.idle_cycles = 0
            self._trace_cycles += 1
            self._record_left -= 1
            if not self._record_left:
                # Keep only nodes woken at least half the window: the
                # union's one-shot transients (pipeline fill, drain)
                # would otherwise be swept as no-ops every steady
                # cycle.  Pruned nodes stay exact — their wakes flow
                # through the live heap as stragglers.
                idxs = tuple(i for i in range(len(steps))
                             if 2 * fired[i] >= TRACE_RECORD_CYCLES)
                self._fired = None
                if idxs:
                    self._ctask.steady_idxs = idxs
                    self._arm_steady(idxs)
                    self.process = self.process_trace
                else:
                    # No node fires steadily: the pattern is irregular,
                    # not a superblock candidate right now.
                    self._exit_trace("divergence")
        else:
            self.idle_cycles += 1
            self._exit_trace("quiet")

    def process_trace(self, now: int) -> None:
        """Superblock sweep: step the recorded steady set, scheduler-free.

        Per cycle this runs the recorded steps in dense order with no
        ready-heap pushes, no defer appends and no density test — the
        premarks from :meth:`_arm_steady` turn all in-set wake traffic
        into bytearray no-ops.  Out-of-set wakes (an irregular node
        joining in, a channel feeding a consumer the recording never
        saw) stay fully live: they land in the real heap/defer list
        and are stepped *exactly*, interleaved in ascending index
        order so same-cycle visibility matches the compiled sweep's
        heap order.  Persistent stray traffic marks the set stale
        (``TRACE_STRAY_LIMIT``) — the guard taxonomy's "channel
        divergence" — which drops the recorded set and deopts so the
        next formation re-records.

        The deopt state-reconstruction invariant: wake state is live
        the whole time, so at every cycle boundary it equals what
        ``process_compiled`` would have left, premarks aside (removed
        by :meth:`_exit_trace`).  A sweep with no activity deopts
        "quiet" — and because nothing acted, no rearm was suppressed,
        making that exit exact with no catch-up sweep.  Completion
        deopts via ``SimRuntime.deliver``; fault plans never enable
        the tier at all.
        """
        defer = self._defer
        if defer and self._defer_from < now:
            # Out-of-set wakes only (in-set appends were suppressed):
            # a real heap push keeps the straggler interleave ordered.
            in_defer = self._in_defer
            ready = self._ready
            in_ready = self._in_ready
            heappush = heapq.heappush
            for idx in defer:
                in_defer[idx] = 0
                if not in_ready[idx]:
                    in_ready[idx] = 1
                    heappush(ready, idx)
            defer.clear()
        if self._full_next and self._full_from < now:
            self._full_next = False
            self.full_wake = True
        self.last_processed = now
        self.checked_cycle = now
        self._act = 0
        self.force_check = False
        steps = self._steps
        self._sweeping = True
        self._defer_from = now
        heap = self._ready
        nstray = 0
        if self.full_wake:
            # Loop finished / full re-sweep requested: one superset
            # sweep over every node (drain tokens, final pushes).
            self.full_wake = False
            self._in_full = True
            if heap:
                in_ready = self._in_ready
                for idx in heap:
                    in_ready[idx] = 0
                heap.clear()
            for step in steps:
                step(now)
            self._in_full = False
        else:
            in_ready = self._in_ready
            heappop = heapq.heappop
            for idx, step in self._steady:
                if heap and heap[0] < idx:
                    while heap and heap[0] < idx:
                        j = heappop(heap)
                        in_ready[j] = 0
                        steps[j](now)
                        nstray += 1
                step(now)
            while heap:
                j = heappop(heap)
                in_ready[j] = 0
                steps[j](now)
                nstray += 1
        self._sweeping = False
        self._cursor = -1
        if self._dirty:
            dirty = self._dirty
            self._dirty = []
            carry = False
            in_defer = self._in_defer
            act = self._act
            for ch in dirty:
                queue = ch.queue
                depth = len(queue)
                pre = ch.pre
                staged = ch.staged
                if pre:
                    queue.extend(pre)
                    pre.clear()
                    act += 1
                    if staged:
                        if ch.stages >= 2:
                            pre.extend(staged)
                        else:
                            queue.extend(staged)
                        staged.clear()
                elif staged:
                    if ch.stages >= 2:
                        pre.extend(staged)
                    else:
                        queue.extend(staged)
                    staged.clear()
                    act += 1
                if len(queue) > depth:
                    idx = ch.consumer_idx
                    if not in_defer[idx]:
                        in_defer[idx] = 1
                        defer.append(idx)
                if pre:
                    self._dirty.append(ch)
                    carry = True
                else:
                    ch.dirty = False
            self._act = act
            self._tcarry = carry
        else:
            self._tcarry = False
        self._carry = True          # keepalive: sweep again next cycle
        self.enqueue_blocked = bool(self._eqb_count)
        if self._act:
            self.idle_cycles = 0
            self._trace_cycles += 1
            self._tidle = 0
            if 4 * nstray > len(self._steady):
                # Heavy stray traffic: most wakes land outside the
                # recorded set.  Light straggling (a sub-rate node the
                # pruning left out) is fine — the heap handles it
                # exactly at compiled-kernel cost.
                s = self._strays + 1
                if s >= TRACE_STRAY_LIMIT:
                    # Stale set: drop it so the next formation
                    # re-records, and force a full catch-up sweep for
                    # the in-set rearms the premarks suppressed.
                    self._ctask.steady_idxs = None
                    self._exit_trace("divergence")
                    self.full_wake = True
                else:
                    self._strays = s
            elif self._strays:
                self._strays = 0
        else:
            # Nothing acted.  Ride out a short bubble (no rearm was
            # suppressed, so every grace cycle remains a valid exact
            # exit point); past the grace window, deopt — dropping the
            # premarks restores the exact compiled wake state.
            self.idle_cycles += 1
            g = self._tidle + 1
            if g > self._tgrace:
                self._exit_trace("quiet")
            else:
                self._tidle = g

    def maybe_sleep(self, now: int) -> None:
        """Bookkeeping before the instance goes quiet.

        If dense would park it while we are asleep (idle streak hits
        the threshold with children outstanding and memory idle),
        schedule a check wake for exactly that cycle; and snapshot the
        stall causes so the slept cycles can be attributed on wakeup.
        """
        if self._ready or self._defer or self.full_wake or \
                self._full_next or self._carry:
            # A wake is already queued: we process again next cycle,
            # so there is no sleep episode to arm or attribute.
            return
        if (self.enqueue_blocked or self.calls_outstanding > 0
                or self.pending_children > 0) and \
                self.idle_cycles <= PARK_IDLE_THRESHOLD and \
                self._check_at <= now and not self.memory_busy():
            target = now + PARK_IDLE_THRESHOLD + 1 - self.idle_cycles
            self._check_at = target
            self.sched.wheel.schedule(target, self, WAKE_CHECK)
        obs = self.runtime.observer
        if obs is not None and obs.enabled:
            self._sleep_attr = obs.classify_instance(self)

    # -- execution (dense kernel) -----------------------------------------
    def tick(self, now: int) -> None:
        self._act = 0
        self.enqueue_blocked = False
        for sim in self.node_sims:
            sim.drain_forks()
            sim.tick(now)
        for ch in self.channels.values():
            if ch.commit():
                self._act += 1
        if self._act:
            self.idle_cycles = 0
        else:
            self.idle_cycles += 1

    def memory_busy(self) -> bool:
        return any(s.busy() for s in self._mem_sims)

    def is_complete(self) -> bool:
        if len(self.liveouts) < len(self.task.live_out_types):
            return False
        if self.pending_children > 0:
            return False
        if not self.loop_finished:
            return False
        expected = (self.loop_trips or 0) if self.task.kind == "loop" \
            else 1
        for sink in self.sinks:
            if sink.sink_count < expected:
                return False
        # Only effectful nodes gate completion: pure function units may
        # hold surplus tokens produced by free-running (all-invariant)
        # sources, which are dead once every sink met its quota.
        for sim in self._mem_sims:
            if sim.busy():
                return False
        for sim in self._call_sims:
            if sim.busy():
                return False
        return True

    def parkable(self) -> bool:
        waiting_on_children = (self.calls_outstanding > 0
                               or self.pending_children > 0
                               or self.enqueue_blocked)
        return (self.idle_cycles > PARK_IDLE_THRESHOLD
                and waiting_on_children and not self.memory_busy())

    def results(self) -> List:
        return [self.liveouts[i]
                for i in range(len(self.task.live_out_types))]


class TaskBlockSim:
    """Queue + tiles for one task block."""

    def __init__(self, task: TaskBlock, runtime: "SimRuntime"):
        self.task = task
        self.runtime = runtime
        self.ready: deque = deque()
        self.edge_pending: Dict[tuple, int] = {}
        self.active: List[DataflowInstance] = []
        self.parked: List[DataflowInstance] = []
        window = (runtime.params.loop_invocation_window
                  if task.kind == "loop" else 1)
        self.capacity = max(1, task.num_tiles) * max(1, window)
        #: Cycle whose instance sweep has started (visibility marker
        #: for the event kernel's wake routing).
        self.sweep_cycle = -1
        #: Instance free list (compiled/trace kernels): completed
        #: instances are recycled instead of reconstructed — instance
        #: construction dominates spawn-heavy workloads.  None keeps
        #: the event/dense reference kernels byte-identical.
        self.pool: Optional[List[DataflowInstance]] = \
            [] if runtime.pooling else None

    def pending_count(self, edge_key: tuple) -> int:
        return self.edge_pending.get(edge_key, 0)

    def enqueue(self, invocation: TaskInvocation) -> None:
        key = invocation.edge_key
        self.edge_pending[key] = self.edge_pending.get(key, 0) + 1
        self.ready.append(invocation)

    # -- dense kernel ------------------------------------------------------
    def tick(self, now: int) -> bool:
        """Advance one cycle; returns True if anything happened."""
        active_cycle = False
        # Wake order matters for recursion: first instances whose child
        # responses arrived, then fresh ready invocations (the children
        # everyone is waiting on), and only then enqueue-blocked parks
        # retrying on leftover capacity.
        still_parked = []
        for inst in self.parked:
            if inst.response_arrived and \
                    len(self.active) < self.capacity:
                inst.response_arrived = False
                inst.idle_cycles = 0
                self.active.append(inst)
                active_cycle = True
            else:
                still_parked.append(inst)
        self.parked = still_parked
        # Start ready invocations on free capacity.
        while self.ready and len(self.active) < self.capacity and \
                self.ready[0].not_before <= now:
            inv = self.ready.popleft()
            self.edge_pending[inv.edge_key] -= 1
            inst = DataflowInstance(self.task, self.runtime, inv)
            inst.block = self
            self.active.append(inst)
            self.runtime.stats.invocations[self.task.name] += 1
            active_cycle = True
        if not self.ready:
            still_parked = []
            for inst in self.parked:
                retry = inst.enqueue_blocked and \
                    now - inst.park_cycle >= PARK_RETRY_CYCLES
                if retry and len(self.active) < self.capacity:
                    inst.response_arrived = False
                    inst.idle_cycles = 0
                    self.active.append(inst)
                    # Deliberately NOT an active cycle: a retry only
                    # counts if the re-run instance makes real progress
                    # (its own tick reports that).  Counting the unpark
                    # itself would let a permanently blocked enqueue
                    # defeat deadlock detection by retrying forever.
                else:
                    still_parked.append(inst)
            self.parked = still_parked
        # Tick instances; collect completions and parks.
        finished: List[DataflowInstance] = []
        parked: List[DataflowInstance] = []
        for inst in self.active:
            inst.tick(now)
            active_cycle |= inst.activity
            if inst.is_complete():
                finished.append(inst)
            elif inst.parkable():
                parked.append(inst)
        for inst in finished:
            self.active.remove(inst)
            self.runtime.deliver(inst)
            active_cycle = True
        for inst in parked:
            if inst in self.active:
                self.active.remove(inst)
                # Do NOT clear response_arrived here: a response that
                # landed earlier this cycle must still wake the park
                # (classic lost-wakeup hazard).
                inst.park_cycle = now
                self.parked.append(inst)
                self.runtime.stats.parked += 1
        return active_cycle

    # -- event kernel ------------------------------------------------------
    def _unpark(self, inst: DataflowInstance, now: int) -> None:
        inst.idle_cycles = 0
        inst.full_wake = True
        inst.last_processed = now - 1
        inst._sleep_attr = None
        self.active.append(inst)
        obs = self.runtime.observer
        if obs is not None and obs.enabled and inst.park_cycle >= 0:
            obs.charge_park(inst, now - inst.park_cycle,
                            inst.park_cycle)

    def tick_event(self, now: int) -> bool:
        """Event-kernel cycle: same phases as :meth:`tick`, but only
        instances with a pending wake are swept."""
        if not (self.ready or self.active or self.parked):
            return False
        active_cycle = False
        if self.parked:
            still_parked = []
            for inst in self.parked:
                if inst.response_arrived and \
                        len(self.active) < self.capacity:
                    inst.response_arrived = False
                    self._unpark(inst, now)
                    active_cycle = True
                else:
                    still_parked.append(inst)
            self.parked = still_parked
        while self.ready and len(self.active) < self.capacity and \
                self.ready[0].not_before <= now:
            inv = self.ready.popleft()
            self.edge_pending[inv.edge_key] -= 1
            self.runtime.credit_edge(inv.edge_key)
            pool = self.pool
            if pool:
                inst = pool.pop()
                inst.recycle(inv)
            else:
                inst = DataflowInstance(self.task, self.runtime, inv)
                inst.block = self
            inst.last_processed = now - 1
            self.active.append(inst)
            self.runtime.stats.invocations[self.task.name] += 1
            active_cycle = True
        if not self.ready and self.parked:
            still_parked = []
            for inst in self.parked:
                retry = inst.enqueue_blocked and \
                    now - inst.park_cycle >= PARK_RETRY_CYCLES
                if retry and len(self.active) < self.capacity:
                    inst.response_arrived = False
                    self._unpark(inst, now)
                    # Not an active cycle (see the dense kernel's
                    # retry loop): progress, if any, is reported by
                    # the instance's own sweep below.
                else:
                    still_parked.append(inst)
            self.parked = still_parked
        self.sweep_cycle = now
        finished: List[DataflowInstance] = []
        parked: List[DataflowInstance] = []
        for inst in self.active:
            # Inlined inst.needs_tick() — this is the hottest guard in
            # the kernel (every active instance, every cycle).
            if inst._defer or inst._full_next:
                inst._promote()
            if not (inst._ready or inst.full_wake or inst.force_check
                    or inst._carry):
                continue            # asleep: provably activity-free
            inst.process(now)
            if inst._act:
                active_cycle = True
            if inst.is_complete():
                finished.append(inst)
            elif inst.parkable():
                parked.append(inst)
            else:
                inst.maybe_sleep(now)
        for inst in finished:
            self.active.remove(inst)
            self.runtime.deliver(inst)
            active_cycle = True
            pool = self.pool
            if pool is not None and len(pool) < self.capacity and \
                    inst._wheel_refs == 0 and inst._eq_regs == 0:
                pool.append(inst)
        for inst in parked:
            if inst in self.active:
                self.active.remove(inst)
                inst.park_cycle = now
                self.parked.append(inst)
                self.runtime.stats.parked += 1
                obs = self.runtime.observer
                if obs is not None and obs.tracing:
                    obs.emit("park", inst.task.name, now)
        return active_cycle

    # -- trace tier (superblock stepping) ----------------------------------
    def tick_steady(self, now: int):
        """Steady-state block tick: the instance phase of
        :meth:`tick_event` alone.  The superblock's entry guard proved
        the unpark / start / retry phases are no-ops for this block
        (no startable invocation, no actionable park), so the phase
        checks and list rebuilds are skipped wholesale.

        Returns ``(active_cycle, clean)``.  ``clean`` is False when
        the cycle did anything phase-relevant — an invocation became
        startable mid-cycle, an instance finished or parked — in which
        case this block already handled it *exactly* (by delegating to
        the full tick) and the caller must run the remaining blocks
        through :meth:`tick_event` too, then leave superblock mode
        (same-cycle unpark/start ordering across blocks depends on the
        full phase structure).
        """
        if self.ready and len(self.active) < self.capacity:
            # An earlier block enqueued a startable invocation here
            # this cycle: the start phase must run *this* cycle,
            # exactly as tick_event would.
            return self.tick_event(now), False
        if not self.active:
            if self.parked:
                self.sweep_cycle = now
            return False, True
        self.sweep_cycle = now
        active_cycle = False
        finished = None
        parked = None
        for inst in self.active:
            if inst._defer or inst._full_next:
                inst._promote()
            if not (inst._ready or inst.full_wake or inst.force_check
                    or inst._carry):
                continue            # asleep: provably activity-free
            inst.process(now)
            if inst._act:
                active_cycle = True
            if inst.is_complete():
                if finished is None:
                    finished = []
                finished.append(inst)
            elif inst.parkable():
                if parked is None:
                    parked = []
                parked.append(inst)
            else:
                inst.maybe_sleep(now)
        if finished is None and parked is None:
            return active_cycle, True
        if finished:
            for inst in finished:
                self.active.remove(inst)
                self.runtime.deliver(inst)
                active_cycle = True
                pool = self.pool
                if pool is not None and len(pool) < self.capacity and \
                        inst._wheel_refs == 0 and inst._eq_regs == 0:
                    pool.append(inst)
        if parked:
            for inst in parked:
                if inst in self.active:
                    self.active.remove(inst)
                    inst.park_cycle = now
                    self.parked.append(inst)
                    self.runtime.stats.parked += 1
                    obs = self.runtime.observer
                    if obs is not None and obs.tracing:
                        obs.emit("park", inst.task.name, now)
        return active_cycle, False

    def busy(self) -> bool:
        return bool(self.ready or self.active or self.parked)


class SimRuntime:
    """Owns every TaskBlockSim; routes invocations and completions."""

    ROOT_EDGE = ("__host__", "__root__")

    def __init__(self, circuit, memory_system, stats: SimStats, params,
                 sched=None, observer=None, faults=None, compiled=None,
                 batch=None):
        self.circuit = circuit
        self.memory = memory_system
        self.stats = stats
        self.params = params
        #: Event scheduler (None selects the dense kernel).
        self.sched = sched
        self.observer = observer
        #: Fault injector of the run (None = fault-free).
        self.faults = faults
        #: CompiledCircuit artifact (None = interpretive dispatch).
        self.compiled = compiled
        #: BatchContext when this run steps N lanes at once (payload
        #: values are lane vectors; binders select lane-aware
        #: evaluators on it).  None = ordinary scalar run.
        self.batch = batch
        #: Current cycle (valid during tick/tick_event; the enqueue
        #: path needs it to stamp fault-injected start delays).
        self.now = 0
        self._enq_seq = 0
        #: Trace tier (kernel="trace"): enabled only for fault-free
        #: scalar compiled runs — an active FaultPlan forces the
        #: compiled path (the ISSUE's "deopt under any fault plan"
        #: policy), and batched lanes keep their own machinery.
        self.trace_enabled = (
            getattr(params, "kernel", "event") == "trace"
            and compiled is not None and sched is not None
            and faults is None and batch is None)
        #: Instance pooling shares the same safety preconditions but
        #: also serves the plain compiled kernel.
        self.pooling = (compiled is not None and sched is not None
                        and faults is None and batch is None)
        self.trace_live = 0          # instances currently in trace mode
        self.trace_jumped = 0        # cycles skipped by the time jump
        self.trace_stats = {"formed": 0, "warm": 0, "cycles": 0,
                            "deopts": {}, "per_task": {}}
        self.blocks: Dict[str, TaskBlockSim] = {
            name: TaskBlockSim(task, self)
            for name, task in circuit.tasks.items()}
        self.block_list = list(self.blocks.values())
        self.edge_depth: Dict[tuple, int] = {}
        for edge in circuit.task_edges:
            depth = edge.queue_depth if not edge.decoupled else \
                max(edge.queue_depth, params.decoupled_queue_depth)
            self.edge_depth[(edge.parent, edge.child)] = depth
        #: Event kernel: call/spawn sims blocked per task edge.
        self.edge_waiters: Dict[tuple, List] = {}
        self._static: Dict[str, _TaskStatic] = {}
        self.root_done = False
        self.root_results: Optional[List] = None

    def task_static(self, task: TaskBlock) -> _TaskStatic:
        static = self._static.get(task.name)
        if static is None:
            static = self._static[task.name] = _TaskStatic(task)
        return static

    def try_enqueue(self, parent_name: str, callee: str, args,
                    reply, parent) -> bool:
        block = self.blocks.get(callee)
        if block is None:
            raise SimulationError(f"call to unknown task {callee!r}")
        key = (parent_name, callee)
        depth = self.edge_depth.get(key, 4)
        if block.pending_count(key) >= depth:
            return False
        inv = TaskInvocation(args, reply, parent, key)
        if self.faults is not None:
            delay = self.faults.queue_delay(parent_name, callee,
                                            self._enq_seq)
            self._enq_seq += 1
            if delay:
                inv.not_before = self.now + delay
        block.enqueue(inv)
        return True

    def register_edge_waiter(self, key: tuple, instance, sim) -> None:
        self.edge_waiters.setdefault(key, []).append((instance, sim))

    def credit_edge(self, key: tuple) -> None:
        """A queue slot freed: retry every blocked caller on the edge."""
        waiters = self.edge_waiters.get(key)
        if not waiters:
            return
        self.edge_waiters[key] = []
        for instance, sim in waiters:
            sim._eq_registered = False
            instance._eq_regs -= 1
            instance.wake_node(sim.idx)

    def start_root(self, args) -> None:
        root = self.circuit.root_task
        if len(args) != len(root.live_in_types):
            raise SimulationError(
                f"root task {root.name} takes "
                f"{len(root.live_in_types)} args, got {len(args)}")
        self.edge_depth[self.ROOT_EDGE] = 1
        self.blocks[root.name].enqueue(
            TaskInvocation(args, None, None, self.ROOT_EDGE))

    def deliver(self, instance: DataflowInstance) -> None:
        if instance._tracing:
            instance._exit_trace("complete")
        inv = instance.invocation
        if inv.reply is not None:
            inv.reply.results = instance.results()
            inv.reply.done = True
            if inv.parent is not None:
                inv.parent.response_arrived = True
                inv.parent.wake_full()
        elif inv.parent is not None:
            inv.parent.pending_children -= 1
            inv.parent.response_arrived = True
            inv.parent.wake_full()
        else:
            self.root_done = True
            self.root_results = instance.results()
        obs = self.observer
        if obs is not None and obs.tracing:
            obs.emit("task_done", instance.task.name,
                     self.sched.now if self.sched else 0)

    def tick(self, now: int) -> bool:
        self.now = now
        active = False
        for block in self.block_list:
            active |= block.tick(now)
        return active

    def tick_event(self, now: int) -> bool:
        self.now = now
        active = False
        for block in self.block_list:
            active |= block.tick_event(now)
        return active

"""Task-block runtime: dataflow instances, execution tiles, queues.

Implements the paper's whole-accelerator execution model (Figure 5):
task blocks run concurrently, each with a local queue of ready and
pending invocations and ``num_tiles`` execution tiles.  An invocation
that is blocked only on child-task responses *parks* — it stays in the
task queue as a pending task and releases its tile (this is how the
queue-based runtime expresses the paper's recursion-as-tasks pattern
without deadlock).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from ..core.circuit import TaskBlock
from ..errors import SimulationError
from .channel import Channel, LatchedChannel
from .nodesim import make_node_sim
from .stats import SimStats


class TaskInvocation:
    """One dynamic activation of a task block."""

    __slots__ = ("args", "reply", "parent", "edge_key")

    def __init__(self, args, reply, parent, edge_key):
        self.args = list(args)
        self.reply = reply          # _CallRecord to fill, or None (spawn)
        self.parent = parent        # parent DataflowInstance or None
        self.edge_key = edge_key


class DataflowInstance:
    """Runtime state of one invocation: channels + node state machines."""

    def __init__(self, task: TaskBlock, runtime: "SimRuntime",
                 invocation: TaskInvocation):
        self.task = task
        self.runtime = runtime
        self.invocation = invocation
        self.args = invocation.args
        self.stats: SimStats = runtime.stats
        self.activity = False
        self.idle_cycles = 0
        self.pending_children = 0
        self.calls_outstanding = 0
        self.response_arrived = False
        self.enqueue_blocked = False
        self.park_cycle = -1
        self.loop_trips: Optional[int] = None
        self.loop_finished = task.kind != "loop"
        self.loop_conditional = False
        self.liveouts: Dict[int, object] = {}

        self.channels: Dict[int, object] = {}
        for conn in task.dataflow.connections:
            if conn.latched:
                self.channels[id(conn)] = LatchedChannel()
            else:
                stages = 2 if conn.buffered else 1
                self.channels[id(conn)] = Channel(conn.depth, stages)
        # Pre-latch loop-invariant values (live-in buffers).
        for node in task.dataflow.nodes:
            if node.kind == "const":
                for conn in node.out.outgoing:
                    if conn.latched:
                        self.channels[id(conn)].latch(node.value)
            elif node.kind == "livein":
                for conn in node.out.outgoing:
                    if conn.latched:
                        self.channels[id(conn)].latch(
                            self.args[node.index])
        self.node_sims = [make_node_sim(n, self)
                          for n in task.dataflow.nodes]
        for node in task.dataflow.nodes:
            if node.kind == "loopctl" and node.conditional:
                self.loop_conditional = True
        self.sinks = [s for s in self.node_sims if s.is_iter_sink]
        self._effect_sinks = [s for s in self.sinks
                              if s.node.kind != "phi"]

    # -- wiring ------------------------------------------------------------
    def junction_sim_for(self, node):
        junction = self.task.junctions[node.junction_index]
        return self.runtime.memory.junction_sim(junction)

    # -- protocol callbacks --------------------------------------------------
    def record_liveout(self, index: int, value) -> None:
        self.liveouts[index] = value

    def completed_iterations(self) -> int:
        if not self.sinks:
            return 1 << 30
        return min(s.sink_count for s in self.sinks)

    # -- execution -------------------------------------------------------
    def tick(self, now: int) -> None:
        self.activity = False
        self.enqueue_blocked = False
        for sim in self.node_sims:
            sim.drain_forks()
            sim.tick(now)
        for ch in self.channels.values():
            if ch.commit():
                self.activity = True
        if self.activity:
            self.idle_cycles = 0
        else:
            self.idle_cycles += 1

    def memory_busy(self) -> bool:
        return any(s.busy() for s in self.node_sims
                   if s.node.kind in ("load", "store"))

    def is_complete(self) -> bool:
        if len(self.liveouts) < len(self.task.live_out_types):
            return False
        if self.pending_children > 0:
            return False
        if not self.loop_finished:
            return False
        expected = (self.loop_trips or 0) if self.task.kind == "loop" \
            else 1
        for sink in self.sinks:
            if sink.sink_count < expected:
                return False
        # Only effectful nodes gate completion: pure function units may
        # hold surplus tokens produced by free-running (all-invariant)
        # sources, which are dead once every sink met its quota.
        for sim in self.node_sims:
            if sim.node.kind in ("load", "store", "call", "spawn") and \
                    sim.busy():
                return False
        return True

    def parkable(self) -> bool:
        waiting_on_children = (self.calls_outstanding > 0
                               or self.pending_children > 0
                               or self.enqueue_blocked)
        return (self.idle_cycles > 8 and waiting_on_children
                and not self.memory_busy())

    def results(self) -> List:
        return [self.liveouts[i]
                for i in range(len(self.task.live_out_types))]


class TaskBlockSim:
    """Queue + tiles for one task block."""

    def __init__(self, task: TaskBlock, runtime: "SimRuntime"):
        self.task = task
        self.runtime = runtime
        self.ready: deque = deque()
        self.edge_pending: Dict[tuple, int] = {}
        self.active: List[DataflowInstance] = []
        self.parked: List[DataflowInstance] = []
        window = (runtime.params.loop_invocation_window
                  if task.kind == "loop" else 1)
        self.capacity = max(1, task.num_tiles) * max(1, window)

    def pending_count(self, edge_key: tuple) -> int:
        return self.edge_pending.get(edge_key, 0)

    def enqueue(self, invocation: TaskInvocation) -> None:
        key = invocation.edge_key
        self.edge_pending[key] = self.edge_pending.get(key, 0) + 1
        self.ready.append(invocation)

    def tick(self, now: int) -> bool:
        """Advance one cycle; returns True if anything happened."""
        active_cycle = False
        # Wake order matters for recursion: first instances whose child
        # responses arrived, then fresh ready invocations (the children
        # everyone is waiting on), and only then enqueue-blocked parks
        # retrying on leftover capacity.
        still_parked = []
        for inst in self.parked:
            if inst.response_arrived and \
                    len(self.active) < self.capacity:
                inst.response_arrived = False
                inst.idle_cycles = 0
                self.active.append(inst)
                active_cycle = True
            else:
                still_parked.append(inst)
        self.parked = still_parked
        # Start ready invocations on free capacity.
        while self.ready and len(self.active) < self.capacity:
            inv = self.ready.popleft()
            self.edge_pending[inv.edge_key] -= 1
            inst = DataflowInstance(self.task, self.runtime, inv)
            self.active.append(inst)
            self.runtime.stats.invocations[self.task.name] += 1
            active_cycle = True
        if not self.ready:
            still_parked = []
            for inst in self.parked:
                retry = inst.enqueue_blocked and \
                    now - inst.park_cycle >= 16
                if retry and len(self.active) < self.capacity:
                    inst.response_arrived = False
                    inst.idle_cycles = 0
                    self.active.append(inst)
                    active_cycle = True
                else:
                    still_parked.append(inst)
            self.parked = still_parked
        # Tick instances; collect completions and parks.
        finished: List[DataflowInstance] = []
        parked: List[DataflowInstance] = []
        for inst in self.active:
            inst.tick(now)
            active_cycle |= inst.activity
            if inst.is_complete():
                finished.append(inst)
            elif inst.parkable():
                parked.append(inst)
        for inst in finished:
            self.active.remove(inst)
            self.runtime.deliver(inst)
            active_cycle = True
        for inst in parked:
            if inst in self.active:
                self.active.remove(inst)
                # Do NOT clear response_arrived here: a response that
                # landed earlier this cycle must still wake the park
                # (classic lost-wakeup hazard).
                inst.park_cycle = now
                self.parked.append(inst)
                self.runtime.stats.parked += 1
        return active_cycle

    def busy(self) -> bool:
        return bool(self.ready or self.active or self.parked)


class SimRuntime:
    """Owns every TaskBlockSim; routes invocations and completions."""

    ROOT_EDGE = ("__host__", "__root__")

    def __init__(self, circuit, memory_system, stats: SimStats, params):
        self.circuit = circuit
        self.memory = memory_system
        self.stats = stats
        self.params = params
        self.blocks: Dict[str, TaskBlockSim] = {
            name: TaskBlockSim(task, self)
            for name, task in circuit.tasks.items()}
        self.edge_depth: Dict[tuple, int] = {}
        for edge in circuit.task_edges:
            depth = edge.queue_depth if not edge.decoupled else \
                max(edge.queue_depth, params.decoupled_queue_depth)
            self.edge_depth[(edge.parent, edge.child)] = depth
        self.root_done = False
        self.root_results: Optional[List] = None

    def try_enqueue(self, parent_name: str, callee: str, args,
                    reply, parent) -> bool:
        block = self.blocks.get(callee)
        if block is None:
            raise SimulationError(f"call to unknown task {callee!r}")
        key = (parent_name, callee)
        depth = self.edge_depth.get(key, 4)
        if block.pending_count(key) >= depth:
            return False
        block.enqueue(TaskInvocation(args, reply, parent, key))
        return True

    def start_root(self, args) -> None:
        root = self.circuit.root_task
        if len(args) != len(root.live_in_types):
            raise SimulationError(
                f"root task {root.name} takes "
                f"{len(root.live_in_types)} args, got {len(args)}")
        self.edge_depth[self.ROOT_EDGE] = 1
        self.blocks[root.name].enqueue(
            TaskInvocation(args, None, None, self.ROOT_EDGE))

    def deliver(self, instance: DataflowInstance) -> None:
        inv = instance.invocation
        if inv.reply is not None:
            inv.reply.results = instance.results()
            inv.reply.done = True
            if inv.parent is not None:
                inv.parent.response_arrived = True
        elif inv.parent is not None:
            inv.parent.pending_children -= 1
            inv.parent.response_arrived = True
        else:
            self.root_done = True
            self.root_results = instance.results()

    def tick(self, now: int) -> bool:
        active = False
        for block in self.blocks.values():
            active |= block.tick(now)
        return active

"""Unified observability layer: stall attribution + event tracing.

Every stall in the simulator gets an *attributed cause* from the
taxonomy below, accumulated per node (and per memory site) in
:class:`repro.sim.stats.SimStats`.  The event kernel makes this nearly
free: a stall is exactly a sleep episode, so attribution happens once
per episode (classify on falling asleep, charge the slept cycles on
wakeup) instead of once per idle cycle.

An optional bounded ring buffer records stall episodes and task
lifecycle events; it exports either plain JSON or the Chrome
``chrome://tracing`` / Perfetto ``traceEvents`` format so stalls can
be inspected on a real timeline viewer.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Dict, List, Optional, Tuple

from ..core.provenance import provenance_label

# -- stall taxonomy ---------------------------------------------------------
#: No token available on at least one required input edge.
UPSTREAM_EMPTY = "upstream_empty"
#: All inputs present but an output edge (fork branch) has no space.
DOWNSTREAM_FULL = "downstream_full"
#: Request serialized behind others on the same SRAM bank port.
BANK_CONFLICT = "bank_conflict"
#: Request waiting for the junction arbiter's issue slots.
JUNCTION_ARB = "junction_arb"
#: Load/store waiting on an outstanding memory transaction.
DRAM_INFLIGHT = "dram_inflight"
#: call/spawn blocked because the callee's task queue is at depth.
TASK_QUEUE_FULL = "task_queue_full"
#: Parent waiting for a child task invocation to complete.
CHILD_WAIT = "child_wait"
#: Loop controller at its in-flight iteration window.
ITER_WINDOW = "iter_window"
#: Instance idle with no attributable blocked node (pure latency).
IDLE = "idle"

STALL_CAUSES = (
    UPSTREAM_EMPTY, DOWNSTREAM_FULL, BANK_CONFLICT, JUNCTION_ARB,
    DRAM_INFLIGHT, TASK_QUEUE_FULL, CHILD_WAIT, ITER_WINDOW, IDLE,
)


def classify_node(sim) -> Optional[str]:
    """Name why one node simulator cannot act right now, or None.

    Used for sleep-episode attribution and for deadlock diagnostics;
    inspects only the sim's own state so it is safe at any point of
    the cycle.
    """
    kind = sim.node.kind
    if kind in ("load", "store"):
        if sim.records:
            head = sim.records[0]
            if head.remaining > 0:
                return DRAM_INFLIGHT
            return DOWNSTREAM_FULL      # retired value has nowhere to go
        return _port_cause(sim)
    if kind in ("call", "spawn"):
        if getattr(sim, "_eq_blocked", False):
            return TASK_QUEUE_FULL
        if kind == "call" and sim.records and not sim.records[0].done:
            return CHILD_WAIT
        return _port_cause(sim)
    if kind == "loopctl":
        if sim.started and not sim.finished:
            try:
                if sim._in_flight() >= sim.node.max_in_flight:
                    return ITER_WINDOW
            except AttributeError:
                pass  # loopctl variant without an in-flight window
        return _port_cause(sim)
    if kind == "sync":
        if sim.instance.pending_children > 0:
            return CHILD_WAIT
        return _port_cause(sim)
    return _port_cause(sim)


def _port_cause(sim) -> Optional[str]:
    """Generic edge-level classification: starved vs backpressured."""
    missing = False
    unwired = False
    for port in sim.node.inputs:
        conn = port.incoming
        if conn is None:
            unwired = True
            continue
        if not sim.instance.channels[id(conn)].ready():
            missing = True
            break
    if missing:
        return UPSTREAM_EMPTY
    for fork in sim._forks.values():
        if fork.pending:
            return DOWNSTREAM_FULL
    if unwired:
        # An existing-but-unwired input can never produce a token:
        # the node is starved forever (classic miswiring deadlock).
        return UPSTREAM_EMPTY
    return None


def _node_loc(node) -> str:
    """Provenance label of a node, or "" if it carries none."""
    return provenance_label(getattr(node, "provenance", ()))


class Observability:
    """Per-run stall accounting and (optional) event trace.

    ``level``:
      * ``"off"``      — no attribution at all (raw speed runs)
      * ``"counters"`` — per-node stall cause counters (the default;
        one classification scan per sleep episode)
      * ``"trace"``    — counters plus a bounded ring buffer of stall
        and task-lifecycle events for timeline export
    """

    def __init__(self, stats, level: str = "counters",
                 trace_capacity: int = 65536):
        if level not in ("off", "counters", "trace"):
            raise ValueError(f"bad observability level {level!r}")
        self.stats = stats
        self.level = level
        self.enabled = level != "off"
        self.tracing = level == "trace"
        self.ring: deque = deque(maxlen=max(1, trace_capacity))
        self.dropped = 0

    # -- stall episodes ---------------------------------------------------
    def classify_instance(self, inst) -> List[Tuple[str, str, str]]:
        """Snapshot of (node_label, cause, source_loc) triples as an
        instance falls asleep.  ``source_loc`` is the provenance label
        (``file:line (context)``) of the blocked node, or ``""`` for
        instance-level causes with no single node."""
        task = inst.task.name
        out: List[Tuple[str, str, str]] = []
        for sim in inst._mem_sims:
            cause = classify_node(sim)
            if cause is not None:
                out.append((f"{task}.{sim.node.name}", cause,
                            _node_loc(sim.node)))
        for sim in inst._call_sims:
            cause = classify_node(sim)
            if cause is not None:
                out.append((f"{task}.{sim.node.name}", cause,
                            _node_loc(sim.node)))
        if not out and inst.pending_children > 0:
            out.append((task, CHILD_WAIT, ""))
        if not out:
            out.append((task, IDLE, ""))
        return out

    def charge(self, attrs: List[Tuple[str, str, str]], cycles: int,
               start: int) -> None:
        """Charge a finished sleep episode to its recorded causes."""
        if cycles <= 0 or not attrs:
            return
        stats = self.stats
        for label, cause, loc in attrs:
            stats.stall_cycles[cause] += cycles
            stats.node_stalls[label][cause] = \
                stats.node_stalls[label].get(cause, 0) + cycles
            if loc:
                stats.source_stalls[loc][cause] = \
                    stats.source_stalls[loc].get(cause, 0) + cycles
        if self.tracing:
            for label, cause, loc in attrs:
                args = {"cause": cause}
                if loc:
                    args["loc"] = loc
                self.emit("stall", label, start, dur=cycles, args=args)

    def charge_park(self, inst, cycles: int, start: int) -> None:
        """A parked instance was waiting on children or queue space."""
        cause = TASK_QUEUE_FULL if inst.enqueue_blocked else CHILD_WAIT
        self.charge([(inst.task.name, cause, "")], cycles, start)

    # -- ring-buffer trace ------------------------------------------------
    def emit(self, cat: str, name: str, cycle: int, dur: int = 0,
             args: Optional[Dict] = None) -> None:
        if not self.tracing:
            return
        if len(self.ring) == self.ring.maxlen:
            self.dropped += 1
        self.ring.append((cycle, dur, cat, name, args))

    # -- exports ----------------------------------------------------------
    def events(self) -> List[Dict]:
        return [{"cycle": c, "dur": d, "cat": cat, "name": name,
                 "args": args or {}}
                for c, d, cat, name, args in self.ring]

    def chrome_trace(self) -> Dict:
        """Chrome/Perfetto ``traceEvents`` JSON (1 cycle = 1 us).

        Episodes are appended to the ring at *wakeup* time, so raw
        order is not sorted by start cycle; viewers (and our tests)
        expect monotonic ``ts``, so we sort on export.
        """
        events = []
        for cycle, dur, cat, name, args in sorted(
                self.ring, key=lambda rec: (rec[0], rec[3])):
            pid = name.split(".", 1)[0]
            ev = {"name": (args or {}).get("cause", name), "cat": cat,
                  "pid": pid, "tid": name, "ts": cycle,
                  "args": args or {}}
            if dur > 0:
                ev["ph"] = "X"
                ev["dur"] = dur
            else:
                ev["ph"] = "i"
                ev["s"] = "t"
            events.append(ev)
        return {"traceEvents": events,
                "displayTimeUnit": "ms",
                "otherData": {"dropped_events": self.dropped,
                              "unit": "1 ts = 1 cycle"}}

    def write_chrome_trace(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.chrome_trace(), fh)

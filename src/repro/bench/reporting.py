"""Plain-text tables and series for experiment output.

Every benchmark prints the same rows/series the paper reports and also
appends them to ``benchmarks/results/<experiment>.txt`` so artifacts
survive a quiet pytest run.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    cols = [list(map(_fmt, col)) for col in zip(headers, *rows)]
    widths = [max(len(v) for v in col) for col in cols]
    out: List[str] = []
    if title:
        out.append(title)
    header_line = "  ".join(h.ljust(w)
                            for h, w in zip(map(_fmt, headers), widths))
    out.append(header_line)
    out.append("-" * len(header_line))
    for row in rows:
        out.append("  ".join(_fmt(v).ljust(w)
                             for v, w in zip(row, widths)))
    return "\n".join(out)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def normalize(values: Dict[str, float],
              baseline_key: str) -> Dict[str, float]:
    """Divide every entry by the baseline (paper's 'Normalized Exe')."""
    base = values[baseline_key]
    return {k: (v / base if base else 0.0) for k, v in values.items()}


def results_dir() -> str:
    here = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))))
    path = os.path.join(here, "benchmarks", "results")
    os.makedirs(path, exist_ok=True)
    return path


def emit(experiment: str, text: str) -> None:
    """Print and persist one experiment's output."""
    print()
    print(f"===== {experiment} =====")
    print(text)
    path = os.path.join(results_dir(), f"{experiment}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")

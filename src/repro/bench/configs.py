"""Standard uopt pass stacks used by the paper's experiments.

Section 6.5 groups the stacks: Cilk accelerators get
banking + fusion + tiling; the loop workloads get
banking + localization + op-fusion; tensor workloads additionally get
the higher-order tensor units.
"""

from __future__ import annotations

from typing import List

from ..opt import (
    CacheBanking,
    ExecutionTiling,
    MemoryLocalization,
    OpFusion,
    ParameterTuning,
    Pass,
    ScratchpadBanking,
    TaskPipelining,
    TensorOps,
)
from ..workloads import get_workload

#: Workloads whose best stack uses execution tiling (the Cilk set).
CILK_SET = ("fib", "msort", "saxpy", "stencil", "img_scale")


def fusion_stack() -> List[Pass]:
    """Section 6.1: auto-pipelining + op fusion."""
    return [OpFusion()]


def tiling_stack(tiles: int) -> List[Pass]:
    """Section 6.2: decouple queues, replicate execution units."""
    return [TaskPipelining(), ExecutionTiling(tiles)]


def localization_stack(banks: int = 2) -> List[Pass]:
    """Section 6.4: per-array scratchpads + banking + tuned widths."""
    return [MemoryLocalization(), ScratchpadBanking(banks),
            ParameterTuning()]


def banking_stack(banks: int) -> List[Pass]:
    """Section 6.4: bank the shared L1 cache."""
    return [CacheBanking(banks), ParameterTuning()]


def tensor_stack(rows: int = 2, cols: int = 2) -> List[Pass]:
    """Section 6.3: introduce Tensor2D higher-order function units."""
    return [TensorOps(rows=rows, cols=cols)]


def all_opts_for(name: str, tiles: int = 4,
                 banks: int = 4) -> List[Pass]:
    """The per-workload best stack used for sections 6.5/6.6."""
    workload = get_workload(name)
    passes: List[Pass] = []
    if name in CILK_SET:
        # Banking, Fusion, Tile (Figure 17, left group).
        passes.extend([CacheBanking(banks), OpFusion(),
                       TaskPipelining(), ExecutionTiling(tiles),
                       ParameterTuning()])
    else:
        # Banking, Localization, Op-Fusion (Figure 17, right group).
        passes.extend([CacheBanking(banks), MemoryLocalization(),
                       ScratchpadBanking(banks), OpFusion(),
                       ParameterTuning()])
    if workload.tensor:
        passes.insert(0, TensorOps())
    return passes

"""End-to-end experiment runner: workload -> uIR -> passes -> sim ->
synthesis -> time."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..api import Pipeline
from ..opt import Pass, PassResult
from ..rtl import SynthesisReport
from ..sim import SimParams, SimStats
from ..workloads import Workload, get_workload


@dataclass
class RunResult:
    """One accelerator configuration's measured quality."""

    workload: str
    config: str
    cycles: int
    fpga_mhz: float
    stats: SimStats
    synth: SynthesisReport
    pass_log: List[PassResult] = field(default_factory=list)
    variant: str = "base"
    #: The optimized circuit itself (for counter readout / reporting).
    circuit: Optional[object] = None

    @property
    def time_us(self) -> float:
        """Wall-clock execution estimate on the FPGA backend."""
        return self.cycles / self.fpga_mhz

    def __repr__(self) -> str:
        return (f"RunResult({self.workload}/{self.config}: "
                f"{self.cycles} cyc @ {self.fpga_mhz:.0f} MHz = "
                f"{self.time_us:.2f} us)")


def run_workload(workload, passes: Sequence[Pass] = (),
                 config: str = "baseline", variant: str = "base",
                 params: Optional[SimParams] = None,
                 check: bool = True) -> RunResult:
    """Build, optimize, simulate, and synthesize one configuration.

    ``workload`` is a name or :class:`Workload`.  The simulated memory
    image is verified against the reference interpreter unless
    ``check=False`` (every uopt configuration must preserve behavior —
    that is the paper's core claim, so we always assert it in anger).

    .. deprecated::
        This predates :class:`repro.api.Pipeline` and now simply
        drives it, returning the same :class:`RunResult`.  New code
        should use :class:`repro.api.Pipeline` (or
        :func:`repro.api.evaluate`, which routes through the typed
        ``repro.eval/v1`` request the serve daemon speaks).
    """
    import warnings
    warnings.warn(
        "repro.bench.run_workload is deprecated; drive "
        "repro.api.Pipeline (or repro.api.evaluate) instead",
        DeprecationWarning, stacklevel=2)
    w: Workload = get_workload(workload) if isinstance(workload, str) \
        else workload
    pipe = Pipeline(w, variant=variant, name=f"{w.name}_{config}")
    pipe.optimize(list(passes) if not isinstance(passes, str)
                  else passes)
    pipe.simulate(params, check=check)
    pipe.synthesize(name=w.name)
    return RunResult(workload=w.name, config=config,
                     cycles=pipe.sim.cycles,
                     fpga_mhz=pipe.synth.fpga_mhz,
                     stats=pipe.sim.stats, synth=pipe.synth,
                     pass_log=list(pipe.pass_log), variant=variant,
                     circuit=pipe.circuit)

"""Experiment harness regenerating every table and figure in the paper
(see DESIGN.md section 4 for the experiment index)."""

from .harness import RunResult, run_workload  # noqa: F401
from .configs import (  # noqa: F401
    all_opts_for,
    banking_stack,
    fusion_stack,
    localization_stack,
    tiling_stack,
)
from .reporting import format_table, normalize  # noqa: F401
from .regression import check_throughput, render_check  # noqa: F401

"""Throughput regression gate (the ``repro bench --check`` command).

Re-measures simulation-kernel throughput with the committed
methodology (interleaved best-of-N, circuit built once, observability
off — see ``benchmarks/bench_sim_throughput.py``) and diffs the
result against the committed baseline
``benchmarks/results/BENCH_sim_throughput.json``.

Two checks, by strength:

* **cycles** (hard) — simulation is deterministic, so each workload's
  simulated cycle count must match the committed row exactly; a drift
  here is a semantic change, not noise.
* **speedup geomeans** (thresholded) — absolute wall times do not
  transfer between machines, but the *relative* kernel speedups
  (event/dense, compiled/event, trace/event) do.  The fresh geomean
  must stay within ``threshold`` (default 20%) of the committed
  geomean.

This is how the telemetry acceptance criterion is enforced: with
telemetry disabled, instrumented hot paths must not drag the geomeans
below the committed baseline's band.
"""

from __future__ import annotations

import json
import math
import os
import time
from typing import Dict, List, Optional, Sequence

from ..errors import ReproError
from ..frontend import translate_module
from ..opt import PassManager
from ..sim import SimParams, simulate
from ..workloads import WORKLOADS
from .configs import all_opts_for

CHECK_SCHEMA = "repro.bench-check/v1"
DEFAULT_BASELINE = os.path.normpath(os.path.join(
    os.path.dirname(__file__), "..", "..", "..",
    "benchmarks", "results", "BENCH_sim_throughput.json"))
DEFAULT_THRESHOLD = 0.2

#: The geomean columns the committed baseline carries, and the wall
#: columns each ratio is built from (numerator kernel runs *faster*).
RATIOS = {
    "event_over_dense": ("dense", "event"),
    "compiled_over_event": ("event", "compiled"),
    "trace_over_event": ("event", "trace"),
}


def _geomean(values: Sequence[float]) -> Optional[float]:
    vals = [v for v in values if v]
    if not vals:
        return None
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def _measure(workload: str, config: str, kernels: Sequence[str],
             repeat: int) -> Dict:
    """Interleaved best-of-``repeat`` walls, committed methodology."""
    w = WORKLOADS[workload]
    passes = [] if config == "baseline" else all_opts_for(workload)
    circuit = translate_module(w.module(), name=f"{workload}_{config}")
    PassManager(list(passes)).run(circuit)

    def once(kernel: str):
        mem = w.fresh_memory()
        params = SimParams(kernel=kernel, observe="off",
                           validate=False)
        t0 = time.perf_counter()
        res = simulate(circuit, mem, list(w.args_for()), params)
        return res.cycles, time.perf_counter() - t0

    cycles = None
    best: Dict[str, Optional[float]] = {k: None for k in kernels}
    for k in kernels:                      # warm-up (compile, caches)
        once(k)
    for _ in range(repeat):
        for k in kernels:
            c, wall = once(k)
            cycles = c
            if best[k] is None or wall < best[k]:
                best[k] = wall
    row: Dict = {"workload": workload, "cycles": cycles,
                 "wall_s": {k: round(v, 4) for k, v in best.items()}}
    for name, (slow, fast) in RATIOS.items():
        if slow in best and fast in best:
            row[name] = round(best[slow] / best[fast], 3)
    return row


def check_throughput(baseline_path: Optional[str] = None, *,
                     workloads: Optional[Sequence[str]] = None,
                     repeat: int = 3,
                     threshold: float = DEFAULT_THRESHOLD) -> Dict:
    """Measure fresh, diff against the committed baseline.

    Returns the check document (``ok``, per-check ``failures``, fresh
    and committed rows/geomeans).  Raises :class:`ReproError` when the
    baseline file is missing or unreadable — an absent baseline is a
    configuration error, not a pass.
    """
    path = baseline_path or DEFAULT_BASELINE
    try:
        with open(path) as fh:
            committed = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(
            f"cannot read committed benchmark baseline {path}: {exc}")
    if not str(committed.get("schema", "")).startswith(
            "repro.bench_sim_throughput/"):
        raise ReproError(
            f"{path} is not a bench_sim_throughput document "
            f"(schema={committed.get('schema')!r})")

    kernels = list(committed.get("kernels",
                                 ("dense", "event", "compiled")))
    config = committed.get("config", "allopts")
    by_name = {r["workload"]: r for r in committed.get("rows", [])}
    names = list(workloads) if workloads else sorted(by_name)
    unknown = [n for n in names if n not in by_name]
    if unknown:
        raise ReproError(
            f"workload(s) not in the committed baseline: "
            f"{', '.join(unknown)} (has: {', '.join(sorted(by_name))})")

    failures: List[str] = []
    rows: List[Dict] = []
    for name in names:
        row = _measure(name, config, kernels, repeat)
        rows.append(row)
        want = by_name[name].get("cycles")
        if want is not None and row["cycles"] != want:
            failures.append(
                f"{name}: simulated {row['cycles']} cycles, committed "
                f"baseline says {want} (determinism break)")

    geomean = {name: _geomean([r.get(name) for r in rows])
               for name in RATIOS}
    # Compare against the committed geomean of the *selected* rows, so
    # a workload subset is checked against its own band rather than
    # the whole suite's.
    committed_geomean = {
        name: _geomean([by_name[n].get(name) or 0.0 for n in names])
        for name in RATIOS}
    floor_factor = 1.0 - threshold
    for name, fresh in geomean.items():
        want = committed_geomean.get(name)
        if fresh is None or not want:
            continue
        floor = want * floor_factor
        if fresh < floor:
            failures.append(
                f"geomean {name.replace('_over_', '/')}: fresh "
                f"{fresh:.3f}x < {floor:.3f}x "
                f"(committed {want:.3f}x - {threshold:.0%})")

    return {
        "schema": CHECK_SCHEMA,
        "baseline": path,
        "config": config,
        "kernels": kernels,
        "repeat": repeat,
        "threshold": threshold,
        "rows": rows,
        "geomean": {k: (round(v, 3) if v else None)
                    for k, v in geomean.items()},
        "committed_geomean": {k: (round(v, 3) if v else None)
                              for k, v in committed_geomean.items()},
        "failures": failures,
        "ok": not failures,
    }


def render_check(doc: Dict) -> str:
    """Terminal summary of one check document."""
    lines = [f"bench check vs {doc['baseline']} "
             f"(threshold {doc['threshold']:.0%}):"]
    for row in doc["rows"]:
        bits = [f"  {row['workload']}: {row['cycles']} cycles"]
        for name in RATIOS:
            if name in row:
                bits.append(f"{name.replace('_over_', '/')} "
                            f"{row[name]:.2f}x")
        lines.append(" | ".join(bits))
    for name, fresh in doc["geomean"].items():
        if fresh is None:
            continue
        want = doc["committed_geomean"].get(name)
        vs = f" (committed {want:.2f}x)" if want else ""
        lines.append(f"  geomean {name.replace('_over_', '/')} "
                     f"{fresh:.2f}x{vs}")
    if doc["ok"]:
        lines.append("  OK: within the committed baseline's band")
    else:
        for msg in doc["failures"]:
            lines.append(f"  FAIL: {msg}")
    return "\n".join(lines)

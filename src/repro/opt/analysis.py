"""Analyses over uIR circuits used by the optimization passes.

These are the "Analysis" half of the paper's Algorithm 2 style
(analysis identifies opportunities, transformation rewires the graph).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core import oplib
from ..core.circuit import AcceleratorCircuit, TaskBlock
from ..core.graph import Dataflow, Node


def memory_access_groups(
        circuit: AcceleratorCircuit
) -> Dict[Optional[str], List[Tuple[TaskBlock, Node]]]:
    """Group every load/store node by the array it touches.

    This is the paper's ``getMemoryAccess`` analysis (Algorithm 2): the
    points-to result was recorded on each node at translation time.
    ``None`` keys collect nodes with unknown targets.
    """
    groups: Dict[Optional[str], List[Tuple[TaskBlock, Node]]] = {}
    for task in circuit.tasks.values():
        for node in task.memory_nodes():
            groups.setdefault(node.array, []).append((task, node))
    return groups


def node_latency(node: Node) -> int:
    """Pipeline latency (cycles) of one node, plus its handshake stage."""
    if node.kind in ("compute", "tensor", "select"):
        op = node.op if node.kind != "select" else "select"
        return max(1, oplib.op_info(op, node.outputs[0].type).latency)
    if node.kind == "fused":
        return max(1, node.latency)
    if node.kind in ("load", "store"):
        return 3  # databox + junction turnaround (memory time excluded)
    if node.kind in ("call", "spawn"):
        return 2
    return 1


def dataflow_depth(task: TaskBlock) -> int:
    """Length (in cycles) of the longest forward path through a task's
    dataflow — the pipeline depth the paper quotes (e.g. GEMM ~40)."""
    depth: Dict[Node, int] = {}
    for node in task.dataflow.topological_order():
        best = 0
        for port in node.inputs:
            conn = port.incoming
            if conn is None or Dataflow._is_back_edge(conn):
                continue
            best = max(best, depth.get(conn.src.node, 0))
        depth[node] = best + node_latency(node)
    return max(depth.values(), default=0)


def critical_path_ns(task: TaskBlock) -> float:
    """Worst single-stage combinational delay in the task (sets fmax)."""
    worst = 0.0
    for node in task.dataflow.nodes:
        if node.kind in ("compute", "tensor"):
            worst = max(worst, oplib.op_info(
                node.op, node.outputs[0].type).delay_ns)
        elif node.kind == "fused":
            worst = max(worst, node.delay_ns)
        elif node.kind == "select":
            worst = max(worst, oplib.op_info("select", None).delay_ns)
        elif node.kind == "loopctl":
            worst = max(worst, oplib.op_info("loopctl", None).delay_ns)
        elif node.kind in ("load", "store"):
            worst = max(worst, oplib.op_info("load", None).delay_ns)
    return worst


def recurrence_ii(task: TaskBlock) -> int:
    """Initiation-interval bound from loop-carried recurrences: the
    longest latency cycle through a phi back-edge, or the loop-control
    pipeline, whichever is larger."""
    best = 1
    for node in task.dataflow.nodes_of_kind("loopctl"):
        best = max(best, node.pipeline_stages)
    # Walk back from each phi's back input to the phi's own output.
    for phi in task.dataflow.nodes_of_kind("phi"):
        conn = phi.back.incoming
        if conn is None:
            continue
        length = _path_length_to(phi, conn.src.node, set())
        if length is not None:
            best = max(best, length + 1)  # + the phi stage itself
    return best


def _path_length_to(target: Node, node: Node, seen) -> Optional[int]:
    if node is target:
        return 0
    if id(node) in seen:
        return None
    seen.add(id(node))
    best: Optional[int] = None
    for port in node.inputs:
        conn = port.incoming
        if conn is None or conn.latched:
            continue
        if Dataflow._is_back_edge(conn):
            continue
        sub = _path_length_to(target, conn.src.node, seen)
        if sub is not None:
            cand = sub + node_latency(node)
            best = cand if best is None else max(best, cand)
    return best


def spawn_target_tasks(circuit: AcceleratorCircuit) -> List[str]:
    """Tasks invoked through spawn edges (the Cilk worker blocks) plus
    recursive call targets — the natural targets for execution tiling."""
    names = []
    for edge in circuit.task_edges:
        if edge.kind == "spawn" and edge.child not in names:
            names.append(edge.child)
        if edge.kind == "call" and edge.parent == edge.child \
                and edge.child not in names:
            names.append(edge.child)
    return names

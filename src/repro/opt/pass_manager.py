"""Pass infrastructure: base class, results, and the composing manager."""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..core.circuit import AcceleratorCircuit
from ..core.validate import validate_circuit
from ..errors import PassError
from ..telemetry import tracer

logger = logging.getLogger(__name__)


@dataclass
class PassResult:
    """Outcome of one pass application."""

    pass_name: str
    changed: bool
    #: Structural edit counts, the currency of the paper's Table 4.
    nodes_added: int = 0
    nodes_removed: int = 0
    edges_added: int = 0
    edges_removed: int = 0
    #: Wall-clock time the pass took, filled in by the manager.
    wall_ms: float = 0.0
    details: Dict[str, object] = field(default_factory=dict)

    @property
    def delta_nodes(self) -> int:
        return self.nodes_added + self.nodes_removed

    @property
    def delta_edges(self) -> int:
        return self.edges_added + self.edges_removed

    def __repr__(self) -> str:
        return (f"PassResult({self.pass_name}, changed={self.changed}, "
                f"dN={self.delta_nodes}, dE={self.delta_edges}, "
                f"{self.wall_ms:.1f}ms)")


class Pass:
    """Base class of every uopt transformation."""

    name = "pass"

    def run(self, circuit: AcceleratorCircuit) -> PassResult:
        before = circuit.stats()
        result = self.apply(circuit)
        after = circuit.stats()
        if result.nodes_added == 0 and result.nodes_removed == 0:
            delta = after["nodes"] - before["nodes"]
            if delta > 0:
                result.nodes_added = delta
            else:
                result.nodes_removed = -delta
        if result.edges_added == 0 and result.edges_removed == 0:
            delta = after["connections"] - before["connections"]
            if delta > 0:
                result.edges_added = delta
            else:
                result.edges_removed = -delta
        return result

    def apply(self, circuit: AcceleratorCircuit) -> PassResult:
        raise NotImplementedError

    def _result(self, changed: bool, **details) -> PassResult:
        return PassResult(self.name, changed, details=details)


class PassManager:
    """Runs a pipeline of passes with timing and delta logging.

    Every pass application is timed (``PassResult.wall_ms``) and its
    graph delta logged on the ``repro.opt`` logger.  Validation between
    passes names the offending pass on failure:

    * ``validate=True`` (default) — validate the circuit after every
      pass, the composability contract of the pass ecosystem;
    * ``validate_each=True`` — same per-pass validation even when
      ``validate=False`` was requested (debugging aid to bisect which
      pass of a long pipeline corrupts the graph).
    """

    def __init__(self, passes: Sequence[Pass] = (),
                 validate: bool = True,
                 validate_each: bool = False):
        self.passes: List[Pass] = list(passes)
        self.validate = validate
        self.validate_each = validate_each
        self.log: List[PassResult] = []

    def add(self, pass_: Pass) -> "PassManager":
        self.passes.append(pass_)
        return self

    def run(self, circuit: AcceleratorCircuit) -> List[PassResult]:
        self.log = []
        for pass_ in self.passes:
            t0 = time.perf_counter()
            with tracer().span(f"opt.{pass_.name}",
                               category="opt") as _sp:
                try:
                    result = pass_.run(circuit)
                except PassError:
                    raise
                except Exception as exc:
                    raise PassError(
                        f"pass {pass_.name} failed on {circuit.name}: "
                        f"{exc}") from exc
                result.wall_ms = (time.perf_counter() - t0) * 1e3
                if self.validate or self.validate_each:
                    problems = validate_circuit(circuit,
                                                raise_on_error=False)
                    if problems:
                        raise PassError(
                            f"pass {pass_.name} broke circuit "
                            f"{circuit.name}: {problems[:3]}")
                _sp.set(changed=result.changed,
                        dN=result.delta_nodes, dE=result.delta_edges)
            logger.debug(
                "%s: %s %.1fms dN=+%d/-%d dE=+%d/-%d%s",
                circuit.name, pass_.name, result.wall_ms,
                result.nodes_added, result.nodes_removed,
                result.edges_added, result.edges_removed,
                "" if result.changed else " (no change)")
            self.log.append(result)
        return self.log

    def timings(self) -> List[Dict[str, object]]:
        """Structured per-pass timing/delta rows for the last run —
        the machine-readable twin of :meth:`timing_report`, and the
        shape the run ledger's ``passes`` section uses."""
        return [{"pass": r.pass_name,
                 "wall_ms": round(r.wall_ms, 3),
                 "changed": r.changed,
                 "dN": r.nodes_added - r.nodes_removed,
                 "dE": r.edges_added - r.edges_removed}
                for r in self.log]

    def timing_report(self) -> str:
        """Human-readable per-pass wall-time / graph-delta table."""
        lines = ["pass                      wall_ms   dN      dE"]
        for row in self.timings():
            lines.append(f"{row['pass']:<25} {row['wall_ms']:>7.1f} "
                         f"{row['dN']:>+5d}   {row['dE']:>+5d}")
        total = sum(r.wall_ms for r in self.log)
        lines.append(f"{'total':<25} {total:>7.1f}")
        return "\n".join(lines)

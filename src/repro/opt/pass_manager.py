"""Pass infrastructure: base class, results, and the composing manager."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.circuit import AcceleratorCircuit
from ..core.validate import validate_circuit
from ..errors import PassError


@dataclass
class PassResult:
    """Outcome of one pass application."""

    pass_name: str
    changed: bool
    #: Structural edit counts, the currency of the paper's Table 4.
    nodes_added: int = 0
    nodes_removed: int = 0
    edges_added: int = 0
    edges_removed: int = 0
    details: Dict[str, object] = field(default_factory=dict)

    @property
    def delta_nodes(self) -> int:
        return self.nodes_added + self.nodes_removed

    @property
    def delta_edges(self) -> int:
        return self.edges_added + self.edges_removed

    def __repr__(self) -> str:
        return (f"PassResult({self.pass_name}, changed={self.changed}, "
                f"dN={self.delta_nodes}, dE={self.delta_edges})")


class Pass:
    """Base class of every uopt transformation."""

    name = "pass"

    def run(self, circuit: AcceleratorCircuit) -> PassResult:
        before = circuit.stats()
        result = self.apply(circuit)
        after = circuit.stats()
        if result.nodes_added == 0 and result.nodes_removed == 0:
            delta = after["nodes"] - before["nodes"]
            if delta > 0:
                result.nodes_added = delta
            else:
                result.nodes_removed = -delta
        if result.edges_added == 0 and result.edges_removed == 0:
            delta = after["connections"] - before["connections"]
            if delta > 0:
                result.edges_added = delta
            else:
                result.edges_removed = -delta
        return result

    def apply(self, circuit: AcceleratorCircuit) -> PassResult:
        raise NotImplementedError

    def _result(self, changed: bool, **details) -> PassResult:
        return PassResult(self.name, changed, details=details)


class PassManager:
    """Runs a pipeline of passes, validating after each (composability)."""

    def __init__(self, passes: Sequence[Pass] = (),
                 validate: bool = True):
        self.passes: List[Pass] = list(passes)
        self.validate = validate
        self.log: List[PassResult] = []

    def add(self, pass_: Pass) -> "PassManager":
        self.passes.append(pass_)
        return self

    def run(self, circuit: AcceleratorCircuit) -> List[PassResult]:
        self.log = []
        for pass_ in self.passes:
            try:
                result = pass_.run(circuit)
            except PassError:
                raise
            except Exception as exc:
                raise PassError(
                    f"pass {pass_.name} failed on {circuit.name}: "
                    f"{exc}") from exc
            if self.validate:
                problems = validate_circuit(circuit,
                                            raise_on_error=False)
                if problems:
                    raise PassError(
                        f"pass {pass_.name} broke circuit "
                        f"{circuit.name}: {problems[:3]}")
            self.log.append(result)
        return self.log

"""Pass-spec mini-language: text -> picklable specs -> pass instances.

One grammar drives every pass-pipeline entry point — the
:class:`repro.api.Pipeline` facade, ``repro explore`` templates,
``repro simulate --passes``, and the fuzzer — so a pipeline written on
one surface pastes into any other:

    localize,banking=4,fusion,tiling=2

* segments are comma-separated pass names (registry names or the
  short aliases below);
* ``name=value`` sets the pass's *primary knob* (``banking=4`` ->
  ``ScratchpadBanking(banks=4)``); values parse as int, float, or
  ``true``/``false``;
* ``name=key:value`` (repeatable, ``:``-chained) sets an arbitrary
  constructor keyword: ``fusion=retime_loop_control:false``.

:class:`PassSpec` is the resolved, *picklable* form — (canonical name,
kwargs) — which is what the design-space-exploration engine ships to
worker processes and hashes into cache keys; instances are only
materialized where they run.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ReproError

#: Short aliases accepted anywhere a registry name is (paper-speak on
#: the left, registry name on the right).
PASS_ALIASES: Dict[str, str] = {
    "localize": "memory_localization",
    "localization": "memory_localization",
    "banking": "scratchpad_banking",
    "fusion": "op_fusion",
    "fuse": "op_fusion",
    "tiling": "execution_tiling",
    "pipelining": "task_pipelining",
    "tuning": "parameter_tuning",
    "bitwidth": "bitwidth_tuning",
    "writeback": "writeback_buffer",
    "counters": "perf_counters",
    "tensor": "tensor_ops",
}

#: The one knob ``name=value`` shorthand maps to, per pass.
PRIMARY_KNOB: Dict[str, str] = {
    "scratchpad_banking": "banks",
    "cache_banking": "banks",
    "execution_tiling": "tiles",
    "task_pipelining": "queue_depth",
    "writeback_buffer": "entries",
    "bitwidth_tuning": "min_width",
    "parameter_tuning": "max_junction_width",
    "tensor_ops": "rows",
    "op_fusion": "retime_loop_control",
    "perf_counters": "per_node_fires",
}


def _registry():
    from . import PASS_REGISTRY
    return PASS_REGISTRY


def canonical_pass_name(name: str) -> str:
    """Alias or registry name -> registry name (error if neither)."""
    name = name.strip()
    resolved = PASS_ALIASES.get(name, name)
    if resolved not in _registry():
        raise ReproError(
            f"unknown pass {name!r}; known: "
            f"{', '.join(sorted(_registry()))} "
            f"(aliases: {', '.join(sorted(PASS_ALIASES))})")
    return resolved


def _parse_value(text: str):
    lowered = text.strip().lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text.strip()


@dataclass(frozen=True)
class PassSpec:
    """One pass of a pipeline in resolved, picklable form."""

    name: str                                   # canonical registry name
    kwargs: Tuple[Tuple[str, object], ...] = field(default=())

    @classmethod
    def make(cls, name: str, **kwargs) -> "PassSpec":
        resolved = canonical_pass_name(name)
        _check_kwargs(resolved, kwargs)
        return cls(resolved, tuple(sorted(kwargs.items())))

    def instantiate(self):
        """Fresh pass instance (the only place classes are touched)."""
        return _registry()[self.name](**dict(self.kwargs))

    def spec_string(self) -> str:
        """Canonical text form; re-parses to an equal spec."""
        if not self.kwargs:
            return self.name
        primary = PRIMARY_KNOB.get(self.name)
        if len(self.kwargs) == 1 and self.kwargs[0][0] == primary:
            return f"{self.name}={_render_value(self.kwargs[0][1])}"
        pairs = ":".join(f"{k}:{_render_value(v)}"
                         for k, v in self.kwargs)
        return f"{self.name}={pairs}"

    def __str__(self) -> str:
        return self.spec_string()


def _render_value(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def _check_kwargs(name: str, kwargs: Dict[str, object]) -> None:
    cls = _registry()[name]
    sig = inspect.signature(cls.__init__)
    for key in kwargs:
        if key not in sig.parameters:
            known = [p for p in sig.parameters if p != "self"]
            raise ReproError(
                f"pass {name!r} has no knob {key!r}; "
                f"known: {', '.join(known) or '(none)'}")


def _parse_segment(segment: str) -> PassSpec:
    segment = segment.strip()
    if "=" not in segment:
        return PassSpec.make(segment)
    name, _, arg_text = segment.partition("=")
    resolved = canonical_pass_name(name)
    parts = [p.strip() for p in arg_text.split(":")]
    if len(parts) == 1:
        knob = PRIMARY_KNOB.get(resolved)
        if knob is None:
            raise ReproError(
                f"pass {resolved!r} takes no {name}=VALUE shorthand; "
                f"use {name}=key:value")
        return PassSpec.make(resolved, **{knob: _parse_value(parts[0])})
    if len(parts) % 2:
        raise ReproError(
            f"bad pass argument {segment!r}: key:value pairs expected")
    kwargs = {parts[i]: _parse_value(parts[i + 1])
              for i in range(0, len(parts), 2)}
    return PassSpec.make(resolved, **kwargs)


PassesLike = Union[None, str, "PassSpec", Sequence]


def parse_pass_specs(spec: PassesLike) -> List[PassSpec]:
    """Anything pipeline-shaped -> list of :class:`PassSpec`.

    Accepts a spec string, a PassSpec, a Pass instance (kept by
    identity via a no-kwargs spec when possible), or a sequence of
    any of those.  Pass *instances* cannot be round-tripped through a
    spec (their constructor arguments are lost), so they are rejected
    here — use :func:`coerce_passes` where instances are acceptable.
    """
    from .pass_manager import Pass

    if spec is None:
        return []
    if isinstance(spec, PassSpec):
        return [spec]
    if isinstance(spec, Pass):
        raise ReproError(
            f"cannot spec-ify pre-built pass instance {spec.name!r}; "
            f"pass a spec string or PassSpec (needed for caching and "
            f"worker shipping)")
    if isinstance(spec, str):
        return [_parse_segment(seg) for seg in spec.split(",")
                if seg.strip()]
    specs: List[PassSpec] = []
    for item in spec:
        specs.extend(parse_pass_specs(item))
    return specs


def parse_passes(spec: PassesLike) -> List:
    """Spec text / specs -> fresh pass instances, ready to run."""
    return [s.instantiate() for s in parse_pass_specs(spec)]


def spec_to_string(specs: Sequence[PassSpec]) -> str:
    """Canonical comma-joined text of a parsed pipeline."""
    return ",".join(s.spec_string() for s in specs)


def coerce_passes(passes: PassesLike) -> Tuple[List, Optional[str]]:
    """Instances + best-effort canonical label for any pipeline form.

    Returns ``(pass_instances, spec_string_or_None)``; the label is
    None when the pipeline contains pre-built Pass instances whose
    construction cannot be recovered.
    """
    from .pass_manager import Pass

    if passes is None:
        return [], ""
    if isinstance(passes, Pass):
        return [passes], None
    if isinstance(passes, (str, PassSpec)):
        specs = parse_pass_specs(passes)
        return [s.instantiate() for s in specs], spec_to_string(specs)
    instances: List = []
    label_parts: List[Optional[str]] = []
    for item in passes:
        got, label = coerce_passes(item)
        instances.extend(got)
        label_parts.append(label)
    if all(p is not None for p in label_parts):
        return instances, ",".join(p for p in label_parts if p)
    return instances, None

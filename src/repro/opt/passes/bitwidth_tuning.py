"""Operator bit-width and channel-width tuning.

The paper: "During these transformations uopt tunes the parameters of
uIR components to optimize the generated RTL (e.g., operator
bit-width, channel width)."  This pass implements that tuner as a
classic forward value-range analysis over each task's dataflow:

* constants, masks (``x & 15``), comparisons, counted-loop indices with
  constant bounds, and arithmetic over known ranges all yield intervals;
* loop-carried phis iterate to a small fixpoint and widen if unstable;
* every integer node and connection then records the narrowest width
  that can carry its values (``tuned_width`` / ``tuned_bits``), which
  the synthesis model turns into ALM/area/power savings.

Functional behavior is untouched: widths only parameterize the RTL
cost model, exactly like the paper's polymorphic port sizing.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ...core.circuit import AcceleratorCircuit, TaskBlock
from ...core.graph import Node, Port
from ...types import BoolType, IntType
from ..pass_manager import Pass, PassResult

Interval = Tuple[int, int]

I32_MIN, I32_MAX = -(1 << 31), (1 << 31) - 1
FULL: Interval = (I32_MIN, I32_MAX)
_PHI_ITERATIONS = 3


def bits_for(interval: Interval) -> int:
    """Two's-complement width needed to hold every value in range."""
    lo, hi = interval
    if lo >= 0:
        return max(1, hi.bit_length())
    neg_bits = (-lo - 1).bit_length() + 1
    pos_bits = hi.bit_length() + 1 if hi > 0 else 1
    return max(neg_bits, pos_bits)


def _clamp(lo: int, hi: int) -> Interval:
    return (max(lo, I32_MIN), min(hi, I32_MAX))


def _arith(op: str, a: Interval, b: Interval) -> Interval:
    alo, ahi = a
    blo, bhi = b
    if op == "add":
        return _clamp(alo + blo, ahi + bhi)
    if op == "sub":
        return _clamp(alo - bhi, ahi - blo)
    if op == "mul":
        products = [alo * blo, alo * bhi, ahi * blo, ahi * bhi]
        return _clamp(min(products), max(products))
    if op == "and":
        # Masking with a non-negative range bounds the result into
        # [0, mask_hi] regardless of the other operand's sign.
        if alo >= 0 and blo >= 0:
            return (0, min(ahi, bhi))
        if blo >= 0:
            return (0, bhi)
        if alo >= 0:
            return (0, ahi)
        return FULL
    if op == "or" or op == "xor":
        if alo >= 0 and blo >= 0:
            width = max(ahi.bit_length(), bhi.bit_length())
            return (0, (1 << width) - 1)
        return FULL
    if op == "shl":
        if blo == bhi and 0 <= blo < 31:
            return _clamp(alo << blo, ahi << blo)
        return FULL
    if op in ("lshr", "ashr"):
        if blo == bhi and 0 <= blo < 32 and alo >= 0:
            return (alo >> blo, ahi >> blo)
        return FULL
    if op == "div":
        if blo == bhi and blo > 0:
            return _clamp(min(alo // blo, -(-alo // blo)),
                          max(ahi // blo, -(-ahi // blo)))
        return FULL
    if op == "rem":
        if blo == bhi and blo > 0:
            m = blo - 1
            return (-m if alo < 0 else 0, m)
        return FULL
    return FULL


def value_ranges(task: TaskBlock) -> Dict[int, Interval]:
    """Interval per output-port id for one task's dataflow."""
    df = task.dataflow
    ranges: Dict[int, Interval] = {}

    def get(port: Optional[Port]) -> Interval:
        if port is None:
            return FULL
        return ranges.get(id(port), FULL)

    def in_rng(node: Node, idx: int) -> Interval:
        conn = node.inputs[idx].incoming
        return get(conn.src) if conn is not None else FULL

    def visit(node: Node) -> None:
        if node.kind == "const":
            if isinstance(node.value, bool):
                ranges[id(node.out)] = (int(node.value), int(node.value))
            elif isinstance(node.value, int):
                ranges[id(node.out)] = (node.value, node.value)
            return
        if node.kind == "loopctl":
            start = get(node.start.incoming.src
                        if node.start.incoming else None)
            bound = get(node.bound.incoming.src
                        if node.bound.incoming else None)
            if not node.conditional:
                lo = min(start[0], bound[0])
                hi = max(start[1], bound[1])
                ranges[id(node.index)] = _clamp(lo, hi)
                ranges[id(node.final)] = _clamp(lo, hi + 1)
            return
        if node.kind == "compute":
            t = node.out.type
            if isinstance(t, BoolType):
                ranges[id(node.out)] = (0, 1)
                return
            if not isinstance(t, IntType):
                return
            if node.op == "gep":
                base = in_rng(node, 0)
                idx = _arith("mul", in_rng(node, 1),
                             (node.gep_scale, node.gep_scale))
                ranges[id(node.out)] = _arith("add", base, idx)
                return
            if len(node.in_ports) == 2:
                ranges[id(node.out)] = _arith(
                    node.op, in_rng(node, 0), in_rng(node, 1))
            elif node.op == "neg":
                lo, hi = in_rng(node, 0)
                ranges[id(node.out)] = _clamp(-hi, -lo)
            return
        if node.kind == "select" and isinstance(node.out.type, IntType):
            a = get(node.a.incoming.src if node.a.incoming else None)
            b = get(node.b.incoming.src if node.b.incoming else None)
            ranges[id(node.out)] = (min(a[0], b[0]), max(a[1], b[1]))
            return
        if node.kind == "phi" and isinstance(node.out.type, IntType):
            init = get(node.init.incoming.src
                       if node.init.incoming else None)
            back = get(node.back.incoming.src
                       if node.back.incoming else None)
            merged = (min(init[0], back[0]), max(init[1], back[1]))
            ranges[id(node.out)] = merged
            ranges[id(node.final)] = merged
            return
        if node.kind == "load" and isinstance(node.out.type, BoolType):
            ranges[id(node.out)] = (0, 1)

    order = df.topological_order()
    # Phi back-edges need iteration; widen anything unstable.
    previous: Dict[int, Interval] = {}
    for iteration in range(_PHI_ITERATIONS):
        for node in order:
            visit(node)
        if previous == ranges:
            break
        if iteration == _PHI_ITERATIONS - 1:
            for node in df.nodes_of_kind("phi"):
                if ranges.get(id(node.out)) != previous.get(
                        id(node.out)):
                    ranges[id(node.out)] = FULL
                    ranges[id(node.final)] = FULL
        previous = dict(ranges)
    return ranges


class BitwidthTuning(Pass):
    name = "bitwidth_tuning"

    def __init__(self, min_width: int = 4):
        self.min_width = min_width

    def apply(self, circuit: AcceleratorCircuit) -> PassResult:
        nodes_tuned = 0
        conns_tuned = 0
        for task in circuit.tasks.values():
            ranges = value_ranges(task)
            for node in task.dataflow.nodes:
                if node.kind not in ("compute", "select", "phi"):
                    continue
                out = node.outputs[0]
                if not isinstance(out.type, IntType):
                    continue
                interval = ranges.get(id(out))
                if interval is None or interval == FULL:
                    continue
                width = max(self.min_width, bits_for(interval))
                if width < out.type.bits:
                    node.tuned_width = width
                    nodes_tuned += 1
            for conn in task.dataflow.connections:
                interval = ranges.get(id(conn.src))
                if interval is None or interval == FULL:
                    continue
                if not isinstance(conn.src.type, IntType):
                    continue
                width = max(self.min_width, bits_for(interval))
                if width < conn.width_bits:
                    conn.tuned_bits = width
                    conns_tuned += 1
        result = self._result(bool(nodes_tuned or conns_tuned),
                              nodes_tuned=nodes_tuned,
                              connections_tuned=conns_tuned)
        result.nodes_added = 0
        result.nodes_removed = 0
        result.edges_added = conns_tuned  # attribute edits
        result.edges_removed = 0
        return result

"""Pass 3 — Localized, type-specific scratchpads (paper Algorithm 2).

Analysis groups memory operations by the address space they touch
(recorded by the translator's points-to); the transformation creates a
scratchpad per array (or per explicit group), re-homes the array, and
re-routes each memory node through a fresh junction — the automated
"repetitive RTL modification" the paper highlights.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ...core.circuit import AcceleratorCircuit
from ...core.provenance import merge_provenance
from ...core.structures import Junction, Scratchpad
from ...errors import PassError
from ..analysis import memory_access_groups
from ..pass_manager import Pass, PassResult


class MemoryLocalization(Pass):
    """Move ``arrays`` (default: every statically-known array) out of
    the shared cache into per-array scratchpads.

    ``groups`` optionally maps a scratchpad name to several arrays that
    should share it (e.g. one scratchpad per task).  ``latency`` and
    ``ports_per_bank`` parameterize the generated RAMs.
    """

    name = "memory_localization"

    def __init__(self, arrays: Optional[Sequence[str]] = None,
                 groups: Optional[Dict[str, Sequence[str]]] = None,
                 latency: int = 1, ports_per_bank: int = 1):
        self.arrays = list(arrays) if arrays is not None else None
        self.groups = groups
        self.latency = latency
        self.ports_per_bank = ports_per_bank

    def apply(self, circuit: AcceleratorCircuit) -> PassResult:
        access = memory_access_groups(circuit)
        plan = self._plan(circuit, access)
        created = []
        for spad_name, arrays in plan.items():
            size = 0
            shape = None
            for array in arrays:
                if array not in circuit.array_layout:
                    raise PassError(
                        f"memory_localization: unknown array {array!r}")
                base, words = circuit.array_layout[array]
                size = max(size, base + words)
            spad = Scratchpad(spad_name, size_words=max(size, 16),
                              latency=self.latency,
                              ports_per_bank=self.ports_per_bank,
                              arrays=arrays, shape=shape)
            spad.provenance = merge_provenance(
                *(node.provenance
                  for array in arrays
                  for _task, node in access.get(array, [])))
            circuit.add_structure(spad)
            created.append(spad_name)
            for array in arrays:
                circuit.array_home[array] = spad
                for task, node in access.get(array, []):
                    self._rehome(task, node, spad, circuit)
        self._drop_empty_junctions(circuit)
        result = self._result(bool(created), scratchpads=created,
                              plan={k: list(v) for k, v in plan.items()})
        # Semantic edit size at uIR level (Table 4): new structures +
        # junctions, and one re-routed edge per moved memory op.
        moved = sum(len(access.get(a, []))
                    for arrays in plan.values() for a in arrays)
        result.nodes_added = 2 * len(created)  # scratchpad + junction
        result.edges_added = moved + len(created)  # reroutes + AXI
        return result

    def _plan(self, circuit: AcceleratorCircuit,
              access) -> Dict[str, List[str]]:
        if self.groups is not None:
            return {name: list(arrays)
                    for name, arrays in self.groups.items()}
        arrays = self.arrays
        if arrays is None:
            arrays = [a for a in access if a is not None]
        return {f"spad_{array}": [array] for array in sorted(arrays)}

    @staticmethod
    def _rehome(task, node, spad, circuit) -> None:
        old = task.junction_of(node)
        old.detach(node)
        target = None
        for junction in task.junctions:
            if junction.structure is spad:
                target = junction
                break
        if target is None:
            target = Junction(f"{task.name}_junc_{spad.name}", spad,
                              issue_width=old.issue_width)
            task.add_junction(target)
        target.attach(node)
        task.reindex_junctions()

    @staticmethod
    def _drop_empty_junctions(circuit: AcceleratorCircuit) -> None:
        for task in circuit.tasks.values():
            for junction in list(task.junctions):
                if not junction.clients:
                    task.remove_junction(junction)
            task.reindex_junctions()

"""Pass 6 — Tensor higher-order ops (paper section 6.3).

Recognizes scalar *elementwise tile loops* and rewrites them to operate
on Tensor2D values with a single higher-order function unit from the
uIR library (Figure 14): the loop's trip count shrinks by the tile
size, the loads/stores widen to tensor accesses (the databox moves all
elements at once), and the scalar op chain collapses into one tensor
node — exactly the three effects the paper credits for the 4-8x
(compute density, widened operand network, eliminated handshaking).

Recognized idioms inside a counted loop over ``i`` with step 1:

* ReLU:      ``b[i] = select(a[i] > 0, a[i], 0)``       -> ``trelu``
* map2:      ``c[i] = a[i] (+|-) b[i]``                  -> ``tadd/tsub``

Matmul-shaped kernels are expressed directly with tensor intrinsics in
the source program (paper Figure 13 does the same with ``mulTile``);
this pass handles the mechanical widening cases.
"""

from __future__ import annotations

from typing import List, Optional

from ...core.circuit import AcceleratorCircuit, TaskBlock
from ...core.graph import Node
from ...core.nodes import (
    ComputeNode,
    ConstNode,
    LoadNode,
    StoreNode,
    TensorComputeNode,
)
from ...core.provenance import merge_provenance
from ...types import FloatType, TensorType
from ..pass_manager import Pass, PassResult


class _TilePattern:
    """A matched elementwise tile loop."""

    def __init__(self, loads: List[Node], store: Node,
                 tensor_op: str, middle: List[Node]):
        self.loads = loads
        self.store = store
        self.tensor_op = tensor_op
        self.middle = middle  # scalar nodes replaced by the tensor FU


class TensorOps(Pass):
    name = "tensor_ops"

    def __init__(self, rows: int = 2, cols: int = 2,
                 tasks: Optional[List[str]] = None):
        self.rows = rows
        self.cols = cols
        self.tasks = set(tasks) if tasks is not None else None

    @property
    def tile_elems(self) -> int:
        return self.rows * self.cols

    def apply(self, circuit: AcceleratorCircuit) -> PassResult:
        rewritten = []
        for task in circuit.tasks.values():
            if self.tasks is not None and task.name not in self.tasks:
                continue
            if task.kind != "loop":
                continue
            pattern = self._match(task)
            if pattern is None:
                continue
            self._rewrite(task, pattern)
            rewritten.append(task.name)
        return self._result(bool(rewritten), tensorized=rewritten,
                            shape=(self.rows, self.cols))

    # -- recognition -----------------------------------------------------
    def _match(self, task: TaskBlock) -> Optional[_TilePattern]:
        df = task.dataflow
        ctls = df.nodes_of_kind("loopctl")
        if len(ctls) != 1 or ctls[0].conditional:
            return None
        ctl = ctls[0]
        if df.nodes_of_kind("phi") or df.nodes_of_kind("call") \
                or df.nodes_of_kind("spawn"):
            return None
        step_src = ctl.step.incoming.src.node
        if not (isinstance(step_src, ConstNode) and step_src.value == 1):
            return None
        loads = df.nodes_of_kind("load")
        stores = df.nodes_of_kind("store")
        if len(stores) != 1 or not loads or len(loads) > 2:
            return None
        store = stores[0]
        if not all(self._unit_stride(n, ctl) for n in loads + stores):
            return None
        if not all(isinstance(n.outputs[0].type, FloatType)
                   for n in loads):
            return None
        middle = self._match_chain(loads, store)
        if middle is None:
            return None
        tensor_op, chain = middle
        # Every replaced node's consumers must themselves be replaced
        # (otherwise removal would strand a live use).
        replaced = {id(n) for n in chain + loads + [store]}
        for node in chain + loads:
            for port in node.outputs:
                for conn in port.outgoing:
                    if id(conn.dst.node) not in replaced:
                        return None
        return _TilePattern(loads, store, tensor_op, chain)

    @staticmethod
    def _unit_stride(node: Node, ctl) -> bool:
        """Address must be ``gep(const_base, loop_index)`` with scale 1."""
        conn = node.addr.incoming
        gep = conn.src.node
        if not (isinstance(gep, ComputeNode) and gep.op == "gep"
                and gep.gep_scale == 1):
            return False
        base = gep.in_ports[0].incoming.src.node
        idx = gep.in_ports[1].incoming.src
        return isinstance(base, ConstNode) and idx is ctl.index

    def _match_chain(self, loads, store):
        data_src = store.data.incoming.src.node
        if len(loads) == 2:
            if isinstance(data_src, ComputeNode) and \
                    data_src.op in ("fadd", "fsub"):
                srcs = {data_src.in_ports[0].incoming.src.node,
                        data_src.in_ports[1].incoming.src.node}
                if srcs == set(loads):
                    op = "tadd" if data_src.op == "fadd" else "tsub"
                    return op, [data_src]
            return None
        load = loads[0]
        # ReLU in either polarity:
        #   select(load > 0, load, 0)
        #   select(xor(load > 0, 1), 0, load)
        if data_src.kind != "select":
            return None
        cond = data_src.cond.incoming.src.node
        a = data_src.a.incoming.src.node
        b = data_src.b.incoming.src.node
        middle = [data_src]
        if isinstance(cond, ComputeNode) and cond.op == "xor":
            inv_src = cond.in_ports[0].incoming.src.node
            one = cond.in_ports[1].incoming.src.node
            if not (isinstance(one, ConstNode) and int(one.value) == 1):
                return None
            middle.append(cond)
            cond = inv_src
            a, b = b, a
        if not (isinstance(cond, ComputeNode) and cond.op == "gt"):
            return None
        if cond.in_ports[0].incoming.src.node is not load:
            return None
        zero = cond.in_ports[1].incoming.src.node
        if not (isinstance(zero, ConstNode) and float(zero.value) == 0.0):
            return None
        if a is not load:
            return None
        if not (isinstance(b, ConstNode) and float(b.value) == 0.0):
            return None
        middle.append(cond)
        return "trelu", middle

    # -- transformation ------------------------------------------------------
    def _rewrite(self, task: TaskBlock, pattern: _TilePattern) -> None:
        df = task.dataflow
        tt = TensorType(FloatType(32), self.rows, self.cols)
        k = self.tile_elems

        # Shrink the trip count: bound' = bound >> log2(k) (banked by
        # an explicit shift node when the bound is not constant).
        ctl = df.nodes_of_kind("loopctl")[0]
        bound_conn = ctl.bound.incoming
        bound_src = bound_conn.src
        if isinstance(bound_src.node, ConstNode):
            latched = bound_conn.latched
            df.disconnect(bound_conn)
            new_bound = ConstNode(bound_src.node.value // k,
                                  bound_src.type, name="tile_bound")
            new_bound.provenance = bound_src.node.provenance
            df.add(new_bound)
            df.connect(new_bound.out, ctl.bound, latched=latched)
        else:
            shift = k.bit_length() - 1
            latched = bound_conn.latched
            df.disconnect(bound_conn)
            shifter = ComputeNode("ashr", bound_src.type, arity=2,
                                  name="tile_bound_shift")
            shifter.provenance = bound_src.node.provenance
            df.add(shifter)
            df.connect(bound_src, shifter.in_ports[0], latched=latched)
            amt = df.add(ConstNode(shift, bound_src.type,
                                   name="tile_shift_amt"))
            df.connect(amt.out, shifter.in_ports[1],
                       latched=task.kind == "loop")
            df.connect(shifter.out, ctl.bound)

        # Scale addresses: gep reuses its element-scale for the tile.
        for node in pattern.loads + [pattern.store]:
            gep = node.addr.incoming.src.node
            gep.gep_scale = k

        # Widen the loads.
        new_loads = {}
        for load in pattern.loads:
            wide = LoadNode(tt, name=f"t{load.name}")
            wide.provenance = load.provenance
            df.add(wide)
            addr_conn = load.addr.incoming
            df.connect(addr_conn.src, wide.addr,
                       latched=addr_conn.latched)
            if load.pred is not None and load.pred.incoming is not None:
                src = load.pred.incoming
                df.connect(src.src, wide.enable_predicate(),
                           latched=src.latched)
            junction = task.junction_of(load)
            junction.detach(load)
            junction.attach(wide)
            wide.array = load.array
            new_loads[id(load)] = wide

        # The tensor function unit.
        fu = TensorComputeNode(pattern.tensor_op, tt,
                               arity=len(pattern.loads),
                               name=f"tensor_{pattern.tensor_op}")
        fu.provenance = merge_provenance(
            *(n.provenance for n in pattern.middle))
        df.add(fu)
        if pattern.tensor_op == "trelu":
            src = new_loads[id(pattern.loads[0])]
            df.connect(src.out, fu.in_ports[0])
        else:
            # Preserve operand order of the original fadd/fsub.
            mid = pattern.middle[0]
            for i in range(2):
                orig = mid.in_ports[i].incoming.src.node
                df.connect(new_loads[id(orig)].out, fu.in_ports[i])

        # Widen the store.
        store = pattern.store
        wide_store = StoreNode(tt, name=f"t{store.name}")
        wide_store.provenance = store.provenance
        df.add(wide_store)
        addr_conn = store.addr.incoming
        df.connect(addr_conn.src, wide_store.addr,
                   latched=addr_conn.latched)
        df.connect(fu.out, wide_store.data)
        if store.pred is not None and store.pred.incoming is not None:
            src = store.pred.incoming
            df.connect(src.src, wide_store.enable_predicate(),
                       latched=src.latched)
        if store.order_in is not None and \
                store.order_in.incoming is not None:
            src = store.order_in.incoming
            src_port = src.src
            # An ordering edge whose source is a replaced load follows
            # the replacement.
            if id(src_port.node) in new_loads:
                src_port = new_loads[id(src_port.node)].done
            df.connect(src_port, wide_store.enable_order_in(),
                       latched=src.latched)
        junction = task.junction_of(store)
        junction.detach(store)
        junction.attach(wide_store)
        wide_store.array = store.array

        # Remove the scalar nodes.
        for node in pattern.middle + pattern.loads + [store]:
            df.remove(node)
        task.reindex_junctions()

        # Record the tile shape on the scratchpad/cache home (the RTL
        # generator emits wide RAM ports for it).
        home = task.junctions[0].structure if task.junctions else None
        if home is not None and hasattr(home, "shape"):
            home.shape = (self.rows, self.cols)

"""Writeback buffers on scratchpads (paper Pass 3's alternative:
"Another option would be introducing a separate writeback buffer for
writing out the data").

Stores complete as soon as they enter the buffer — shortening the
store-ordering chains that serialize read-modify-write kernels — while
the buffer drains to the SRAM banks in the background with full
store-to-load forwarding (modeled in
:class:`repro.sim.memory.ScratchpadSim`).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ...core.circuit import AcceleratorCircuit
from ...errors import PassError
from ..pass_manager import Pass, PassResult


class WritebackBuffer(Pass):
    name = "writeback_buffer"

    def __init__(self, entries: int = 8,
                 scratchpads: Optional[Sequence[str]] = None):
        if entries < 1:
            raise PassError(f"bad writeback buffer size {entries}")
        self.entries = entries
        self.scratchpads = set(scratchpads) if scratchpads else None

    def apply(self, circuit: AcceleratorCircuit) -> PassResult:
        changed = []
        for spad in circuit.scratchpads():
            if self.scratchpads is not None and \
                    spad.name not in self.scratchpads:
                continue
            spad.write_buffer_entries = self.entries
            changed.append(spad.name)
        result = self._result(bool(changed), buffered=changed,
                              entries=self.entries)
        result.nodes_added = len(changed)   # one buffer per RAM
        result.edges_added = len(changed)
        return result

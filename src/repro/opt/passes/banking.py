"""Pass 4 — Scratchpad and cache banking (paper sections 4 and 6.4).

Banking stripes words across B independently-ported SRAM blocks; uIR
auto-generates the routing of loads/stores to banks and the shared-port
management (in this reproduction: the simulator's bank queues and the
synthesis model's crossbar cost).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ...core.circuit import AcceleratorCircuit
from ...core.structures import Cache, Scratchpad
from ...errors import PassError
from ..pass_manager import Pass, PassResult


class ScratchpadBanking(Pass):
    name = "scratchpad_banking"

    def __init__(self, banks: int = 2, ports_per_bank: int = 1,
                 scratchpads: Optional[Sequence[str]] = None):
        if banks < 1:
            raise PassError(f"bad bank count {banks}")
        self.banks = banks
        self.ports_per_bank = ports_per_bank
        self.scratchpads = set(scratchpads) if scratchpads else None

    def apply(self, circuit: AcceleratorCircuit) -> PassResult:
        changed = []
        for spad in circuit.scratchpads():
            if self.scratchpads is not None and \
                    spad.name not in self.scratchpads:
                continue
            spad.banks = self.banks
            spad.ports_per_bank = self.ports_per_bank
            changed.append(spad.name)
        self._widen_junctions(circuit, changed)
        return self._result(bool(changed), banked=changed,
                            banks=self.banks)

    def _widen_junctions(self, circuit, names) -> None:
        # More banks can absorb more requests per cycle; widen the
        # junctions feeding them to match.
        for task in circuit.tasks.values():
            for junction in task.junctions:
                if junction.structure.name in names:
                    junction.issue_width = max(
                        junction.issue_width,
                        self.banks * self.ports_per_bank)


class CacheBanking(Pass):
    name = "cache_banking"

    def __init__(self, banks: int = 2, caches: Optional[Sequence[str]] = None):
        if banks < 1:
            raise PassError(f"bad bank count {banks}")
        self.banks = banks
        self.caches = set(caches) if caches else None

    def apply(self, circuit: AcceleratorCircuit) -> PassResult:
        changed = []
        for structure in circuit.structures:
            if not isinstance(structure, Cache):
                continue
            if self.caches is not None and \
                    structure.name not in self.caches:
                continue
            structure.banks = self.banks
            changed.append(structure.name)
        for task in circuit.tasks.values():
            for junction in task.junctions:
                if junction.structure.name in changed:
                    junction.issue_width = max(junction.issue_width,
                                               self.banks)
        return self._result(bool(changed), banked=changed,
                            banks=self.banks)

"""Pass 5 — Auto-pipelining and op fusion (paper sections 4 and 6.1).

The baseline dataflow handshakes on every edge: each cheap integer op
costs a full pipeline stage.  This pass greedily fuses chains of
fusable single-consumer nodes into one :class:`FusedComputeNode` while
the summed combinational delay still fits the clock period (so fusion
never robs frequency), and retimes the loop-control recurrence
(buffer -> phi -> i++ -> cmp -> branch) down to a single stage — the
paper's Pass 5 example.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...core import oplib
from ...core.circuit import AcceleratorCircuit, TaskBlock
from ...core.graph import Node, Port
from ...core.nodes import FusedComputeNode
from ...core.provenance import merge_provenance
from ..pass_manager import Pass, PassResult

_FUSABLE_KINDS = ("compute", "select")


def _node_op(node: Node) -> str:
    return node.op if node.kind == "compute" else "select"


def _node_delay(node: Node) -> float:
    return oplib.op_info(_node_op(node), node.outputs[0].type).delay_ns


def _is_fusable(node: Node) -> bool:
    if node.kind not in _FUSABLE_KINDS:
        return False
    return oplib.is_fusable(_node_op(node), node.outputs[0].type)


def _any_node_delay(node: Node) -> float:
    """Combinational delay of any node kind (for edge balancing)."""
    if node.kind in ("compute", "tensor"):
        return oplib.op_info(node.op, node.outputs[0].type).delay_ns
    if node.kind == "fused":
        return node.delay_ns
    if node.kind == "select":
        return oplib.op_info("select", None).delay_ns
    if node.kind in ("load", "store"):
        return oplib.op_info("load", None).delay_ns
    if node.kind == "loopctl":
        return oplib.op_info("loopctl", None).delay_ns
    if node.kind in ("call", "spawn", "sync"):
        return oplib.op_info("call", None).delay_ns
    return 0.2


class OpFusion(Pass):
    name = "op_fusion"

    #: Retimed loop-control depth ("re-time the pipeline to two
    #: stages", paper Pass 5).
    RETIMED_STAGES = 2

    def __init__(self, retime_loop_control: bool = True,
                 min_budget_ns: float = 1.6,
                 tasks: Optional[List[str]] = None):
        self.retime_loop_control = retime_loop_control
        self.min_budget_ns = min_budget_ns
        self.tasks = set(tasks) if tasks is not None else None

    def apply(self, circuit: AcceleratorCircuit) -> PassResult:
        fused_chains = 0
        fused_nodes = 0
        retimed = 0
        # Never create a stage slower than the design's existing worst
        # stage ("the resulting fused pipeline's frequency is not
        # penalized", section 6.1).
        worst = self.min_budget_ns
        for node in circuit.all_nodes():
            if node.kind in _FUSABLE_KINDS:
                worst = max(worst, _node_delay(node))
            elif node.kind in ("compute", "tensor"):
                worst = max(worst, _node_delay(node))
        budget = max(self.min_budget_ns, worst)
        debuffered = 0
        for task in circuit.tasks.values():
            if self.tasks is not None and task.name not in self.tasks:
                continue
            chains = self._find_chains(task, budget)
            for chain in chains:
                self._fuse(task, chain)
                fused_chains += 1
                fused_nodes += len(chain)
            if self.retime_loop_control:
                for ctl in task.dataflow.nodes_of_kind("loopctl"):
                    if ctl.pipeline_stages > self.RETIMED_STAGES:
                        ctl.pipeline_stages = self.RETIMED_STAGES
                        retimed += 1
            debuffered += self._balance_pipeline(task, budget)
        changed = bool(fused_chains or retimed or debuffered)
        result = self._result(changed, chains=fused_chains,
                              nodes_fused=fused_nodes,
                              loop_controls_retimed=retimed,
                              edges_debuffered=debuffered)
        # Semantic edit size (Table 4): chains collapse (members -> one
        # fused node), and each debuffered/rewired edge is one edit.
        result.nodes_removed = max(0, fused_nodes - fused_chains)
        result.nodes_added = 0
        result.edges_removed = max(0, fused_nodes - fused_chains)
        result.edges_added = debuffered  # attribute edit per edge
        return result

    def _balance_pipeline(self, task: TaskBlock, budget: float) -> int:
        """Auto-pipelining: drop the handshake register from edges
        whose endpoint delays still meet timing without it."""
        removed = 0
        for conn in task.dataflow.connections:
            if conn.latched or not conn.buffered:
                continue
            src_delay = _any_node_delay(conn.src.node)
            dst_delay = _any_node_delay(conn.dst.node)
            if src_delay + dst_delay <= budget:
                conn.buffered = False
                removed += 1
        return removed

    # ------------------------------------------------------------------
    def _find_chains(self, task: TaskBlock,
                     budget: float) -> List[List[Node]]:
        df = task.dataflow
        taken: set = set()
        chains: List[List[Node]] = []
        for node in df.topological_order():
            if id(node) in taken or not _is_fusable(node):
                continue
            chain = [node]
            delay = _node_delay(node)
            current = node
            while True:
                succ = self._sole_fusable_successor(current, taken)
                if succ is None:
                    break
                succ_delay = _node_delay(succ)
                if delay + succ_delay > budget:
                    break
                chain.append(succ)
                taken.add(id(succ))
                delay += succ_delay
                current = succ
            if len(chain) >= 2:
                taken.update(id(n) for n in chain)
                chains.append(chain)
        return chains

    @staticmethod
    def _sole_fusable_successor(node: Node, taken) -> Optional[Node]:
        out = node.outputs[0]
        if len(out.outgoing) != 1:
            return None
        conn = out.outgoing[0]
        succ = conn.dst.node
        if id(succ) in taken or not _is_fusable(succ):
            return None
        if conn.dst.name == "back":
            return None
        return succ

    # ------------------------------------------------------------------
    def _fuse(self, task: TaskBlock, chain: List[Node]) -> None:
        df = task.dataflow
        members = {id(n): i for i, n in enumerate(chain)}
        external: List[Port] = []          # source ports, in order
        external_latched: List[bool] = []
        exprs: List[Tuple[str, List[Tuple[str, int]], object, int]] = []

        def external_index(src: Port, latched: bool) -> int:
            for i, port in enumerate(external):
                if port is src and external_latched[i] == latched:
                    return i
            external.append(src)
            external_latched.append(latched)
            return len(external) - 1

        for node in chain:
            refs: List[Tuple[str, int]] = []
            for port in node.inputs:
                conn = port.incoming
                src_node = conn.src.node
                if id(src_node) in members and \
                        members[id(src_node)] < members[id(node)]:
                    refs.append(("expr", members[id(src_node)]))
                else:
                    refs.append(("in", external_index(conn.src,
                                                      conn.latched)))
            scale = getattr(node, "gep_scale", 1)
            exprs.append((_node_op(node), refs,
                          node.outputs[0].type, scale))

        last = chain[-1]
        fused = FusedComputeNode(
            name=f"fused_{chain[0].name}",
            in_types=[p.type for p in external],
            out_type=last.outputs[0].type,
            exprs=exprs,
            fused_names=[n.name for n in chain])
        fused.provenance = merge_provenance(
            *(n.provenance for n in chain))
        df.add(fused)
        # External inputs.
        for i, src in enumerate(external):
            df.connect(src, fused.in_ports[i],
                       latched=external_latched[i])
        # Consumers of the chain tail move to the fused output.
        df.rewire_output(last.outputs[0], fused.out)
        for node in chain:
            df.remove(node)

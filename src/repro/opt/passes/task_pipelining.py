"""Pass 1 — Task Block Queuing / Pipelining (paper section 4, Pass 1).

Decouples inter-task ``<||>`` interfaces by deepening their hardware
queues, letting a parent run far ahead of slow children.  The paper's
example decouples the for-loop block from the high-latency tensor block
while leaving the low-latency scalar block coupled; here the default
decouples every edge, and ``edges``/``children`` narrow the scope.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

from ...core.circuit import AcceleratorCircuit
from ..pass_manager import Pass, PassResult


class TaskPipelining(Pass):
    name = "task_pipelining"

    def __init__(self, queue_depth: int = 64,
                 edges: Optional[Sequence[Tuple[str, str]]] = None,
                 children: Optional[Sequence[str]] = None):
        self.queue_depth = queue_depth
        self.edges = set(edges) if edges is not None else None
        self.children = set(children) if children is not None else None

    def apply(self, circuit: AcceleratorCircuit) -> PassResult:
        changed = []
        for edge in circuit.task_edges:
            if self.edges is not None and \
                    (edge.parent, edge.child) not in self.edges:
                continue
            if self.children is not None and \
                    edge.child not in self.children:
                continue
            if edge.queue_depth < self.queue_depth:
                edge.queue_depth = self.queue_depth
                edge.decoupled = True
                changed.append((edge.parent, edge.child))
        return self._result(bool(changed), decoupled=changed)

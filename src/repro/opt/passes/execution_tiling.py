"""Pass 2 — Execution Tiling (paper sections 4 and 6.2).

Replicates a task block's execution unit N times ("multi-core effect"):
queued invocations dispatch to any free tile; the RTL generation grows
the task queue into a bus/crossbar (charged by the synthesis model).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Union

from ...core.circuit import AcceleratorCircuit
from ...errors import PassError
from ..analysis import spawn_target_tasks
from ..pass_manager import Pass, PassResult


class ExecutionTiling(Pass):
    """``tiles`` is either one factor applied to every auto-selected
    task (spawn targets and recursive tasks — the blocks that receive
    many concurrent invocations) or a ``{task_name: tiles}`` map."""

    name = "execution_tiling"

    def __init__(self, tiles: Union[int, Dict[str, int]] = 2,
                 tasks: Optional[Sequence[str]] = None):
        self.tiles = tiles
        self.tasks = list(tasks) if tasks is not None else None

    def apply(self, circuit: AcceleratorCircuit) -> PassResult:
        if isinstance(self.tiles, dict):
            plan = dict(self.tiles)
        else:
            targets = self.tasks if self.tasks is not None \
                else spawn_target_tasks(circuit)
            # Replicating a worker block without replicating the loop
            # tasks it calls would just move the queueing point, so the
            # whole call subtree tiles together.
            plan = {name: self.tiles
                    for name in self._with_descendants(circuit, targets)}
        applied = {}
        for name, tiles in plan.items():
            if name not in circuit.tasks:
                raise PassError(
                    f"execution_tiling: no task named {name!r}")
            if tiles < 1:
                raise PassError(
                    f"execution_tiling: bad tile count {tiles}")
            task = circuit.tasks[name]
            task.num_tiles = tiles
            # The generated bus/crossbar also widens this block's
            # memory junctions (more tiles -> more ports).
            for junction in task.junctions:
                junction.issue_width = max(junction.issue_width,
                                           2 * tiles)
            applied[name] = tiles
        result = self._result(bool(applied), tiles=applied)
        # Semantic edit size at uIR level (Table 4): replicating a task
        # is one structural-node edit plus re-plumbing its <||> and
        # <==> interfaces (~4 edges), regardless of block size.
        result.nodes_added = len(applied)
        result.edges_added = 4 * len(applied)
        return result

    @staticmethod
    def _with_descendants(circuit: AcceleratorCircuit, targets):
        result = []
        work = list(targets)
        seen = set()
        while work:
            name = work.pop()
            if name in seen:
                continue
            seen.add(name)
            result.append(name)
            for edge in circuit.edges_from(name):
                work.append(edge.child)
        return result

"""Instrumentation pass — hardware performance counters.

Inserts a :class:`repro.core.structures.PerfCounterBank` per task
block (invocation counter, one channel-occupancy high-water-mark
counter per memory node, one arbiter-grant counter per junction) plus
two circuit-level banks: a bank-conflict counter per RAM structure
and an FU-fire counter per compute node kind.

The banks are *real* uIR structures: they lower to Chisel/Verilog
counter registers and the analytic synthesis model charges their area
and power (a PMU isn't free).  They are also strictly behavior-
neutral — counters tap ready/valid and arbitration signals without
sitting on any handshake path, so cycles, memory images and results
are bit-identical to the uninstrumented circuit (asserted against the
seed goldens in ``tests/opt/test_perf_counters.py``).
"""

from __future__ import annotations

from ...core.circuit import AcceleratorCircuit
from ...core.structures import (
    Cache,
    CounterSpec,
    PerfCounterBank,
    Scratchpad,
)
from ..pass_manager import Pass, PassResult


class PerfCounters(Pass):
    """Insert per-task and per-memory performance counter banks."""

    name = "perf_counters"

    def __init__(self, per_node_fires: bool = True):
        #: Also add the circuit-level FU-fire counters (coarse
        #: activity profile; disable for minimal area).
        self.per_node_fires = per_node_fires

    def apply(self, circuit: AcceleratorCircuit) -> PassResult:
        existing = {s.name for s in circuit.structures}
        banks = []
        n_counters = 0
        for task in circuit.tasks.values():
            name = f"{task.name}_pmu"
            if name in existing:
                continue  # idempotent: never double-instrument
            bank = PerfCounterBank(name, task=task.name)
            bank.add_counter(CounterSpec(
                f"{task.name}.invocations", "node_fires", "@task"))
            for node in task.dataflow.nodes:
                if node.kind in ("load", "store"):
                    bank.add_counter(CounterSpec(
                        f"{task.name}.{node.name}.occ_hwm",
                        "chan_occupancy_hwm",
                        f"{task.name}.{node.name}"))
            for junction in task.junctions:
                bank.add_counter(CounterSpec(
                    f"{junction.name}.grants", "arbiter_grant",
                    junction.name))
            bank.provenance = tuple(sorted(
                {loc for node in task.dataflow.nodes
                 for loc in node.provenance}))
            circuit.add_structure(bank)
            banks.append(bank.name)
            n_counters += len(bank.counters)

        if "mem_pmu" not in existing:
            mem_bank = PerfCounterBank("mem_pmu")
            for structure in circuit.structures:
                if isinstance(structure, (Scratchpad, Cache)):
                    mem_bank.add_counter(CounterSpec(
                        f"{structure.name}.bank_conflicts",
                        "bank_conflict", structure.name))
            if mem_bank.counters:
                circuit.add_structure(mem_bank)
                banks.append(mem_bank.name)
                n_counters += len(mem_bank.counters)

        # Circuit-level activity profile: the datapath only strobes a
        # fire signal for FU-style nodes (compute/tensor/fused), so
        # those are the kinds worth a counter.
        if self.per_node_fires and "global_pmu" not in existing:
            top = PerfCounterBank("global_pmu")
            kinds = {n.kind for n in circuit.all_nodes()}
            for kind in sorted(kinds & {"compute", "tensor", "fused"}):
                top.add_counter(CounterSpec(
                    f"fires.{kind}", "node_fires", kind))
            if top.counters:
                circuit.add_structure(top)
                banks.append(top.name)
                n_counters += len(top.counters)

        return self._result(bool(banks), banks=banks,
                            counters=n_counters)

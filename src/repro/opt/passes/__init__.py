"""The paper's uopt transformation passes (sections 4 and 6)."""

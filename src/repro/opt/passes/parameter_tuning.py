"""Parameter tuning (paper: "During these transformations uopt tunes
the parameters of uIR components to optimize the generated RTL").

Mechanical knob adjustments that accompany the structural passes:
junction issue widths sized to their client count, deeper channels on
memory paths, and more outstanding requests per memory node.
"""

from __future__ import annotations

from ...core.circuit import AcceleratorCircuit
from ..pass_manager import Pass, PassResult


class ParameterTuning(Pass):
    name = "parameter_tuning"

    def __init__(self, max_junction_width: int = 4,
                 memory_channel_depth: int = 4,
                 max_outstanding: int = 8):
        self.max_junction_width = max_junction_width
        self.memory_channel_depth = memory_channel_depth
        self.max_outstanding = max_outstanding

    def apply(self, circuit: AcceleratorCircuit) -> PassResult:
        widened = 0
        deepened = 0
        for task in circuit.tasks.values():
            for junction in task.junctions:
                width = min(self.max_junction_width,
                            max(1, len(junction.clients)))
                if width > junction.issue_width:
                    junction.issue_width = width
                    widened += 1
            for node in task.memory_nodes():
                node.max_outstanding = max(node.max_outstanding,
                                           self.max_outstanding)
                for port in node.inputs:
                    conn = port.incoming
                    if conn is not None and not conn.latched and \
                            conn.depth < self.memory_channel_depth:
                        conn.depth = self.memory_channel_depth
                        deepened += 1
        return self._result(bool(widened or deepened),
                            junctions_widened=widened,
                            channels_deepened=deepened)

"""uopt: the paper's microarchitecture-optimization framework.

Passes transform the uIR graph without touching program behavior; the
pass manager re-validates structural invariants after every pass so
optimizations compose (paper section 4).
"""

from .pass_manager import Pass, PassManager, PassResult  # noqa: F401
from .analysis import (  # noqa: F401
    critical_path_ns,
    dataflow_depth,
    memory_access_groups,
)
from .passes.task_pipelining import TaskPipelining  # noqa: F401
from .passes.execution_tiling import ExecutionTiling  # noqa: F401
from .passes.memory_localization import MemoryLocalization  # noqa: F401
from .passes.banking import CacheBanking, ScratchpadBanking  # noqa: F401
from .passes.op_fusion import OpFusion  # noqa: F401
from .passes.tensor_ops import TensorOps  # noqa: F401
from .passes.parameter_tuning import ParameterTuning  # noqa: F401
from .passes.bitwidth_tuning import BitwidthTuning  # noqa: F401
from .passes.writeback_buffer import WritebackBuffer  # noqa: F401
from .passes.perf_counters import PerfCounters  # noqa: F401

#: Pass-name registry for config-driven pipelines (bench harness).
PASS_REGISTRY = {
    "task_pipelining": TaskPipelining,
    "execution_tiling": ExecutionTiling,
    "memory_localization": MemoryLocalization,
    "scratchpad_banking": ScratchpadBanking,
    "cache_banking": CacheBanking,
    "op_fusion": OpFusion,
    "tensor_ops": TensorOps,
    "parameter_tuning": ParameterTuning,
    "bitwidth_tuning": BitwidthTuning,
    "writeback_buffer": WritebackBuffer,
    "perf_counters": PerfCounters,
}

# The spec mini-language lives below the registry it resolves against.
from .specs import (  # noqa: E402,F401
    PASS_ALIASES,
    PassSpec,
    coerce_passes,
    parse_pass_specs,
    parse_passes,
    spec_to_string,
)

